//! Task-lifecycle span tracing: typed, cycle-stamped per-task events,
//! critical-path attribution, and Chrome Trace Event (Perfetto) export.
//!
//! The source paper attributes cycles to individual hardware stages
//! (Tables II/IV); the windowed [`crate::Timeline`] shows *when* units
//! were busy but not *which* latency bounded the makespan. A [`SpanLog`]
//! records the full lifecycle of every task — submitted →
//! deps-registered (per home shard) → last-dependence-released → ready →
//! dispatched → started → finished — plus interconnect message spans
//! (send / deliver / retry, keyed by packet id) and fault annotations.
//!
//! On top of the raw log:
//!
//! * [`critical_path`] reconstructs the makespan-critical chain and
//!   attributes every cycle of `[0, makespan)` to a [`CpCategory`]
//!   (arrival gap, DM registration, TRS wake latency, link transit,
//!   TS queue, dispatch, worker execution, drain). The segments are
//!   contiguous by construction, so the category totals sum to the
//!   makespan *exactly* — the acceptance invariant of the table.
//! * [`to_perfetto_json`] renders the log in the Chrome Trace Event
//!   JSON format (one track per worker lane per shard, one track for
//!   the interconnect, flow arrows along dependence edges), loadable
//!   by Perfetto / `chrome://tracing`.
//!
//! Recording follows the [`crate::WindowSampler`] contract: engines hold
//! an `Option`-wrapped recorder and pay one branch per event site when
//! tracing is off; the log is strictly observation-only.

use crate::{escape, MergeRule, MetricSet};

/// The type of one lifecycle or interconnect event.
///
/// The discriminant order is the canonical tie-break of
/// [`SpanLog::canonical_sort`]: within one cycle, a task's events sort in
/// lifecycle order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum SpanKind {
    /// The task entered the session (driver-side admission).
    Submitted = 0,
    /// A home shard finished registering its dependence fragment with the
    /// DM (one event per shard holding a fragment; zero-dependence
    /// fragments register at Gateway accept).
    DepsRegistered = 1,
    /// The TRS released the task's last pending dependence.
    LastDepReleased = 2,
    /// The task reached the ready buffer (TS output).
    Ready = 3,
    /// The driver popped the task from the ready buffer towards a worker.
    Dispatched = 4,
    /// A worker began executing the task.
    Started = 5,
    /// The worker finished and the completion was processed.
    Finished = 6,
    /// An interconnect message carrying this task was queued on a link
    /// (`arg` is the packet id, `shard` the sender).
    MsgSend = 7,
    /// An interconnect message carrying this task was delivered (`arg` is
    /// the packet id, `shard` the receiver).
    MsgDeliver = 8,
    /// The fault layer retransmitted a packet (`arg` is the packet id).
    MsgRetry = 9,
    /// A fault-injection annotation (drop, pause, worker failure);
    /// `arg` carries the site-specific code.
    Fault = 10,
}

impl SpanKind {
    /// Stable lowercase name (JSON emit, tables).
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Submitted => "submitted",
            SpanKind::DepsRegistered => "deps_registered",
            SpanKind::LastDepReleased => "last_dep_released",
            SpanKind::Ready => "ready",
            SpanKind::Dispatched => "dispatched",
            SpanKind::Started => "started",
            SpanKind::Finished => "finished",
            SpanKind::MsgSend => "msg_send",
            SpanKind::MsgDeliver => "msg_deliver",
            SpanKind::MsgRetry => "msg_retry",
            SpanKind::Fault => "fault",
        }
    }
}

/// One cycle-stamped event of a [`SpanLog`]. Plain and `Copy` — recording
/// is a bounds-checked push into a preallocated arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Cycle the event occurred at.
    pub at: u64,
    /// Event type.
    pub kind: SpanKind,
    /// Shard (accelerator) the event occurred on; 0 for single-system
    /// engines and driver-level events.
    pub shard: u16,
    /// The task the event concerns (message events carry the task the
    /// message is about; `u32::MAX` when unknown, e.g. fault-layer
    /// retries that only know the packet).
    pub task: u32,
    /// Auxiliary payload: packet id for message events, worker hint or
    /// fault code elsewhere, 0 when unused.
    pub arg: u32,
}

/// A preallocated, append-only recorder of [`SpanEvent`]s.
///
/// Observation-only by contract: engines never read the log back during
/// simulation, and every record site is gated on the engine's
/// `Option<SpanLog>` being `Some` — one branch per event when tracing is
/// off, pinned bit-exact by the conformance tests.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanLog {
    events: Vec<SpanEvent>,
}

impl SpanLog {
    /// An empty log.
    pub fn new() -> Self {
        SpanLog::default()
    }

    /// An empty log with `cap` events preallocated (the arena: sessions
    /// size it from the expected task count so steady-state recording
    /// never allocates).
    pub fn with_capacity(cap: usize) -> Self {
        SpanLog {
            events: Vec::with_capacity(cap),
        }
    }

    /// Records one event.
    #[inline]
    pub fn record(&mut self, kind: SpanKind, at: u64, shard: u16, task: u32, arg: u32) {
        self.events.push(SpanEvent {
            at,
            kind,
            shard,
            task,
            arg,
        });
    }

    /// The recorded events, in recording order (or canonical order after
    /// [`SpanLog::canonical_sort`]).
    pub fn events(&self) -> &[SpanEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Appends every event of `other` (merging shard/lane logs).
    pub fn extend_from(&mut self, other: &SpanLog) {
        self.events.extend_from_slice(&other.events);
    }

    /// Reserves room for `additional` more events.
    pub fn reserve(&mut self, additional: usize) {
        self.events.reserve(additional);
    }

    /// Sorts the log into its canonical order: `(cycle, kind, shard,
    /// task, arg)`. The serial and conservative-parallel cluster engines
    /// record identical event *multisets* in different interleavings;
    /// after this sort their logs are bit-equal, which is what the
    /// serial==parallel conformance tests pin.
    ///
    /// Sessions return logs in recording order and never sort on the hot
    /// finish path (`bench_smoke` gates that tracing stays cheap); the
    /// analysis entry points ([`critical_path`], [`to_perfetto_json`])
    /// index events per task and are order-insensitive, so this sort is
    /// only for consumers that compare logs or need a deterministic
    /// order. Uses the run-adaptive stable sort: a merged log is a
    /// concatenation of per-layer nearly-time-ordered runs, which merge
    /// in near-linear time.
    pub fn canonical_sort(&mut self) {
        self.events
            .sort_by_key(|e| (e.at, e.kind as u8, e.shard, e.task, e.arg));
    }

    /// Renders the raw log as a JSON array of event objects.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"at\":{},\"kind\":\"{}\",\"shard\":{},\"task\":{},\"arg\":{}}}",
                e.at,
                e.kind.name(),
                e.shard,
                e.task,
                e.arg
            ));
        }
        out.push(']');
        out
    }
}

// ------------------------------------------------------------ resolution

/// The resolved lifecycle timestamps of one task, with missing events
/// collapsed onto their successors (engines without modelled hardware —
/// the perfect scheduler, the software runtime — record only the driver
/// events; the walker treats the absent hardware phases as zero-width).
#[derive(Debug, Clone, Copy, Default)]
struct TaskEvs {
    submitted: Option<u64>,
    /// Latest per-shard fragment registration.
    registered: Option<u64>,
    ready: Option<u64>,
    dispatched: Option<u64>,
    started: Option<u64>,
    finished: Option<u64>,
}

#[derive(Debug, Default)]
struct TaskTable {
    evs: Vec<TaskEvs>,
    /// Per-task interconnect activity, ascending `at`: (send cycles,
    /// deliver cycles).
    sends: Vec<Vec<u64>>,
    delivers: Vec<Vec<u64>>,
}

impl TaskTable {
    fn build(log: &SpanLog) -> TaskTable {
        let n = log
            .events()
            .iter()
            .filter(|e| e.task != u32::MAX)
            .map(|e| e.task as usize + 1)
            .max()
            .unwrap_or(0);
        let mut t = TaskTable {
            evs: vec![TaskEvs::default(); n],
            sends: vec![Vec::new(); n],
            delivers: vec![Vec::new(); n],
        };
        for e in log.events() {
            if e.task == u32::MAX {
                continue;
            }
            let i = e.task as usize;
            let slot = &mut t.evs[i];
            let max_in = |o: &mut Option<u64>, v: u64| *o = Some(o.map_or(v, |x| x.max(v)));
            match e.kind {
                SpanKind::Submitted => slot.submitted = Some(e.at),
                // Several shards may each register a fragment; the task
                // is fully registered at the latest of them.
                SpanKind::DepsRegistered => max_in(&mut slot.registered, e.at),
                SpanKind::LastDepReleased => max_in(&mut slot.ready, e.at),
                SpanKind::Ready => max_in(&mut slot.ready, e.at),
                SpanKind::Dispatched => slot.dispatched = Some(e.at),
                SpanKind::Started => slot.started = Some(e.at),
                SpanKind::Finished => max_in(&mut slot.finished, e.at),
                SpanKind::MsgSend => t.sends[i].push(e.at),
                SpanKind::MsgDeliver => t.delivers[i].push(e.at),
                SpanKind::MsgRetry | SpanKind::Fault => {}
            }
        }
        for v in t.sends.iter_mut().chain(t.delivers.iter_mut()) {
            v.sort_unstable();
        }
        t
    }
}

// ---------------------------------------------------------- critical path

/// A category of critical-path cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpCategory {
    /// The chain head had not been submitted yet (open-loop arrival gap).
    Arrival,
    /// Dependence registration: submission until the last home shard
    /// registered its DM fragment.
    DmRegister,
    /// TRS wake latency: dependence release / readiness bookkeeping
    /// between the bounding event and the ready buffer.
    TrsWake,
    /// Interconnect transit of the bounding finish/ready message.
    LinkTransit,
    /// Waiting in the ready buffer for the driver to dispatch.
    TsQueue,
    /// Dispatch-to-start latency (bus transfer, worker handoff).
    Dispatch,
    /// Worker execution.
    Exec,
    /// Post-execution drain: the last task had finished but the engine's
    /// makespan extends further (finish-notification travel).
    Drain,
}

impl CpCategory {
    /// All categories, timeline order.
    pub const ALL: [CpCategory; 8] = [
        CpCategory::Arrival,
        CpCategory::DmRegister,
        CpCategory::TrsWake,
        CpCategory::LinkTransit,
        CpCategory::TsQueue,
        CpCategory::Dispatch,
        CpCategory::Exec,
        CpCategory::Drain,
    ];

    /// Stable snake_case name (metric suffix, CSV column).
    pub fn name(self) -> &'static str {
        match self {
            CpCategory::Arrival => "arrival",
            CpCategory::DmRegister => "dm_register",
            CpCategory::TrsWake => "trs_wake",
            CpCategory::LinkTransit => "link_transit",
            CpCategory::TsQueue => "ts_queue",
            CpCategory::Dispatch => "dispatch",
            CpCategory::Exec => "exec",
            CpCategory::Drain => "drain",
        }
    }

    fn index(self) -> usize {
        Self::ALL.iter().position(|&c| c == self).expect("listed")
    }
}

/// One contiguous segment of the critical chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpSegment {
    /// What the cycles were spent on.
    pub category: CpCategory,
    /// The task the segment is attributed to (`u32::MAX` for the leading
    /// arrival gap and the trailing drain).
    pub task: u32,
    /// Segment start cycle (inclusive).
    pub start: u64,
    /// Segment end cycle (exclusive).
    pub end: u64,
}

/// The makespan-critical chain: contiguous segments covering exactly
/// `[0, makespan)`, so [`CriticalPath::totals`] sums to the makespan.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPath {
    /// Segments in ascending time order; zero-width segments are elided.
    pub segments: Vec<CpSegment>,
    /// The makespan the walk covered.
    pub makespan: u64,
}

impl CriticalPath {
    /// Total cycles attributed to one category.
    pub fn total(&self, category: CpCategory) -> u64 {
        self.segments
            .iter()
            .filter(|s| s.category == category)
            .map(|s| s.end - s.start)
            .sum()
    }

    /// Per-category totals, [`CpCategory::ALL`] order. Sums to
    /// [`CriticalPath::makespan`] by construction.
    pub fn totals(&self) -> [(CpCategory, u64); 8] {
        let mut out = CpCategory::ALL.map(|c| (c, 0u64));
        for s in &self.segments {
            out[s.category.index()].1 += s.end - s.start;
        }
        out
    }

    /// The registry view: one `critical_path.<category>` counter per
    /// category plus `critical_path.segments`.
    pub fn metric_set(&self) -> MetricSet {
        let mut set = MetricSet::new();
        for (c, v) in self.totals() {
            set.counter(format!("critical_path.{}", c.name()), v, MergeRule::Sum);
        }
        set.counter(
            "critical_path.segments",
            self.segments.len() as u64,
            MergeRule::Sum,
        );
        set
    }

    /// An aligned summary table (the `--critical-path` CLI output).
    pub fn table(&self) -> String {
        let mut out = format!("critical path over {} cycles:\n", self.makespan);
        out.push_str("  category      cycles          share\n");
        for (c, v) in self.totals() {
            if v == 0 {
                continue;
            }
            let pct = if self.makespan == 0 {
                0.0
            } else {
                v as f64 / self.makespan as f64 * 100.0
            };
            out.push_str(&format!("  {:<12}  {v:>12}  {pct:>12.2}%\n", c.name()));
        }
        out
    }

    /// Compact `cat:cycles;...` rendering (the sweep's critical-path
    /// composition column; categories with zero cycles are omitted).
    pub fn compact(&self) -> String {
        let mut parts = Vec::new();
        for (c, v) in self.totals() {
            if v > 0 {
                parts.push(format!("{}:{v}", c.name()));
            }
        }
        parts.join(";")
    }
}

/// Reconstructs the makespan-critical chain from a span log.
///
/// `preds` maps a task id to its dependence predecessors (the ground-truth
/// graph, e.g. `TaskGraph::preds`); `makespan` is the engine's reported
/// makespan, which may extend past the last task's finish (the gap becomes
/// [`CpCategory::Drain`]). Returns `None` when the log records no finished
/// task.
///
/// The walk is backward and contiguous: starting from the task that
/// finished last, each boundary either closes a lifecycle segment of the
/// current task or jumps to the predecessor whose finish bounded it, until
/// cycle 0. Missing lifecycle events (engines without modelled hardware)
/// collapse their phase to zero width.
pub fn critical_path<F>(log: &SpanLog, preds: F, makespan: u64) -> Option<CriticalPath>
where
    F: Fn(u32) -> Vec<u32>,
{
    let table = TaskTable::build(log);
    let last = (0..table.evs.len())
        .filter(|&i| table.evs[i].finished.is_some())
        .max_by_key(|&i| (table.evs[i].finished, i))?;

    let mut segs: Vec<CpSegment> = Vec::new();
    let mut push = |cat: CpCategory, task: u32, start: u64, end: u64| {
        if end > start {
            segs.push(CpSegment {
                category: cat,
                task,
                start,
                end,
            });
        }
    };

    let last_fin = table.evs[last].finished.expect("selected on finished");
    push(
        CpCategory::Drain,
        u32::MAX,
        last_fin.min(makespan),
        makespan,
    );

    let mut cur = last as u32;
    let mut bound = last_fin.min(makespan);
    // The dependence graph is acyclic, so the chain visits each task at
    // most once; the cap is a belt against malformed logs.
    for _ in 0..=table.evs.len() {
        let ev = table.evs[cur as usize];
        // Clamp monotonically so fallbacks can never produce a negative
        // segment: each boundary is at most the one above it.
        let b_start = ev.started.unwrap_or(bound).min(bound);
        let b_disp = ev.dispatched.unwrap_or(b_start).min(b_start);
        let b_ready = ev.ready.unwrap_or(b_disp).min(b_disp);
        push(CpCategory::Exec, cur, b_start, bound);
        push(CpCategory::Dispatch, cur, b_disp, b_start);
        push(CpCategory::TsQueue, cur, b_ready, b_disp);

        let reg = ev.registered.or(ev.submitted).unwrap_or(0).min(b_ready);
        let sub = ev.submitted.unwrap_or(0).min(reg);
        let lp = preds(cur)
            .into_iter()
            .filter_map(|p| {
                table
                    .evs
                    .get(p as usize)
                    .and_then(|e| e.finished)
                    .map(|f| (f, p))
            })
            .max();
        match lp {
            Some((pf, p)) if pf.min(b_ready) > reg.max(sub) && pf < bound => {
                let pf = pf.min(b_ready);
                // The bounding finish may have travelled the interconnect:
                // attribute its transit window when the predecessor's
                // message spans land inside (pf, b_ready].
                let deliver = table.delivers[p as usize]
                    .iter()
                    .copied()
                    .filter(|&d| d > pf && d <= b_ready)
                    .max();
                if let Some(d) = deliver {
                    let s = table.sends[p as usize]
                        .iter()
                        .copied()
                        .filter(|&s| s > pf && s <= d)
                        .min()
                        .unwrap_or(pf);
                    push(CpCategory::TrsWake, cur, d, b_ready);
                    push(CpCategory::LinkTransit, cur, s, d);
                    push(CpCategory::TrsWake, cur, pf, s);
                } else {
                    push(CpCategory::TrsWake, cur, pf, b_ready);
                }
                cur = p;
                bound = pf;
            }
            _ => {
                // The chain head: bounded by its own registration, not a
                // predecessor. Close out to cycle 0 and stop.
                push(CpCategory::TrsWake, cur, reg, b_ready);
                push(CpCategory::DmRegister, cur, sub, reg);
                push(CpCategory::Arrival, u32::MAX, 0, sub);
                bound = 0;
                break;
            }
        }
        if bound == 0 {
            break;
        }
    }
    // Malformed-log belt: whatever remains below the final bound is an
    // arrival gap, keeping the sum-to-makespan invariant unconditional.
    push(CpCategory::Arrival, u32::MAX, 0, bound);
    segs.reverse();
    Some(CriticalPath {
        segments: segs,
        makespan,
    })
}

// ------------------------------------------------------- Perfetto export

/// Renders the span log as Chrome Trace Event JSON (object format,
/// `{"traceEvents": [...]}`), loadable by Perfetto and `chrome://tracing`.
///
/// Tracks: one process per shard with one thread per *worker lane*
/// (greedy interval partitioning of the exec slices — the engines do not
/// name physical workers, so concurrent tasks get distinct lanes), plus
/// one `interconnect` process whose threads are the sending shards.
/// Dependence edges (`edges` as `(pred, succ)` pairs) become flow arrows
/// between exec slices; message retries and fault annotations become
/// instant events. Lifecycle waits (submit → start) are async spans keyed
/// by task id.
pub fn to_perfetto_json(log: &SpanLog, edges: &[(u32, u32)]) -> String {
    let table = TaskTable::build(log);
    let max_shard = log.events().iter().map(|e| e.shard).max().unwrap_or(0);
    let link_pid = max_shard as u64 + 2;
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let emit = |s: String, out: &mut String, first: &mut bool| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push_str(&s);
    };

    // Process/thread naming metadata.
    for shard in 0..=max_shard {
        emit(
            format!(
                "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{},\"tid\":0,\
                 \"args\":{{\"name\":\"{}\"}}}}",
                shard as u64 + 1,
                escape(&format!("shard{shard}"))
            ),
            &mut out,
            &mut first,
        );
    }
    emit(
        format!(
            "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{link_pid},\"tid\":0,\
             \"args\":{{\"name\":\"interconnect\"}}}}"
        ),
        &mut out,
        &mut first,
    );

    // Exec slices on greedy worker lanes, per shard. Started events carry
    // the shard; sort by (start, task) for deterministic lane assignment.
    let mut shard_of = vec![0u16; table.evs.len()];
    for e in log.events() {
        if e.kind == SpanKind::Started && (e.task as usize) < shard_of.len() {
            shard_of[e.task as usize] = e.shard;
        }
    }
    let mut execs: Vec<(u64, u64, u32)> = (0..table.evs.len())
        .filter_map(|i| {
            let e = table.evs[i];
            Some((e.started?, e.finished?, i as u32))
        })
        .collect();
    execs.sort_unstable();
    // lanes[shard] holds each lane's last slice end.
    let mut lanes: Vec<Vec<u64>> = vec![Vec::new(); max_shard as usize + 1];
    let mut lane_of = vec![0usize; table.evs.len()];
    for &(start, end, task) in &execs {
        let l = &mut lanes[shard_of[task as usize] as usize];
        let lane = match l.iter().position(|&busy_until| busy_until <= start) {
            Some(i) => i,
            None => {
                l.push(0);
                l.len() - 1
            }
        };
        l[lane] = end;
        lane_of[task as usize] = lane;
        emit(
            format!(
                "{{\"name\":\"t{task}\",\"cat\":\"task\",\"ph\":\"X\",\"ts\":{start},\
                 \"dur\":{},\"pid\":{},\"tid\":{}}}",
                end - start,
                shard_of[task as usize] as u64 + 1,
                lane + 1
            ),
            &mut out,
            &mut first,
        );
    }

    // Lifecycle wait spans (async, id = task): submitted -> started.
    for (i, e) in table.evs.iter().enumerate() {
        if let (Some(sub), Some(start)) = (e.submitted, e.started) {
            if start > sub {
                let pid = shard_of[i] as u64 + 1;
                emit(
                    format!(
                        "{{\"name\":\"t{i}.wait\",\"cat\":\"lifecycle\",\"ph\":\"b\",\
                         \"id\":{i},\"ts\":{sub},\"pid\":{pid},\"tid\":0}}"
                    ),
                    &mut out,
                    &mut first,
                );
                emit(
                    format!(
                        "{{\"name\":\"t{i}.wait\",\"cat\":\"lifecycle\",\"ph\":\"e\",\
                         \"id\":{i},\"ts\":{start},\"pid\":{pid},\"tid\":0}}"
                    ),
                    &mut out,
                    &mut first,
                );
            }
        }
    }

    // Flow arrows along dependence edges, bound to the exec slices.
    for (fi, &(p, s)) in edges.iter().enumerate() {
        let (Some(pe), Some(se)) = (
            table.evs.get(p as usize).copied(),
            table.evs.get(s as usize).copied(),
        ) else {
            continue;
        };
        let (Some(pf), Some(ss)) = (pe.finished, se.started) else {
            continue;
        };
        emit(
            format!(
                "{{\"name\":\"dep\",\"cat\":\"dep\",\"ph\":\"s\",\"id\":{},\"ts\":{pf},\
                 \"pid\":{},\"tid\":{}}}",
                fi + 1,
                shard_of[p as usize] as u64 + 1,
                lane_of[p as usize] + 1
            ),
            &mut out,
            &mut first,
        );
        emit(
            format!(
                "{{\"name\":\"dep\",\"cat\":\"dep\",\"ph\":\"f\",\"bp\":\"e\",\"id\":{},\
                 \"ts\":{ss},\"pid\":{},\"tid\":{}}}",
                fi + 1,
                shard_of[s as usize] as u64 + 1,
                lane_of[s as usize] + 1
            ),
            &mut out,
            &mut first,
        );
    }

    // Interconnect: match send/deliver by packet id into duration slices;
    // retries and faults become instants.
    let mut sends: Vec<(u32, u64, u16, u32)> = Vec::new(); // (packet, at, src, task)
    let mut delivers: Vec<(u32, u64)> = Vec::new();
    for e in log.events() {
        match e.kind {
            SpanKind::MsgSend => sends.push((e.arg, e.at, e.shard, e.task)),
            SpanKind::MsgDeliver => delivers.push((e.arg, e.at)),
            SpanKind::MsgRetry => emit(
                format!(
                    "{{\"name\":\"retry p{}\",\"cat\":\"link\",\"ph\":\"i\",\"s\":\"p\",\
                     \"ts\":{},\"pid\":{link_pid},\"tid\":{}}}",
                    e.arg,
                    e.at,
                    e.shard as u64 + 1
                ),
                &mut out,
                &mut first,
            ),
            SpanKind::Fault => emit(
                format!(
                    "{{\"name\":\"fault {}\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"p\",\
                     \"ts\":{},\"pid\":{link_pid},\"tid\":{}}}",
                    e.arg,
                    e.at,
                    e.shard as u64 + 1
                ),
                &mut out,
                &mut first,
            ),
            _ => {}
        }
    }
    delivers.sort_unstable();
    for (packet, at, src, task) in sends {
        // First delivery at-or-after the send with the same packet id
        // (duplicates deliver later; drops never match).
        let i = delivers.partition_point(|&(p, t)| (p, t) < (packet, at));
        let dur = match delivers.get(i) {
            Some(&(p, t)) if p == packet => t - at,
            _ => 0,
        };
        emit(
            format!(
                "{{\"name\":\"t{task} p{packet}\",\"cat\":\"link\",\"ph\":\"X\",\
                 \"ts\":{at},\"dur\":{dur},\"pid\":{link_pid},\"tid\":{}}}",
                src as u64 + 1
            ),
            &mut out,
            &mut first,
        );
    }

    out.push_str("]}");
    out
}

/// Picks a sampling window targeting `target_samples` timeline rows for a
/// run of roughly `makespan_estimate` cycles: the smallest power of two
/// yielding at most that many full windows, floored at 64 cycles. Callers
/// with an explicit window never call this — the explicit value wins.
pub fn auto_window(makespan_estimate: u64, target_samples: u64) -> u64 {
    let target = target_samples.max(1);
    let mut w = 64u64;
    while makespan_estimate / w > target && w < (1 << 62) {
        w *= 2;
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lifecycle(log: &mut SpanLog, task: u32, ts: [u64; 7]) {
        let kinds = [
            SpanKind::Submitted,
            SpanKind::DepsRegistered,
            SpanKind::LastDepReleased,
            SpanKind::Ready,
            SpanKind::Dispatched,
            SpanKind::Started,
            SpanKind::Finished,
        ];
        for (k, t) in kinds.into_iter().zip(ts) {
            log.record(k, t, 0, task, 0);
        }
    }

    #[test]
    fn canonical_sort_orders_by_cycle_then_lifecycle() {
        let mut log = SpanLog::new();
        log.record(SpanKind::Finished, 10, 0, 1, 0);
        log.record(SpanKind::Started, 10, 0, 2, 0);
        log.record(SpanKind::Submitted, 5, 1, 0, 0);
        log.canonical_sort();
        let kinds: Vec<SpanKind> = log.events().iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![SpanKind::Submitted, SpanKind::Started, SpanKind::Finished]
        );
    }

    #[test]
    fn chain_walk_sums_to_makespan() {
        // Task 0: [submit 0, reg 5, rel 8, ready 10, disp 12, start 15, fin 100]
        // Task 1 depends on 0: ready only after 0 finishes.
        let mut log = SpanLog::new();
        lifecycle(&mut log, 0, [0, 5, 8, 10, 12, 15, 100]);
        lifecycle(&mut log, 1, [3, 7, 104, 106, 107, 110, 200]);
        let preds = |t: u32| if t == 1 { vec![0] } else { vec![] };
        let cp = critical_path(&log, preds, 210).unwrap();
        let total: u64 = cp.totals().iter().map(|(_, v)| v).sum();
        assert_eq!(total, 210, "category cycles must sum to the makespan");
        assert_eq!(cp.total(CpCategory::Drain), 10);
        assert_eq!(cp.total(CpCategory::Exec), 85 + 90);
        assert_eq!(cp.total(CpCategory::Arrival), 0);
        // Chain: t1 exec [110,200), dispatch [107,110), ts [106,107),
        // wake [100,106) -> jump to t0, whose wake is [reg 5, ready 10).
        assert_eq!(cp.total(CpCategory::TrsWake), 6 + 5);
        assert_eq!(cp.total(CpCategory::Dispatch), 3 + 3);
        assert_eq!(cp.total(CpCategory::TsQueue), 1 + 2);
        assert_eq!(cp.total(CpCategory::DmRegister), 5);
        // Segments are contiguous and ascending.
        for w in cp.segments.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
        assert_eq!(cp.segments.first().unwrap().start, 0);
        assert_eq!(cp.segments.last().unwrap().end, 210);
    }

    #[test]
    fn missing_hardware_events_collapse_to_zero_width() {
        // Driver-only log (perfect-scheduler shape): submit/start/finish.
        let mut log = SpanLog::new();
        log.record(SpanKind::Submitted, 0, 0, 0, 0);
        log.record(SpanKind::Started, 4, 0, 0, 0);
        log.record(SpanKind::Finished, 54, 0, 0, 0);
        let cp = critical_path(&log, |_| vec![], 54).unwrap();
        assert_eq!(cp.total(CpCategory::Exec), 50);
        assert_eq!(cp.total(CpCategory::TrsWake), 4, "pre-start gap");
        let total: u64 = cp.totals().iter().map(|(_, v)| v).sum();
        assert_eq!(total, 54);
    }

    #[test]
    fn link_transit_attributed_between_send_and_deliver() {
        let mut log = SpanLog::new();
        lifecycle(&mut log, 0, [0, 0, 0, 0, 0, 0, 100]);
        // Finish message of task 0 crosses the link [102, 130).
        log.record(SpanKind::MsgSend, 102, 0, 0, 7);
        log.record(SpanKind::MsgDeliver, 130, 1, 0, 7);
        lifecycle(&mut log, 1, [0, 1, 133, 135, 135, 140, 220]);
        let cp = critical_path(&log, |t| if t == 1 { vec![0] } else { vec![] }, 220).unwrap();
        assert_eq!(cp.total(CpCategory::LinkTransit), 28);
        assert_eq!(cp.total(CpCategory::TrsWake), 2 + 5);
        let total: u64 = cp.totals().iter().map(|(_, v)| v).sum();
        assert_eq!(total, 220);
    }

    #[test]
    fn empty_log_walks_to_none() {
        assert!(critical_path(&SpanLog::new(), |_| vec![], 10).is_none());
    }

    #[test]
    fn perfetto_emits_slices_flows_and_metadata() {
        let mut log = SpanLog::new();
        lifecycle(&mut log, 0, [0, 1, 2, 3, 4, 5, 50]);
        lifecycle(&mut log, 1, [0, 1, 52, 53, 54, 55, 90]);
        log.record(SpanKind::MsgSend, 51, 0, 0, 3);
        log.record(SpanKind::MsgDeliver, 52, 1, 0, 3);
        log.record(SpanKind::MsgRetry, 60, 0, u32::MAX, 3);
        let json = to_perfetto_json(&log, &[(0, 1)]);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"s\"") && json.contains("\"ph\":\"f\""));
        assert!(json.contains("\"name\":\"shard0\""));
        assert!(json.contains("\"name\":\"interconnect\""));
        assert!(json.contains("retry p3"));
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn concurrent_tasks_get_distinct_lanes() {
        let mut log = SpanLog::new();
        lifecycle(&mut log, 0, [0, 0, 0, 0, 0, 10, 100]);
        lifecycle(&mut log, 1, [0, 0, 0, 0, 0, 10, 100]);
        let json = to_perfetto_json(&log, &[]);
        assert!(json.contains("\"tid\":1") && json.contains("\"tid\":2"));
    }

    #[test]
    fn auto_window_targets_sample_count() {
        assert_eq!(auto_window(0, 256), 64);
        assert_eq!(auto_window(64 * 256, 256), 64, "exact fit keeps the floor");
        let w = auto_window(10_000_000, 256);
        assert!(w.is_power_of_two());
        assert!(10_000_000 / w <= 256, "at most ~target samples");
        assert!(10_000_000 / (w / 2) > 256, "smallest such power of two");
    }

    #[test]
    fn span_log_json_renders_events() {
        let mut log = SpanLog::new();
        log.record(SpanKind::Submitted, 3, 1, 9, 0);
        let j = log.to_json();
        assert!(j.contains("\"kind\":\"submitted\""));
        assert!(j.contains("\"shard\":1"));
    }
}
