//! Unified metrics vocabulary and time-resolved telemetry.
//!
//! The source paper is a performance *analysis*: its tables attribute
//! cycles to individual hardware units (GW/TRS/DCT/ARB/TS busy time,
//! Table II DM conflicts, Table IV latency/throughput). Before this crate
//! existed, every layer of the reproduction kept its own pile of
//! end-of-run scalars with no time axis and no common vocabulary. This
//! crate provides both:
//!
//! * [`MetricSet`] — a registry of named end-of-run metrics: typed
//!   counters, gauges with peak tracking, and fixed-bucket histograms,
//!   each carrying an explicit [`MergeRule`] so aggregation across scopes
//!   (per-shard counters, per-unit peaks) is never lossy by accident.
//! * [`Timeline`] — a cycle-windowed sample table: named series sampled
//!   at fixed window boundaries, the signal that reveals the saturation
//!   regimes end-of-run aggregates hide (queue occupancy and per-unit
//!   utilization *over time*).
//! * [`WindowSampler`] — the incremental builder the engines embed: it is
//!   advanced with the simulation clock and probes the attached layer's
//!   gauges/counters only when a window boundary is crossed, so telemetry
//!   is strictly observation-only and costs one branch per clock move
//!   when no timeline is attached.
//!
//! # Window semantics
//!
//! A timeline with window `w` has one sample per window `[k·w, (k+1)·w)`.
//! [`SeriesKind::Gauge`] series record the instantaneous value at the
//! window's *end* boundary, observed before any event scheduled exactly at
//! that boundary is served; [`SeriesKind::Delta`] series record the growth
//! of a cumulative counter across the window, so summing a delta series
//! over all samples reproduces the end-of-run counter exactly. The final
//! sample may cover a partial window (`end < start + w`): it is emitted at
//! finalization time so short runs under coarse windows still produce one
//! row.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::fmt;

pub mod snap;
pub mod span;

/// How two values of the same metric combine when sets are merged.
///
/// Monotone totals (busy cycles, stall counts, processed dependences) sum;
/// high-water marks (peak occupancy) take the maximum — summing peaks
/// observed at different times would fabricate an occupancy that never
/// existed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeRule {
    /// Add the values (totals).
    Sum,
    /// Keep the larger value (high-water marks).
    Max,
}

impl MergeRule {
    /// Applies the rule to a pair of values.
    #[inline]
    pub fn apply(self, a: u64, b: u64) -> u64 {
        match self {
            MergeRule::Sum => a + b,
            MergeRule::Max => a.max(b),
        }
    }
}

/// The typed payload of a metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A monotone counter.
    Counter(u64),
    /// A gauge: last observed value plus its high-water mark.
    Gauge {
        /// Last observed value.
        value: u64,
        /// High-water mark over the run.
        peak: u64,
    },
    /// A fixed-bucket histogram: `counts[i]` tallies observations `<=
    /// bounds[i]`, with one implicit overflow bucket at the end
    /// (`counts.len() == bounds.len() + 1`).
    Histogram {
        /// Inclusive upper bounds of the finite buckets.
        bounds: Vec<u64>,
        /// Per-bucket observation counts (one longer than `bounds`).
        counts: Vec<u64>,
    },
}

/// One named metric of a [`MetricSet`].
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Dotted name; scope prefixes (`shard0.`, `core.`) label the layer
    /// that emitted it.
    pub name: String,
    /// Typed value.
    pub value: MetricValue,
    /// Merge semantics (applies to counters and to a gauge's value; gauge
    /// peaks always merge by max, histogram buckets always sum).
    pub rule: MergeRule,
}

/// A registry of named metrics with explicit merge semantics.
///
/// Every execution layer of the reproduction emits its end-of-run counters
/// through one of these (scoped by a dotted name prefix), so cross-layer
/// and cross-shard aggregation all run through [`MetricSet::merge`] and
/// the sum-vs-max decision is stated per metric instead of hard-coded in
/// ad-hoc merge loops.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricSet {
    metrics: Vec<Metric>,
}

impl MetricSet {
    /// An empty registry.
    pub fn new() -> Self {
        MetricSet::default()
    }

    /// Registers a counter.
    pub fn counter(&mut self, name: impl Into<String>, value: u64, rule: MergeRule) -> &mut Self {
        self.metrics.push(Metric {
            name: name.into(),
            value: MetricValue::Counter(value),
            rule,
        });
        self
    }

    /// Registers a gauge with its peak.
    pub fn gauge(&mut self, name: impl Into<String>, value: u64, peak: u64) -> &mut Self {
        self.metrics.push(Metric {
            name: name.into(),
            value: MetricValue::Gauge { value, peak },
            rule: MergeRule::Max,
        });
        self
    }

    /// Registers a fixed-bucket histogram from raw observations.
    pub fn histogram(
        &mut self,
        name: impl Into<String>,
        bounds: Vec<u64>,
        observations: impl IntoIterator<Item = u64>,
    ) -> &mut Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds ascend");
        let mut counts = vec![0u64; bounds.len() + 1];
        for obs in observations {
            let i = bounds.partition_point(|&b| b < obs);
            counts[i] += 1;
        }
        self.metrics.push(Metric {
            name: name.into(),
            value: MetricValue::Histogram { bounds, counts },
            rule: MergeRule::Sum,
        });
        self
    }

    /// Registers a fixed-bucket histogram from already-bucketed counts
    /// (the hot path tallies buckets directly; see
    /// [`MetricSet::histogram`] for the raw-observation form).
    ///
    /// # Panics
    ///
    /// Panics when `counts` is not exactly one longer than `bounds`.
    pub fn histogram_counts(
        &mut self,
        name: impl Into<String>,
        bounds: Vec<u64>,
        counts: Vec<u64>,
    ) -> &mut Self {
        assert_eq!(counts.len(), bounds.len() + 1, "one overflow bucket");
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds ascend");
        self.metrics.push(Metric {
            name: name.into(),
            value: MetricValue::Histogram { bounds, counts },
            rule: MergeRule::Sum,
        });
        self
    }

    /// The registered metrics, in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &Metric> {
        self.metrics.iter()
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Looks a metric up by name.
    pub fn get(&self, name: &str) -> Option<&Metric> {
        self.metrics.iter().find(|m| m.name == name)
    }

    /// Convenience: the value of a counter (or a gauge's value) by name.
    pub fn value(&self, name: &str) -> Option<u64> {
        match self.get(name)?.value {
            MetricValue::Counter(v) | MetricValue::Gauge { value: v, .. } => Some(v),
            MetricValue::Histogram { .. } => None,
        }
    }

    /// Appends every metric of `other` under a dotted scope prefix.
    pub fn extend_scoped(&mut self, prefix: &str, other: &MetricSet) {
        for m in &other.metrics {
            let mut m = m.clone();
            m.name = format!("{prefix}{}", m.name);
            self.metrics.push(m);
        }
    }

    /// Merges `other` into `self` by name, applying each metric's
    /// [`MergeRule`]: counters and gauge values combine by their rule,
    /// gauge peaks by max, histogram buckets by sum. Metrics present only
    /// in `other` are appended.
    ///
    /// # Panics
    ///
    /// Panics when two same-named metrics have different types or — for
    /// histograms — different bucket bounds.
    pub fn merge(&mut self, other: &MetricSet) {
        for om in &other.metrics {
            let Some(m) = self.metrics.iter_mut().find(|m| m.name == om.name) else {
                self.metrics.push(om.clone());
                continue;
            };
            match (&mut m.value, &om.value) {
                (MetricValue::Counter(a), MetricValue::Counter(b)) => *a = m.rule.apply(*a, *b),
                (
                    MetricValue::Gauge { value, peak },
                    MetricValue::Gauge {
                        value: ov,
                        peak: op,
                    },
                ) => {
                    *value = m.rule.apply(*value, *ov);
                    *peak = (*peak).max(*op);
                }
                (
                    MetricValue::Histogram { bounds, counts },
                    MetricValue::Histogram {
                        bounds: ob,
                        counts: oc,
                    },
                ) => {
                    assert_eq!(bounds, ob, "histogram {} bucket bounds differ", m.name);
                    for (c, o) in counts.iter_mut().zip(oc) {
                        *c += o;
                    }
                }
                _ => panic!("metric {} merged across different types", m.name),
            }
        }
    }

    /// Renders the registry as a JSON object keyed by metric name.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, m) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":", escape(&m.name)));
            match &m.value {
                MetricValue::Counter(v) => out.push_str(&v.to_string()),
                MetricValue::Gauge { value, peak } => {
                    out.push_str(&format!("{{\"value\":{value},\"peak\":{peak}}}"));
                }
                MetricValue::Histogram { bounds, counts } => {
                    out.push_str(&format!(
                        "{{\"bounds\":{},\"counts\":{}}}",
                        num_array(bounds),
                        num_array(counts)
                    ));
                }
            }
        }
        out.push('}');
        out
    }
}

fn num_array(v: &[u64]) -> String {
    let items: Vec<String> = v.iter().map(u64::to_string).collect();
    format!("[{}]", items.join(","))
}

/// Minimal JSON string escaping (metric/series names are controlled
/// identifiers, but workload labels can be arbitrary).
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// How a timeline series is sampled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeriesKind {
    /// Instantaneous value at each window's end boundary.
    Gauge,
    /// Growth of a cumulative counter across the window (the probe reports
    /// the cumulative total; the sampler differences it). Summing the
    /// series reproduces the end-of-run counter.
    Delta,
}

/// One named series of a [`Timeline`].
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesSpec {
    /// Dotted series name (`busy.gw`, `occ.ready`, `s2.busy.dct`, ...).
    pub name: String,
    /// Sampling semantics.
    pub kind: SeriesKind,
}

impl SeriesSpec {
    /// A gauge series.
    pub fn gauge(name: impl Into<String>) -> Self {
        SeriesSpec {
            name: name.into(),
            kind: SeriesKind::Gauge,
        }
    }

    /// A windowed-delta series over a cumulative counter.
    pub fn delta(name: impl Into<String>) -> Self {
        SeriesSpec {
            name: name.into(),
            kind: SeriesKind::Delta,
        }
    }
}

/// A cycle-windowed sample table: the time-resolved counterpart of a
/// [`MetricSet`].
///
/// Samples are stored row-major (`values[sample * series_count + s]`);
/// every full sample covers exactly one window, the final sample may be
/// partial (see the module docs for the window semantics).
#[derive(Debug, Clone, PartialEq)]
pub struct Timeline {
    window: u64,
    series: Vec<SeriesSpec>,
    starts: Vec<u64>,
    ends: Vec<u64>,
    values: Vec<u64>,
}

impl Timeline {
    /// An empty timeline with the given window and series.
    ///
    /// # Panics
    ///
    /// Panics on a zero window.
    pub fn new(window: u64, series: Vec<SeriesSpec>) -> Self {
        assert!(window > 0, "timeline window must be positive");
        Timeline {
            window,
            series,
            starts: Vec::new(),
            ends: Vec::new(),
            values: Vec::new(),
        }
    }

    /// The sampling window, in cycles.
    pub fn window(&self) -> u64 {
        self.window
    }

    /// The series, in column order.
    pub fn series(&self) -> &[SeriesSpec] {
        &self.series
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.starts.len()
    }

    /// Whether the timeline holds no samples.
    pub fn is_empty(&self) -> bool {
        self.starts.is_empty()
    }

    /// Sample `i` as `(window_start, window_end, values)`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn sample(&self, i: usize) -> (u64, u64, &[u64]) {
        let n = self.series.len();
        (
            self.starts[i],
            self.ends[i],
            &self.values[i * n..(i + 1) * n],
        )
    }

    /// Column index of a series by name.
    pub fn series_index(&self, name: &str) -> Option<usize> {
        self.series.iter().position(|s| s.name == name)
    }

    /// The full column of one series, by name.
    pub fn column(&self, name: &str) -> Option<Vec<u64>> {
        let idx = self.series_index(name)?;
        let n = self.series.len();
        Some((0..self.len()).map(|i| self.values[i * n + idx]).collect())
    }

    /// Appends one sample row.
    ///
    /// # Panics
    ///
    /// Panics when the value count does not match the series count.
    pub fn push_sample(&mut self, start: u64, end: u64, values: &[u64]) {
        assert_eq!(values.len(), self.series.len(), "one value per series");
        self.starts.push(start);
        self.ends.push(end);
        self.values.extend_from_slice(values);
    }

    /// Stitches timelines from different layers of one run into a single
    /// timeline: all series side by side, each part's series names under
    /// its prefix, samples aligned by window index.
    ///
    /// Parts sampled over a shorter horizon are padded at the tail —
    /// gauges repeat their last value (the layer went quiet, its state is
    /// unchanged), deltas pad with zero (nothing accrued).
    ///
    /// # Panics
    ///
    /// Panics when parts disagree on the window size or on the start
    /// cycles of shared window indices.
    pub fn stitch(parts: &[(&str, &Timeline)]) -> Timeline {
        let window = parts.first().map_or(1, |(_, t)| t.window);
        assert!(
            parts.iter().all(|(_, t)| t.window == window),
            "stitched timelines must share one window size"
        );
        let rows = parts.iter().map(|(_, t)| t.len()).max().unwrap_or(0);
        let longest: Option<&Timeline> = parts.iter().map(|(_, t)| *t).max_by_key(|t| t.len());
        let mut series = Vec::new();
        for (prefix, t) in parts {
            for s in &t.series {
                series.push(SeriesSpec {
                    name: format!("{prefix}{}", s.name),
                    kind: s.kind,
                });
            }
        }
        let mut out = Timeline::new(window, series);
        let Some(longest) = longest else {
            return out;
        };
        let mut row = Vec::new();
        for i in 0..rows {
            row.clear();
            for (_, t) in parts {
                if i < t.len() {
                    debug_assert_eq!(
                        t.starts[i], longest.starts[i],
                        "stitched timelines disagree on window starts"
                    );
                    row.extend_from_slice(t.sample(i).2);
                } else {
                    for (s, spec) in t.series.iter().enumerate() {
                        row.push(match spec.kind {
                            // Quiet layer: state unchanged since its last
                            // sample; nothing accrued in later windows.
                            SeriesKind::Gauge if !t.is_empty() => {
                                t.values[(t.len() - 1) * t.series.len() + s]
                            }
                            _ => 0,
                        });
                    }
                }
            }
            out.push_sample(longest.starts[i], longest.ends[i], &row);
        }
        out
    }

    /// Derives a worker-occupancy timeline from a finished schedule: the
    /// telemetry of engines without modelled hardware units (the perfect
    /// scheduler, the software runtime), computed post hoc from per-task
    /// start/end cycles.
    ///
    /// Series: `workers.running` (gauge: tasks running at each boundary,
    /// with the boundary conventions of the live samplers — a task ending
    /// exactly at the boundary still counts, one starting there does not)
    /// and `workers.busy_cycles` (delta: busy cycles accrued in the
    /// window). The delta series is deliberately *not* named
    /// `workers.busy`: that name is the live busy-worker-count gauge of
    /// the HIL/cluster sessions, and a mixed-backend sweep emit must not
    /// carry two units under one series name.
    pub fn from_schedule(window: u64, starts: &[u64], ends: &[u64], horizon: u64) -> Timeline {
        let mut tl = Timeline::new(
            window,
            vec![
                SeriesSpec::gauge("workers.running"),
                SeriesSpec::delta("workers.busy_cycles"),
            ],
        );
        let mut s = 0u64;
        while s < horizon {
            let e = (s + window).min(horizon);
            let mut running = 0u64;
            let mut busy = 0u64;
            for (&ts, &te) in starts.iter().zip(ends) {
                if ts < e && te >= e {
                    running += 1;
                }
                busy += te.min(e).saturating_sub(ts.max(s));
            }
            tl.push_sample(s, e, &[running, busy]);
            s = e;
        }
        tl
    }

    /// Renders the timeline as CSV: `window_start,window_end,<series...>`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("window_start,window_end");
        for s in &self.series {
            out.push(',');
            out.push_str(&s.name);
        }
        out.push('\n');
        for i in 0..self.len() {
            let (start, end, values) = self.sample(i);
            out.push_str(&format!("{start},{end}"));
            for v in values {
                out.push_str(&format!(",{v}"));
            }
            out.push('\n');
        }
        out
    }

    /// Renders the timeline as a JSON object.
    pub fn to_json(&self) -> String {
        let mut out = format!("{{\"window\":{},\"series\":[", self.window);
        for (i, s) in self.series.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let kind = match s.kind {
                SeriesKind::Gauge => "gauge",
                SeriesKind::Delta => "delta",
            };
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"kind\":\"{kind}\"}}",
                escape(&s.name)
            ));
        }
        out.push_str("],\"samples\":[");
        for i in 0..self.len() {
            if i > 0 {
                out.push(',');
            }
            let (start, end, values) = self.sample(i);
            out.push_str(&format!(
                "{{\"start\":{start},\"end\":{end},\"values\":{}}}",
                num_array(values)
            ));
        }
        out.push_str("]}");
        out
    }
}

/// The incremental [`Timeline`] builder the engines embed.
///
/// Advance it together with the simulation clock; it calls the probe
/// closure (which reads the layer's gauges and cumulative counters) only
/// when at least one window boundary is crossed, so an attached but idle
/// sampler costs one comparison per clock move and an unattached layer
/// (holding `Option<WindowSampler>::None`) costs one branch.
#[derive(Debug, Clone)]
pub struct WindowSampler {
    window: u64,
    /// Next window-end boundary to sample (absolute cycle).
    next: u64,
    timeline: Timeline,
    /// Cumulative snapshot at the previous sample (for delta series).
    last: Vec<u64>,
    scratch: Vec<u64>,
    row: Vec<u64>,
}

impl WindowSampler {
    /// A sampler starting at cycle 0.
    ///
    /// # Panics
    ///
    /// Panics on a zero window.
    pub fn new(window: u64, series: Vec<SeriesSpec>) -> Self {
        let n = series.len();
        WindowSampler {
            window,
            next: window,
            timeline: Timeline::new(window, series),
            last: vec![0; n],
            scratch: vec![0; n],
            row: vec![0; n],
        }
    }

    /// Whether moving the clock to `now` crosses a window boundary — the
    /// one comparison on the no-sample fast path.
    #[inline]
    pub fn due(&self, now: u64) -> bool {
        now >= self.next
    }

    /// The sampling window, in cycles.
    pub fn window(&self) -> u64 {
        self.window
    }

    /// The next window boundary to sample (absolute cycle): after
    /// [`WindowSampler::advance`]`(t, ..)` it is strictly greater than `t`.
    /// Parallel engines clamp their synchronization windows to it so no
    /// lane simulates past an unsampled boundary.
    pub fn next_boundary(&self) -> u64 {
        self.next
    }

    /// Advances the sampling clock to `now`. When one or more boundaries
    /// are crossed, `probe` is called **once** to read the current values
    /// (state is constant between simulation events, so every boundary in
    /// the span observes the same state) and a sample is emitted per
    /// boundary; deltas land in the first crossed window.
    pub fn advance(&mut self, now: u64, probe: impl FnOnce(&mut [u64])) {
        if now < self.next {
            return;
        }
        probe(&mut self.scratch);
        while self.next <= now {
            self.emit(self.next - self.window, self.next);
            self.next += self.window;
        }
    }

    /// Emits the sample for `[start, end)` from the current scratch state
    /// and rolls the delta baseline forward.
    fn emit(&mut self, start: u64, end: u64) {
        for (i, spec) in self.timeline.series.iter().enumerate() {
            self.row[i] = match spec.kind {
                SeriesKind::Gauge => self.scratch[i],
                SeriesKind::Delta => self.scratch[i] - self.last[i],
            };
        }
        self.last.copy_from_slice(&self.scratch);
        self.timeline.push_sample(start, end, &self.row);
    }

    /// Like [`WindowSampler::advance`], but tolerant of sparse clocks:
    /// when the span crosses more than `max_windows` boundaries, the run
    /// of interior windows is elided (their gauges are constant and their
    /// deltas zero — state only changes at simulation events) and the
    /// sampler lands on the first boundary beyond `now`. Use where the
    /// clock can leap arbitrarily far in one event (open-loop
    /// `advance_to`); dense consumers that align windows across layers
    /// ([`Timeline::stitch`]) should keep [`WindowSampler::advance`].
    pub fn advance_sparse(&mut self, now: u64, max_windows: u64, probe: impl FnOnce(&mut [u64])) {
        if now < self.next {
            return;
        }
        probe(&mut self.scratch);
        let mut emitted = 0u64;
        while self.next <= now && emitted < max_windows {
            self.emit(self.next - self.window, self.next);
            self.next += self.window;
            emitted += 1;
        }
        if self.next <= now {
            let skipped = (now - self.next) / self.window + 1;
            self.next += skipped * self.window;
        }
    }

    /// Drains the samples accumulated so far into a [`Timeline`] without
    /// finishing the sampler: boundaries due at `now` are emitted first,
    /// then the collected samples are handed out and the sampler keeps
    /// running from its current position (delta baselines are preserved,
    /// so a later sample reports only activity since this drain). This is
    /// the live-scrape path — a metrics endpoint can ship windows
    /// mid-run while the session keeps its bit-exact schedule.
    pub fn drain(&mut self, now: u64, probe: impl FnOnce(&mut [u64])) -> Timeline {
        self.advance(now, probe);
        let series = self.timeline.series.clone();
        std::mem::replace(&mut self.timeline, Timeline::new(self.window, series))
    }

    /// Finalizes the sampler at `end`: samples any boundaries still due,
    /// emits a final partial-window sample when `end` lies inside an open
    /// window, and returns the finished [`Timeline`].
    pub fn finish(mut self, end: u64, probe: impl FnOnce(&mut [u64])) -> Timeline {
        probe(&mut self.scratch);
        while self.next <= end {
            self.emit(self.next - self.window, self.next);
            self.next += self.window;
        }
        let open_start = self.next - self.window;
        if end > open_start {
            self.emit(open_start, end);
        }
        self.timeline
    }
}

/// The Table IV metrics of one run: processing-capacity figures the paper
/// reports per testcase and mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticMetrics {
    /// **L1st** — latency of the first task: cycles from the start of the
    /// run until the first task begins executing.
    pub l1st: u64,
    /// **thrTask** — throughput for additional tasks: the steady-state
    /// execution-start interval between consecutive tasks.
    pub thr_task: f64,
    /// **thrDep** — throughput for additional dependences: `thrTask`
    /// divided by the average dependences per task (`None` for
    /// dependence-free streams, printed as `-` in the paper).
    pub thr_dep: Option<f64>,
}

/// Extracts the Table IV metrics from per-task start cycles (any engine's
/// schedule) and the workload's average dependence count.
///
/// # Panics
///
/// Panics when `starts` is empty.
pub fn synthetic_metrics(starts: &[u64], avg_deps: f64) -> SyntheticMetrics {
    assert!(!starts.is_empty(), "cannot measure an empty run");
    let mut starts = starts.to_vec();
    starts.sort_unstable();
    let l1st = starts[0];
    let n = starts.len();
    let thr_task = if n > 1 {
        (starts[n - 1] - starts[0]) as f64 / (n - 1) as f64
    } else {
        0.0
    };
    let thr_dep = if avg_deps > 0.0 {
        Some(thr_task / avg_deps)
    } else {
        None
    };
    SyntheticMetrics {
        l1st,
        thr_task,
        thr_dep,
    }
}

impl fmt::Display for SyntheticMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L1st {} thrTask {:.1} thrDep ", self.l1st, self.thr_task)?;
        match self.thr_dep {
            Some(d) => write!(f, "{d:.1}"),
            None => write!(f, "-"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_rules_apply() {
        assert_eq!(MergeRule::Sum.apply(2, 3), 5);
        assert_eq!(MergeRule::Max.apply(2, 3), 3);
    }

    #[test]
    fn metric_set_merge_by_rule() {
        let mut a = MetricSet::new();
        a.counter("busy", 10, MergeRule::Sum)
            .gauge("occ", 3, 7)
            .counter("makespan", 100, MergeRule::Max);
        let mut b = MetricSet::new();
        b.counter("busy", 5, MergeRule::Sum)
            .gauge("occ", 9, 4)
            .counter("makespan", 80, MergeRule::Max)
            .counter("extra", 1, MergeRule::Sum);
        a.merge(&b);
        assert_eq!(a.value("busy"), Some(15), "totals sum");
        assert_eq!(a.value("makespan"), Some(100), "maxes keep the larger");
        assert_eq!(a.value("extra"), Some(1), "missing metrics append");
        match &a.get("occ").unwrap().value {
            MetricValue::Gauge { value, peak } => {
                assert_eq!(*value, 9, "gauge value follows its rule (max)");
                assert_eq!(*peak, 7, "peaks never sum");
            }
            other => panic!("wrong type {other:?}"),
        }
    }

    #[test]
    fn histogram_buckets_and_merge() {
        let mut a = MetricSet::new();
        a.histogram("lat", vec![10, 100], [5u64, 10, 11, 1000]);
        match &a.get("lat").unwrap().value {
            MetricValue::Histogram { counts, .. } => assert_eq!(counts, &vec![2, 1, 1]),
            other => panic!("wrong type {other:?}"),
        }
        let mut b = MetricSet::new();
        b.histogram("lat", vec![10, 100], [1u64]);
        a.merge(&b);
        match &a.get("lat").unwrap().value {
            MetricValue::Histogram { counts, .. } => assert_eq!(counts, &vec![3, 1, 1]),
            other => panic!("wrong type {other:?}"),
        }
    }

    #[test]
    fn scoped_extension_prefixes_names() {
        let mut inner = MetricSet::new();
        inner.counter("busy", 4, MergeRule::Sum);
        let mut outer = MetricSet::new();
        outer.extend_scoped("shard1.", &inner);
        assert_eq!(outer.value("shard1.busy"), Some(4));
        assert!(outer.to_json().contains("\"shard1.busy\":4"));
    }

    #[test]
    fn sampler_windows_gauges_and_deltas() {
        let mut s = WindowSampler::new(
            10,
            vec![SeriesSpec::gauge("occ"), SeriesSpec::delta("busy")],
        );
        assert!(!s.due(9));
        // Cross two boundaries at once: one probe, two samples; the delta
        // lands in the first crossed window.
        s.advance(25, |v| {
            v[0] = 3;
            v[1] = 17;
        });
        let tl = s.finish(32, |v| {
            v[0] = 1;
            v[1] = 20;
        });
        assert_eq!(tl.len(), 4);
        assert_eq!(tl.sample(0), (0, 10, &[3u64, 17][..]));
        assert_eq!(tl.sample(1), (10, 20, &[3u64, 0][..]));
        assert_eq!(tl.sample(2), (20, 30, &[1u64, 3][..]));
        assert_eq!(tl.sample(3), (30, 32, &[1u64, 0][..]), "partial tail");
        // Delta series sum back to the cumulative counter.
        assert_eq!(tl.column("busy").unwrap().iter().sum::<u64>(), 20);
    }

    #[test]
    fn sampler_exact_boundary_end_has_no_empty_tail() {
        let mut s = WindowSampler::new(10, vec![SeriesSpec::delta("c")]);
        s.advance(10, |v| v[0] = 1);
        let tl = s.finish(20, |v| v[0] = 2);
        assert_eq!(tl.len(), 2);
        assert_eq!(tl.sample(1), (10, 20, &[1u64][..]));
    }

    #[test]
    fn stitch_aligns_and_pads() {
        let mut long = Timeline::new(10, vec![SeriesSpec::delta("busy")]);
        long.push_sample(0, 10, &[4]);
        long.push_sample(10, 20, &[6]);
        let mut short = Timeline::new(10, vec![SeriesSpec::gauge("occ")]);
        short.push_sample(0, 10, &[2]);
        let tl = Timeline::stitch(&[("core.", &long), ("", &short)]);
        assert_eq!(tl.series()[0].name, "core.busy");
        assert_eq!(tl.series()[1].name, "occ");
        assert_eq!(tl.sample(0), (0, 10, &[4u64, 2][..]));
        assert_eq!(tl.sample(1), (10, 20, &[6u64, 2][..]), "gauge pads carry");
    }

    #[test]
    fn schedule_timeline_accounts_every_busy_cycle() {
        // Two workers: task A [0,30), task B [5,15).
        let tl = Timeline::from_schedule(10, &[0, 5], &[30, 15], 30);
        assert_eq!(tl.len(), 3);
        let busy = tl.column("workers.busy_cycles").unwrap();
        assert_eq!(busy.iter().sum::<u64>(), 30 + 10, "total busy = total work");
        assert_eq!(busy, vec![15, 15, 10]);
        let running = tl.column("workers.running").unwrap();
        assert_eq!(running, vec![2, 1, 1], "B ends exactly at 15; A runs on");
    }

    #[test]
    fn csv_and_json_render() {
        let mut tl = Timeline::new(5, vec![SeriesSpec::gauge("a"), SeriesSpec::delta("b")]);
        tl.push_sample(0, 5, &[1, 2]);
        let csv = tl.to_csv();
        assert!(csv.starts_with("window_start,window_end,a,b\n"));
        assert!(csv.contains("0,5,1,2\n"));
        let json = tl.to_json();
        assert!(json.contains("\"window\":5"));
        assert!(json.contains("\"kind\":\"delta\""));
        assert!(json.contains("\"values\":[1,2]"));
    }

    #[test]
    fn table_iv_extraction() {
        let m = synthetic_metrics(&[50, 30, 70], 2.0);
        assert_eq!(m.l1st, 30);
        assert!((m.thr_task - 20.0).abs() < 1e-9);
        assert!((m.thr_dep.unwrap() - 10.0).abs() < 1e-9);
        let m = synthetic_metrics(&[5], 0.0);
        assert_eq!(m.l1st, 5);
        assert_eq!(m.thr_task, 0.0);
        assert!(m.thr_dep.is_none());
        assert_eq!(m.to_string(), "L1st 5 thrTask 0.0 thrDep -");
    }
}
