//! Snapshot save/load for the telemetry types.
//!
//! Telemetry is part of a session's dynamic state: restore==continuous
//! must hold for timelines and span logs too, so a mid-run snapshot
//! carries every sample emitted so far *and* the sampler's cursor (next
//! boundary, delta baselines). Encoding follows the positional
//! [`Enc`]/[`Dec`] convention of `picos_trace::snap`.

use crate::span::{SpanEvent, SpanKind, SpanLog};
use crate::{SeriesKind, SeriesSpec, Timeline, WindowSampler};
use picos_trace::snap::{Dec, Enc, SnapError};
use picos_trace::Value;

impl Timeline {
    /// Serializes the full timeline (series specs and all samples).
    pub fn save_state(&self) -> Value {
        let mut e = Enc::new();
        e.u64(self.window)
            .seq(&self.series, |e, s| {
                e.str(&s.name).bool(s.kind == SeriesKind::Delta);
            })
            .u64s(self.starts.iter().copied())
            .u64s(self.ends.iter().copied())
            .u64s(self.values.iter().copied());
        e.done()
    }

    /// Rebuilds a timeline serialized by [`Timeline::save_state`].
    ///
    /// # Errors
    ///
    /// Returns [`SnapError`] on a malformed record.
    pub fn load_state(v: &Value) -> Result<Timeline, SnapError> {
        let mut d = Dec::new(v, "timeline")?;
        let window = d.u64()?;
        let series = d.seq(|d| {
            let name = d.str()?.to_string();
            let delta = d.bool()?;
            Ok(SeriesSpec {
                name,
                kind: if delta {
                    SeriesKind::Delta
                } else {
                    SeriesKind::Gauge
                },
            })
        })?;
        let starts = d.u64s()?;
        let ends = d.u64s()?;
        let values = d.u64s()?;
        if window == 0 {
            return Err(SnapError::new("timeline: zero window"));
        }
        if starts.len() != ends.len() || values.len() != starts.len() * series.len() {
            return Err(SnapError::new("timeline: sample table shape mismatch"));
        }
        Ok(Timeline {
            window,
            series,
            starts,
            ends,
            values,
        })
    }
}

impl WindowSampler {
    /// Serializes the sampler mid-run: the samples emitted so far plus the
    /// cursor state a continuation needs (next boundary, delta baselines).
    pub fn save_state(&self) -> Value {
        let mut e = Enc::new();
        e.u64(self.next)
            .val(self.timeline.save_state())
            .u64s(self.last.iter().copied());
        e.done()
    }

    /// Rebuilds a sampler serialized by [`WindowSampler::save_state`].
    ///
    /// # Errors
    ///
    /// Returns [`SnapError`] on a malformed record.
    pub fn load_state(v: &Value) -> Result<WindowSampler, SnapError> {
        let mut d = Dec::new(v, "sampler")?;
        let next = d.u64()?;
        let timeline = Timeline::load_state(d.val()?)?;
        let last = d.u64s()?;
        let n = timeline.series.len();
        if last.len() != n {
            return Err(SnapError::new("sampler: delta baseline shape mismatch"));
        }
        Ok(WindowSampler {
            window: timeline.window,
            next,
            timeline,
            last,
            scratch: vec![0; n],
            row: vec![0; n],
        })
    }
}

impl SpanLog {
    /// Serializes the recorded events.
    pub fn save_state(&self) -> Value {
        let mut e = Enc::new();
        e.seq(self.events(), |e, ev| {
            e.u64(ev.at)
                .u64(ev.kind as u8 as u64)
                .u64(ev.shard as u64)
                .u32(ev.task)
                .u32(ev.arg);
        });
        e.done()
    }

    /// Rebuilds a log serialized by [`SpanLog::save_state`].
    ///
    /// # Errors
    ///
    /// Returns [`SnapError`] on a malformed record or unknown event kind.
    pub fn load_state(v: &Value) -> Result<SpanLog, SnapError> {
        let mut d = Dec::new(v, "spans")?;
        let events = d.seq(|d| {
            let at = d.u64()?;
            let kind = span_kind(d.u64()?)?;
            let shard = d.u16()?;
            let task = d.u32()?;
            let arg = d.u32()?;
            Ok(SpanEvent {
                at,
                kind,
                shard,
                task,
                arg,
            })
        })?;
        let mut log = SpanLog::with_capacity(events.len());
        for ev in events {
            log.record(ev.kind, ev.at, ev.shard, ev.task, ev.arg);
        }
        Ok(log)
    }
}

fn span_kind(code: u64) -> Result<SpanKind, SnapError> {
    Ok(match code {
        0 => SpanKind::Submitted,
        1 => SpanKind::DepsRegistered,
        2 => SpanKind::LastDepReleased,
        3 => SpanKind::Ready,
        4 => SpanKind::Dispatched,
        5 => SpanKind::Started,
        6 => SpanKind::Finished,
        7 => SpanKind::MsgSend,
        8 => SpanKind::MsgDeliver,
        9 => SpanKind::MsgRetry,
        10 => SpanKind::Fault,
        other => return Err(SnapError::new(format!("spans: unknown kind {other}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SeriesSpec;

    #[test]
    fn sampler_roundtrip_continues_identically() {
        let series = vec![SeriesSpec::gauge("occ"), SeriesSpec::delta("busy")];
        let mut a = WindowSampler::new(10, series.clone());
        a.advance(25, |v| {
            v[0] = 3;
            v[1] = 17;
        });

        let mut b = WindowSampler::load_state(&a.save_state()).unwrap();
        // Drive both through the same tail; the finished timelines must be
        // bit-equal (restore==continuous for telemetry).
        let drive = |s: &mut WindowSampler| {
            s.advance(41, |v| {
                v[0] = 5;
                v[1] = 23;
            });
        };
        drive(&mut a);
        drive(&mut b);
        let ta = a.finish(47, |v| {
            v[0] = 1;
            v[1] = 30;
        });
        let tb = b.finish(47, |v| {
            v[0] = 1;
            v[1] = 30;
        });
        assert_eq!(ta, tb);
        assert_eq!(tb.column("busy").unwrap().iter().sum::<u64>(), 30);
    }

    #[test]
    fn span_log_roundtrips() {
        let mut log = SpanLog::new();
        log.record(SpanKind::Submitted, 0, 1, 7, 0);
        log.record(SpanKind::MsgSend, 9, 2, u32::MAX, 3);
        let back = SpanLog::load_state(&log.save_state()).unwrap();
        assert_eq!(log, back);
    }

    #[test]
    fn timeline_shape_mismatch_rejected() {
        let mut tl = Timeline::new(5, vec![SeriesSpec::gauge("a")]);
        tl.push_sample(0, 5, &[1]);
        let mut v = tl.save_state();
        // Corrupt the values column length.
        if let Value::Arr(items) = &mut v {
            items[4] = Value::Arr(vec![]);
        }
        assert!(Timeline::load_state(&v).is_err());
    }
}
