//! The uniform streaming-session object every backend opens.
//!
//! [`SimSession`] is the dyn-safe face of the per-engine concrete sessions
//! ([`PerfectSession`], [`SoftwareSession`], [`HilSession`],
//! [`ClusterSession`]): the incremental ingest interface of
//! [`SessionCore`] plus a uniform finish that folds each engine's result
//! and error types into one [`SessionOutput`] ([`ExecReport`], optional
//! hardware [`Stats`], optional [`Timeline`], labeled [`MetricSet`]).
//! `ExecBackend::run` / `run_with_stats` / `run_with_telemetry` are
//! default methods driving one of these — no backend carries its own
//! batch loop.

use crate::backends::BackendError;
use picos_cluster::{merged_stats, ClusterSession};
use picos_core::Stats;
use picos_hil::HilSession;
use picos_metrics::span::SpanLog;
use picos_metrics::{MergeRule, MetricSet, Timeline};
use picos_runtime::{ExecReport, PerfectSession, SoftwareSession};
use picos_trace::{SnapError, Value};
use std::fmt;

pub use picos_runtime::session::{
    feed_trace, Admission, FeedStall, SessionConfig, SessionCore, SimEvent,
};

/// Everything a finished session reports: the schedule, the engine's
/// hardware counters (when it models Picos), the cycle-windowed telemetry
/// (when the session was opened with
/// [`SessionConfig::timeline_window`]), and the unified metrics registry
/// with one labeled scope per layer (`core.` for a single accelerator,
/// `shardK.` for cluster shards, `run.` for schedule-level facts).
#[derive(Debug, Clone, PartialEq)]
pub struct SessionOutput {
    /// The schedule, as from a batch run.
    pub report: ExecReport,
    /// Hardware counters, when the engine models Picos.
    pub stats: Option<Stats>,
    /// Cycle-windowed telemetry, when a timeline window was requested.
    pub timeline: Option<Timeline>,
    /// Task-lifecycle span events, when the session was opened with
    /// [`SessionConfig::trace_spans`]. Recording order (merged across
    /// engine layers and simulation lanes): the analysis entry points —
    /// the critical-path walker, the Perfetto exporter — are
    /// order-insensitive, so the finish path does not pay for a sort;
    /// call [`SpanLog::canonical_sort`] before comparing logs
    /// byte-for-byte or relying on a deterministic event order.
    pub spans: Option<SpanLog>,
    /// The run's counters under the unified metrics vocabulary.
    pub metrics: MetricSet,
}

/// Schedule-level facts every engine shares, under the `run.` scope.
fn run_metrics(report: &ExecReport) -> MetricSet {
    let mut set = MetricSet::new();
    set.counter("run.tasks", report.order.len() as u64, MergeRule::Sum)
        .counter("run.makespan", report.makespan, MergeRule::Max)
        .counter("run.sequential", report.sequential, MergeRule::Sum)
        .counter("run.workers", report.workers as u64, MergeRule::Sum);
    set
}

/// Output of an engine without modelled hardware: schedule facts plus a
/// schedule-derived worker-occupancy timeline when one was requested.
fn plain_output(
    report: ExecReport,
    timeline_window: Option<u64>,
    spans: Option<SpanLog>,
) -> SessionOutput {
    let timeline = timeline_window
        .map(|w| Timeline::from_schedule(w, &report.start, &report.end, report.makespan));
    let metrics = run_metrics(&report);
    SessionOutput {
        report,
        stats: None,
        timeline,
        spans,
        metrics,
    }
}

/// A streaming execution session, opened with `ExecBackend::open` /
/// `open_with`.
///
/// Drive it with the [`SessionCore`] interface — `submit` tasks (handling
/// [`Admission::Backpressured`]), declare `barrier`s, `advance_to` arrival
/// times or `step` through backpressure, `drain_events` — then call
/// [`SimSession::finish`] (or [`SimSession::finish_full`] for telemetry)
/// to run the simulation to quiescence and collect the results.
pub trait SimSession: SessionCore + Send + fmt::Debug {
    /// Closes the input stream, runs the simulation to quiescence and
    /// returns everything the run produced: report, hardware counters,
    /// telemetry timeline and the labeled metrics registry.
    ///
    /// # Errors
    ///
    /// Returns the engine's stall/deadlock condition as a
    /// [`BackendError`].
    fn finish_full(self: Box<Self>) -> Result<SessionOutput, BackendError>;

    /// Closes the input stream, runs the simulation to quiescence and
    /// returns the schedule report, plus the engine's hardware counters
    /// when it models Picos.
    ///
    /// # Errors
    ///
    /// See [`SimSession::finish_full`].
    fn finish(self: Box<Self>) -> Result<(ExecReport, Option<Stats>), BackendError> {
        self.finish_full().map(|o| (o.report, o.stats))
    }

    /// Serializes the session's complete dynamic state — engine tables,
    /// clock, in-flight work, ingest window, schedule/event logs, attached
    /// telemetry — through the in-tree JSON codec. The snapshot embeds a
    /// configuration fingerprint, so it can only be restored into an
    /// identically-configured session.
    fn save_state(&self) -> Value;

    /// Overwrites this session's dynamic state with a snapshot taken from
    /// an identically-configured session ([`SimSession::save_state`]).
    /// After a successful load, driving this session is bit-exact with
    /// driving the snapshotted one.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] on configuration mismatch or a malformed
    /// snapshot; the session must then be discarded.
    fn load_state(&mut self, v: &Value) -> Result<(), SnapError>;

    /// Deep-copies the session into an independent boxed replica — the
    /// cheap in-memory fork primitive. The replica shares no state with
    /// the original; driving either leaves the other untouched.
    fn fork_boxed(&self) -> Box<dyn SimSession>;
}

impl SimSession for PerfectSession {
    fn finish_full(self: Box<Self>) -> Result<SessionOutput, BackendError> {
        let window = self.timeline_window();
        let (report, spans) = (*self).into_output();
        Ok(plain_output(report, window, spans))
    }

    fn save_state(&self) -> Value {
        PerfectSession::save_state(self)
    }

    fn load_state(&mut self, v: &Value) -> Result<(), SnapError> {
        PerfectSession::load_state(self, v)
    }

    fn fork_boxed(&self) -> Box<dyn SimSession> {
        Box::new(self.clone())
    }
}

impl SimSession for SoftwareSession {
    fn finish_full(self: Box<Self>) -> Result<SessionOutput, BackendError> {
        let window = self.timeline_window();
        let (report, spans) = (*self).into_output().map_err(BackendError::from)?;
        Ok(plain_output(report, window, spans))
    }

    fn save_state(&self) -> Value {
        SoftwareSession::save_state(self)
    }

    fn load_state(&mut self, v: &Value) -> Result<(), SnapError> {
        SoftwareSession::load_state(self, v)
    }

    fn fork_boxed(&self) -> Box<dyn SimSession> {
        Box::new(self.clone())
    }
}

impl SimSession for HilSession {
    fn finish_full(self: Box<Self>) -> Result<SessionOutput, BackendError> {
        let (report, stats, timeline, spans) = (*self).into_output().map_err(BackendError::from)?;
        let mut metrics = run_metrics(&report);
        metrics.extend_scoped("core.", &stats.metric_set());
        Ok(SessionOutput {
            report,
            stats: Some(stats),
            timeline,
            spans,
            metrics,
        })
    }

    fn save_state(&self) -> Value {
        HilSession::save_state(self)
    }

    fn load_state(&mut self, v: &Value) -> Result<(), SnapError> {
        HilSession::load_state(self, v)
    }

    fn fork_boxed(&self) -> Box<dyn SimSession> {
        Box::new(self.clone())
    }
}

impl SimSession for ClusterSession {
    fn finish_full(self: Box<Self>) -> Result<SessionOutput, BackendError> {
        let (report, per_shard, timeline, faults, spans) =
            (*self).into_output().map_err(BackendError::from)?;
        let mut metrics = run_metrics(&report);
        for (k, stats) in per_shard.iter().enumerate() {
            metrics.extend_scoped(&format!("shard{k}."), &stats.metric_set());
        }
        let merged = merged_stats(&per_shard);
        metrics.extend_scoped("core.", &merged.metric_set());
        if let Some(fc) = faults {
            // Fault-protocol counters, only when an active plan is
            // attached — a fault-free session registers no faults.* scope.
            metrics
                .counter("faults.drops", fc.drops, MergeRule::Sum)
                .counter("faults.retries", fc.retries, MergeRule::Sum)
                .counter("faults.redeliveries", fc.redeliveries, MergeRule::Sum)
                .counter("faults.recoveries", fc.recoveries, MergeRule::Sum);
        }
        Ok(SessionOutput {
            report,
            stats: Some(merged),
            timeline,
            spans,
            metrics,
        })
    }

    fn save_state(&self) -> Value {
        ClusterSession::save_state(self)
    }

    fn load_state(&mut self, v: &Value) -> Result<(), SnapError> {
        ClusterSession::load_state(self, v)
    }

    fn fork_boxed(&self) -> Box<dyn SimSession> {
        Box::new(self.clone())
    }
}
