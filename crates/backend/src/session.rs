//! The uniform streaming-session object every backend opens.
//!
//! [`SimSession`] is the dyn-safe face of the per-engine concrete sessions
//! ([`PerfectSession`], [`SoftwareSession`], [`HilSession`],
//! [`ClusterSession`]): the incremental ingest interface of
//! [`SessionCore`] plus a uniform `finish` that folds each engine's result
//! and error types into ([`ExecReport`], optional hardware [`Stats`],
//! [`BackendError`]). `ExecBackend::run` / `run_with_stats` are default
//! methods driving one of these — no backend carries its own batch loop.

use crate::backends::BackendError;
use picos_cluster::{merged_stats, ClusterSession};
use picos_core::Stats;
use picos_hil::HilSession;
use picos_runtime::{ExecReport, PerfectSession, SoftwareSession};
use std::fmt;

pub use picos_runtime::session::{
    feed_trace, Admission, FeedStall, SessionConfig, SessionCore, SimEvent,
};

/// A streaming execution session, opened with `ExecBackend::open` /
/// `open_with`.
///
/// Drive it with the [`SessionCore`] interface — `submit` tasks (handling
/// [`Admission::Backpressured`]), declare `barrier`s, `advance_to` arrival
/// times or `step` through backpressure, `drain_events` — then call
/// [`SimSession::finish`] to run the simulation to quiescence and collect
/// the report (plus hardware counters when the engine models Picos).
pub trait SimSession: SessionCore + Send + fmt::Debug {
    /// Closes the input stream, runs the simulation to quiescence and
    /// returns the schedule report, plus the engine's hardware counters
    /// when it models Picos.
    ///
    /// # Errors
    ///
    /// Returns the engine's stall/deadlock condition as a
    /// [`BackendError`].
    fn finish(self: Box<Self>) -> Result<(ExecReport, Option<Stats>), BackendError>;
}

impl SimSession for PerfectSession {
    fn finish(self: Box<Self>) -> Result<(ExecReport, Option<Stats>), BackendError> {
        Ok(((*self).into_report(), None))
    }
}

impl SimSession for SoftwareSession {
    fn finish(self: Box<Self>) -> Result<(ExecReport, Option<Stats>), BackendError> {
        (*self)
            .into_report()
            .map(|r| (r, None))
            .map_err(BackendError::from)
    }
}

impl SimSession for HilSession {
    fn finish(self: Box<Self>) -> Result<(ExecReport, Option<Stats>), BackendError> {
        (*self)
            .into_report()
            .map(|(r, s)| (r, Some(s)))
            .map_err(BackendError::from)
    }
}

impl SimSession for ClusterSession {
    fn finish(self: Box<Self>) -> Result<(ExecReport, Option<Stats>), BackendError> {
        (*self)
            .into_report()
            .map(|(r, per_shard)| (r, Some(merged_stats(&per_shard))))
            .map_err(BackendError::from)
    }
}
