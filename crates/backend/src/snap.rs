//! [`Snapshot`]: a captured session state, portable through JSON.
//!
//! Every engine in the workspace is a deterministic state machine whose
//! concrete sessions serialize their complete dynamic state — engine
//! tables, clocks, in-flight work, ingest window, schedule/event logs,
//! attached telemetry — through the in-tree codec
//! ([`picos_trace::snap`]). `Snapshot` is the backend-level face of that
//! subsystem, working uniformly on boxed [`SimSession`]s of any family:
//!
//! * [`Snapshot::capture`] a live session,
//! * persist it ([`Snapshot::to_json`] / [`Snapshot::from_json`]),
//! * [`Snapshot::restore`] it into a freshly opened, **identically
//!   configured** session — after which driving the restored session is
//!   bit-exact with driving the original (report, hardware counters,
//!   timelines, span logs),
//! * or skip serialization entirely and [`SimSession::fork_boxed`] an
//!   ephemeral in-memory replica.
//!
//! Snapshots embed configuration fingerprints, so restoring into a
//! differently configured session fails with a typed error instead of
//! silently corrupting state. Together with the input journal
//! (`picos_runtime::JournaledSession`) this gives checkpointed recovery:
//! persist a snapshot plus the journal tail recorded after it, and
//! recovery is restore + tail replay instead of full-journal replay.

use crate::session::SimSession;
use picos_trace::snap::{value_from_json, value_to_json};
use picos_trace::{SnapError, Value};

/// A complete point-in-time copy of a session's dynamic state.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    state: Value,
}

impl Snapshot {
    /// Captures the session's complete dynamic state.
    pub fn capture(session: &dyn SimSession) -> Self {
        Snapshot {
            state: session.save_state(),
        }
    }

    /// Restores this snapshot into a freshly opened session of the same
    /// family and configuration. After a successful restore, driving
    /// `session` is bit-exact with driving the captured session.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] when the session's configuration does not
    /// match the snapshot's embedded fingerprint, or the snapshot is
    /// malformed; the session must then be discarded.
    pub fn restore(&self, session: &mut dyn SimSession) -> Result<(), SnapError> {
        session.load_state(&self.state)
    }

    /// Renders the snapshot as a JSON document.
    pub fn to_json(&self) -> String {
        value_to_json(&self.state)
    }

    /// Parses a snapshot from [`Snapshot::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] on malformed JSON. Structural problems
    /// surface later, at [`Snapshot::restore`].
    pub fn from_json(s: &str) -> Result<Self, SnapError> {
        Ok(Snapshot {
            state: value_from_json(s)?,
        })
    }

    /// The raw state tree (for embedding in larger documents, e.g. a
    /// serve tenant checkpoint holding a snapshot plus a journal tail).
    pub fn value(&self) -> &Value {
        &self.state
    }

    /// Wraps a raw state tree produced by [`Snapshot::value`] /
    /// [`SimSession::save_state`].
    pub fn from_value(state: Value) -> Self {
        Snapshot { state }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backends::{BackendSpec, ExecBackend};
    use crate::session::{feed_trace, Admission, SessionConfig, SessionCore};
    use picos_core::PicosConfig;
    use picos_hil::HilMode;
    use picos_runtime::{replay_journal, replay_journal_tail, JournaledSession};
    use picos_trace::rng::SplitMix64;
    use picos_trace::{
        gen, Dependence, JournalOp, KernelClass, SessionJournal, TaskDescriptor, TaskId, Trace,
    };

    /// Every engine family, plus a genuinely sharded cluster (the `ALL`
    /// list's cluster entry is the one-shard degenerate point).
    fn families() -> Vec<BackendSpec> {
        BackendSpec::ALL
            .into_iter()
            .chain([BackendSpec::Cluster(3)])
            .collect()
    }

    fn build(spec: BackendSpec) -> Box<dyn ExecBackend> {
        spec.build(4, &PicosConfig::balanced())
    }

    /// Feeds `trace[range]` like the batch loop: the barrier at position
    /// `i` is declared right before task `i`, backpressure drains via
    /// `step`.
    fn feed_range(s: &mut dyn SimSession, tr: &Trace, range: std::ops::Range<usize>) {
        for i in range {
            if tr.barriers().contains(&(i as u32)) {
                s.barrier();
            }
            let task = &tr.tasks()[i];
            loop {
                match s.submit(task) {
                    Admission::Accepted => break,
                    Admission::Backpressured => assert!(s.step(), "feed stall at {i}"),
                }
            }
        }
    }

    #[test]
    fn restore_equals_continuous_for_every_family() {
        // The tentpole conformance pin: capture mid-run (through the JSON
        // codec), restore into a fresh session, finish — every observable
        // (report, hw counters, timeline, span log, metrics) must be
        // bit-exact with the uninterrupted run, for every engine family,
        // including cuts at the very start and next to the end.
        // Small uncalibrated instance: calibrated paper traces run for
        // ~1e9 cycles, which a 64-cycle timeline window cannot hold.
        let tr = gen::sparselu(gen::SparseLuConfig {
            problem_size: 64,
            block_size: 8,
            calibrate: false,
        });
        let cfg = SessionConfig::windowed(16).with_timeline(64).with_spans();
        for spec in families() {
            let b = build(spec);
            let mut cont = b.open_with(cfg).unwrap();
            feed_range(&mut *cont, &tr, 0..tr.len());
            let expected = cont.finish_full().unwrap();
            for cut in [0, tr.len() / 3, tr.len() - 1] {
                let mut live = b.open_with(cfg).unwrap();
                feed_range(&mut *live, &tr, 0..cut);
                let snap = Snapshot::capture(&*live);
                let snap = Snapshot::from_json(&snap.to_json()).unwrap();
                let mut restored = b.open_with(cfg).unwrap();
                snap.restore(&mut *restored).unwrap();
                feed_range(&mut *restored, &tr, cut..tr.len());
                let out = restored.finish_full().unwrap();
                assert_eq!(out, expected, "{spec} cut {cut}");
            }
        }
    }

    #[test]
    fn fork_is_independent_for_every_family() {
        let tr = gen::stream(gen::StreamConfig::heavy(120));
        let half = tr.len() / 2;
        for spec in families() {
            let b = build(spec);
            let mut cont = b.open().unwrap();
            feed_range(&mut *cont, &tr, 0..tr.len());
            let expected = cont.finish_full().unwrap();

            let mut live = b.open().unwrap();
            feed_range(&mut *live, &tr, 0..half);
            let baseline = live.save_state();
            let mut fork = live.fork_boxed();
            feed_range(&mut *fork, &tr, half..tr.len());
            assert_eq!(fork.finish_full().unwrap(), expected, "{spec} fork");
            // Driving the replica must not have touched the original...
            assert_eq!(live.save_state(), baseline, "{spec} isolation");
            // ...which still finishes identically itself.
            feed_range(&mut *live, &tr, half..tr.len());
            assert_eq!(live.finish_full().unwrap(), expected, "{spec} original");
        }
    }

    #[test]
    fn restore_rejects_wrong_family_and_wrong_config() {
        let tr = gen::synthetic(gen::Case::Case2);
        let b = build(BackendSpec::Picos(HilMode::FullSystem));
        let mut live = b.open().unwrap();
        feed_range(&mut *live, &tr, 0..tr.len());
        let snap = Snapshot::capture(&*live);
        // Same family, different worker count.
        let mut other = BackendSpec::Picos(HilMode::FullSystem)
            .build(8, &PicosConfig::balanced())
            .open()
            .unwrap();
        assert!(snap.restore(&mut *other).is_err(), "workers must guard");
        // A different family entirely.
        let mut perfect = build(BackendSpec::Perfect).open().unwrap();
        assert!(snap.restore(&mut *perfect).is_err(), "family must guard");
    }

    /// Rebuilds the first `n` ops of a journal as a standalone journal
    /// (the state a checkpointer replays before snapshotting).
    fn journal_prefix(journal: &SessionJournal, n: usize) -> SessionJournal {
        let mut p = SessionJournal::new();
        for op in &journal.ops()[..n] {
            match op {
                JournalOp::Submit(t) => p.record_submit(t),
                JournalOp::Barrier => p.record_barrier(),
                JournalOp::AdvanceTo(c) => p.record_advance_to(*c),
            }
        }
        p
    }

    #[test]
    fn mid_journal_checkpoint_recovery_for_every_family() {
        // Checkpointed recovery — restore a snapshot taken at journal
        // cursor `cut`, replay only the tail — must equal the
        // uninterrupted run for every family, at every cut.
        let tr = gen::stream(gen::StreamConfig::heavy(80));
        let cfg = SessionConfig::windowed(8).with_timeline(128);
        for spec in families() {
            let b = build(spec);
            let mut live = JournaledSession::new(b.open_with(cfg).unwrap());
            feed_trace(&mut live, &tr).unwrap();
            let (live, journal) = live.into_parts();
            let expected = live.finish_full().unwrap();
            for cut in [0, journal.len() / 2, journal.len()] {
                let mut pre = b.open_with(cfg).unwrap();
                replay_journal(&mut pre, &journal_prefix(&journal, cut)).unwrap();
                let snap = Snapshot::from_json(&Snapshot::capture(&*pre).to_json()).unwrap();
                let mut rec = b.open_with(cfg).unwrap();
                snap.restore(&mut *rec).unwrap();
                replay_journal_tail(&mut rec, &journal, cut).unwrap();
                assert_eq!(rec.finish_full().unwrap(), expected, "{spec} cut {cut}");
            }
        }
    }

    /// One random input op for the property drive: mostly submissions
    /// over a small address pool (so dependences chain), with occasional
    /// barriers and open-loop clock advances.
    fn random_ops(rng: &mut SplitMix64, n: usize) -> Vec<JournalOp> {
        let mut ops = Vec::with_capacity(n);
        let mut id = 0u32;
        let mut clock = 0u64;
        for _ in 0..n {
            match rng.next_u64() % 10 {
                0 if id > 0 => ops.push(JournalOp::Barrier),
                1 => {
                    clock += rng.next_u64() % 400;
                    ops.push(JournalOp::AdvanceTo(clock));
                }
                _ => {
                    let addr = |r: &mut SplitMix64| 64 * (r.next_u64() % 12);
                    let deps = [
                        Dependence::input(addr(rng)),
                        Dependence::inout(addr(rng)),
                        Dependence::output(addr(rng)),
                    ];
                    let nd = (rng.next_u64() % 4) as usize;
                    let dur = 20 + rng.next_u64() % 300;
                    ops.push(JournalOp::Submit(TaskDescriptor::new(
                        TaskId::new(id),
                        KernelClass::GENERIC,
                        deps[..nd].iter().copied(),
                        dur,
                    )));
                    id += 1;
                }
            }
        }
        ops
    }

    fn apply_ops<S: SessionCore + ?Sized>(s: &mut S, ops: &[JournalOp]) {
        for op in ops {
            match op {
                JournalOp::Submit(t) => loop {
                    match s.submit(t) {
                        Admission::Accepted => break,
                        Admission::Backpressured => assert!(s.step(), "stall"),
                    }
                },
                JournalOp::Barrier => s.barrier(),
                JournalOp::AdvanceTo(c) => s.advance_to(*c),
            }
        }
    }

    #[test]
    fn property_random_interleavings_checkpoint_anywhere() {
        // Satellite: snapshot × journal interaction under random op
        // interleavings. A checkpoint (snapshot + journal compaction,
        // through JSON) taken at a random cursor of a random op stream,
        // followed by crash recovery (restore + tail replay), must equal
        // the uninterrupted run — across engine families and window
        // configurations.
        let specs = [
            BackendSpec::Perfect,
            BackendSpec::Nanos,
            BackendSpec::Picos(HilMode::HwOnly),
            BackendSpec::Picos(HilMode::FullSystem),
            BackendSpec::Cluster(2),
        ];
        let mut rng = SplitMix64::new(0x5eed_cafe);
        for round in 0..15 {
            let spec = specs[(rng.next_u64() % specs.len() as u64) as usize];
            let cfg = if rng.next_u64().is_multiple_of(2) {
                SessionConfig::batch()
            } else {
                SessionConfig::windowed(4 + (rng.next_u64() % 12) as usize)
            };
            let n = 20 + (rng.next_u64() % 50) as usize;
            let ops = random_ops(&mut rng, n);
            let b = build(spec);

            // Uninterrupted reference.
            let mut cont = b.open_with(cfg).unwrap();
            apply_ops(&mut *cont, &ops);
            let expected = cont.finish_full().unwrap();

            // Live run with a checkpoint at a random op index: persist
            // the snapshot, compact the journal to the tail.
            let cut = (rng.next_u64() % (ops.len() as u64 + 1)) as usize;
            let mut live = JournaledSession::new(b.open_with(cfg).unwrap());
            apply_ops(&mut live, &ops[..cut]);
            let checkpoint =
                Snapshot::from_json(&Snapshot::capture(&**live.inner()).to_json()).unwrap();
            let cursor = live.journal().len();
            live.compact(cursor);
            apply_ops(&mut live, &ops[cut..]);
            let (_, tail) = live.into_parts();

            // Crash: recover from checkpoint + tail only.
            let tail = SessionJournal::from_json(&tail.to_json()).unwrap();
            let mut rec = b.open_with(cfg).unwrap();
            checkpoint.restore(&mut *rec).unwrap();
            replay_journal_tail(&mut rec, &tail, 0).unwrap();
            assert_eq!(
                rec.finish_full().unwrap(),
                expected,
                "round {round}: {spec} cut {cut}/{}",
                ops.len()
            );
        }
    }
}
