//! Uniform execution-backend abstraction and the experiment-sweep harness.
//!
//! The paper's evaluation is a head-to-head comparison of dependence
//! managers: the Picos hardware model in its three HIL modes, the Nanos++
//! software runtime, and the zero-overhead perfect scheduler. This crate
//! puts all of them behind one trait, [`ExecBackend`], so every experiment
//! — figure binaries, the CLI, integration tests — drives engines through
//! the same `trace -> report` interface, and builds the [`Sweep`] harness
//! on top: a declarative experiment grid (workloads × workers × backends ×
//! DM designs × instance counts) whose cells execute in parallel on OS
//! threads with deterministic result ordering.
//!
//! See `ARCHITECTURE.md` at the repository root for the crate layering and
//! a walkthrough of adding a new backend.
//!
//! # Quick example
//!
//! ```
//! use picos_backend::{BackendSpec, Sweep};
//! use picos_trace::gen::App;
//!
//! let result = Sweep::over_apps([App::Cholesky], [256])
//!     .workers([4])
//!     .backends([BackendSpec::Perfect, BackendSpec::Nanos])
//!     .run();
//! assert_eq!(result.rows().len(), 2);
//! let perfect = &result.rows()[0];
//! assert!(perfect.error.is_none() && perfect.speedup >= 1.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod backends;
pub mod par;
mod sweep;

pub use backends::{
    BackendError, BackendSpec, ClusterBackend, ExecBackend, PerfectBackend, PicosBackend,
    SoftwareBackend,
};
pub use sweep::{Sweep, SweepCell, SweepResult, SweepRow, Workload};
