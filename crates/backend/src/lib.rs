//! Uniform execution-backend abstraction, streaming sessions and the
//! experiment-sweep harness.
//!
//! The paper's evaluation is a head-to-head comparison of dependence
//! managers: the Picos hardware model in its three HIL modes, the Nanos++
//! software runtime, the zero-overhead perfect scheduler and the sharded
//! cluster. This crate puts all of them behind one trait, [`ExecBackend`],
//! whose primary interface is the incremental, backpressure-aware
//! [`SimSession`] (`open` → `submit`/`barrier`/`advance_to`/`step` →
//! `finish`); the batch `run(&Trace)` entry points are default methods
//! over sessions. On top sit the [`Sweep`] harness — a declarative
//! experiment grid (workloads × workers × backends × DM designs ×
//! instance counts) whose cells execute in parallel on OS threads with
//! deterministic result ordering — and the open-loop paced driver
//! ([`pace`]).
//!
//! See `ARCHITECTURE.md` at the repository root for the crate layering,
//! the session sequence diagram and a walkthrough of adding a new backend.
//!
//! # Quick example
//!
//! ```
//! use picos_backend::{BackendSpec, Sweep};
//! use picos_trace::gen::App;
//!
//! let result = Sweep::over_apps([App::Cholesky], [256])
//!     .workers([4])
//!     .backends([BackendSpec::Perfect, BackendSpec::Nanos])
//!     .run();
//! assert_eq!(result.rows().len(), 2);
//! let perfect = &result.rows()[0];
//! assert!(perfect.error.is_none() && perfect.speedup >= 1.0);
//! ```
//!
//! # Streaming a session
//!
//! ```
//! use picos_backend::{Admission, BackendSpec, SessionCore};
//! use picos_core::PicosConfig;
//! use picos_trace::gen;
//!
//! let trace = gen::synthetic(gen::Case::Case1);
//! let backend = BackendSpec::Picos(picos_hil::HilMode::HwOnly)
//!     .build(4, &PicosConfig::balanced());
//! let mut session = backend.open()?;
//! for task in trace.iter() {
//!     while session.submit(task) == Admission::Backpressured {
//!         // step() returns false when the session cannot progress —
//!         // treat that as a stall instead of spinning.
//!         assert!(session.step(), "session stalled");
//!     }
//! }
//! let (report, stats) = session.finish()?;
//! assert_eq!(report.order.len(), trace.len());
//! assert!(stats.is_some());
//! # Ok::<(), picos_backend::BackendError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod backends;
pub mod pace;
pub mod par;
mod session;
mod snap;
mod sweep;

pub use backends::{
    BackendBuilder, BackendError, BackendSpec, ClusterBackend, ExecBackend, PerfectBackend,
    PicosBackend, SoftwareBackend,
};
pub use pace::{
    run_paced, run_paced_full, run_paced_with_telemetry, ArrivalTrace, PaceReport, PacedTask,
    PacedTrace, TraceSource,
};
pub use picos_cluster::{FaultCounters, FaultPlan, ShardPause, WorkerFault};
pub use picos_metrics::{
    MergeRule, Metric, MetricSet, MetricValue, SeriesKind, SeriesSpec, Timeline,
};
pub use session::{
    feed_trace, Admission, FeedStall, SessionConfig, SessionCore, SessionOutput, SimEvent,
    SimSession,
};
pub use snap::Snapshot;
pub use sweep::{Sweep, SweepCell, SweepResult, SweepRow, Workload};
