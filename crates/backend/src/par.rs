//! Minimal scoped-thread parallel map.
//!
//! The build environment has no crates.io access, so instead of `rayon`
//! the sweep harness fans work out with `std::thread::scope`: a shared
//! atomic cursor hands item indices to worker threads, and each result is
//! written back into its item's slot. Output order therefore equals input
//! order regardless of thread count or scheduling — the property the
//! sweep determinism guarantee rests on.
//!
//! Result slots are write-once `Option<R>` cells behind a
//! [`DisjointSlice`] (see `picos_runtime::par`), not `Mutex<Option<R>>`:
//! the cursor already guarantees each index is claimed by exactly one
//! thread, so the per-item lock/unlock round trip was pure churn on
//! sweeps with many tiny cells. The same primitive backs the cluster's
//! epoch-parallel shard lanes.

use picos_runtime::par::DisjointSlice;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Applies `f` to every item, using up to `threads` OS threads, and
/// returns the results in input order.
///
/// `f` receives `(index, &item)`. With `threads <= 1` (or a single item)
/// the map runs inline on the caller's thread with no synchronisation.
///
/// # Panics
///
/// Panics if a worker thread panics (the panic is propagated).
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    // `Option<R>` (not bare `MaybeUninit<R>`) keeps the unwind path clean:
    // if a worker panics, the slots vector still drops every result that
    // was already written.
    let mut out: Vec<Option<R>> = Vec::with_capacity(items.len());
    out.resize_with(items.len(), || None);
    let slots = DisjointSlice::new(&mut out);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            handles.push(scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let r = f(i, item);
                // SAFETY: the cursor hands index `i` to exactly one
                // thread, so no other thread touches this slot; the
                // scoped join below publishes the write to the caller.
                unsafe { *slots.get(i) = Some(r) };
            }));
        }
        for h in handles {
            if let Err(p) = h.join() {
                std::panic::resume_unwind(p);
            }
        }
    });
    out.into_iter()
        .map(|s| s.expect("every index visited exactly once"))
        .collect()
}

/// The default worker-thread count: the machine's available parallelism.
pub fn default_threads() -> usize {
    picos_runtime::par::available_threads()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        for threads in [1, 2, 7, 64] {
            let out = par_map(&items, threads, |i, &x| {
                assert_eq!(i as u64, x);
                x * 2
            });
            assert_eq!(
                out,
                items.iter().map(|x| x * 2).collect::<Vec<_>>(),
                "{threads}"
            );
        }
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(&empty, 8, |_, &x| x).is_empty());
        assert_eq!(par_map(&[41u32], 8, |_, &x| x + 1), vec![42]);
    }

    #[test]
    fn actually_runs_on_multiple_threads() {
        use std::collections::HashSet;
        let items: Vec<u32> = (0..64).collect();
        let ids = Mutex::new(HashSet::new());
        par_map(&items, 4, |_, _| {
            ids.lock().unwrap().insert(std::thread::current().id());
            std::thread::sleep(std::time::Duration::from_millis(1));
        });
        assert!(
            ids.into_inner().unwrap().len() > 1,
            "expected >1 worker thread"
        );
    }

    #[test]
    fn results_with_heap_allocations_survive() {
        // The write-once slots must move owned values intact across the
        // thread boundary (this used to go through a Mutex).
        let items: Vec<u32> = (0..50).collect();
        let out = par_map(&items, 4, |i, &x| vec![x; i % 3 + 1]);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(v.len(), i % 3 + 1);
            assert!(v.iter().all(|&x| x == i as u32));
        }
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panic_propagates() {
        let items: Vec<u32> = (0..8).collect();
        par_map(&items, 4, |i, _| {
            if i == 3 {
                panic!("boom");
            }
        });
    }
}
