//! The [`ExecBackend`] trait and its engine families.
//!
//! One implementation per execution engine of the paper's evaluation:
//!
//! * [`PerfectBackend`] — the zero-overhead list scheduler (roofline),
//! * [`SoftwareBackend`] — the Nanos++-like software runtime model,
//! * [`PicosBackend`] — the HIL platform around the Picos core, one
//!   instance per [`HilMode`],
//! * [`ClusterBackend`] — N Picos shards with distributed dependence
//!   management over an explicit interconnect (`picos_cluster`).
//!
//! [`BackendSpec`] is the declarative, copyable counterpart used by sweep
//! grids and command lines; [`BackendBuilder`] is the one construction
//! path from a spec to a boxed backend.

use crate::session::{feed_trace, SessionConfig, SessionOutput, SimSession};
use picos_cluster::{ClusterConfig, ClusterError, ClusterSession, FaultPlan, ShardPolicy};
use picos_core::{PicosConfig, Stats};
use picos_hil::{HilConfig, HilError, HilMode, HilSession, LinkModel};
use picos_runtime::{ExecReport, PerfectSession, SoftwareSession, SwError, SwRuntimeConfig};
use picos_trace::Trace;
use std::fmt;

/// Error from running a backend on a trace.
///
/// Every engine family folds its failure modes into this one type so sweep
/// cells and CLI commands handle them uniformly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackendError {
    /// The HIL platform stalled (see [`HilError`]).
    Hil(HilError),
    /// The software runtime failed (see [`SwError`]).
    Software(SwError),
    /// The cluster model failed (see [`ClusterError`]).
    Cluster(ClusterError),
    /// Backend-specific configuration problem.
    Config(String),
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendError::Hil(e) => write!(f, "picos backend: {e}"),
            BackendError::Software(e) => write!(f, "software backend: {e}"),
            BackendError::Cluster(e) => write!(f, "cluster backend: {e}"),
            BackendError::Config(m) => write!(f, "backend configuration: {m}"),
        }
    }
}

impl std::error::Error for BackendError {}

impl From<HilError> for BackendError {
    fn from(e: HilError) -> Self {
        BackendError::Hil(e)
    }
}

impl From<SwError> for BackendError {
    fn from(e: SwError) -> Self {
        BackendError::Software(e)
    }
}

impl From<ClusterError> for BackendError {
    fn from(e: ClusterError) -> Self {
        BackendError::Cluster(e)
    }
}

/// A uniform execution engine: opens incremental, backpressure-aware
/// [`SimSession`]s.
///
/// The session is the primary interface — the runtime submits tasks as it
/// discovers them, handles [`Admission::Backpressured`](crate::Admission)
/// when the engine's in-flight window is saturated, advances simulated
/// time, drains [`SimEvent`](crate::SimEvent)s and finishes to collect the
/// report. The batch entry points [`ExecBackend::run`] /
/// [`ExecBackend::run_with_stats`] are **default methods** implemented on
/// top of a session (feed the whole trace, then finish), so every engine
/// has exactly one execution core.
///
/// All engines of the reproduction — hardware model, software runtime,
/// perfect scheduler, sharded cluster — implement this trait, which is
/// what lets the [`crate::Sweep`] harness, the figure binaries, the paced
/// driver ([`crate::pace`]) and the cross-engine tests treat them
/// interchangeably. Implementations must be `Send + Sync` (sweeps run
/// cells on OS threads) and deterministic: the same submissions and
/// configuration must yield the same report on every call.
pub trait ExecBackend: Send + Sync + fmt::Debug {
    /// Stable engine label (e.g. `"perfect"`, `"nanos"`, `"picos-full"`);
    /// matches the `engine` field of the reports this backend produces.
    fn name(&self) -> String;

    /// Number of workers this backend executes tasks with.
    fn workers(&self) -> usize;

    /// Opens a streaming session with explicit per-session knobs
    /// (in-flight window, event collection).
    ///
    /// # Errors
    ///
    /// Returns a [`BackendError`] when the engine configuration is invalid
    /// (e.g. zero workers).
    fn open_with(&self, cfg: SessionConfig) -> Result<Box<dyn SimSession>, BackendError>;

    /// Opens a streaming session with batch-equivalent defaults
    /// (unbounded window, no event collection).
    ///
    /// # Errors
    ///
    /// See [`ExecBackend::open_with`].
    fn open(&self) -> Result<Box<dyn SimSession>, BackendError> {
        self.open_with(SessionConfig::batch())
    }

    /// Runs the trace to completion: opens a session, feeds every task in
    /// creation order (declaring the trace's taskwaits) and finishes it.
    ///
    /// # Errors
    ///
    /// Returns a [`BackendError`] when the engine cannot complete the
    /// trace (stall, deadlock, invalid configuration).
    fn run(&self, trace: &Trace) -> Result<ExecReport, BackendError> {
        self.run_with_stats(trace).map(|(r, _)| r)
    }

    /// Runs the trace and also returns the hardware counters, when the
    /// backend models Picos. Like [`ExecBackend::run`], a session drive.
    ///
    /// # Errors
    ///
    /// Same as [`ExecBackend::run`].
    fn run_with_stats(&self, trace: &Trace) -> Result<(ExecReport, Option<Stats>), BackendError> {
        let mut session = self.open()?;
        feed_trace(&mut *session, trace).map_err(|e| BackendError::Config(e.to_string()))?;
        session.finish()
    }

    /// Runs the trace under explicit session knobs and returns everything
    /// the run produced — report, hardware counters, the cycle-windowed
    /// [`Timeline`](picos_metrics::Timeline) (when
    /// [`SessionConfig::timeline_window`] is set) and the labeled metrics
    /// registry. Telemetry is observation-only: the report and counters
    /// are bit-identical to [`ExecBackend::run_with_stats`].
    ///
    /// # Errors
    ///
    /// Same as [`ExecBackend::run`].
    fn run_with_telemetry(
        &self,
        trace: &Trace,
        cfg: SessionConfig,
    ) -> Result<SessionOutput, BackendError> {
        let mut session = self.open_with(cfg)?;
        feed_trace(&mut *session, trace).map_err(|e| BackendError::Config(e.to_string()))?;
        session.finish_full()
    }
}

/// The perfect simulator: zero-overhead list scheduling (paper Section IV-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PerfectBackend {
    /// Number of workers.
    pub workers: usize,
}

impl ExecBackend for PerfectBackend {
    fn name(&self) -> String {
        "perfect".into()
    }

    fn workers(&self) -> usize {
        self.workers
    }

    fn open_with(&self, cfg: SessionConfig) -> Result<Box<dyn SimSession>, BackendError> {
        // PerfectSession rejects zero workers; surface it as an error row
        // like the other backends so sweep cells never panic.
        PerfectSession::new(self.workers, cfg)
            .map(|s| Box::new(s) as Box<dyn SimSession>)
            .map_err(BackendError::Config)
    }
}

/// The Nanos++-like software runtime model (paper Section IV-C, Figure 10).
#[derive(Debug, Clone, Copy)]
pub struct SoftwareBackend {
    /// Runtime configuration (worker count, cost model).
    pub cfg: SwRuntimeConfig,
}

impl SoftwareBackend {
    /// Default software runtime with `workers` threads.
    pub fn with_workers(workers: usize) -> Self {
        SoftwareBackend {
            cfg: SwRuntimeConfig::with_workers(workers),
        }
    }
}

impl ExecBackend for SoftwareBackend {
    fn name(&self) -> String {
        "nanos".into()
    }

    fn workers(&self) -> usize {
        self.cfg.workers
    }

    fn open_with(&self, cfg: SessionConfig) -> Result<Box<dyn SimSession>, BackendError> {
        SoftwareSession::new(self.cfg, cfg)
            .map(|s| Box::new(s) as Box<dyn SimSession>)
            .map_err(BackendError::from)
    }
}

/// The Picos HIL platform in one of its three modes (paper Section IV-B).
#[derive(Debug, Clone)]
pub struct PicosBackend {
    /// Operational mode (HW-only, HW+comm, Full-system).
    pub mode: HilMode,
    /// Platform configuration (Picos core config, workers, cost model).
    pub cfg: HilConfig,
}

impl PicosBackend {
    /// Balanced-configuration Picos platform with `workers` workers.
    pub fn balanced(mode: HilMode, workers: usize) -> Self {
        PicosBackend {
            mode,
            cfg: HilConfig::balanced(workers),
        }
    }
}

impl ExecBackend for PicosBackend {
    fn name(&self) -> String {
        self.mode.engine_label().into()
    }

    fn workers(&self) -> usize {
        self.cfg.workers
    }

    fn open_with(&self, cfg: SessionConfig) -> Result<Box<dyn SimSession>, BackendError> {
        HilSession::new(self.mode, self.cfg.clone(), cfg)
            .map(|s| Box::new(s) as Box<dyn SimSession>)
            .map_err(BackendError::Config)
    }
}

/// The sharded multi-Picos cluster (`picos_cluster`): N full accelerators
/// with address-sharded dependence management over an explicit
/// interconnect. A one-shard cluster is cycle-identical to
/// [`HilMode::HwOnly`].
#[derive(Debug, Clone)]
pub struct ClusterBackend {
    /// Complete cluster configuration (shards, placement policy, per-shard
    /// core, worker total, interconnect).
    pub cfg: ClusterConfig,
}

impl ClusterBackend {
    /// Balanced-core cluster of `shards` shards sharing `workers` workers.
    pub fn balanced(shards: usize, workers: usize) -> Self {
        ClusterBackend {
            cfg: ClusterConfig::balanced(shards, workers),
        }
    }
}

impl ExecBackend for ClusterBackend {
    fn name(&self) -> String {
        "cluster".into()
    }

    fn workers(&self) -> usize {
        self.cfg.workers
    }

    fn open_with(&self, cfg: SessionConfig) -> Result<Box<dyn SimSession>, BackendError> {
        ClusterSession::new(self.cfg.clone(), cfg)
            .map(|s| Box::new(s) as Box<dyn SimSession>)
            .map_err(BackendError::from)
    }
}

/// Declarative backend selector: which engine family a sweep cell or a CLI
/// invocation runs. `Copy`, orderable and parseable, unlike the boxed
/// backends it builds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BackendSpec {
    /// Zero-overhead perfect scheduler.
    Perfect,
    /// Nanos++ software runtime.
    Nanos,
    /// Picos HIL platform in the given mode.
    Picos(HilMode),
    /// Sharded multi-Picos cluster with the given shard count.
    Cluster(usize),
}

impl BackendSpec {
    /// Every backend family, paper order: perfect, nanos, the three HIL
    /// modes from raw hardware to full system, then the one-shard cluster
    /// (the sharded model's degenerate point, cycle-identical to HW-only).
    pub const ALL: [BackendSpec; 6] = [
        BackendSpec::Perfect,
        BackendSpec::Nanos,
        BackendSpec::Picos(HilMode::HwOnly),
        BackendSpec::Picos(HilMode::HwComm),
        BackendSpec::Picos(HilMode::FullSystem),
        BackendSpec::Cluster(1),
    ];

    /// The three Picos HIL modes only.
    pub const PICOS_ALL: [BackendSpec; 3] = [
        BackendSpec::Picos(HilMode::HwOnly),
        BackendSpec::Picos(HilMode::HwComm),
        BackendSpec::Picos(HilMode::FullSystem),
    ];

    /// Stable label; equals the `engine` field of the reports the built
    /// backend produces.
    pub fn label(self) -> &'static str {
        match self {
            BackendSpec::Perfect => "perfect",
            BackendSpec::Nanos => "nanos",
            BackendSpec::Picos(mode) => mode.engine_label(),
            BackendSpec::Cluster(_) => "cluster",
        }
    }

    /// Whether this spec builds a Picos hardware backend (and therefore
    /// responds to the DM design / instance-count axes of a sweep).
    pub fn is_picos(self) -> bool {
        matches!(self, BackendSpec::Picos(_))
    }

    /// Whether this spec builds its engine around the Picos core and
    /// therefore responds to the DM design / instance-count axes of a
    /// sweep (the HIL backends and the cluster, whose shards each embed a
    /// full core configuration).
    pub fn uses_picos_config(self) -> bool {
        matches!(self, BackendSpec::Picos(_) | BackendSpec::Cluster(_))
    }

    /// Shard count of this spec: the cluster's configured count, 1 for
    /// every single-accelerator family (the `shards` column of result
    /// files).
    pub fn shards(self) -> usize {
        match self {
            BackendSpec::Cluster(n) => n,
            _ => 1,
        }
    }

    /// Parses a backend name as used by the CLI: the short engine names
    /// (`perfect`, `nanos`, `hw-only`, `hw-comm`, `full`, `cluster`) and
    /// the report labels (`picos-hw-only`, ...) are both accepted; `hil`
    /// is an alias for the full HIL platform (`picos-full`). `cluster`
    /// parses to one shard; shard counts are a separate axis (`--shards`,
    /// [`Sweep`](crate::Sweep) backends list).
    pub fn parse(s: &str) -> Option<BackendSpec> {
        match s {
            "perfect" => Some(BackendSpec::Perfect),
            "nanos" | "software" => Some(BackendSpec::Nanos),
            "hw-only" | "picos-hw-only" => Some(BackendSpec::Picos(HilMode::HwOnly)),
            "hw-comm" | "picos-hw-comm" => Some(BackendSpec::Picos(HilMode::HwComm)),
            "full" | "picos-full" | "picos" | "hil" => {
                Some(BackendSpec::Picos(HilMode::FullSystem))
            }
            "cluster" => Some(BackendSpec::Cluster(1)),
            _ => None,
        }
    }

    /// Starts the one construction path from a spec to a boxed backend;
    /// refine with the [`BackendBuilder`] methods and finish with
    /// [`BackendBuilder::build`]. The CLI and the sweep harness both build
    /// through here, so they cannot drift.
    pub fn builder(self, workers: usize) -> BackendBuilder {
        BackendBuilder {
            spec: self,
            workers,
            picos: None,
            link: None,
            policy: None,
            threads: None,
            faults: None,
        }
    }

    /// Builds the boxed backend for a concrete worker count and Picos core
    /// configuration (ignored by the non-Picos families), with the default
    /// inter-shard interconnect for the cluster family.
    pub fn build(self, workers: usize, picos: &PicosConfig) -> Box<dyn ExecBackend> {
        self.builder(workers).picos(picos).build()
    }

    /// Like [`BackendSpec::build`], with an explicit interconnect cost
    /// model for the cluster family (the other families ignore it).
    pub fn build_with_link(
        self,
        workers: usize,
        picos: &PicosConfig,
        link: LinkModel,
    ) -> Box<dyn ExecBackend> {
        self.builder(workers).picos(picos).link(Some(link)).build()
    }
}

impl fmt::Display for BackendSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The single builder behind every [`BackendSpec`] construction: worker
/// count plus the optional Picos core configuration, interconnect model
/// and cluster placement policy. Knobs a family does not use are ignored,
/// so one code path serves the CLI, the sweep harness and the tests.
#[derive(Debug, Clone)]
pub struct BackendBuilder {
    spec: BackendSpec,
    workers: usize,
    picos: Option<PicosConfig>,
    link: Option<LinkModel>,
    policy: Option<ShardPolicy>,
    threads: Option<usize>,
    faults: Option<FaultPlan>,
}

impl BackendBuilder {
    /// Sets the Picos core configuration (HIL and cluster families; the
    /// balanced configuration when unset).
    pub fn picos(mut self, cfg: &PicosConfig) -> Self {
        self.picos = Some(cfg.clone());
        self
    }

    /// Sets the inter-shard interconnect cost model (cluster family;
    /// `None` keeps the default interconnect).
    pub fn link(mut self, link: Option<LinkModel>) -> Self {
        self.link = link;
        self
    }

    /// Sets the task-placement policy (cluster family; `None` keeps the
    /// default).
    pub fn policy(mut self, policy: Option<ShardPolicy>) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the cluster family's simulation thread count (`None` or `1`
    /// keeps the serial reference engine; values above one drive the
    /// shards with the conservative-parallel epoch engine, bit-identical
    /// to serial). Rejected at construction if it exceeds the shard count.
    pub fn threads(mut self, threads: Option<usize>) -> Self {
        self.threads = threads;
        self
    }

    /// Attaches a deterministic fault schedule (cluster family; the other
    /// families have no interconnect to fault and ignore it, like the
    /// link/policy/threads knobs). A zero-fault plan is bit-identical to
    /// `None`; an invalid plan surfaces as a configuration error when the
    /// session opens.
    pub fn faults(mut self, faults: Option<FaultPlan>) -> Self {
        self.faults = faults;
        self
    }

    /// Builds the boxed backend.
    pub fn build(self) -> Box<dyn ExecBackend> {
        let picos = self.picos.unwrap_or_else(PicosConfig::balanced);
        match self.spec {
            BackendSpec::Perfect => Box::new(PerfectBackend {
                workers: self.workers,
            }),
            BackendSpec::Nanos => Box::new(SoftwareBackend::with_workers(self.workers)),
            BackendSpec::Picos(mode) => Box::new(PicosBackend {
                mode,
                cfg: HilConfig {
                    picos,
                    ..HilConfig::balanced(self.workers)
                },
            }),
            BackendSpec::Cluster(shards) => {
                let mut cfg = ClusterConfig {
                    picos,
                    ..ClusterConfig::balanced(shards, self.workers)
                };
                if let Some(link) = self.link {
                    cfg.link = link;
                }
                if let Some(policy) = self.policy {
                    cfg.policy = policy;
                }
                if let Some(threads) = self.threads {
                    cfg.threads = threads;
                }
                cfg.faults = self.faults;
                Box::new(ClusterBackend { cfg })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use picos_trace::gen;

    #[test]
    fn labels_match_report_engine_field() {
        let tr = gen::synthetic(gen::Case::Case1);
        for spec in BackendSpec::ALL {
            let b = spec.build(4, &PicosConfig::balanced());
            let r = b.run(&tr).unwrap();
            assert_eq!(r.engine, spec.label(), "{spec:?}");
            assert_eq!(b.name(), spec.label());
            assert_eq!(b.workers(), 4);
            assert_eq!(r.workers, 4);
        }
    }

    #[test]
    fn parse_accepts_cli_and_report_names() {
        assert_eq!(BackendSpec::parse("perfect"), Some(BackendSpec::Perfect));
        assert_eq!(BackendSpec::parse("nanos"), Some(BackendSpec::Nanos));
        for spec in BackendSpec::ALL {
            assert_eq!(BackendSpec::parse(spec.label()), Some(spec));
        }
        assert_eq!(
            BackendSpec::parse("full"),
            Some(BackendSpec::Picos(HilMode::FullSystem))
        );
        assert_eq!(BackendSpec::parse("bogus"), None);
    }

    #[test]
    fn stats_only_from_picos() {
        let tr = gen::synthetic(gen::Case::Case2);
        let cfg = PicosConfig::balanced();
        let (_, stats) = BackendSpec::Perfect
            .build(4, &cfg)
            .run_with_stats(&tr)
            .unwrap();
        assert!(stats.is_none());
        let (_, stats) = BackendSpec::Picos(HilMode::HwOnly)
            .build(4, &cfg)
            .run_with_stats(&tr)
            .unwrap();
        let stats = stats.expect("picos reports hardware counters");
        assert_eq!(stats.tasks_completed as usize, tr.len());
    }

    #[test]
    fn zero_workers_errors_on_every_backend() {
        // Every family must report zero workers as an error row input, not
        // panic (the sweep harness promises cells never panic).
        let tr = gen::synthetic(gen::Case::Case1);
        for spec in BackendSpec::ALL {
            let r = spec.build(0, &PicosConfig::balanced()).run(&tr);
            assert!(
                matches!(
                    r,
                    Err(BackendError::Config(_))
                        | Err(BackendError::Software(_))
                        | Err(BackendError::Cluster(_))
                ),
                "{spec}: zero workers must be an error, got {r:?}"
            );
        }
    }

    #[test]
    fn error_display_covers_variants() {
        let e = BackendError::Config("bad".into());
        assert!(e.to_string().contains("bad"));
        let e: BackendError = SwError::Config("zero workers".into()).into();
        assert!(e.to_string().contains("zero workers"));
        let e: BackendError = ClusterError::Config("shardless".into()).into();
        assert!(e.to_string().contains("shardless"));
    }

    #[test]
    fn cluster_spec_shards_and_axes() {
        assert_eq!(BackendSpec::Cluster(4).shards(), 4);
        assert_eq!(BackendSpec::Perfect.shards(), 1);
        assert_eq!(BackendSpec::Cluster(4).label(), "cluster");
        assert!(BackendSpec::Cluster(4).uses_picos_config());
        assert!(!BackendSpec::Cluster(4).is_picos());
        assert!(BackendSpec::Picos(HilMode::HwOnly).uses_picos_config());
        assert_eq!(BackendSpec::parse("cluster"), Some(BackendSpec::Cluster(1)));
    }

    #[test]
    fn cluster_backend_reports_merged_hw_counters() {
        let tr = gen::synthetic(gen::Case::Case2);
        let (r, stats) = BackendSpec::Cluster(2)
            .build(4, &PicosConfig::balanced())
            .run_with_stats(&tr)
            .unwrap();
        let stats = stats.expect("cluster reports hardware counters");
        assert_eq!(stats.tasks_completed as usize, tr.len());
        assert_eq!(r.engine, "cluster");
        r.validate(&tr).unwrap();
    }

    #[test]
    fn builder_sets_cluster_policy_and_link() {
        let slow = LinkModel {
            occupancy: 5_000,
            latency: 9_000,
            setup: 0,
            width: 1,
        };
        let tr = gen::sparselu(gen::SparseLuConfig::paper(128));
        let fast = BackendSpec::Cluster(4)
            .builder(8)
            .policy(Some(ShardPolicy::RoundRobin))
            .build()
            .run(&tr)
            .unwrap();
        let slowed = BackendSpec::Cluster(4)
            .builder(8)
            .policy(Some(ShardPolicy::RoundRobin))
            .link(Some(slow))
            .build()
            .run(&tr)
            .unwrap();
        assert!(slowed.makespan > fast.makespan, "link knob must bite");
        // Non-cluster families ignore the cluster knobs.
        let a = BackendSpec::Perfect.builder(4).build().run(&tr).unwrap();
        let b = BackendSpec::Perfect
            .builder(4)
            .link(Some(slow))
            .policy(Some(ShardPolicy::RoundRobin))
            .build()
            .run(&tr)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn builder_threads_knob_is_bit_identical_and_validated() {
        let tr = gen::stream(gen::StreamConfig::heavy(400));
        let serial = BackendSpec::Cluster(4)
            .builder(8)
            .build()
            .run_with_stats(&tr)
            .unwrap();
        let parallel = BackendSpec::Cluster(4)
            .builder(8)
            .threads(Some(4))
            .build()
            .run_with_stats(&tr)
            .unwrap();
        assert_eq!(serial, parallel);
        // threads > shards is a configuration error, surfaced at open.
        let err = BackendSpec::Cluster(2)
            .builder(8)
            .threads(Some(3))
            .build()
            .run(&tr)
            .unwrap_err();
        assert!(
            err.to_string()
                .contains("3 simulation threads exceed 2 shards"),
            "unhelpful error: {err}"
        );
        // Non-cluster families ignore the knob.
        let a = BackendSpec::Perfect.builder(4).build().run(&tr).unwrap();
        let b = BackendSpec::Perfect
            .builder(4)
            .threads(Some(64))
            .build()
            .run(&tr)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn builder_faults_knob_zero_plan_is_identity_and_faulty_runs_terminate() {
        let tr = gen::stream(gen::StreamConfig::heavy(200));
        let base = BackendSpec::Cluster(4)
            .builder(8)
            .build()
            .run_with_stats(&tr)
            .unwrap();
        let zero = BackendSpec::Cluster(4)
            .builder(8)
            .faults(Some(FaultPlan::new(11)))
            .build()
            .run_with_stats(&tr)
            .unwrap();
        assert_eq!(base, zero, "zero-fault plan must be bit-identical");
        // A lossy link either completes (retries absorbed the drops) or
        // surfaces the typed timeout — never a stall or a panic.
        let faulty = BackendSpec::Cluster(4)
            .builder(8)
            .faults(Some(FaultPlan::new(7).with_drop_rate(0.2)))
            .build()
            .run(&tr);
        match faulty {
            Ok(r) => r.validate(&tr).unwrap(),
            Err(BackendError::Cluster(ClusterError::LinkTimeout { .. })) => {}
            other => panic!("faulted run must terminate typed, got {other:?}"),
        }
        // Non-cluster families ignore the knob.
        let a = BackendSpec::Perfect.builder(4).build().run(&tr).unwrap();
        let b = BackendSpec::Perfect
            .builder(4)
            .faults(Some(FaultPlan::new(1).with_drop_rate(0.5)))
            .build()
            .run(&tr)
            .unwrap();
        assert_eq!(a, b);
        // An invalid plan is a configuration error at open, not a panic.
        let err = BackendSpec::Cluster(2)
            .builder(4)
            .faults(Some(FaultPlan::new(1).with_drop_rate(1.5)))
            .build()
            .run(&tr)
            .unwrap_err();
        assert!(
            matches!(err, BackendError::Cluster(ClusterError::Config(_))),
            "bad plan must surface as config error, got {err:?}"
        );
    }

    #[test]
    fn open_sessions_are_live_across_backends() {
        // Open a session on every family, submit a couple of tasks and
        // finish: the streamed result must match the batch run.
        let tr = gen::synthetic(gen::Case::Case1);
        for spec in BackendSpec::ALL {
            let b = spec.build(4, &PicosConfig::balanced());
            let batch = b.run_with_stats(&tr).unwrap();
            let mut s = b.open().unwrap();
            feed_trace(&mut *s, &tr).unwrap();
            let streamed = s.finish().unwrap();
            assert_eq!(batch, streamed, "{spec}");
        }
    }
}
