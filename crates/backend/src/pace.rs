//! Open-loop paced driving of streaming sessions.
//!
//! The batch driver feeds a whole trace as fast as the engine admits it;
//! this module drives a session the way sustained traffic would: tasks
//! *arrive* on a clock that does not depend on how fast the system drains
//! them (open loop). [`run_paced`] advances the session to each arrival
//! cycle, submits, and rides out [`Admission::Backpressured`] by stepping
//! the simulation — the per-run [`PaceReport`] then tells whether the
//! engine kept up (achieved vs offered rate) and how often the in-flight
//! window pushed back.

use crate::backends::{BackendError, ExecBackend};
use crate::session::{Admission, SessionConfig};
use picos_core::Stats;
use picos_metrics::span::SpanLog;
use picos_metrics::{MergeRule, MetricSet, SeriesSpec, Timeline, WindowSampler};
use picos_runtime::ExecReport;
use picos_trace::{TaskDescriptor, Trace};

/// One item of an arrival stream: a task, its arrival cycle and whether an
/// OmpSs taskwait precedes it.
#[derive(Debug, Clone)]
pub struct PacedTask {
    /// The task to submit.
    pub task: TaskDescriptor,
    /// Cycle the task arrives (nondecreasing across the stream).
    pub arrival: u64,
    /// Whether a taskwait must be declared before this task.
    pub barrier_before: bool,
}

/// A stream of tasks with arrival times: anything that can feed a paced
/// session — a trace at a fixed rate ([`PacedTrace`]), a trace with
/// explicit per-task arrivals ([`ArrivalTrace`]), or a custom generator.
pub trait TraceSource {
    /// The next arrival, or `None` when the stream ends. Arrivals must be
    /// nondecreasing and tasks must come in creation order.
    fn next_paced(&mut self) -> Option<PacedTask>;
}

/// A trace offered at a fixed open-loop rate: task `i` arrives at
/// `i * interarrival` cycles (taskwaits are preserved as barriers).
#[derive(Debug, Clone)]
pub struct PacedTrace<'a> {
    trace: &'a Trace,
    interarrival: u64,
    next: usize,
    /// Cursor into the sorted barrier list (avoids a per-task scan).
    next_barrier: usize,
}

impl<'a> PacedTrace<'a> {
    /// Offers `trace` at one task per `interarrival` cycles.
    pub fn new(trace: &'a Trace, interarrival: u64) -> Self {
        PacedTrace {
            trace,
            interarrival,
            next: 0,
            next_barrier: 0,
        }
    }
}

impl TraceSource for PacedTrace<'_> {
    fn next_paced(&mut self) -> Option<PacedTask> {
        let task = self.trace.tasks().get(self.next)?.clone();
        let barrier_before = barrier_at(self.trace, &mut self.next_barrier, self.next);
        let item = PacedTask {
            task,
            arrival: self.next as u64 * self.interarrival,
            barrier_before,
        };
        self.next += 1;
        Some(item)
    }
}

/// Advances the barrier cursor past position `i`; returns whether a
/// taskwait sits exactly before task `i` (barriers are sorted and
/// deduplicated, so this is a constant-time cursor walk).
fn barrier_at(trace: &Trace, cursor: &mut usize, i: usize) -> bool {
    match trace.barriers().get(*cursor) {
        Some(&b) if b as usize == i => {
            *cursor += 1;
            true
        }
        _ => false,
    }
}

/// A trace with an explicit arrival cycle per task (e.g. from
/// [`picos_trace::gen::stream_requests`]).
#[derive(Debug, Clone)]
pub struct ArrivalTrace<'a> {
    trace: &'a Trace,
    arrivals: &'a [u64],
    next: usize,
    /// Cursor into the sorted barrier list (avoids a per-task scan).
    next_barrier: usize,
}

impl<'a> ArrivalTrace<'a> {
    /// Pairs `trace` with one arrival cycle per task.
    ///
    /// # Panics
    ///
    /// Panics when the lengths differ.
    pub fn new(trace: &'a Trace, arrivals: &'a [u64]) -> Self {
        assert_eq!(trace.len(), arrivals.len(), "one arrival per task");
        ArrivalTrace {
            trace,
            arrivals,
            next: 0,
            next_barrier: 0,
        }
    }
}

impl TraceSource for ArrivalTrace<'_> {
    fn next_paced(&mut self) -> Option<PacedTask> {
        let task = self.trace.tasks().get(self.next)?.clone();
        let barrier_before = barrier_at(self.trace, &mut self.next_barrier, self.next);
        let item = PacedTask {
            task,
            arrival: self.arrivals[self.next],
            barrier_before,
        };
        self.next += 1;
        Some(item)
    }
}

/// Outcome of a paced run: the schedule report plus the driver-side
/// admission telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct PaceReport {
    /// The schedule, as from a batch run.
    pub report: ExecReport,
    /// Hardware counters, when the backend models Picos.
    pub stats: Option<Stats>,
    /// Tasks submitted (equals the source length; nothing is dropped).
    pub tasks: usize,
    /// Tasks whose first submission was backpressured.
    pub backpressured_tasks: usize,
    /// Total backpressured submission attempts.
    pub retries: u64,
    /// Arrival cycle of the last task (the offered-load horizon).
    pub last_arrival: u64,
    /// Cycle-windowed telemetry, when requested: the driver's own series
    /// (`pace.inflight`, `pace.backpressured`, `pace.retries` — windowed
    /// backpressure and in-flight occupancy on the arrival clock) stitched
    /// with the engine session's timeline.
    pub timeline: Option<Timeline>,
    /// Driver-side admission counters under the unified metrics
    /// vocabulary, including an in-flight occupancy histogram sampled at
    /// each arrival.
    pub metrics: MetricSet,
    /// Task-lifecycle span events, when the run was opened with
    /// [`SessionConfig::trace_spans`] (see [`run_paced_full`]). Recording
    /// order, like a batch session's output.
    pub spans: Option<SpanLog>,
}

impl PaceReport {
    /// Fraction of tasks that hit backpressure on first submission.
    pub fn backpressure_ratio(&self) -> f64 {
        if self.tasks == 0 {
            0.0
        } else {
            self.backpressured_tasks as f64 / self.tasks as f64
        }
    }

    /// Achieved throughput in tasks per kilocycle (over the makespan).
    pub fn achieved_per_kcycle(&self) -> f64 {
        if self.report.makespan == 0 {
            0.0
        } else {
            self.tasks as f64 * 1000.0 / self.report.makespan as f64
        }
    }

    /// Offered load in tasks per kilocycle (over the arrival horizon).
    pub fn offered_per_kcycle(&self) -> f64 {
        if self.last_arrival == 0 {
            0.0
        } else {
            self.tasks as f64 * 1000.0 / self.last_arrival as f64
        }
    }
}

/// Drives a [`TraceSource`] through a session of `backend` with the given
/// in-flight window: advance to each arrival, submit, and step the
/// simulation whenever the window pushes back. Finishes the session and
/// returns the [`PaceReport`].
///
/// # Errors
///
/// Propagates backend errors; reports a configuration error when a
/// backpressured session cannot make progress (a window smaller than a
/// barrier's prefix).
pub fn run_paced(
    backend: &dyn ExecBackend,
    source: impl TraceSource,
    window: Option<usize>,
) -> Result<PaceReport, BackendError> {
    run_paced_with_telemetry(backend, source, window, None)
}

/// [`run_paced`] with an optional cycle-windowed telemetry timeline: the
/// driver samples its own backpressure and in-flight occupancy on the
/// arrival clock, the session records its engine-side series, and the
/// report's timeline stitches both (driver series under the `pace.`
/// scope). Telemetry is observation-only — the schedule and admission
/// counts are identical to a plain [`run_paced`].
///
/// # Errors
///
/// See [`run_paced`].
pub fn run_paced_with_telemetry(
    backend: &dyn ExecBackend,
    source: impl TraceSource,
    window: Option<usize>,
    timeline_window: Option<u64>,
) -> Result<PaceReport, BackendError> {
    run_paced_full(
        backend,
        source,
        SessionConfig {
            window,
            timeline_window,
            ..SessionConfig::batch()
        },
    )
}

/// The full-config paced driver: every [`SessionConfig`] knob applies to
/// the open-loop session, including [`SessionConfig::trace_spans`] — a
/// paced run records the same task-lifecycle spans as a batch session, so
/// `--trace-out`/`--critical-path` work under pacing. The `window` field
/// is the paced in-flight cap ([`run_paced`]'s `window` argument).
///
/// # Errors
///
/// See [`run_paced`].
pub fn run_paced_full(
    backend: &dyn ExecBackend,
    mut source: impl TraceSource,
    cfg: SessionConfig,
) -> Result<PaceReport, BackendError> {
    let mut session = backend.open_with(cfg)?;
    let mut sampler = cfg.timeline_window.map(|w| {
        WindowSampler::new(
            w,
            vec![
                SeriesSpec::gauge("inflight"),
                SeriesSpec::delta("backpressured"),
                SeriesSpec::delta("retries"),
            ],
        )
    });
    let mut tasks = 0usize;
    let mut backpressured_tasks = 0usize;
    let mut retries = 0u64;
    let mut last_arrival = 0u64;
    let mut inflight_obs = Vec::new();
    while let Some(item) = source.next_paced() {
        if item.barrier_before {
            session.barrier();
        }
        if item.arrival > session.now() {
            session.advance_to(item.arrival);
        }
        if let Some(s) = &mut sampler {
            let (inflight, now) = (session.in_flight() as u64, session.now());
            s.advance(now, |out| {
                out[0] = inflight;
                out[1] = backpressured_tasks as u64;
                out[2] = retries;
            });
            inflight_obs.push(inflight);
        }
        last_arrival = item.arrival;
        let mut first = true;
        loop {
            match session.submit(&item.task) {
                Admission::Accepted => break,
                Admission::Backpressured => {
                    if first {
                        backpressured_tasks += 1;
                        first = false;
                    }
                    retries += 1;
                    if !session.step() {
                        return Err(BackendError::Config(format!(
                            "paced driver stalled: backpressured session \
                             cannot progress at task {tasks}"
                        )));
                    }
                }
            }
        }
        tasks += 1;
    }
    let driver_tl = sampler.map(|s| {
        let inflight = session.in_flight() as u64;
        s.finish(session.now(), |out| {
            out[0] = inflight;
            out[1] = backpressured_tasks as u64;
            out[2] = retries;
        })
    });
    let out = session.finish_full()?;
    let timeline = driver_tl.map(|driver| match &out.timeline {
        // The engine timeline spans the full makespan; the driver's
        // arrival-clock series pad out once arrivals stop.
        Some(engine) => Timeline::stitch(&[("", engine), ("pace.", &driver)]),
        None => driver,
    });
    let mut metrics = out.metrics;
    metrics
        .counter("pace.tasks", tasks as u64, MergeRule::Sum)
        .counter(
            "pace.backpressured_tasks",
            backpressured_tasks as u64,
            MergeRule::Sum,
        )
        .counter("pace.retries", retries, MergeRule::Sum)
        .counter("pace.last_arrival", last_arrival, MergeRule::Max);
    if !inflight_obs.is_empty() {
        metrics.histogram(
            "pace.inflight_hist",
            vec![0, 1, 2, 4, 8, 16, 32, 64, 128, 256],
            inflight_obs,
        );
    }
    Ok(PaceReport {
        report: out.report,
        stats: out.stats,
        tasks,
        backpressured_tasks,
        retries,
        last_arrival,
        timeline,
        metrics,
        spans: out.spans,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backends::{BackendSpec, PerfectBackend};
    use picos_core::PicosConfig;
    use picos_trace::gen;

    #[test]
    fn gentle_rate_never_backpressures() {
        let tr = gen::synthetic(gen::Case::Case1);
        let b = PerfectBackend { workers: 8 };
        let r = run_paced(&b, PacedTrace::new(&tr, 10_000), Some(64)).unwrap();
        assert_eq!(r.tasks, tr.len());
        assert_eq!(r.backpressured_tasks, 0);
        assert!(r.backpressure_ratio() == 0.0);
        r.report.validate(&tr).unwrap();
        // Open-loop arrival: the makespan at least spans the arrivals.
        assert!(r.report.makespan >= r.last_arrival);
    }

    #[test]
    fn saturating_rate_backpressures_but_drops_nothing() {
        let tr = gen::stream(gen::StreamConfig::heavy(400));
        let b = BackendSpec::Picos(picos_hil::HilMode::HwOnly).build(2, &PicosConfig::balanced());
        let r = run_paced(&*b, PacedTrace::new(&tr, 1), Some(8)).unwrap();
        assert_eq!(r.tasks, tr.len(), "no task may be dropped");
        assert!(r.backpressured_tasks > 0, "rate 1/cycle must saturate");
        assert!(r.retries >= r.backpressured_tasks as u64);
        assert!(r.backpressure_ratio() > 0.0);
        r.report.validate(&tr).unwrap();
        let stats = r.stats.expect("picos counters");
        assert_eq!(stats.tasks_completed as usize, tr.len());
    }

    #[test]
    fn paced_barriers_are_respected() {
        let mut tr = Trace::new("barriered");
        let k = picos_trace::KernelClass::GENERIC;
        for _ in 0..5 {
            tr.push(k, [], 200);
        }
        tr.push_taskwait();
        for _ in 0..5 {
            tr.push(k, [], 200);
        }
        let b = PerfectBackend { workers: 4 };
        let r = run_paced(&b, PacedTrace::new(&tr, 50), Some(4)).unwrap();
        r.report.validate(&tr).unwrap();
    }

    #[test]
    fn arrival_trace_uses_explicit_cycles() {
        let (tr, arrivals) = gen::stream_requests(gen::StreamConfig {
            tasks: 50,
            ..gen::StreamConfig::default()
        });
        assert_eq!(tr.len(), arrivals.len());
        let b = PerfectBackend { workers: 8 };
        let r = run_paced(&b, ArrivalTrace::new(&tr, &arrivals), None).unwrap();
        assert_eq!(r.tasks, 50);
        assert_eq!(r.last_arrival, *arrivals.last().unwrap());
        r.report.validate(&tr).unwrap();
        // Tasks cannot start before they arrive.
        for (i, &a) in arrivals.iter().enumerate() {
            assert!(r.report.start[i] >= a, "task {i} started before arrival");
        }
    }

    #[test]
    fn faster_offered_rate_cannot_slow_completion() {
        let tr = gen::stream(gen::StreamConfig::heavy(300));
        let b = BackendSpec::Cluster(2).build(8, &PicosConfig::balanced());
        let slow = run_paced(&*b, PacedTrace::new(&tr, 500), Some(64)).unwrap();
        let fast = run_paced(&*b, PacedTrace::new(&tr, 10), Some(64)).unwrap();
        assert!(fast.report.makespan <= slow.report.makespan);
        assert!(fast.offered_per_kcycle() > slow.offered_per_kcycle());
    }
}
