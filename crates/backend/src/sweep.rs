//! The declarative experiment-sweep harness.
//!
//! A [`Sweep`] is the reproduction's experiment grid: workloads × worker
//! counts × backends × DM designs × Picos instance counts, exactly the axes
//! the paper's evaluation walks (Figures 1, 8, 9, 11; Tables II and IV).
//! Cells are enumerated in a deterministic order, executed in parallel on
//! OS threads ([`crate::par`]), and collected into a [`SweepResult`] whose
//! row order equals cell order — so the same grid produces byte-identical
//! results regardless of thread count.

use crate::backends::{BackendError, BackendSpec, ExecBackend};
use crate::par;
use crate::session::{Admission, FeedStall, SessionConfig, SessionCore, SessionOutput, SimSession};
use picos_cluster::FaultPlan;
use picos_core::{DmDesign, PicosConfig, TsPolicy};
use picos_hil::LinkModel;
use picos_metrics::span;
use picos_metrics::Timeline;
use picos_trace::gen::App;
use picos_trace::{json_escape, TaskGraph, TaskId, Trace};
use std::fmt;
use std::sync::Arc;

/// One workload of a sweep: a labelled, shared trace.
///
/// Traces are generated once when the sweep is built and shared (`Arc`)
/// across all cells that execute them, so a 5-backend × 7-worker-count grid
/// generates each application exactly once.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Display label (application name for generated workloads).
    pub label: String,
    /// Block size / granularity knob, when meaningful.
    pub block_size: Option<u64>,
    /// The trace every cell of this workload executes.
    pub trace: Arc<Trace>,
}

impl Workload {
    /// A paper application at a block size.
    pub fn from_app(app: App, block_size: u64) -> Self {
        Workload {
            label: app.name().to_string(),
            block_size: Some(block_size),
            trace: Arc::new(app.generate(block_size)),
        }
    }

    /// An arbitrary trace under an explicit label.
    pub fn from_trace(label: impl Into<String>, trace: Arc<Trace>) -> Self {
        let block_size = trace.block_size;
        Workload {
            label: label.into(),
            block_size,
            trace,
        }
    }
}

/// One point of the experiment grid, before execution.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCell {
    /// Index of the workload in the sweep's workload list (labels need not
    /// be unique; the trace is resolved through this index).
    workload_index: usize,
    /// Workload label.
    pub workload: String,
    /// Workload block size, when meaningful.
    pub block_size: Option<u64>,
    /// Backend family to run.
    pub backend: BackendSpec,
    /// Worker count.
    pub workers: usize,
    /// Picos DM design (ignored by non-Picos backends).
    pub dm: DmDesign,
    /// Picos TRS/DCT instance count (ignored by non-Picos backends).
    pub instances: usize,
    /// Shard count of the cell's backend (1 for every single-accelerator
    /// family).
    pub shards: usize,
    /// Simulation threads driving the cell's cluster engine (1 — the
    /// serial reference engine — for every non-cluster cell and by
    /// default; [`Sweep::cluster_threads`] raises it, capped at the
    /// cell's shard count).
    pub threads: usize,
    /// Deterministic fault schedule of the cell ([`Sweep::faults`] axis;
    /// cluster cells only — the other families have no interconnect to
    /// fault, so the axis collapses to its first entry for them).
    pub fault: Option<FaultPlan>,
}

impl SweepCell {
    /// The Picos core configuration this cell runs under.
    pub fn picos_config(&self, ts_policy: TsPolicy) -> PicosConfig {
        PicosConfig::future(self.instances, self.dm).with_ts_policy(ts_policy)
    }

    /// Whether this cell's backend has an interconnect to fault: the fault
    /// axis is degenerate-collapsed for every other family, whose fault
    /// columns therefore read an exact 0 rather than "not measured".
    pub fn has_interconnect(&self) -> bool {
        matches!(self.backend, BackendSpec::Cluster(_))
    }
}

impl fmt::Display for SweepCell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.workload)?;
        if let Some(bs) = self.block_size {
            write!(f, "/bs{bs}")?;
        }
        write!(f, " {} w{}", self.backend, self.workers)?;
        if self.backend.uses_picos_config() {
            write!(f, " {} x{}", self.dm, self.instances)?;
        }
        if self.shards > 1 {
            write!(f, " s{}", self.shards)?;
        }
        if self.threads > 1 {
            write!(f, " t{}", self.threads)?;
        }
        if let Some(plan) = &self.fault {
            write!(f, " fault#{}", plan.seed)?;
        }
        Ok(())
    }
}

/// One executed cell: the grid coordinates plus the measured outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRow {
    /// Workload label.
    pub workload: String,
    /// Workload block size, when meaningful.
    pub block_size: Option<u64>,
    /// Backend family that ran.
    pub backend: BackendSpec,
    /// Worker count.
    pub workers: usize,
    /// Picos DM design of the cell.
    pub dm: DmDesign,
    /// Picos instance count of the cell.
    pub instances: usize,
    /// Shard count of the cell (1 for single-accelerator backends, so old
    /// and new result files stay comparable).
    pub shards: usize,
    /// Simulation threads that drove the cell's cluster engine (1 means
    /// the serial reference engine; parallel cells are bit-identical to
    /// it, so this column never changes results — only wall-clock).
    pub threads: usize,
    /// Total simulated time (0 when the cell errored).
    pub makespan: u64,
    /// Sequential execution time of the workload.
    pub sequential: u64,
    /// Speedup against sequential (0 when the cell errored).
    pub speedup: f64,
    /// DM conflicts (Picos backends only; paper Table II).
    pub dm_conflicts: Option<u64>,
    /// VM-capacity stalls (Picos backends only).
    pub vm_stalls: Option<u64>,
    /// TM-capacity stalls (Picos backends only).
    pub tm_stalls: Option<u64>,
    /// Link drop probability of the cell's fault plan. `Some(0.0)` for
    /// interconnect-free backends (their fault axis is degenerate, so the
    /// column is an exact zero); `None` only for a cluster cell that ran
    /// without a plan.
    pub drop_rate: Option<f64>,
    /// Interconnect messages dropped by fault injection. `Some(0)` for
    /// interconnect-free backends; `None` for a cluster cell without an
    /// active plan (unmeasured, not zero).
    pub link_drops: Option<u64>,
    /// Interconnect retransmissions by the retry protocol; same presence
    /// rules as [`SweepRow::link_drops`].
    pub link_retries: Option<u64>,
    /// Cycle-windowed telemetry of the cell's run, when the sweep was
    /// built with [`Sweep::timeline`] (in-flight occupancy, per-unit busy
    /// cycles over time; see [`SweepResult::timelines_csv`] for the
    /// long-format emit).
    pub timeline: Option<Timeline>,
    /// Critical-path composition of the cell's makespan, when the sweep
    /// was built with [`Sweep::critical_path`]: the compact
    /// `category:cycles;...` rendering of
    /// [`span::CriticalPath::compact`], whose cycles sum to the makespan.
    pub critical_path: Option<String>,
    /// Error description when the cell failed or was skipped.
    pub error: Option<String>,
}

/// The tabular outcome of a sweep, rows in deterministic cell order.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepResult {
    rows: Vec<SweepRow>,
}

impl SweepResult {
    /// The rows, in cell-enumeration order.
    pub fn rows(&self) -> &[SweepRow] {
        &self.rows
    }

    /// Rows that completed successfully.
    pub fn ok_rows(&self) -> impl Iterator<Item = &SweepRow> {
        self.rows.iter().filter(|r| r.error.is_none())
    }

    /// First error among the cells, if any.
    pub fn first_error(&self) -> Option<&str> {
        self.rows.iter().find_map(|r| r.error.as_deref())
    }

    /// Speedup of the first row matching workload, block size, backend and
    /// worker count (the common lookup of pivoted figure tables).
    pub fn speedup_of(
        &self,
        workload: &str,
        block_size: u64,
        backend: BackendSpec,
        workers: usize,
    ) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| {
                r.workload == workload
                    && r.block_size == Some(block_size)
                    && r.backend == backend
                    && r.workers == workers
                    && r.error.is_none()
            })
            .map(|r| r.speedup)
    }

    /// Renders the result as CSV (stable column set, one row per cell).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "workload,block_size,backend,workers,dm,instances,shards,threads,makespan,\
             sequential,speedup,dm_conflicts,vm_stalls,tm_stalls,drop_rate,link_drops,\
             link_retries,critical_path,error\n",
        );
        let opt = |v: &Option<u64>| v.map_or(String::new(), |v| v.to_string());
        for r in &self.rows {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{:.4},{},{},{},{},{},{},{},{}\n",
                csv_field(&r.workload),
                r.block_size.map_or(String::new(), |v| v.to_string()),
                r.backend,
                r.workers,
                r.dm.name().replace(' ', "-"),
                r.instances,
                r.shards,
                r.threads,
                r.makespan,
                r.sequential,
                r.speedup,
                opt(&r.dm_conflicts),
                opt(&r.vm_stalls),
                opt(&r.tm_stalls),
                r.drop_rate.map_or(String::new(), |v| format!("{v}")),
                opt(&r.link_drops),
                opt(&r.link_retries),
                csv_field(r.critical_path.as_deref().unwrap_or("")),
                csv_field(r.error.as_deref().unwrap_or("")),
            ));
        }
        out
    }

    /// Renders the result as a JSON array of row objects.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, r) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let opt = |v: &Option<u64>| v.map_or("null".to_string(), |v| v.to_string());
            out.push_str(&format!(
                "{{\"workload\":\"{}\",\"block_size\":{},\"backend\":\"{}\",\
                 \"workers\":{},\"dm\":\"{}\",\"instances\":{},\"shards\":{},\
                 \"threads\":{},\"makespan\":{},\
                 \"sequential\":{},\"speedup\":{:.6},\"dm_conflicts\":{},\
                 \"vm_stalls\":{},\"tm_stalls\":{},\"drop_rate\":{},\
                 \"link_drops\":{},\"link_retries\":{},\"critical_path\":{},\
                 \"error\":{}}}",
                json_escape(&r.workload),
                r.block_size.map_or("null".to_string(), |v| v.to_string()),
                r.backend,
                r.workers,
                r.dm.name(),
                r.instances,
                r.shards,
                r.threads,
                r.makespan,
                r.sequential,
                r.speedup,
                opt(&r.dm_conflicts),
                opt(&r.vm_stalls),
                opt(&r.tm_stalls),
                r.drop_rate.map_or("null".to_string(), |v| format!("{v}")),
                opt(&r.link_drops),
                opt(&r.link_retries),
                r.critical_path
                    .as_deref()
                    .map_or("null".to_string(), |c| format!("\"{}\"", json_escape(c))),
                r.error
                    .as_deref()
                    .map_or("null".to_string(), |e| format!("\"{}\"", json_escape(e))),
            ));
        }
        out.push(']');
        out
    }

    /// Renders every cell's telemetry timeline (when the sweep was built
    /// with [`Sweep::timeline`]) as one long-format CSV: the cell's grid
    /// coordinates, the window bounds, the series name and its value —
    /// the shape utilization-vs-time plots consume directly.
    pub fn timelines_csv(&self) -> String {
        let mut out = String::from(
            "workload,block_size,backend,workers,dm,instances,shards,threads,\
             window_start,window_end,series,value\n",
        );
        for r in &self.rows {
            let Some(tl) = &r.timeline else { continue };
            let prefix = format!(
                "{},{},{},{},{},{},{},{}",
                csv_field(&r.workload),
                r.block_size.map_or(String::new(), |v| v.to_string()),
                r.backend,
                r.workers,
                r.dm.name().replace(' ', "-"),
                r.instances,
                r.shards,
                r.threads,
            );
            for i in 0..tl.len() {
                let (start, end, values) = tl.sample(i);
                for (spec, v) in tl.series().iter().zip(values) {
                    out.push_str(&format!("{prefix},{start},{end},{},{v}\n", spec.name));
                }
            }
        }
        out
    }

    /// Writes `<name>.csv` and `<name>.json` into `dir`, plus
    /// `<name>_timeline.csv` when any cell recorded telemetry.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors (directory creation, writes).
    pub fn write_files(&self, dir: &std::path::Path, name: &str) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join(format!("{name}.csv")), self.to_csv())?;
        std::fs::write(dir.join(format!("{name}.json")), self.to_json())?;
        if self.rows.iter().any(|r| r.timeline.is_some()) {
            std::fs::write(
                dir.join(format!("{name}_timeline.csv")),
                self.timelines_csv(),
            )?;
        }
        Ok(())
    }
}

/// RFC-4180 CSV quoting: fields with commas, quotes or newlines are
/// wrapped in double quotes with inner quotes doubled. Workload labels
/// come from arbitrary trace names, so they need this.
fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

type CellFilter = Box<dyn Fn(&SweepCell) -> bool + Send + Sync>;

/// A declarative experiment grid over workloads, workers, backends and
/// Picos design points, executed cell-parallel.
///
/// Build with [`Sweep::new`] / [`Sweep::over_apps`], refine with the
/// builder methods, then [`Sweep::run`]. Every axis defaults to the
/// paper's baseline: 12 workers, all six backends of
/// [`BackendSpec::ALL`] (including the one-shard cluster), the balanced
/// Pearson-hashed DM, a single TRS/DCT instance, FIFO scheduling, the
/// default interconnect.
#[allow(missing_debug_implementations)] // the cell filter closure is opaque
pub struct Sweep {
    workloads: Vec<Workload>,
    workers: Vec<usize>,
    backends: Vec<BackendSpec>,
    dm_designs: Vec<DmDesign>,
    instances: Vec<usize>,
    ts_policy: TsPolicy,
    link: LinkModel,
    timeline: Option<u64>,
    critical_path: bool,
    threads: Option<usize>,
    cluster_threads: usize,
    faults: Vec<Option<FaultPlan>>,
    filter: Option<CellFilter>,
    fail_fast: bool,
    warm_start: bool,
}

impl Sweep {
    /// A sweep over explicit workloads with paper-default axes.
    pub fn new(workloads: impl IntoIterator<Item = Workload>) -> Self {
        Sweep {
            workloads: workloads.into_iter().collect(),
            workers: vec![12],
            backends: BackendSpec::ALL.to_vec(),
            dm_designs: vec![DmDesign::PearsonEightWay],
            instances: vec![1],
            ts_policy: TsPolicy::Fifo,
            link: LinkModel::interconnect(),
            timeline: None,
            critical_path: false,
            threads: None,
            cluster_threads: 1,
            faults: vec![None],
            filter: None,
            fail_fast: false,
            warm_start: false,
        }
    }

    /// A sweep over the cross product of applications and block sizes
    /// (each trace generated once, up front).
    pub fn over_apps(
        apps: impl IntoIterator<Item = App>,
        block_sizes: impl IntoIterator<Item = u64> + Clone,
    ) -> Self {
        let mut workloads = Vec::new();
        for app in apps {
            for bs in block_sizes.clone() {
                workloads.push(Workload::from_app(app, bs));
            }
        }
        Sweep::new(workloads)
    }

    /// Sets the worker-count axis.
    pub fn workers(mut self, workers: impl IntoIterator<Item = usize>) -> Self {
        self.workers = workers.into_iter().collect();
        self
    }

    /// Sets the backend axis.
    pub fn backends(mut self, backends: impl IntoIterator<Item = BackendSpec>) -> Self {
        self.backends = backends.into_iter().collect();
        self
    }

    /// Sets the DM-design axis (Picos backends only).
    pub fn dm_designs(mut self, designs: impl IntoIterator<Item = DmDesign>) -> Self {
        self.dm_designs = designs.into_iter().collect();
        self
    }

    /// Sets the TRS/DCT instance-count axis (Picos backends only; the
    /// paper's "future architecture").
    pub fn instances(mut self, instances: impl IntoIterator<Item = usize>) -> Self {
        self.instances = instances.into_iter().collect();
        self
    }

    /// Sets the Task Scheduler policy for all Picos cells (Figure 9).
    pub fn ts_policy(mut self, policy: TsPolicy) -> Self {
        self.ts_policy = policy;
        self
    }

    /// Sets the inter-shard interconnect cost model for all cluster cells
    /// (single-accelerator backends ignore it).
    pub fn interconnect(mut self, link: LinkModel) -> Self {
        self.link = link;
        self
    }

    /// Records a cycle-windowed telemetry [`Timeline`] for every cell
    /// (in-flight occupancy, per-unit busy cycles over time), stored on
    /// [`SweepRow::timeline`] and emitted by
    /// [`SweepResult::timelines_csv`]. Observation-only: makespans and
    /// counters are unchanged.
    pub fn timeline(mut self, window: u64) -> Self {
        self.timeline = Some(window);
        self
    }

    /// Records task-lifecycle spans for every cell and attributes each
    /// cell's makespan along its critical path, stored compactly on
    /// [`SweepRow::critical_path`] (`category:cycles;...`, summing to the
    /// makespan) and emitted in the `critical_path` column. Span tracing
    /// is observation-only: makespans and counters are unchanged.
    pub fn critical_path(mut self) -> Self {
        self.critical_path = true;
        self
    }

    /// Caps the number of OS threads executing cells.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Runs every cell on the calling thread (equivalent to `threads(1)`).
    pub fn serial(self) -> Self {
        self.threads(1)
    }

    /// Sets the simulation thread count of every cluster cell's epoch
    /// engine (distinct from [`Sweep::threads`], which parallelises over
    /// cells). Capped per cell at the backend's shard count — a
    /// two-shard cluster in a `cluster_threads(8)` sweep runs with two
    /// threads, never an error. Non-cluster cells always run serial.
    /// Defaults to 1, the serial reference engine, so existing golden
    /// result files are unaffected; the parallel engine is bit-identical,
    /// so raising it changes only wall-clock time.
    pub fn cluster_threads(mut self, threads: usize) -> Self {
        self.cluster_threads = threads.max(1);
        self
    }

    /// Sets the fault-schedule axis: each entry runs every cluster cell
    /// once under that plan (`None` = the fault-free engine). Only cluster
    /// cells expand this axis — the other families have no interconnect to
    /// fault, so they take the first entry only (put `None` first to keep
    /// them fault-free). Fault rows report the plan's drop rate plus the
    /// run's drop/retry counters in the `drop_rate`, `link_drops` and
    /// `link_retries` columns. An empty iterator resets the axis to the
    /// fault-free default.
    pub fn faults(mut self, faults: impl IntoIterator<Item = Option<FaultPlan>>) -> Self {
        self.faults = faults.into_iter().collect();
        if self.faults.is_empty() {
            self.faults.push(None);
        }
        self
    }

    /// Keeps only cells for which `keep` returns true. Filtering happens at
    /// grid-enumeration time, so a filtered sweep is still deterministic.
    pub fn filter(mut self, keep: impl Fn(&SweepCell) -> bool + Send + Sync + 'static) -> Self {
        self.filter = Some(Box::new(keep));
        self
    }

    /// Stops launching new cells after the first cell error; cells that
    /// never ran are reported with a "skipped" error. Which in-flight
    /// cells still complete depends on scheduling, so a fail-fast sweep
    /// trades the determinism guarantee for early exit.
    pub fn fail_fast(mut self) -> Self {
        self.fail_fast = true;
        self
    }

    /// Enables warm-start execution: cells that share a complete backend
    /// configuration *and* whose traces share a common task prefix (a
    /// **stem** — the autotuning shape, one recorded arrival prefix with
    /// divergent candidate suffixes) open one session, feed the stem once,
    /// and [`SimSession::fork_boxed`] a replica per cell for the divergent
    /// suffix. The fork is a deep copy and every engine is a deterministic
    /// function of its input stream, so warm rows are **bit-identical** to
    /// a cold run — only the per-cell session construction and stem
    /// ingest work (admission, dependence registration) is deduplicated;
    /// simulation after the divergence point is inherently per-cell.
    /// Cells run grouped per stem (parallelism is across stems), so the
    /// speedup guarantee (warm >= cold, gated in `bench_smoke`) is
    /// measured on serial sweeps.
    pub fn warm_start(mut self) -> Self {
        self.warm_start = true;
        self
    }

    /// Enumerates the grid cells in deterministic order: workloads (outer)
    /// × backends × DM designs × instance counts × workers (inner). For
    /// non-Picos backends the DM/instances axes are degenerate, so only
    /// their first combination is emitted — the grid stays declarative
    /// without running byte-identical cells several times.
    pub fn cells(&self) -> Vec<SweepCell> {
        let mut cells = Vec::new();
        for (workload_index, w) in self.workloads.iter().enumerate() {
            for &backend in &self.backends {
                let (dms, insts): (&[DmDesign], &[usize]) = if backend.uses_picos_config() {
                    (&self.dm_designs, &self.instances)
                } else {
                    (
                        &self.dm_designs[..1.min(self.dm_designs.len())],
                        &self.instances[..1.min(self.instances.len())],
                    )
                };
                // Only the cluster family has an interconnect to fault;
                // the other families collapse the fault axis like the
                // degenerate DM/instances axes above.
                let faults: &[Option<FaultPlan>] = if matches!(backend, BackendSpec::Cluster(_)) {
                    &self.faults
                } else {
                    &self.faults[..1.min(self.faults.len())]
                };
                for &dm in dms {
                    for &instances in insts {
                        for fault in faults {
                            for &workers in &self.workers {
                                let cell = SweepCell {
                                    workload_index,
                                    workload: w.label.clone(),
                                    block_size: w.block_size,
                                    backend,
                                    workers,
                                    dm,
                                    instances,
                                    shards: backend.shards(),
                                    // Per-cell cap: a grid mixing shard
                                    // counts keeps every cell valid.
                                    threads: self.cluster_threads.min(backend.shards()).max(1),
                                    fault: fault.clone(),
                                };
                                if self.filter.as_ref().is_none_or(|keep| keep(&cell)) {
                                    cells.push(cell);
                                }
                            }
                        }
                    }
                }
            }
        }
        cells
    }

    /// Executes the grid and collects the results.
    ///
    /// Cells run in parallel (up to the configured thread count, default:
    /// available parallelism); results land in cell-enumeration order, so
    /// `run()` is deterministic for any thread count. Cell failures are
    /// recorded in [`SweepRow::error`], never panicked.
    pub fn run(&self) -> SweepResult {
        let cells = self.cells();
        let threads = self.threads.unwrap_or_else(par::default_threads);
        let stop = std::sync::atomic::AtomicBool::new(false);
        if self.warm_start {
            return self.run_warm(&cells, threads, &stop);
        }
        let rows = par::par_map(&cells, threads, |_, cell| {
            if self.fail_fast && stop.load(std::sync::atomic::Ordering::Relaxed) {
                return skipped_row(cell);
            }
            // Cells carry the index of their workload, so duplicate labels
            // can never resolve to the wrong trace.
            let trace = &self.workloads[cell.workload_index].trace;
            let row = run_cell(
                cell,
                trace,
                self.ts_policy,
                self.link,
                self.timeline,
                self.critical_path,
            );
            if self.fail_fast && row.error.is_some() {
                stop.store(true, std::sync::atomic::Ordering::Relaxed);
            }
            row
        });
        SweepResult { rows }
    }

    /// The warm-start drive: stems execute in parallel across units, rows
    /// land back in cell-enumeration order (same determinism guarantee as
    /// the cold path).
    fn run_warm(
        &self,
        cells: &[SweepCell],
        threads: usize,
        stop: &std::sync::atomic::AtomicBool,
    ) -> SweepResult {
        use std::sync::atomic::Ordering;
        let units = self.stem_units(cells);
        let unit_rows = par::par_map(&units, threads, |_, unit| {
            if self.fail_fast && stop.load(Ordering::Relaxed) {
                return unit.cells.iter().map(|&i| skipped_row(&cells[i])).collect();
            }
            let rows = self.run_unit(cells, unit);
            if self.fail_fast && rows.iter().any(|r| r.error.is_some()) {
                stop.store(true, Ordering::Relaxed);
            }
            rows
        });
        let mut slots: Vec<Option<SweepRow>> = (0..cells.len()).map(|_| None).collect();
        for (unit, rows) in units.iter().zip(unit_rows) {
            for (&i, row) in unit.cells.iter().zip(rows) {
                slots[i] = Some(row);
            }
        }
        SweepResult {
            rows: slots
                .into_iter()
                .map(|r| r.expect("every cell lands in exactly one unit"))
                .collect(),
        }
    }

    /// Partitions the cells into warm-start units: cells sharing a full
    /// backend configuration whose traces share a non-empty task prefix
    /// stay grouped (first-seen order); everything else degrades to
    /// singleton cold units so cell-level parallelism is kept.
    fn stem_units(&self, cells: &[SweepCell]) -> Vec<StemUnit> {
        let mut grouped: Vec<(String, StemUnit)> = Vec::new();
        for (i, cell) in cells.iter().enumerate() {
            // The workload is deliberately absent: stems share across
            // workloads. Everything the backend builder reads is in.
            let key = format!(
                "{:?}|{}|{:?}|{}|{}|{:?}",
                cell.backend, cell.workers, cell.dm, cell.instances, cell.threads, cell.fault
            );
            match grouped.iter_mut().find(|(k, _)| *k == key) {
                Some((_, unit)) => unit.cells.push(i),
                None => grouped.push((
                    key,
                    StemUnit {
                        cells: vec![i],
                        stem: 0,
                    },
                )),
            }
        }
        let mut units = Vec::new();
        for (_, mut unit) in grouped {
            unit.stem = self.common_stem(cells, &unit.cells);
            if unit.cells.len() < 2 || unit.stem == 0 {
                units.extend(unit.cells.into_iter().map(|i| StemUnit {
                    cells: vec![i],
                    stem: 0,
                }));
            } else {
                units.push(unit);
            }
        }
        units
    }

    /// Longest shared task prefix of the unit's traces that also agrees on
    /// taskwait placement: a barrier present in one trace but not another
    /// gates creation from its position on, so it caps the stem there.
    fn common_stem(&self, cells: &[SweepCell], idxs: &[usize]) -> usize {
        let t0 = &self.workloads[cells[idxs[0]].workload_index].trace;
        let mut stem = t0.len();
        for &i in &idxs[1..] {
            let t = &self.workloads[cells[i].workload_index].trace;
            if Arc::ptr_eq(t, t0) {
                stem = stem.min(t.len());
                continue;
            }
            let cap = stem.min(t.len());
            let mut l = 0;
            while l < cap && t.tasks()[l] == t0.tasks()[l] {
                l += 1;
            }
            stem = l;
            if let Some(d) = first_barrier_divergence(t0.barriers(), t.barriers()) {
                stem = stem.min(d);
            }
        }
        stem
    }

    /// Executes one unit: simulate the stem once, fork per cell for the
    /// divergent suffix (the last cell consumes the stem session itself).
    /// Any stem-side problem falls the whole unit back to cold per-cell
    /// runs, so errors surface exactly like a cold sweep's.
    fn run_unit(&self, cells: &[SweepCell], unit: &StemUnit) -> Vec<SweepRow> {
        let cold = |i: usize| {
            let cell = &cells[i];
            run_cell(
                cell,
                &self.workloads[cell.workload_index].trace,
                self.ts_policy,
                self.link,
                self.timeline,
                self.critical_path,
            )
        };
        if unit.stem == 0 {
            return unit.cells.iter().map(|&i| cold(i)).collect();
        }
        let first = &cells[unit.cells[0]];
        let stem_trace = &self.workloads[first.workload_index].trace;
        let backend = build_backend(first, self.ts_policy, self.link);
        let cfg = cell_session_config(self.timeline, self.critical_path);
        let stem_session = backend
            .open_with(cfg)
            .map_err(|e| e.to_string())
            .and_then(|mut s| {
                s.reserve(unit.stem);
                feed_range(&mut *s, stem_trace, 0..unit.stem).map_err(|e| e.to_string())?;
                Ok(s)
            });
        let Ok(stem_session) = stem_session else {
            return unit.cells.iter().map(|&i| cold(i)).collect();
        };
        let mut stem_session = Some(stem_session);
        let last = unit.cells.len() - 1;
        unit.cells
            .iter()
            .enumerate()
            .map(|(j, &i)| {
                let cell = &cells[i];
                let trace = &self.workloads[cell.workload_index].trace;
                let mut s = if j == last {
                    stem_session
                        .take()
                        .expect("stem consumed only by the last cell")
                } else {
                    stem_session
                        .as_ref()
                        .expect("stem alive for forks")
                        .fork_boxed()
                };
                let result = feed_range(&mut *s, trace, unit.stem..trace.len())
                    .map_err(|e| BackendError::Config(e.to_string()))
                    .and_then(|()| s.finish_full());
                row_from_result(cell, trace, result)
            })
            .collect()
    }
}

/// One warm-start work unit: the indices of cells sharing a backend
/// configuration, plus the length of their shared trace prefix (0 for a
/// cold singleton).
#[derive(Debug)]
struct StemUnit {
    cells: Vec<usize>,
    stem: usize,
}

/// First position where two sorted taskwait lists diverge (`None` when
/// identical).
fn first_barrier_divergence(a: &[u32], b: &[u32]) -> Option<usize> {
    for (x, y) in a.iter().zip(b) {
        if x != y {
            return Some(*x.min(y) as usize);
        }
    }
    match a.len().cmp(&b.len()) {
        std::cmp::Ordering::Less => Some(b[a.len()] as usize),
        std::cmp::Ordering::Greater => Some(a[b.len()] as usize),
        std::cmp::Ordering::Equal => None,
    }
}

/// Feeds `trace[range]` like [`crate::feed_trace`]: the barrier at
/// position `i` is declared right before task `i`, backpressure drains
/// via `step`.
fn feed_range(
    s: &mut dyn SimSession,
    trace: &Trace,
    range: std::ops::Range<usize>,
) -> Result<(), FeedStall> {
    for i in range {
        if trace.barriers().contains(&(i as u32)) {
            s.barrier();
        }
        let task = &trace.tasks()[i];
        loop {
            match s.submit(task) {
                Admission::Accepted => break,
                Admission::Backpressured => {
                    if !s.step() {
                        return Err(FeedStall { task: i as u32 });
                    }
                }
            }
        }
    }
    Ok(())
}

fn skipped_row(cell: &SweepCell) -> SweepRow {
    SweepRow {
        workload: cell.workload.clone(),
        block_size: cell.block_size,
        backend: cell.backend,
        workers: cell.workers,
        dm: cell.dm,
        instances: cell.instances,
        shards: cell.shards,
        threads: cell.threads,
        makespan: 0,
        sequential: 0,
        speedup: 0.0,
        dm_conflicts: None,
        vm_stalls: None,
        tm_stalls: None,
        // The plan is a grid coordinate, so its drop rate labels even
        // errored/skipped rows; the counters are outcomes and stay empty
        // for cluster cells until the run reports them. Backends without
        // an interconnect collapse the whole fault axis, so their columns
        // are the degenerate 0 the numeric CSV header implies — never an
        // empty string.
        drop_rate: if cell.has_interconnect() {
            cell.fault.as_ref().map(|p| p.drop_rate)
        } else {
            Some(0.0)
        },
        link_drops: (!cell.has_interconnect()).then_some(0),
        link_retries: (!cell.has_interconnect()).then_some(0),
        timeline: None,
        critical_path: None,
        error: Some("skipped: an earlier cell failed (fail-fast)".into()),
    }
}

/// The cell's fully-parameterised backend, shared between the cold
/// per-cell path and the warm-start stem path.
fn build_backend(cell: &SweepCell, ts_policy: TsPolicy, link: LinkModel) -> Box<dyn ExecBackend> {
    cell.backend
        .builder(cell.workers)
        .picos(&cell.picos_config(ts_policy))
        .link(Some(link))
        .threads(Some(cell.threads))
        .faults(cell.fault.clone())
        .build()
}

/// The session configuration a sweep cell opens under.
fn cell_session_config(timeline: Option<u64>, critical_path: bool) -> SessionConfig {
    SessionConfig {
        timeline_window: timeline,
        trace_spans: critical_path,
        ..SessionConfig::batch()
    }
}

fn run_cell(
    cell: &SweepCell,
    trace: &Trace,
    ts_policy: TsPolicy,
    link: LinkModel,
    timeline: Option<u64>,
    critical_path: bool,
) -> SweepRow {
    let backend = build_backend(cell, ts_policy, link);
    let cfg = cell_session_config(timeline, critical_path);
    row_from_result(cell, trace, backend.run_with_telemetry(trace, cfg))
}

/// Folds a finished (or failed) cell execution into its result row —
/// the one place both the cold and warm paths land, so warm rows are
/// bit-identical to cold ones by construction.
fn row_from_result(
    cell: &SweepCell,
    trace: &Trace,
    result: Result<SessionOutput, BackendError>,
) -> SweepRow {
    let mut row = skipped_row(cell);
    row.error = None;
    match result {
        Ok(out) => {
            row.makespan = out.report.makespan;
            row.sequential = out.report.sequential;
            row.speedup = out.report.speedup();
            if let Some(s) = out.stats {
                row.dm_conflicts = Some(s.dm_conflicts);
                row.vm_stalls = Some(s.vm_stalls);
                row.tm_stalls = Some(s.tm_stalls);
            }
            // Present exactly when the cell ran under an active plan;
            // keep the degenerate 0 of interconnect-free backends.
            if let Some(d) = out.metrics.value("faults.drops") {
                row.link_drops = Some(d);
            }
            if let Some(r) = out.metrics.value("faults.retries") {
                row.link_retries = Some(r);
            }
            row.timeline = out.timeline;
            if let Some(log) = &out.spans {
                let g = TaskGraph::build(trace);
                row.critical_path =
                    span::critical_path(log, |t| g.preds(TaskId::new(t)).to_vec(), row.makespan)
                        .map(|cp| cp.compact());
            }
        }
        Err(e) => {
            row.sequential = trace.sequential_time();
            row.error = Some(e.to_string());
        }
    }
    row
}

#[cfg(test)]
mod tests {
    use super::*;
    use picos_core::DmDesign;
    use picos_hil::HilMode;
    use picos_trace::gen;

    #[test]
    fn grid_enumeration_is_deterministic_and_deduped() {
        let sweep = Sweep::over_apps([App::Cholesky], [256])
            .workers([2, 4])
            .backends([BackendSpec::Perfect, BackendSpec::Picos(HilMode::HwOnly)])
            .dm_designs(DmDesign::ALL)
            .instances([1, 2]);
        let cells = sweep.cells();
        // Perfect collapses the dm × instances axes (1 combo), Picos keeps
        // all 3 × 2; each combo crosses 2 worker counts.
        assert_eq!(cells.len(), 2 + 2 * (3 * 2));
        assert_eq!(cells, sweep.cells(), "enumeration must be stable");
        assert!(cells[0].backend == BackendSpec::Perfect && cells[0].workers == 2);
    }

    #[test]
    fn filter_prunes_cells() {
        let sweep = Sweep::over_apps([App::Cholesky], [256])
            .workers([2, 4, 8])
            .backends([BackendSpec::Perfect])
            .filter(|c| c.workers >= 4);
        assert_eq!(sweep.cells().len(), 2);
    }

    #[test]
    fn parallel_equals_serial_on_small_grid() {
        let build = || {
            Sweep::over_apps([App::Cholesky], [256, 128])
                .workers([2, 8])
                .backends([
                    BackendSpec::Perfect,
                    BackendSpec::Nanos,
                    BackendSpec::Picos(HilMode::HwOnly),
                ])
        };
        let serial = build().serial().run();
        let parallel = build().threads(8).run();
        assert_eq!(serial, parallel);
        assert_eq!(serial.first_error(), None);
        assert_eq!(serial.rows().len(), 2 * 3 * 2);
    }

    #[test]
    fn picos_rows_carry_hw_counters() {
        let result = Sweep::over_apps([App::Heat], [128])
            .workers([12])
            .backends([BackendSpec::Nanos, BackendSpec::Picos(HilMode::HwOnly)])
            .dm_designs([DmDesign::EightWay])
            .run();
        let nanos = &result.rows()[0];
        let picos = &result.rows()[1];
        assert!(nanos.dm_conflicts.is_none());
        assert!(picos.dm_conflicts.is_some(), "hw counters expected");
        // Heat at block 128 on the direct-hash DM conflicts (Table II).
        assert!(picos.dm_conflicts.unwrap() > 0);
    }

    #[test]
    fn failed_cells_are_rows_not_panics() {
        // Zero workers make the software runtime reject its configuration.
        let result = Sweep::new([Workload::from_trace(
            "case1",
            Arc::new(gen::synthetic(gen::Case::Case1)),
        )])
        .workers([0])
        .backends([BackendSpec::Nanos])
        .run();
        assert_eq!(result.rows().len(), 1);
        assert!(result
            .first_error()
            .unwrap()
            .contains("at least one thread"));
    }

    #[test]
    fn csv_and_json_render_every_row() {
        let result = Sweep::over_apps([App::Cholesky], [256])
            .workers([4])
            .backends([BackendSpec::Perfect, BackendSpec::Picos(HilMode::HwOnly)])
            .run();
        let csv = result.to_csv();
        assert_eq!(csv.lines().count(), 1 + result.rows().len());
        assert!(csv.starts_with("workload,block_size,backend,"));
        let json = result.to_json();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert_eq!(json.matches("\"workload\"").count(), result.rows().len());
    }

    #[test]
    fn duplicate_labels_resolve_to_their_own_traces() {
        // Two workloads under the same label: each cell must run its own
        // trace, not the first label match.
        let small = Arc::new(gen::synthetic(gen::Case::Case1));
        let big = Arc::new(gen::cholesky(gen::CholeskyConfig::paper(256)));
        let result = Sweep::new([
            Workload::from_trace("same", Arc::clone(&small)),
            Workload::from_trace("same", Arc::clone(&big)),
        ])
        .workers([4])
        .backends([BackendSpec::Perfect])
        .run();
        assert_eq!(result.rows()[0].sequential, small.sequential_time());
        assert_eq!(result.rows()[1].sequential, big.sequential_time());
        assert_ne!(result.rows()[0].sequential, result.rows()[1].sequential);
    }

    #[test]
    fn hostile_workload_labels_stay_well_formed() {
        let mut tr = gen::synthetic(gen::Case::Case1);
        tr.name = "evil,\"name\"\nhere".to_string();
        let result = Sweep::new([Workload::from_trace(tr.name.clone(), Arc::new(tr))])
            .workers([2])
            .backends([BackendSpec::Perfect])
            .run();
        let csv = result.to_csv();
        // RFC-4180: quoted field, doubled quotes, constant column count on
        // the header line vs the (quoted) data row.
        assert!(csv.contains("\"evil,\"\"name\"\"\nhere\""));
        let json = result.to_json();
        assert!(json.contains("evil,\\\"name\\\"\\nhere"));
        assert!(!json.contains("\"name\"\n"), "raw quote must not leak");
    }

    #[test]
    fn shards_column_defaults_to_one_and_tracks_cluster_cells() {
        let result = Sweep::over_apps([App::Cholesky], [256])
            .workers([4])
            .backends([
                BackendSpec::Perfect,
                BackendSpec::Cluster(1),
                BackendSpec::Cluster(2),
            ])
            .run();
        assert_eq!(result.first_error(), None);
        let shards: Vec<usize> = result.rows().iter().map(|r| r.shards).collect();
        assert_eq!(shards, vec![1, 1, 2]);
        let csv = result.to_csv();
        assert!(csv.starts_with(
            "workload,block_size,backend,workers,dm,instances,shards,threads,makespan"
        ));
        assert!(result.to_json().contains("\"shards\":2"));
        // The one-shard cluster cell must agree with the raw HW model.
        let hw = Sweep::over_apps([App::Cholesky], [256])
            .workers([4])
            .backends([BackendSpec::Picos(HilMode::HwOnly)])
            .run();
        assert_eq!(result.rows()[1].makespan, hw.rows()[0].makespan);
    }

    #[test]
    fn critical_path_column_sums_to_makespan_and_changes_nothing() {
        let grid = || {
            Sweep::over_apps([App::Cholesky], [256])
                .workers([4])
                .backends([
                    BackendSpec::Perfect,
                    BackendSpec::Picos(HilMode::HwOnly),
                    BackendSpec::Cluster(2),
                ])
        };
        let plain = grid().run();
        let attributed = grid().critical_path().run();
        assert_eq!(attributed.first_error(), None);
        for (p, a) in plain.rows().iter().zip(attributed.rows()) {
            // Span tracing is observation-only: the measured outcome of
            // every cell is unchanged.
            assert_eq!(p.makespan, a.makespan, "cell {}", a.backend);
            assert_eq!(p.dm_conflicts, a.dm_conflicts);
            assert!(p.critical_path.is_none());
            // The composition is present and its cycles account for the
            // whole makespan.
            let compact = a.critical_path.as_deref().expect("composition recorded");
            let total: u64 = compact
                .split(';')
                .map(|part| part.split_once(':').unwrap().1.parse::<u64>().unwrap())
                .sum();
            assert_eq!(total, a.makespan, "cell {}", a.backend);
        }
        let csv = attributed.to_csv();
        assert!(csv.lines().next().unwrap().contains(",critical_path,"));
        assert!(attributed.to_json().contains("\"critical_path\":\""));
        // Determinism: rerunning the attributed grid reproduces it.
        assert_eq!(attributed, grid().critical_path().run());
    }

    #[test]
    fn cluster_threads_cap_at_shards_and_change_nothing_but_wall_clock() {
        let grid = |ct: usize| {
            Sweep::over_apps([App::SparseLu], [128])
                .workers([8])
                .backends([
                    BackendSpec::Perfect,
                    BackendSpec::Cluster(2),
                    BackendSpec::Cluster(4),
                ])
                .cluster_threads(ct)
                .run()
        };
        let serial = grid(1);
        let parallel = grid(8);
        // Per-cell cap: non-cluster cells stay serial, cluster cells get
        // min(requested, shards) — never a validation error.
        assert_eq!(parallel.first_error(), None);
        let threads: Vec<usize> = parallel.rows().iter().map(|r| r.threads).collect();
        assert_eq!(threads, vec![1, 2, 4]);
        assert!(parallel.to_csv().lines().nth(3).unwrap().contains(",4,"));
        assert!(parallel.to_json().contains("\"threads\":4"));
        // The parallel engine is bit-identical, so the measured outcome
        // of every cell matches the serial reference exactly.
        for (s, p) in serial.rows().iter().zip(parallel.rows()) {
            assert_eq!(s.makespan, p.makespan, "cell {}", p.workload);
            assert_eq!(s.speedup, p.speedup);
            assert_eq!(s.dm_conflicts, p.dm_conflicts);
        }
    }

    #[test]
    fn interconnect_latency_slows_cluster_cells_only() {
        let slow_link = picos_hil::LinkModel {
            occupancy: 2_000,
            latency: 10_000,
            setup: 0,
            width: 1,
        };
        let grid = |link| {
            Sweep::over_apps([App::SparseLu], [128])
                .workers([8])
                .backends([BackendSpec::Picos(HilMode::HwOnly), BackendSpec::Cluster(4)])
                .interconnect(link)
                .run()
        };
        let fast = grid(picos_hil::LinkModel::interconnect());
        let slow = grid(slow_link);
        assert_eq!(
            fast.rows()[0].makespan,
            slow.rows()[0].makespan,
            "non-cluster cells must ignore the interconnect"
        );
        assert!(
            slow.rows()[1].makespan > fast.rows()[1].makespan,
            "a slower interconnect must cost the cluster cycles"
        );
    }

    #[test]
    fn fault_axis_expands_cluster_cells_only_and_reports_counters() {
        let grid = || {
            Sweep::over_apps([App::SparseLu], [128])
                .workers([8])
                .backends([BackendSpec::Perfect, BackendSpec::Cluster(4)])
                .faults([
                    None,
                    Some(FaultPlan::new(3)),
                    Some(FaultPlan::new(3).with_drop_rate(0.05)),
                ])
        };
        let cells = grid().cells();
        // Perfect collapses the axis (first entry = None); the cluster
        // runs all three plans.
        assert_eq!(cells.len(), 1 + 3);
        assert!(cells
            .iter()
            .all(|c| c.fault.is_none() || matches!(c.backend, BackendSpec::Cluster(_))));

        let result = grid().run();
        let rows = result.rows();
        // Fault-free and zero-fault cluster rows are identical outcomes
        // with no fault columns (the zero-fault plan is bit-identical and
        // registers no counters).
        assert_eq!(rows[1].makespan, rows[2].makespan);
        assert_eq!(rows[1].link_drops, None);
        assert_eq!(rows[2].link_drops, None);
        assert_eq!(rows[2].drop_rate, Some(0.0));
        // The lossy row carries its plan's rate and the run's counters.
        let lossy = &rows[3];
        assert_eq!(lossy.drop_rate, Some(0.05));
        if lossy.error.is_none() {
            assert!(lossy.link_drops.is_some() && lossy.link_retries.is_some());
            assert!(lossy.makespan >= rows[1].makespan);
        }
        let csv = result.to_csv();
        assert!(csv
            .lines()
            .next()
            .unwrap()
            .ends_with("drop_rate,link_drops,link_retries,critical_path,error"));
        assert!(result.to_json().contains("\"drop_rate\":0.05"));
        // Determinism: the same faulted grid reruns identically.
        assert_eq!(result, grid().run());
    }

    #[test]
    fn fault_columns_of_interconnect_free_backends_are_zero_not_empty() {
        let result = Sweep::over_apps([App::SparseLu], [128])
            .workers([4])
            .backends([
                BackendSpec::Perfect,
                BackendSpec::Nanos,
                BackendSpec::Cluster(2),
            ])
            .run();
        for row in result.rows() {
            assert!(row.error.is_none(), "{:?}", row.error);
            if matches!(row.backend, BackendSpec::Cluster(_)) {
                // No plan on a faultable backend: genuinely unmeasured.
                assert_eq!(row.drop_rate, None);
                assert_eq!(row.link_drops, None);
                assert_eq!(row.link_retries, None);
            } else {
                // Degenerate-collapsed axis: an exact zero, never empty.
                assert_eq!(row.drop_rate, Some(0.0));
                assert_eq!(row.link_drops, Some(0));
                assert_eq!(row.link_retries, Some(0));
            }
        }
        // CSV shape: every row is exactly as wide as the header, and the
        // fault cells of interconnect-free rows are the literal 0 the
        // numeric header implies.
        let csv = result.to_csv();
        let mut lines = csv.lines();
        let header: Vec<&str> = lines.next().unwrap().split(',').collect();
        let di = header.iter().position(|&h| h == "drop_rate").unwrap();
        for (line, row) in lines.zip(result.rows()) {
            let fields: Vec<&str> = line.split(',').collect();
            assert_eq!(fields.len(), header.len(), "ragged row: {line}");
            if !matches!(row.backend, BackendSpec::Cluster(_)) {
                assert_eq!(&fields[di..di + 3], ["0", "0", "0"], "row: {line}");
            }
        }
    }

    #[test]
    fn speedup_lookup_finds_rows() {
        let result = Sweep::over_apps([App::Cholesky], [256])
            .workers([4])
            .backends([BackendSpec::Perfect, BackendSpec::Nanos])
            .run();
        let p = result
            .speedup_of("cholesky", 256, BackendSpec::Perfect, 4)
            .unwrap();
        let n = result
            .speedup_of("cholesky", 256, BackendSpec::Nanos, 4)
            .unwrap();
        assert!(p >= n, "perfect {p} must dominate nanos {n}");
        assert!(result
            .speedup_of("cholesky", 256, BackendSpec::Nanos, 99)
            .is_none());
    }

    /// An autotuning-shaped workload family: `prefix` shared tasks, then a
    /// per-variant divergent suffix (different durations and dependence
    /// pattern per `variant`).
    fn stem_variant(prefix: usize, variant: u64) -> Trace {
        use picos_trace::Dependence;
        let mut tr = Trace::new(format!("stem-v{variant}"));
        let k = tr.kernel("k");
        for i in 0..prefix as u64 {
            tr.push(
                k,
                [Dependence::output(i % 7), Dependence::input((i + 3) % 7)],
                40 + (i % 5) * 30,
            );
        }
        for i in 0..20u64 {
            if i == 8 && variant % 2 == 1 {
                tr.push_taskwait();
            }
            tr.push(
                k,
                [
                    Dependence::output((i * (variant + 1)) % 9),
                    Dependence::input((i + variant) % 9),
                ],
                60 + ((i * 13 + variant * 7) % 11) * 25,
            );
        }
        tr
    }

    #[test]
    fn warm_start_stems_group_by_config_and_prefix() {
        let prefix = 30;
        let sweep = Sweep::new([
            Workload::from_trace("v0", Arc::new(stem_variant(prefix, 0))),
            Workload::from_trace("v2", Arc::new(stem_variant(prefix, 2))),
            Workload::from_trace("v4", Arc::new(stem_variant(prefix, 4))),
        ])
        .workers([4])
        .backends([BackendSpec::Perfect, BackendSpec::Picos(HilMode::HwOnly)]);
        let cells = sweep.cells();
        let units = sweep.stem_units(&cells);
        // One unit per backend config, each holding all three variants
        // with the full 30-task stem (no barriers diverge among the even
        // variants).
        assert_eq!(units.len(), 2);
        for unit in &units {
            assert_eq!(unit.cells.len(), 3);
            assert_eq!(unit.stem, prefix);
        }
    }

    #[test]
    fn warm_start_caps_stems_at_barrier_divergence() {
        // Two traces with identical task streams where only one declares a
        // taskwait: the stem must stop at the divergent barrier position,
        // not at the end of the shared task prefix.
        let bar_pos = 12u32;
        let build = |with_barrier: bool| {
            use picos_trace::Dependence;
            let mut tr = Trace::new("bar");
            let k = tr.kernel("k");
            for i in 0..30u64 {
                if with_barrier && i == u64::from(bar_pos) {
                    tr.push_taskwait();
                }
                tr.push(k, [Dependence::output(i % 5)], 50 + (i % 3) * 20);
            }
            tr
        };
        let grid = || {
            Sweep::new([
                Workload::from_trace("plain", Arc::new(build(false))),
                Workload::from_trace("barred", Arc::new(build(true))),
            ])
            .workers([4])
            .backends([BackendSpec::Perfect])
        };
        let sweep = grid();
        let cells = sweep.cells();
        let units = sweep.stem_units(&cells);
        assert_eq!(units.len(), 1);
        assert_eq!(units[0].stem, bar_pos as usize);
        assert_eq!(grid().run(), grid().warm_start().run());
    }

    #[test]
    fn warm_start_equals_cold_on_shared_prefix_grid() {
        let prefix = 30;
        let grid = || {
            Sweep::new([
                Workload::from_trace("v0", Arc::new(stem_variant(prefix, 0))),
                Workload::from_trace("v1", Arc::new(stem_variant(prefix, 1))),
                Workload::from_trace("v3", Arc::new(stem_variant(prefix, 3))),
            ])
            .workers([4])
            .backends([
                BackendSpec::Perfect,
                BackendSpec::Nanos,
                BackendSpec::Picos(HilMode::FullSystem),
                BackendSpec::Cluster(2),
            ])
            .critical_path()
            .timeline(64)
        };
        let cold = grid().run();
        let warm = grid().warm_start().run();
        assert_eq!(cold.first_error(), None);
        assert_eq!(cold, warm, "warm rows must be bit-identical to cold");
        // And the warm path must actually have shared stems: v1/v3 place a
        // barrier inside the suffix, so the stem is still the full prefix.
        let sweep = grid();
        let cells = sweep.cells();
        assert!(sweep
            .stem_units(&cells)
            .iter()
            .any(|u| u.cells.len() == 3 && u.stem == prefix));
    }

    #[test]
    fn warm_start_is_identity_on_ordinary_grids() {
        // Unrelated applications share no prefix: every unit degrades to a
        // cold singleton and the sweep behaves exactly as before.
        let grid = || {
            Sweep::over_apps([App::Cholesky, App::Heat], [128])
                .workers([4])
                .backends([BackendSpec::Perfect, BackendSpec::Picos(HilMode::HwOnly)])
        };
        let sweep = grid();
        let cells = sweep.cells();
        assert!(sweep.stem_units(&cells).iter().all(|u| u.cells.len() == 1));
        assert_eq!(grid().run(), grid().warm_start().run());
    }

    #[test]
    fn warm_start_duplicate_traces_share_the_whole_stem() {
        // The same Arc'd trace under two labels: the stem is the entire
        // trace and both rows still come out exactly like cold runs.
        let tr = Arc::new(stem_variant(20, 0));
        let grid = || {
            Sweep::new([
                Workload::from_trace("a", Arc::clone(&tr)),
                Workload::from_trace("b", Arc::clone(&tr)),
            ])
            .workers([4])
            .backends([BackendSpec::Picos(HilMode::HwOnly)])
        };
        let sweep = grid();
        let cells = sweep.cells();
        let units = sweep.stem_units(&cells);
        assert_eq!(units.len(), 1);
        assert_eq!(units[0].stem, tr.len());
        assert_eq!(grid().run(), grid().warm_start().run());
    }

    #[test]
    fn first_barrier_divergence_cases() {
        assert_eq!(first_barrier_divergence(&[], &[]), None);
        assert_eq!(first_barrier_divergence(&[3, 7], &[3, 7]), None);
        assert_eq!(first_barrier_divergence(&[3, 7], &[3]), Some(7));
        assert_eq!(first_barrier_divergence(&[3], &[3, 9]), Some(9));
        assert_eq!(first_barrier_divergence(&[3, 7], &[3, 9]), Some(7));
        assert_eq!(first_barrier_divergence(&[5], &[2, 5]), Some(2));
    }
}
