//! Deterministic fault injection for the cluster interconnect and shards.
//!
//! A [`FaultPlan`] is a *seeded schedule* of typed faults: per-link message
//! drops, duplications and extra-delay jitter (drawn from a [`SplitMix64`]
//! stream, so the same seed always faults the same messages), shard
//! pause/straggler windows, and fail-stop worker faults with deterministic
//! task re-execution. Attaching a plan also arms an ack/timeout/retry
//! protocol on every interconnect message: the sender keeps each message
//! pending until the receiver's (instantaneous) acknowledgement, retries
//! with bounded exponential backoff when a cycle-based timeout fires, and
//! surfaces [`ClusterError::LinkTimeout`] instead of hanging once the
//! retry budget is exhausted.
//!
//! # Zero-fault bit-identity
//!
//! A plan with all rates at zero and no pause/worker faults is
//! **bit-identical** to a run without any plan (pinned by
//! `tests/fault_conformance.rs`):
//!
//! * no RNG draw ever happens at zero rates, so no state diverges;
//! * [`Link::send_words_delayed`] with zero extra delay is exactly
//!   `send_words`, so link timing is unchanged;
//! * the sender-side tracking tables are engaged only when a plan can
//!   actually lose, duplicate or defer a message (nonzero drop/dup rate,
//!   or pause windows). Otherwise every copy provably arrives and its
//!   instantaneous ack would clear the deadline in the delivering pump,
//!   so the untracked send is observationally identical — and the
//!   zero-fault hot path costs only a branch per message (the
//!   `cluster_fault0` bench guard pins this within 3% of the plain
//!   engine). When tracking *is* engaged, a pending message's retry
//!   deadline is strictly later than its own delivery time, so deadlines
//!   never determine the event clock before their message could have
//!   arrived.
//!
//! # Retry state machine
//!
//! ```text
//!   send ──> PENDING(attempt 0, deadline = arrival + timeout)
//!              │ delivered & acked            │ deadline fires
//!              ▼                              ▼
//!            DONE                 attempt += 1; attempt > max_retries?
//!                                   │ no: resend (timeout << attempt)
//!                                   │ yes: ClusterError::LinkTimeout
//! ```
//!
//! Dropped messages still occupy their link slot (the flits burn wire time
//! before the loss is "noticed") and are discarded at delivery. Duplicates
//! share the original's packet id; the receiver deduplicates by id, so a
//! redelivered message — duplicate or retry of one whose ack was lost — is
//! counted ([`FaultCounters::redeliveries`]) and dropped.

use crate::config::{ClusterConfig, ClusterError};
use picos_hil::Link;
use picos_trace::rng::SplitMix64;
use picos_trace::snap::{Dec, Enc, SnapError};
use picos_trace::Value;
use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};

/// A shard ingress pause window: deliveries into `shard` arriving at
/// `at <= t < until` are deferred to `until` (a straggler shard whose
/// inbound processing stalls).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPause {
    /// The paused shard.
    pub shard: u16,
    /// First stalled cycle.
    pub at: u64,
    /// First cycle past the stall; deferred deliveries process here.
    pub until: u64,
}

/// A fail-stop worker fault: at cycle `at`, one of `shard`'s workers dies
/// permanently. If it was executing a task, the task is deterministically
/// re-executed from the shard's ready queue (the earliest-completing task
/// is the victim).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerFault {
    /// The shard losing a worker.
    pub shard: u16,
    /// The cycle the worker dies.
    pub at: u64,
}

/// End-of-run fault/recovery counters, surfaced as `faults.*` metrics and
/// telemetry series when the plan is active.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Messages lost in flight (discarded at delivery).
    pub drops: u64,
    /// Timeout-triggered resends.
    pub retries: u64,
    /// Deliveries of an already-delivered packet id (duplicates, or
    /// retries of a message whose acknowledgement was lost), discarded by
    /// receiver-side dedup.
    pub redeliveries: u64,
    /// Tasks re-executed after a fail-stop worker fault killed their
    /// first execution.
    pub recoveries: u64,
}

/// A deterministic, seeded fault schedule for one cluster run.
///
/// Link faults (drop/duplication/jitter) are drawn per message from a
/// [`SplitMix64`] stream seeded by [`FaultPlan::seed`]; pause and worker
/// faults are explicit typed entries. The default plan ([`FaultPlan::new`])
/// injects nothing — attaching it only arms the ack/retry protocol, which
/// is bit-identical to the fault-free engine (see the module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed of the per-message fault draws.
    pub seed: u64,
    /// Probability that a message (or its acknowledgement) is lost.
    pub drop_rate: f64,
    /// Probability that a message is sent twice (same packet id; the
    /// receiver deduplicates).
    pub dup_rate: f64,
    /// Probability that a delivery ages extra cycles beyond the link
    /// latency.
    pub jitter_rate: f64,
    /// Upper bound (inclusive) of the extra jitter delay in cycles.
    pub max_jitter: u64,
    /// Base retry timeout in cycles, measured from the expected arrival;
    /// attempt `n` waits `link_timeout << min(n, 6)`.
    pub link_timeout: u64,
    /// Resends after the original before the sender gives up with
    /// [`ClusterError::LinkTimeout`].
    pub max_retries: u32,
    /// Shard ingress pause windows (must not overlap per shard).
    pub pauses: Vec<ShardPause>,
    /// Fail-stop worker faults (strictly fewer per shard than the shard's
    /// workers, so every shard keeps at least one).
    pub worker_faults: Vec<WorkerFault>,
}

impl FaultPlan {
    /// A plan injecting no faults: all rates zero, no pause or worker
    /// faults, default timeout/retry budget.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop_rate: 0.0,
            dup_rate: 0.0,
            jitter_rate: 0.0,
            max_jitter: 16,
            link_timeout: 256,
            max_retries: 8,
            pauses: Vec::new(),
            worker_faults: Vec::new(),
        }
    }

    /// Sets the message/ack loss probability.
    pub fn with_drop_rate(mut self, rate: f64) -> Self {
        self.drop_rate = rate;
        self
    }

    /// Sets the message duplication probability.
    pub fn with_dup_rate(mut self, rate: f64) -> Self {
        self.dup_rate = rate;
        self
    }

    /// Sets the delivery-jitter probability and maximum extra delay.
    pub fn with_jitter(mut self, rate: f64, max_jitter: u64) -> Self {
        self.jitter_rate = rate;
        self.max_jitter = max_jitter;
        self
    }

    /// Sets the base retry timeout in cycles.
    pub fn with_link_timeout(mut self, cycles: u64) -> Self {
        self.link_timeout = cycles;
        self
    }

    /// Sets the retry budget.
    pub fn with_max_retries(mut self, retries: u32) -> Self {
        self.max_retries = retries;
        self
    }

    /// Adds a shard ingress pause window.
    pub fn with_pause(mut self, shard: u16, at: u64, until: u64) -> Self {
        self.pauses.push(ShardPause { shard, at, until });
        self
    }

    /// Adds a fail-stop worker fault.
    pub fn with_worker_fault(mut self, shard: u16, at: u64) -> Self {
        self.worker_faults.push(WorkerFault { shard, at });
        self
    }

    /// Whether the plan can inject anything at all. An inactive plan still
    /// arms the ack/retry protocol but never perturbs the run, and the
    /// engine keeps its telemetry/metrics identical to a plan-free run.
    pub fn is_active(&self) -> bool {
        self.drop_rate > 0.0
            || self.dup_rate > 0.0
            || self.jitter_rate > 0.0
            || !self.pauses.is_empty()
            || !self.worker_faults.is_empty()
    }

    /// Retry timeout after `attempts` resends: bounded exponential
    /// backoff.
    pub(crate) fn timeout_after(&self, attempts: u32) -> u64 {
        self.link_timeout.saturating_mul(1u64 << attempts.min(6))
    }

    /// Validates the plan against a cluster configuration.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first violated constraint: rates
    /// must be probabilities, the timeout/retry budget positive, jitter
    /// bounded, pause windows well-formed and non-overlapping per shard,
    /// and worker faults must leave every shard at least one worker.
    pub fn validate(&self, cfg: &ClusterConfig) -> Result<(), String> {
        for (name, rate) in [
            ("drop_rate", self.drop_rate),
            ("dup_rate", self.dup_rate),
            ("jitter_rate", self.jitter_rate),
        ] {
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!("fault {name} {rate} is not a probability"));
            }
        }
        if self.link_timeout == 0 {
            return Err("fault link_timeout must be at least one cycle".into());
        }
        if self.max_retries == 0 {
            return Err("fault max_retries must be at least one".into());
        }
        if self.jitter_rate > 0.0 && self.max_jitter == 0 {
            return Err("fault max_jitter must be nonzero when jitter_rate is".into());
        }
        let mut windows: Vec<&ShardPause> = self.pauses.iter().collect();
        windows.sort_by_key(|p| (p.shard, p.at));
        for w in &windows {
            if w.shard as usize >= cfg.shards {
                return Err(format!("pause names shard {} of {}", w.shard, cfg.shards));
            }
            if w.at >= w.until {
                return Err(format!("pause window [{}, {}) is empty", w.at, w.until));
            }
        }
        for pair in windows.windows(2) {
            if pair[0].shard == pair[1].shard && pair[1].at < pair[0].until {
                return Err(format!(
                    "overlapping pause windows on shard {}",
                    pair[0].shard
                ));
            }
        }
        let mut per_shard = vec![0usize; cfg.shards];
        for f in &self.worker_faults {
            if f.shard as usize >= cfg.shards {
                return Err(format!(
                    "worker fault names shard {} of {}",
                    f.shard, cfg.shards
                ));
            }
            per_shard[f.shard as usize] += 1;
        }
        for (s, &n) in per_shard.iter().enumerate() {
            if n >= cfg.shard_workers(s) && n > 0 {
                return Err(format!(
                    "{} worker faults on shard {s} would leave it below one \
                     of its {} workers",
                    n,
                    cfg.shard_workers(s)
                ));
            }
        }
        Ok(())
    }
}

/// The interconnect envelope under a fault layer: a packet id for
/// ack/dedup matching and the send-time drop fate. Id `0` is the *plain*
/// path — the packet of a session without a fault plan — which skips every
/// fault check.
#[derive(Debug, Clone)]
pub(crate) struct Packet<P> {
    pub(crate) id: u32,
    pub(crate) drop: bool,
    pub(crate) msg: P,
}

impl<P> Packet<P> {
    /// Wraps a message for a fault-free session: no tracking, no fate.
    pub(crate) fn plain(msg: P) -> Self {
        Packet {
            id: 0,
            drop: false,
            msg,
        }
    }
}

/// A sent message awaiting acknowledgement.
#[derive(Debug, Clone)]
struct Pending<P> {
    from: u16,
    to: u16,
    words: u32,
    attempts: u32,
    deadline: u64,
    msg: P,
}

/// The runtime state of an attached [`FaultPlan`]: the RNG stream, the
/// sender-side pending/retry tables, receiver-side dedup and pause
/// deferral queues, the worker-fault cursor, and the counters. Cloning is
/// a deep copy — the fork primitive of the snapshot subsystem.
#[derive(Debug, Clone)]
pub(crate) struct FaultState<P> {
    plan: FaultPlan,
    rng: SplitMix64,
    /// Whether sends engage the ack/retry tracking tables. False when no
    /// fault can ever lose, duplicate or defer a message — then every
    /// copy arrives and immediately acks, so tracking would be a pure
    /// no-op and the send path stays as cheap as the plain engine's.
    track: bool,
    next_id: u32,
    pending: HashMap<u32, Pending<P>>,
    /// Retry deadlines ordered by `(deadline, id)`; acks remove their
    /// entry eagerly so `next_time` never sees a stale deadline.
    deadlines: BTreeSet<(u64, u32)>,
    delivered: HashSet<u32>,
    /// Per-shard pause windows `(at, until)`, sorted; non-overlapping by
    /// plan validation.
    pauses: Vec<Vec<(u64, u64)>>,
    /// Per-shard deferred deliveries `(release, packet)`; releases are
    /// non-decreasing because deferral time is and windows don't overlap.
    deferred: Vec<VecDeque<(u64, Packet<P>)>>,
    /// Worker faults sorted by `(at, shard)`, consumed through a cursor.
    worker_faults: Vec<WorkerFault>,
    wf_next: usize,
    counters: FaultCounters,
    error: Option<ClusterError>,
}

impl<P: Clone> FaultState<P> {
    pub(crate) fn new(plan: FaultPlan, shards: usize) -> Self {
        let mut pauses = vec![Vec::new(); shards];
        for p in &plan.pauses {
            pauses[p.shard as usize].push((p.at, p.until));
        }
        for w in pauses.iter_mut() {
            w.sort_unstable();
        }
        let mut worker_faults = plan.worker_faults.clone();
        worker_faults.sort_unstable_by_key(|f| (f.at, f.shard));
        FaultState {
            rng: SplitMix64::new(plan.seed),
            track: plan.drop_rate > 0.0 || plan.dup_rate > 0.0 || !plan.pauses.is_empty(),
            next_id: 0,
            pending: HashMap::new(),
            deadlines: BTreeSet::new(),
            delivered: HashSet::new(),
            pauses,
            deferred: vec![VecDeque::new(); shards],
            worker_faults,
            wf_next: 0,
            counters: FaultCounters::default(),
            error: None,
            plan,
        }
    }

    /// Whether the attached plan can inject anything (gates the `faults.*`
    /// telemetry so an inactive plan stays observationally identical to no
    /// plan).
    pub(crate) fn plan_active(&self) -> bool {
        self.plan.is_active()
    }

    pub(crate) fn counters(&self) -> FaultCounters {
        self.counters
    }

    /// The first fault-layer error (retry exhaustion), if any. Only
    /// surfaced when the run fails to complete — a run that finishes
    /// despite a timed-out message reports success.
    pub(crate) fn error(&self) -> Option<&ClusterError> {
        self.error.as_ref()
    }

    /// Records a task re-execution after a fail-stop worker fault.
    pub(crate) fn note_recovery(&mut self) {
        self.counters.recoveries += 1;
    }

    /// Earliest fault-layer event: a retry deadline, a deferred delivery's
    /// release, or a scheduled worker fault.
    pub(crate) fn next_time(&self) -> Option<u64> {
        let mut next = self.deadlines.first().map(|&(d, _)| d);
        for q in &self.deferred {
            if let Some(&(release, _)) = q.front() {
                next = Some(next.map_or(release, |n| n.min(release)));
            }
        }
        if let Some(f) = self.worker_faults.get(self.wf_next) {
            next = Some(next.map_or(f.at, |n| n.min(f.at)));
        }
        next
    }

    /// Pops the next worker fault due at or before `t` (call in a loop).
    pub(crate) fn due_worker_fault(&mut self, t: u64) -> Option<u16> {
        let f = self.worker_faults.get(self.wf_next)?;
        if f.at > t {
            return None;
        }
        self.wf_next += 1;
        Some(f.shard)
    }

    /// Sends `msg` from shard `from` to shard `to` under the fault layer:
    /// assigns a packet id, draws the drop/jitter fate (only when the
    /// matching rate is nonzero — zero-rate plans never touch the RNG),
    /// possibly duplicates, and registers the retry deadline. Returns the
    /// assigned packet id (0 on the untracked path, like a plain send).
    pub(crate) fn send(
        &mut self,
        t: u64,
        from: u16,
        to: u16,
        msg: P,
        words: usize,
        links: &mut [Link<Packet<P>>],
    ) -> u32 {
        if !self.track {
            // No fault can lose, duplicate or defer this message, so its
            // ack would clear the retry deadline in the very pump that
            // delivers it — skip the tracking tables and send untracked
            // (id 0 = the plain path; jitter, when enabled, still draws
            // and applies).
            let extra = if self.plan.jitter_rate > 0.0 && self.rng.bool(self.plan.jitter_rate) {
                self.rng.range_u64(1, self.plan.max_jitter.max(1))
            } else {
                0
            };
            links[to as usize].send_words_delayed(t, Packet::plain(msg), words, extra);
            return 0;
        }
        self.next_id += 1;
        let id = self.next_id;
        let mut p = Pending {
            from,
            to,
            words: words as u32,
            attempts: 0,
            deadline: 0,
            msg,
        };
        p.deadline = self.transmit(t, id, &p, links);
        if self.plan.dup_rate > 0.0 && self.rng.bool(self.plan.dup_rate) {
            // The duplicate shares the id; whichever copy arrives second
            // is discarded by receiver dedup. Only the original's deadline
            // is tracked.
            let _ = self.transmit(t, id, &p, links);
        }
        self.deadlines.insert((p.deadline, id));
        self.pending.insert(id, p);
        id
    }

    /// One physical transmission of a pending message: draws this copy's
    /// fate and queues it on the destination link. Returns the retry
    /// deadline: expected arrival plus the backoff timeout for the current
    /// attempt — always strictly after the arrival, which is what keeps an
    /// inactive plan's deadlines invisible to the event clock.
    fn transmit(&mut self, t: u64, id: u32, p: &Pending<P>, links: &mut [Link<Packet<P>>]) -> u64 {
        let drop = self.plan.drop_rate > 0.0 && self.rng.bool(self.plan.drop_rate);
        let extra = if self.plan.jitter_rate > 0.0 && self.rng.bool(self.plan.jitter_rate) {
            self.rng.range_u64(1, self.plan.max_jitter.max(1))
        } else {
            0
        };
        let link = &mut links[p.to as usize];
        let pkt = Packet {
            id,
            drop,
            msg: p.msg.clone(),
        };
        let slot_end = link.send_words_delayed(t, pkt, p.words as usize, extra);
        slot_end + link.model().latency + extra + self.plan.timeout_after(p.attempts)
    }

    /// Fires every retry deadline due at `t`: resends with backoff, or
    /// records [`ClusterError::LinkTimeout`] once the budget is exhausted.
    /// Returns the `(from, to)` of each resend for event/traffic
    /// accounting.
    pub(crate) fn pump_retries(
        &mut self,
        t: u64,
        links: &mut [Link<Packet<P>>],
    ) -> Vec<(u16, u16)> {
        let mut sent = Vec::new();
        while let Some(&(deadline, id)) = self.deadlines.first() {
            if deadline > t {
                break;
            }
            self.deadlines.remove(&(deadline, id));
            let Some(p) = self.pending.get_mut(&id) else {
                continue;
            };
            p.attempts += 1;
            if p.attempts > self.plan.max_retries {
                let p = self.pending.remove(&id).expect("present above");
                if self.error.is_none() {
                    self.error = Some(ClusterError::LinkTimeout {
                        from: p.from,
                        to: p.to,
                        at: t,
                        attempts: p.attempts - 1,
                    });
                }
                continue;
            }
            self.counters.retries += 1;
            let snapshot = p.clone();
            let deadline = self.transmit(t, id, &snapshot, links);
            let p = self.pending.get_mut(&id).expect("present above");
            p.deadline = deadline;
            self.deadlines.insert((deadline, id));
            sent.push((snapshot.from, snapshot.to));
        }
        sent
    }

    /// Processes a packet delivered to `shard` at `t`. Returns the payload
    /// when it should be handled, or `None` when the fault layer consumed
    /// it: deferred by a pause window, lost to a drop fate, or discarded
    /// as a redelivery. Successful (and redelivered) packets acknowledge
    /// the sender instantaneously — unless the ack itself is lost, which
    /// leaves the sender retrying into receiver-side dedup.
    pub(crate) fn receive(&mut self, shard: usize, t: u64, pkt: Packet<P>) -> Option<P> {
        if let Some(release) = self.pause_release(shard, t) {
            self.deferred[shard].push_back((release, pkt));
            return None;
        }
        if pkt.drop {
            self.counters.drops += 1;
            return None;
        }
        if pkt.id != 0 {
            if !self.delivered.insert(pkt.id) {
                self.counters.redeliveries += 1;
                // Re-acknowledge: the duplicate usually exists because the
                // first ack was lost.
                self.maybe_ack(pkt.id);
                return None;
            }
            self.maybe_ack(pkt.id);
        }
        Some(pkt.msg)
    }

    /// Pops a deferred delivery whose pause window has expired.
    pub(crate) fn pop_deferred(&mut self, shard: usize, t: u64) -> Option<Packet<P>> {
        match self.deferred[shard].front() {
            Some(&(release, _)) if release <= t => {
                self.deferred[shard].pop_front().map(|(_, pkt)| pkt)
            }
            _ => None,
        }
    }

    /// The release time of the pause window containing `t` on `shard`,
    /// strictly greater than `t` by construction (`at <= t < until`).
    fn pause_release(&self, shard: usize, t: u64) -> Option<u64> {
        self.pauses[shard]
            .iter()
            .find(|&&(at, until)| at <= t && t < until)
            .map(|&(_, until)| until)
    }

    /// Clears the pending entry behind an acknowledged packet, unless the
    /// acknowledgement itself is lost (drawn at the message drop rate).
    fn maybe_ack(&mut self, id: u32) {
        if !self.pending.contains_key(&id) {
            return;
        }
        if self.plan.drop_rate > 0.0 && self.rng.bool(self.plan.drop_rate) {
            return;
        }
        let p = self.pending.remove(&id).expect("checked above");
        self.deadlines.remove(&(p.deadline, id));
    }

    /// Serializes the dynamic fault-layer state, encoding each in-flight
    /// payload with `enc_msg`. Plan-derived fields (`track`, the pause
    /// windows, the worker-fault schedule) are rebuilt from the plan by
    /// [`FaultState::new`] and not recorded; the RNG resumes from its raw
    /// state, so fault draws continue exactly where they left off.
    pub(crate) fn save_state_with(&self, enc_msg: impl Fn(&mut Enc, &P)) -> Value {
        let mut pend: Vec<(u32, &Pending<P>)> =
            self.pending.iter().map(|(&id, p)| (id, p)).collect();
        pend.sort_unstable_by_key(|&(id, _)| id);
        let mut delivered: Vec<u32> = self.delivered.iter().copied().collect();
        delivered.sort_unstable();
        let mut e = Enc::new();
        e.u64(self.rng.state())
            .u32(self.next_id)
            .seq(pend, |e, (id, p)| {
                e.u32(id)
                    .u64(p.from as u64)
                    .u64(p.to as u64)
                    .u32(p.words)
                    .u32(p.attempts)
                    .u64(p.deadline);
                enc_msg(e, &p.msg);
            })
            .seq(self.deadlines.iter(), |e, &(d, id)| {
                e.u64(d).u32(id);
            })
            .u32s(delivered)
            .seq(self.deferred.iter(), |e, q| {
                e.seq(q.iter(), |e, (release, pkt)| {
                    e.u64(*release).u32(pkt.id).bool(pkt.drop);
                    enc_msg(e, &pkt.msg);
                });
            })
            .usize(self.wf_next)
            .u64(self.counters.drops)
            .u64(self.counters.retries)
            .u64(self.counters.redeliveries)
            .u64(self.counters.recoveries)
            .val(match &self.error {
                Some(ClusterError::LinkTimeout {
                    from,
                    to,
                    at,
                    attempts,
                }) => {
                    let mut e = Enc::new();
                    e.u64(*from as u64).u64(*to as u64).u64(*at).u32(*attempts);
                    e.done()
                }
                Some(_) => unreachable!("only LinkTimeout is ever recorded here"),
                None => Value::Null,
            });
        e.done()
    }

    /// Overwrites the dynamic state from [`FaultState::save_state_with`]
    /// output, decoding each payload with `dec_msg`. The plan itself is
    /// guarded by the session's configuration fingerprint, not here.
    ///
    /// # Errors
    ///
    /// Returns [`SnapError`] on a malformed record or a deferred-queue
    /// shape that does not match the plan's shard count.
    pub(crate) fn load_state_with(
        &mut self,
        v: &Value,
        dec_msg: impl Fn(&mut Dec) -> Result<P, SnapError>,
    ) -> Result<(), SnapError> {
        let mut d = Dec::new(v, "fault state")?;
        let rng = SplitMix64::new(d.u64()?);
        let next_id = d.u32()?;
        let pending: Vec<(u32, Pending<P>)> = d.seq(|d| {
            Ok((
                d.u32()?,
                Pending {
                    from: d.u16()?,
                    to: d.u16()?,
                    words: d.u32()?,
                    attempts: d.u32()?,
                    deadline: d.u64()?,
                    msg: dec_msg(d)?,
                },
            ))
        })?;
        let deadlines: Vec<(u64, u32)> = d.seq(|d| Ok((d.u64()?, d.u32()?)))?;
        let delivered = d.u32s()?;
        let deferred: Vec<VecDeque<(u64, Packet<P>)>> = d.seq(|d| {
            Ok(d.seq(|d| {
                Ok((
                    d.u64()?,
                    Packet {
                        id: d.u32()?,
                        drop: d.bool()?,
                        msg: dec_msg(d)?,
                    },
                ))
            })?
            .into())
        })?;
        if deferred.len() != self.deferred.len() {
            return Err(SnapError::new(format!(
                "fault state: {} deferred queues for {} shards",
                deferred.len(),
                self.deferred.len()
            )));
        }
        let wf_next = d.usize()?;
        if wf_next > self.worker_faults.len() {
            return Err(SnapError::new(
                "fault state: worker-fault cursor out of range",
            ));
        }
        let counters = FaultCounters {
            drops: d.u64()?,
            retries: d.u64()?,
            redeliveries: d.u64()?,
            recoveries: d.u64()?,
        };
        let error = match d.val()? {
            Value::Null => None,
            v => {
                let mut d = Dec::new(v, "fault error")?;
                Some(ClusterError::LinkTimeout {
                    from: d.u16()?,
                    to: d.u16()?,
                    at: d.u64()?,
                    attempts: d.u32()?,
                })
            }
        };
        self.rng = rng;
        self.next_id = next_id;
        self.pending = pending.into_iter().collect();
        self.deadlines = deadlines.into_iter().collect();
        self.delivered = delivered.into_iter().collect();
        self.deferred = deferred;
        self.wf_next = wf_next;
        self.counters = counters;
        self.error = error;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use picos_hil::LinkModel;

    fn links(n: usize) -> Vec<Link<Packet<u32>>> {
        (0..n)
            .map(|_| {
                Link::new(LinkModel {
                    occupancy: 2,
                    latency: 5,
                    setup: 0,
                    width: 1,
                })
            })
            .collect()
    }

    fn drain_at<P: Clone>(links: &mut [Link<Packet<P>>], s: usize, t: u64) -> Vec<Packet<P>> {
        let mut out = Vec::new();
        while let Some(p) = links[s].pop_delivery_at(t) {
            out.push(p);
        }
        out
    }

    #[test]
    fn zero_rate_plan_draws_no_randomness_and_skips_tracking() {
        let mut f: FaultState<u32> = FaultState::new(FaultPlan::new(1), 2);
        let mut ls = links(2);
        f.send(0, 0, 1, 7, 1, &mut ls);
        // Same timing as a plain send: slot [0,2), delivery at 7.
        assert_eq!(ls[1].next_delivery(), Some(7));
        // Nothing can fault this message, so it is untracked: no retry
        // deadline feeds the event clock.
        assert!(f.next_time().is_none());
        let pkt = ls[1].pop_delivery_at(7).expect("delivered");
        assert_eq!(pkt.id, 0, "untracked sends take the plain path");
        assert_eq!(f.receive(1, 7, pkt), Some(7));
        assert_eq!(f.counters(), FaultCounters::default());
        // The RNG was never advanced.
        assert_eq!(f.rng.clone().next_u64(), SplitMix64::new(1).next_u64());
    }

    #[test]
    fn lossy_plan_arms_the_retry_deadline() {
        // drop_rate > 0 engages tracking; with seed 1 the first draw keeps
        // the message, so it is delivered, acked and the deadline clears.
        let plan = FaultPlan::new(1).with_drop_rate(0.01);
        let mut f: FaultState<u32> = FaultState::new(plan, 2);
        let mut ls = links(2);
        f.send(0, 0, 1, 7, 1, &mut ls);
        assert_eq!(
            f.next_time(),
            Some(7 + 256),
            "the deadline sits strictly after the delivery"
        );
        let pkt = ls[1].pop_delivery_at(7).expect("delivered");
        assert!(pkt.id != 0, "tracked sends carry a packet id");
        assert_eq!(f.receive(1, 7, pkt), Some(7));
        assert!(f.next_time().is_none(), "ack clears the deadline eagerly");
    }

    #[test]
    fn dropped_message_retries_and_eventually_exhausts() {
        let plan = FaultPlan::new(3)
            .with_drop_rate(1.0)
            .with_link_timeout(10)
            .with_max_retries(2);
        let mut f: FaultState<u32> = FaultState::new(plan, 2);
        let mut ls = links(2);
        f.send(0, 0, 1, 9, 1, &mut ls);
        let mut retries = 0;
        let mut guard = 0;
        while f.error().is_none() {
            guard += 1;
            assert!(guard < 100, "retry protocol must terminate");
            let t = [ls[1].next_delivery(), f.next_time()]
                .into_iter()
                .flatten()
                .min()
                .expect("work pending");
            for pkt in drain_at(&mut ls, 1, t) {
                assert!(f.receive(1, t, pkt).is_none(), "all copies drop");
            }
            retries += f.pump_retries(t, &mut ls).len();
        }
        assert_eq!(retries, 2);
        assert_eq!(f.counters().drops, 3, "original + 2 retries all dropped");
        assert!(matches!(
            f.error(),
            Some(ClusterError::LinkTimeout {
                from: 0,
                to: 1,
                attempts: 2,
                ..
            })
        ));
        // After exhaustion the layer is quiescent.
        assert!(f.next_time().is_none());
    }

    #[test]
    fn duplicates_are_delivered_once() {
        let plan = FaultPlan::new(5).with_dup_rate(1.0);
        let mut f: FaultState<u32> = FaultState::new(plan, 2);
        let mut ls = links(2);
        f.send(0, 0, 1, 42, 1, &mut ls);
        assert_eq!(ls[1].in_flight(), 2, "duplicate occupies a second slot");
        let mut got = Vec::new();
        for t in [7u64, 9] {
            for pkt in drain_at(&mut ls, 1, t) {
                got.extend(f.receive(1, t, pkt));
            }
        }
        assert_eq!(got, vec![42], "dedup passes exactly one copy");
        assert_eq!(f.counters().redeliveries, 1);
        assert!(f.next_time().is_none(), "first copy acked the sender");
    }

    #[test]
    fn pause_defers_delivery_to_window_end() {
        let plan = FaultPlan::new(9).with_pause(1, 0, 50);
        let mut f: FaultState<u32> = FaultState::new(plan, 2);
        let mut ls = links(2);
        f.send(0, 0, 1, 11, 1, &mut ls);
        let pkt = ls[1].pop_delivery_at(7).expect("delivered");
        assert_eq!(f.receive(1, 7, pkt), None, "paused shard defers");
        assert_eq!(f.next_time(), Some(50), "release feeds the event clock");
        assert!(f.pop_deferred(1, 49).is_none());
        let pkt = f.pop_deferred(1, 50).expect("released");
        assert_eq!(f.receive(1, 50, pkt), Some(11));
        assert_eq!(f.counters(), FaultCounters::default());
    }

    #[test]
    fn worker_faults_pop_in_time_order() {
        let plan = FaultPlan::new(0)
            .with_worker_fault(1, 30)
            .with_worker_fault(0, 10);
        let mut f: FaultState<u32> = FaultState::new(plan, 2);
        assert_eq!(f.next_time(), Some(10));
        assert_eq!(f.due_worker_fault(5), None);
        assert_eq!(f.due_worker_fault(10), Some(0));
        assert_eq!(f.due_worker_fault(10), None);
        assert_eq!(f.next_time(), Some(30));
        assert_eq!(f.due_worker_fault(100), Some(1));
        assert!(f.next_time().is_none());
    }

    #[test]
    fn plan_validation_rejects_bad_schedules() {
        let cfg = ClusterConfig::balanced(2, 4);
        assert!(FaultPlan::new(0).validate(&cfg).is_ok());
        assert!(FaultPlan::new(0)
            .with_drop_rate(1.5)
            .validate(&cfg)
            .is_err());
        assert!(FaultPlan::new(0)
            .with_link_timeout(0)
            .validate(&cfg)
            .is_err());
        assert!(FaultPlan::new(0)
            .with_max_retries(0)
            .validate(&cfg)
            .is_err());
        assert!(FaultPlan::new(0)
            .with_jitter(0.5, 0)
            .validate(&cfg)
            .is_err());
        assert!(FaultPlan::new(0)
            .with_pause(2, 0, 10)
            .validate(&cfg)
            .is_err());
        assert!(FaultPlan::new(0)
            .with_pause(0, 10, 10)
            .validate(&cfg)
            .is_err());
        assert!(FaultPlan::new(0)
            .with_pause(0, 0, 10)
            .with_pause(0, 5, 15)
            .validate(&cfg)
            .is_err());
        assert!(FaultPlan::new(0)
            .with_pause(0, 0, 10)
            .with_pause(0, 10, 15)
            .validate(&cfg)
            .is_ok());
        // 2 faults on a 2-worker shard would leave zero workers.
        let two = FaultPlan::new(0)
            .with_worker_fault(0, 1)
            .with_worker_fault(0, 2);
        assert!(two.validate(&cfg).is_err());
        assert!(FaultPlan::new(0)
            .with_worker_fault(0, 1)
            .validate(&cfg)
            .is_ok());
    }

    #[test]
    fn backoff_grows_and_saturates() {
        let p = FaultPlan::new(0).with_link_timeout(8);
        assert_eq!(p.timeout_after(0), 8);
        assert_eq!(p.timeout_after(1), 16);
        assert_eq!(p.timeout_after(6), 8 << 6);
        assert_eq!(p.timeout_after(60), 8 << 6, "backoff saturates");
    }
}
