//! Cluster configuration: shard count, task-placement policy, per-shard
//! core configuration and the interconnect cost model.

use crate::fault::FaultPlan;
use picos_core::PicosConfig;
use picos_hil::{HilCostModel, LinkModel};
use std::fmt;

/// Home shard of a dependence address.
///
/// Fibonacci hashing on the block address (low 6 bits stripped, like the
/// DCT routing inside one Picos), taking the high bits of the product so
/// stride-aligned block addresses spread instead of funnelling to shard 0.
/// A different odd multiplier than [`picos_core::dct_for_addr`] keeps the
/// shard index statistically independent of the within-shard DCT index.
pub fn home_shard(addr: u64, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    let h = (addr >> 6).wrapping_mul(0xD1B5_4A32_D192_ED03) >> 32;
    h as usize % shards
}

/// Task-placement policy of the front-end Distributor.
///
/// Dependence *homing* is always by address hash — that is what makes the
/// sharded Dependence Memories sound. The policy only decides which shard
/// *executes* a task (and therefore which fragments stay local).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ShardPolicy {
    /// Place the task on the home shard of its first dependence, the
    /// producer-follows-data default (dependence-free tasks round-robin).
    #[default]
    AddrHash,
    /// Place tasks round-robin by creation index, ignoring their data.
    /// Balances execution load at the price of cross-shard registrations
    /// for almost every dependence.
    RoundRobin,
    /// Place the task on the shard homing the most of its dependences
    /// (ties to the lowest shard; dependence-free tasks round-robin).
    /// Minimizes interconnect traffic per task.
    LocalityAffine,
}

impl ShardPolicy {
    /// All placement policies, in documentation order.
    pub const ALL: [ShardPolicy; 3] = [
        ShardPolicy::AddrHash,
        ShardPolicy::RoundRobin,
        ShardPolicy::LocalityAffine,
    ];

    /// Stable lower-case label (CLI and result files).
    pub fn name(self) -> &'static str {
        match self {
            ShardPolicy::AddrHash => "addr-hash",
            ShardPolicy::RoundRobin => "round-robin",
            ShardPolicy::LocalityAffine => "locality",
        }
    }

    /// Parses a policy label as accepted by the CLI.
    pub fn parse(s: &str) -> Option<ShardPolicy> {
        match s {
            "addr-hash" | "addr" => Some(ShardPolicy::AddrHash),
            "round-robin" | "rr" => Some(ShardPolicy::RoundRobin),
            "locality" | "locality-affine" => Some(ShardPolicy::LocalityAffine),
            _ => None,
        }
    }
}

impl fmt::Display for ShardPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Configuration of a cluster run.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Number of Picos shards.
    pub shards: usize,
    /// Task-placement policy of the Distributor.
    pub policy: ShardPolicy,
    /// Core configuration of **each** shard (a cluster of `n` shards has
    /// `n` times this capacity).
    pub picos: PicosConfig,
    /// Total workers, split as evenly as possible across shards (every
    /// shard needs at least one — tasks execute where they are placed).
    pub workers: usize,
    /// Inter-shard interconnect cost model (per-destination ingress ports,
    /// each following the AXI-bus delivery/service discipline).
    pub link: LinkModel,
    /// TS-output-to-worker-start dispatch cost; defaults to the HIL
    /// platform's HW-only dispatch so a one-shard cluster is
    /// cycle-identical to `HilMode::HwOnly`.
    pub dispatch: u64,
    /// Simulation threads for the conservative-parallel event engine
    /// (default `1` = the serial reference engine). Values above one run
    /// shard lanes on scoped OS threads, bit-identical to serial; at most
    /// one thread per shard is ever useful, so `threads > shards` is
    /// rejected by [`ClusterConfig::validate`].
    pub threads: usize,
    /// Deterministic fault schedule, or `None` for the fault-free engine.
    /// Attaching a plan arms the interconnect's ack/timeout/retry protocol
    /// and (for inherently global fault bookkeeping) runs the serial
    /// reference engine regardless of `threads`. A zero-fault plan is
    /// bit-identical to `None`.
    pub faults: Option<FaultPlan>,
}

impl ClusterConfig {
    /// A balanced-core cluster of `shards` shards sharing `workers`
    /// workers, with the default interconnect and placement policy.
    pub fn balanced(shards: usize, workers: usize) -> Self {
        ClusterConfig {
            shards,
            policy: ShardPolicy::default(),
            picos: PicosConfig::balanced(),
            workers,
            link: LinkModel::interconnect(),
            dispatch: HilCostModel::default().dispatch,
            threads: 1,
            faults: None,
        }
    }

    /// The same cluster simulated by `threads` OS threads (see
    /// [`ClusterConfig::threads`]).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The same cluster under a deterministic fault schedule (see
    /// [`ClusterConfig::faults`]).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Workers assigned to shard `s` (even split, earlier shards take the
    /// remainder).
    pub fn shard_workers(&self, s: usize) -> usize {
        let base = self.workers / self.shards;
        base + usize::from(s < self.workers % self.shards)
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first violated constraint: at
    /// least one shard, at most 4096 (result files use small ids), at
    /// least one worker per shard, at least one and at most one simulation
    /// thread per shard, and a valid per-shard core config.
    pub fn validate(&self) -> Result<(), String> {
        if self.shards == 0 {
            return Err("cluster needs at least one shard".into());
        }
        if self.shards > 4096 {
            return Err("at most 4096 shards".into());
        }
        if self.workers < self.shards {
            return Err(format!(
                "{} workers cannot cover {} shards (each shard executes \
                 its placed tasks and needs at least one worker)",
                self.workers, self.shards
            ));
        }
        if self.threads == 0 {
            return Err("cluster needs at least one simulation thread".into());
        }
        if self.threads > self.shards {
            return Err(format!(
                "{} simulation threads exceed {} shards (each thread drives \
                 whole shard lanes, so extra threads could never be used; \
                 pass threads <= shards)",
                self.threads, self.shards
            ));
        }
        if let Some(plan) = &self.faults {
            plan.validate(self)?;
        }
        self.picos.validate()
    }
}

/// Errors from a cluster run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// The configuration failed [`ClusterConfig::validate`].
    Config(String),
    /// The cluster stopped with unfinished work (an engine bug).
    Stalled {
        /// Tasks executed before the stall.
        executed: usize,
        /// Total tasks in the trace.
        total: usize,
        /// Time of the stall.
        at: u64,
    },
    /// An interconnect message exhausted its retry budget and the run
    /// could not complete without it (fault injection; see
    /// [`crate::FaultPlan`]).
    LinkTimeout {
        /// Sending shard.
        from: u16,
        /// Destination shard.
        to: u16,
        /// Cycle the final retry deadline fired.
        at: u64,
        /// Resends attempted before giving up.
        attempts: u32,
    },
    /// A parallel-engine shard lane panicked; the panic was caught and the
    /// session is dead (no further progress is possible).
    LanePanic {
        /// The panic payload, when it carried a message.
        detail: String,
    },
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::Config(m) => write!(f, "cluster configuration: {m}"),
            ClusterError::Stalled {
                executed,
                total,
                at,
            } => write!(
                f,
                "cluster stalled at cycle {at} after {executed}/{total} tasks"
            ),
            ClusterError::LinkTimeout {
                from,
                to,
                at,
                attempts,
            } => write!(
                f,
                "interconnect message {from}->{to} lost after {attempts} \
                 retries (gave up at cycle {at})"
            ),
            ClusterError::LanePanic { detail } => {
                write!(f, "parallel engine lane panicked: {detail}")
            }
        }
    }
}

impl std::error::Error for ClusterError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn home_shard_is_stable_and_in_range() {
        for shards in [1usize, 2, 3, 4, 8] {
            for i in 0..1000u64 {
                let addr = 0x4000_0000 + i * 0x40;
                let h = home_shard(addr, shards);
                assert!(h < shards);
                assert_eq!(h, home_shard(addr, shards));
            }
        }
        assert_eq!(home_shard(0xdead_beef, 1), 0);
    }

    #[test]
    fn home_shard_spreads_strided_blocks() {
        // 64-byte-strided block addresses (the generators' layouts) must
        // not funnel to one shard.
        let shards = 4;
        let mut counts = [0usize; 4];
        for i in 0..4096u64 {
            counts[home_shard(0x4000_0000 + i * 0x40, shards)] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            assert!(
                (700..1400).contains(&c),
                "shard {s} got {c} of 4096 addresses"
            );
        }
    }

    #[test]
    fn worker_split_covers_all_workers() {
        let cfg = ClusterConfig {
            shards: 3,
            ..ClusterConfig::balanced(3, 8)
        };
        let per: Vec<usize> = (0..3).map(|s| cfg.shard_workers(s)).collect();
        assert_eq!(per.iter().sum::<usize>(), 8);
        assert_eq!(per, vec![3, 3, 2]);
    }

    #[test]
    fn validation_rejects_bad_configs() {
        assert!(ClusterConfig::balanced(0, 4).validate().is_err());
        assert!(ClusterConfig::balanced(4, 3).validate().is_err());
        assert!(ClusterConfig::balanced(4, 4).validate().is_ok());
        let mut cfg = ClusterConfig::balanced(2, 4);
        cfg.picos.tm_entries = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validation_bounds_simulation_threads() {
        assert!(ClusterConfig::balanced(4, 8)
            .with_threads(4)
            .validate()
            .is_ok());
        assert!(ClusterConfig::balanced(4, 8)
            .with_threads(0)
            .validate()
            .is_err());
        let err = ClusterConfig::balanced(4, 8)
            .with_threads(5)
            .validate()
            .unwrap_err();
        assert!(
            err.contains("5 simulation threads exceed 4 shards"),
            "unhelpful error: {err}"
        );
    }

    #[test]
    fn policy_labels_roundtrip() {
        for p in ShardPolicy::ALL {
            assert_eq!(ShardPolicy::parse(p.name()), Some(p));
            assert_eq!(p.to_string(), p.name());
        }
        assert_eq!(ShardPolicy::parse("rr"), Some(ShardPolicy::RoundRobin));
        assert_eq!(ShardPolicy::parse("bogus"), None);
        assert_eq!(ShardPolicy::default(), ShardPolicy::AddrHash);
    }
}
