//! Conservative (Chandy–Misra–Bryant-style) parallel event engine for the
//! cluster: shard *lanes* driven by scoped OS threads, with the
//! interconnect's delivery cost as lookahead and an epoch barrier instead
//! of null messages.
//!
//! # Why this is safe — and bit-identical to the serial pump
//!
//! Every cross-shard interaction travels over a [`Link`], and
//! `Link::send_words` delivers no earlier than
//! `t + occupancy + latency` (one flit minimum occupies the link for
//! `occupancy`, then the message ages `latency`). That sum is the engine's
//! **lookahead** `L`: inside a window `[T, T + L)` no shard can observe
//! anything another shard does within the same window, so each lane may
//! simulate its own events in the window with no synchronization at all.
//! Cross-shard sends are buffered in a per-lane **outbox** — the
//! single-producer message window replacing the serially-pumped link
//! writes — and replayed into the destination links by the coordinator at
//! the epoch barrier.
//!
//! Bit-identity with the serial engine comes from replaying those sends in
//! exactly the order the serial pump would have issued them. At one event
//! time the serial pump runs its phases over shards `0..k` in a fixed
//! order, and re-runs the whole pump ("rounds") while zero-cost cascades
//! keep producing same-time work, so the serial send order into any link
//! is precisely the lexicographic key
//! `(time, round, phase, sender shard, per-lane sequence)`. Each lane
//! stamps that key on everything it emits; the coordinator sorts and
//! replays, which also reproduces the link's internal `free_at`/sequence
//! evolution — and therefore every future delivery time — bit-for-bit.
//! Schedule-log order and the event stream are merged under the same keys.
//! Same-time rounds are lane-local by construction (a lane's round `r`
//! work can only be caused by its own round `r - 1` work, since everything
//! remote is at least `L` away), so per-lane round counters agree with the
//! serial pump's global ones.
//!
//! Epoch start times jump to the global minimum next event (idle gaps cost
//! nothing), and the epoch ends `L` after it, so every buffered send
//! delivers strictly beyond the epoch — the merge can never deliver into
//! the past, and each epoch makes strict progress (deadlock freedom
//! without null messages).
//!
//! The shard lanes live in a [`DisjointSlice`]: each worker thread owns
//! its contiguous lane chunk during an epoch's compute phase, and the
//! coordinator owns all lanes between the two barrier waits that delimit
//! it. Per-task readiness state (`frag_ready`, `local_popped`,
//! `local_slot`) is only ever touched by the task's *placement* shard —
//! readiness notices travel to the placement shard, and local pops happen
//! there — so those arrays ride in `DisjointSlice`s under the same
//! contract with task-granular ownership.
//!
//! The engine is *observationally* identical for any thread count
//! (including the inline path used when only one core is available),
//! because lane scheduling never influences what a lane computes — only
//! the merge order does, and that is sorted.

use super::{min_next, ClusterMsg, ClusterSession};
use crate::config::ClusterError;
use crate::fault::Packet;
use picos_core::{FinishedReq, PicosSystem, SlotRef};
use picos_hil::Link;
use picos_metrics::span::{SpanKind, SpanLog};
use picos_metrics::WindowSampler;
use picos_runtime::par::{available_threads, DisjointSlice, PhaseCell, SpinBarrier};
use picos_runtime::session::{EventLog, EventLoopCore, ScheduleLog, SimEvent};
use picos_trace::{Dependence, TaskId};
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};

/// Pump-phase tags, in serial pump order at one event time: worker
/// completions (`Finish` sends, `TaskFinished` events) come before
/// execution (`Ready` sends, `TaskStarted` events). Deliveries and ingress
/// sit between but emit nothing, so two tags suffice.
const PH_FINISH: u8 = 0;
const PH_EXEC: u8 = 1;

/// A buffered cross-shard send, replayed at the epoch barrier.
struct OutMsg {
    t: u64,
    round: u32,
    phase: u8,
    src: u16,
    dest: u16,
    seq: u32,
    words: u32,
    msg: ClusterMsg,
}

/// A task start recorded by a lane, merged into the global schedule log.
struct StartRec {
    t: u64,
    round: u32,
    lane: u16,
    seq: u32,
    task: u32,
    start: u64,
    dur: u64,
}

/// A simulation event recorded by a lane, merged into the global stream.
struct EvRec {
    t: u64,
    round: u32,
    phase: u8,
    lane: u16,
    seq: u32,
    ev: SimEvent,
}

/// One task's remote registrations: `(home shard, fragment)` pairs.
type RemoteFrags = Vec<(u16, Arc<[Dependence]>)>;

/// Read-only plan data plus the placement-owned per-task state, shared by
/// every lane during an epoch.
struct World<'a> {
    placement: &'a [u16],
    remote: &'a [RemoteFrags],
    frag_total: &'a [u8],
    durs: &'a [u64],
    frag_ready: DisjointSlice<'a, u8>,
    local_popped: DisjointSlice<'a, bool>,
    local_slot: DisjointSlice<'a, SlotRef>,
    dispatch: u64,
    collect_events: bool,
    /// Test hook: the lane id that must panic on its first epoch, so the
    /// caught-panic path is exercisable without corrupting real state.
    test_panic: Option<u16>,
}

/// One shard's private simulation state: exactly the per-shard columns of
/// [`ClusterSession`], plus the epoch buffers.
struct Lane {
    id: u16,
    sys: PicosSystem,
    workers: picos_hil::Workers,
    link: Link<Packet<ClusterMsg>>,
    expected: VecDeque<u32>,
    arrived: HashMap<u32, Arc<[Dependence]>>,
    slot_at: HashMap<u32, SlotRef>,
    exec_q: VecDeque<u32>,
    outbox: Vec<OutMsg>,
    starts: Vec<StartRec>,
    events: Vec<EvRec>,
    /// Lane-local span recorder (present iff the session records spans).
    /// Lanes stamp the same absolute cycles the serial pump would, so the
    /// concatenated, canonically sorted log is thread-count independent.
    spans: Option<SpanLog>,
    /// Completions this epoch (summed into `Ingest::finished` at merge).
    finished: usize,
    /// Last local event time processed (the global clock is their max).
    now: u64,
    /// Per-epoch emission counter behind every record's `seq`.
    seq: u32,
}

/// The coordinator's exclusive borrows of the session's global state,
/// plus reusable merge scratch.
struct MergeState<'a> {
    log: &'a mut ScheduleLog,
    events: &'a mut EventLog,
    link_sent: &'a mut [u64],
    finished: &'a mut usize,
    clock: &'a mut u64,
    /// The cluster-level telemetry sampler, advanced at epoch *planning*
    /// time: the merged global state there is exactly the state after
    /// every event before the epoch's start, which is what the serial
    /// engine's `set_clock` observes. Epoch ends are clamped to
    /// [`WindowSampler::next_boundary`] so no boundary ever falls strictly
    /// inside an epoch, where lanes would race past it unsampled.
    sampler: Option<&'a mut WindowSampler>,
    /// Per-shard worker capacity, for the occupancy probe.
    caps: Vec<usize>,
    sends: Vec<OutMsg>,
    starts: Vec<StartRec>,
    evs: Vec<EvRec>,
}

/// Epoch control block, written by the coordinator between barriers.
#[derive(Clone, Copy, Default)]
struct Ctl {
    end: u64,
    done: bool,
}

impl Lane {
    fn next_time(&self) -> Option<u64> {
        min_next([
            self.sys.next_event_time(),
            self.workers.next_done(),
            self.link.next_delivery(),
        ])
    }

    /// Simulates every local event strictly before `end`.
    fn run_epoch(&mut self, end: u64, w: &World<'_>) {
        if w.test_panic == Some(self.id) {
            panic!("injected test panic in lane {}", self.id);
        }
        self.seq = 0;
        let mut cur = u64::MAX;
        let mut round = 0u32;
        while let Some(t) = self.next_time() {
            if t >= end {
                break;
            }
            round = if t == cur { round + 1 } else { 0 };
            cur = t;
            self.pump_at(t, round, w);
        }
    }

    fn out(&mut self, t: u64, round: u32, phase: u8, dest: u16, words: usize, msg: ClusterMsg) {
        let seq = self.seq;
        self.seq += 1;
        self.outbox.push(OutMsg {
            t,
            round,
            phase,
            src: self.id,
            dest,
            seq,
            words: words as u32,
            msg,
        });
    }

    fn event(&mut self, t: u64, round: u32, phase: u8, ev: SimEvent, w: &World<'_>) {
        if !w.collect_events {
            return;
        }
        let seq = self.seq;
        self.seq += 1;
        self.events.push(EvRec {
            t,
            round,
            phase,
            lane: self.id,
            seq,
            ev,
        });
    }

    fn start_task(&mut self, t: u64, round: u32, task: u32, slot: SlotRef, w: &World<'_>) {
        let start = t + w.dispatch;
        let dur = w.durs[task as usize];
        let seq = self.seq;
        self.seq += 1;
        self.starts.push(StartRec {
            t,
            round,
            lane: self.id,
            seq,
            task,
            start,
            dur,
        });
        self.event(
            t,
            round,
            PH_EXEC,
            SimEvent::TaskStarted { task, at: start },
            w,
        );
        if let Some(log) = &mut self.spans {
            log.record(SpanKind::Dispatched, t, self.id, task, 0);
            log.record(SpanKind::Started, start, self.id, task, 0);
        }
        self.workers.start(start + dur, task, slot);
    }

    /// The serial pump body restricted to this shard, at one of its own
    /// event times — minus the Distributor (drained before epochs begin),
    /// with cross-shard sends buffered instead of sent. Phase structure
    /// and within-phase statement order mirror `ClusterSession::pump`
    /// exactly; keep the two in lockstep.
    fn pump_at(&mut self, t: u64, round: u32, w: &World<'_>) {
        self.now = t;
        self.sys.advance_to(t);
        let mut touched = false;
        let s = self.id;
        // Worker completions: notify the local shard now, remote fragment
        // shards at the barrier.
        while let Some((task, slot)) = self.workers.pop_done_at(t) {
            self.sys.notify_finished(FinishedReq {
                task: TaskId::new(task),
                slot,
            });
            for ri in 0..w.remote[task as usize].len() {
                let r = w.remote[task as usize][ri].0;
                self.out(t, round, PH_FINISH, r, 1, ClusterMsg::Finish { task });
                self.event(
                    t,
                    round,
                    PH_FINISH,
                    SimEvent::ShardMsg {
                        from: s,
                        to: r,
                        at: t,
                    },
                    w,
                );
                if let Some(log) = &mut self.spans {
                    log.record(SpanKind::MsgSend, t, s, task, 0);
                }
            }
            self.finished += 1;
            self.event(
                t,
                round,
                PH_FINISH,
                SimEvent::TaskFinished { task, at: t },
                w,
            );
            if let Some(log) = &mut self.spans {
                log.record(SpanKind::Finished, t, s, task, 0);
            }
            touched = true;
        }
        // Interconnect deliveries (sent at least one epoch ago). The
        // parallel engine only ever runs without a fault layer, so every
        // packet is plain and unwraps directly.
        while let Some(pkt) = self.link.pop_delivery_at(t) {
            if let Some(log) = &mut self.spans {
                let task = match &pkt.msg {
                    ClusterMsg::Register { task, .. }
                    | ClusterMsg::Ready { task }
                    | ClusterMsg::Finish { task } => *task,
                };
                log.record(SpanKind::MsgDeliver, t, s, task, pkt.id);
            }
            match pkt.msg {
                ClusterMsg::Register { task, deps } => {
                    self.arrived.insert(task, deps);
                }
                ClusterMsg::Ready { task } => {
                    let ti = task as usize;
                    // SAFETY: `Ready` travels to the placement shard, and
                    // every per-task readiness cell is owned by the task's
                    // placement lane — this one.
                    let ready = unsafe { w.frag_ready.get(ti) };
                    *ready += 1;
                    if *ready == w.frag_total[ti] {
                        debug_assert!(
                            // SAFETY: placement-lane-owned, as above.
                            unsafe { *w.local_popped.get(ti) },
                            "local pop counts toward the total"
                        );
                        self.exec_q.push_back(task);
                    }
                }
                ClusterMsg::Finish { task } => {
                    let slot = self
                        .slot_at
                        .remove(&task)
                        .expect("remote fragment popped before its task ran");
                    self.sys.notify_finished(FinishedReq {
                        task: TaskId::new(task),
                        slot,
                    });
                    touched = true;
                }
            }
        }
        // Ingress: feed the Gateway in creation order.
        while let Some(&head) = self.expected.front() {
            let Some(deps) = self.arrived.remove(&head) else {
                break;
            };
            self.sys.submit(TaskId::new(head), deps);
            self.expected.pop_front();
            touched = true;
        }
        if touched {
            self.sys.advance_to(t);
        }
        // Execution: first the tasks whose last remote notice arrived
        // earlier, then the shard's ready stream.
        while self.workers.idle() > 0 {
            let Some(&task) = self.exec_q.front() else {
                break;
            };
            self.exec_q.pop_front();
            // SAFETY: placement-lane-owned (the task executes here).
            let slot = unsafe { *w.local_slot.get(task as usize) };
            self.start_task(t, round, task, slot, w);
        }
        while let Some(rt) = self.sys.peek_ready() {
            let task = rt.task.raw();
            let ti = task as usize;
            if w.placement[ti] != s {
                // A remote fragment: consume it and wake the placement
                // shard at the barrier.
                let rt = self.sys.pop_ready().expect("peeked");
                self.slot_at.insert(task, rt.slot);
                let p = w.placement[ti];
                self.out(t, round, PH_EXEC, p, 1, ClusterMsg::Ready { task });
                self.event(
                    t,
                    round,
                    PH_EXEC,
                    SimEvent::ShardMsg {
                        from: s,
                        to: p,
                        at: t,
                    },
                    w,
                );
                if let Some(log) = &mut self.spans {
                    log.record(SpanKind::MsgSend, t, s, task, 0);
                }
                continue;
            }
            // SAFETY (all three cells): placement-lane-owned.
            let ready_now = unsafe { *w.frag_ready.get(ti) };
            if ready_now + 1 == w.frag_total[ti] {
                // Popping the local fragment completes readiness: take it
                // only when a worker can start it (the single-Picos TS
                // discipline — otherwise it waits in the TS buffer).
                if self.workers.idle() == 0 {
                    break;
                }
                let rt = self.sys.pop_ready().expect("peeked");
                unsafe {
                    *w.local_slot.get(ti) = rt.slot;
                    *w.local_popped.get(ti) = true;
                    *w.frag_ready.get(ti) += 1;
                }
                self.start_task(t, round, task, rt.slot, w);
            } else {
                // Remote notices outstanding: park the fragment so it
                // cannot head-of-line-block tasks queued behind it.
                let rt = self.sys.pop_ready().expect("peeked");
                unsafe {
                    *w.local_slot.get(ti) = rt.slot;
                    *w.local_popped.get(ti) = true;
                    *w.frag_ready.get(ti) += 1;
                }
            }
        }
    }
}

/// Picks the next epoch window, or `None` when every lane is quiescent or
/// past `bound`: start at the global minimum next event, end `lookahead`
/// later (clamped so events exactly at `bound` still run).
///
/// Telemetry rides on the planning point. The serial engine samples every
/// crossed window boundary in `set_clock`, *before* the pump at the new
/// event time runs — i.e. each boundary observes the state after every
/// event strictly before it. At planning time the merged global state is
/// exactly that for `tmin` (lanes are reassembled, all sends replayed), so
/// advancing the sampler to `tmin` here probes bit-identical values. The
/// epoch end is then clamped to the next boundary, which keeps every
/// future boundary on a planning point too.
fn plan_epoch(lanes: &[Lane], m: &mut MergeState<'_>, lookahead: u64, bound: u64) -> Option<u64> {
    let tmin = lanes.iter().filter_map(Lane::next_time).min()?;
    if tmin > bound {
        return None;
    }
    let mut end = tmin.saturating_add(lookahead).min(bound.saturating_add(1));
    if let Some(sampler) = m.sampler.as_deref_mut() {
        if sampler.due(tmin) {
            let (caps, link_sent) = (&m.caps, &*m.link_sent);
            sampler.advance(tmin, |out| probe_lanes(lanes, caps, link_sent, out));
        }
        // `next_boundary() > tmin` always (advance leaves it strictly
        // ahead), so the clamp never stalls the epoch loop.
        end = end.min(sampler.next_boundary());
    }
    Some(end)
}

/// The cluster-level telemetry probe over lane-held state, in the exact
/// series order of the serial `probe_cluster`: summed worker occupancy,
/// then per-link flight count and cumulative traffic. The fault series
/// never appear here — faulted sessions always run the serial engine.
fn probe_lanes(lanes: &[Lane], caps: &[usize], link_sent: &[u64], out: &mut [u64]) {
    out[0] = lanes
        .iter()
        .zip(caps)
        .map(|(lane, &cap)| (cap - lane.workers.idle()) as u64)
        .sum();
    for (s, lane) in lanes.iter().enumerate() {
        out[1 + 2 * s] = lane.link.in_flight() as u64;
        out[2 + 2 * s] = link_sent[s];
    }
}

/// Replays one epoch's buffered emissions in serial-pump order.
fn merge_epoch(lanes: &mut [Lane], m: &mut MergeState<'_>) {
    m.sends.clear();
    m.starts.clear();
    m.evs.clear();
    for lane in lanes.iter_mut() {
        m.sends.append(&mut lane.outbox);
        m.starts.append(&mut lane.starts);
        m.evs.append(&mut lane.events);
        *m.finished += lane.finished;
        lane.finished = 0;
        *m.clock = (*m.clock).max(lane.now);
    }
    // The serial pump's send order into every link: time, then pump round,
    // then phase, then sender shard, then the sender's emission order.
    // Replaying in that order reproduces each link's free_at/seq evolution
    // (and so every delivery time) bit-for-bit.
    m.sends
        .sort_unstable_by_key(|o| (o.t, o.round, o.phase, o.src, o.seq));
    for o in m.sends.drain(..) {
        m.link_sent[o.dest as usize] += 1;
        lanes[o.dest as usize]
            .link
            .send_words(o.t, Packet::plain(o.msg), o.words as usize);
    }
    // All starts happen in the execution phase, so the schedule-log key
    // needs no phase component.
    m.starts
        .sort_unstable_by_key(|r| (r.t, r.round, r.lane, r.seq));
    for r in m.starts.drain(..) {
        m.log.begin(r.task, r.start, r.dur);
    }
    m.evs
        .sort_unstable_by_key(|e| (e.t, e.round, e.phase, e.lane, e.seq));
    for e in m.evs.drain(..) {
        m.events.push(e.ev);
    }
}

/// The epoch loop on the caller's thread — the engine when only one core
/// (or one configured thread) is effectively available. Identical results
/// to the threaded loop: scheduling never influences what a lane computes.
fn run_inline(lanes: &mut [Lane], world: &World<'_>, m: &mut MergeState<'_>, la: u64, bound: u64) {
    while let Some(end) = plan_epoch(lanes, m, la, bound) {
        for lane in lanes.iter_mut() {
            lane.run_epoch(end, world);
        }
        merge_epoch(lanes, m);
    }
}

/// The panic payload as a message, for [`ClusterError::LanePanic`].
fn panic_message(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

/// Records the *first* caught panic. Must be called before poisoning the
/// barrier so the original panic outranks the secondary poison panics it
/// releases in the other threads.
fn note_panic(note: &Mutex<Option<String>>, p: Box<dyn std::any::Any + Send>) {
    if let Ok(mut slot) = note.lock() {
        if slot.is_none() {
            *slot = Some(panic_message(p));
        }
    }
}

/// The epoch loop on `threads` scoped OS threads. Thread 0 is the
/// coordinator *and* drives lane chunk 0; two barrier waits delimit each
/// epoch: plan → **barrier** → compute → **barrier** → merge/plan …
///
/// A panicking lane (or coordinator) is *caught*: the catcher records the
/// first panic message, poisons the barrier so every other participant
/// unblocks (their poison panics are caught and discarded in turn), and
/// the loop returns the message instead of unwinding — the caller turns it
/// into a typed [`ClusterError::LanePanic`].
fn run_threaded(
    lanes: &mut [Lane],
    world: &World<'_>,
    m: &mut MergeState<'_>,
    la: u64,
    bound: u64,
    threads: usize,
) -> Option<String> {
    let chunk = lanes.len().div_ceil(threads);
    let barrier = SpinBarrier::new(threads);
    let ctl = PhaseCell::new(Ctl::default());
    let shared = DisjointSlice::new(lanes);
    let note: Mutex<Option<String>> = Mutex::new(None);
    std::thread::scope(|scope| {
        for tid in 1..threads {
            let lo = tid * chunk;
            let hi = ((tid + 1) * chunk).min(shared.len());
            let (barrier, ctl, shared, note) = (&barrier, &ctl, &shared, &note);
            scope.spawn(move || {
                let work = || loop {
                    barrier.wait();
                    // SAFETY: the coordinator wrote `ctl` before releasing
                    // this barrier and won't touch it until the next one.
                    let c = unsafe { *ctl.get() };
                    if c.done {
                        break;
                    }
                    for i in lo..hi {
                        // SAFETY: lane chunk [lo, hi) is this thread's
                        // alone during the compute phase.
                        unsafe { shared.get(i) }.run_epoch(c.end, world);
                    }
                    barrier.wait();
                };
                if let Err(p) = catch_unwind(AssertUnwindSafe(work)) {
                    // Record, then unblock everyone else — they would
                    // otherwise spin on a participant that never arrives.
                    note_panic(note, p);
                    barrier.poison();
                }
            });
        }
        let coordinate = || loop {
            // SAFETY: every worker is parked at (or headed to) the first
            // barrier and touches no shared state until it releases — the
            // coordinator owns all lanes and the control block here.
            let done = unsafe {
                let all = shared.as_mut_slice();
                merge_epoch(all, m);
                let c = ctl.get();
                match plan_epoch(all, m, la, bound) {
                    Some(end) => {
                        *c = Ctl { end, done: false };
                        false
                    }
                    None => {
                        *c = Ctl { end: 0, done: true };
                        true
                    }
                }
            };
            barrier.wait();
            if done {
                break;
            }
            // SAFETY: written before the barrier, stable until the next.
            let end = unsafe { ctl.get() }.end;
            for i in 0..chunk.min(shared.len()) {
                // SAFETY: lane chunk 0 is thread 0's during compute.
                unsafe { shared.get(i) }.run_epoch(end, world);
            }
            barrier.wait();
        };
        if let Err(p) = catch_unwind(AssertUnwindSafe(coordinate)) {
            note_panic(&note, p);
            barrier.poison();
        }
    });
    note.into_inner().unwrap_or_else(|e| e.into_inner())
}

impl ClusterSession {
    /// The conservative engine's lookahead: a message sent at `t` delivers
    /// no earlier than `t + occupancy + latency` (`Link::send_words` costs
    /// at least one `occupancy` flit plus `latency`, and link backpressure
    /// only delays further).
    fn lookahead(&self) -> u64 {
        self.cfg.link.occupancy + self.cfg.link.latency
    }

    /// Whether the epoch engine may drive this session:
    ///
    /// * more than one configured thread and more than one shard;
    /// * nonzero lookahead (a zero-cost interconnect leaves no safe
    ///   window);
    /// * no fault plan — the fault layer's ack/retry and pause bookkeeping
    ///   is global state threaded through every pump, so faulted sessions
    ///   run the serial reference engine (bit-identical by the same
    ///   conformance that pins the parallel engine);
    /// * no caught lane panic — a dead session must not be driven.
    ///
    /// A telemetry sampler does *not* force the serial engine: the
    /// cluster's windowed series probe global state, but only ever at
    /// window boundaries, and the epoch planner clamps every epoch to the
    /// next boundary — so each boundary is observed at a planning point,
    /// where the merged global state equals the serial engine's (see
    /// [`plan_epoch`]).
    pub(super) fn par_eligible(&self) -> bool {
        self.cfg.threads > 1
            && self.cfg.shards > 1
            && self.lookahead() > 0
            && self.faults.is_none()
            && self.engine_err.is_none()
    }

    /// Drives every event at time ≤ `bound` through the parallel engine:
    /// serial pumping while the Distributor still owes task creations
    /// (their gates watch the *global* finished count, which only the
    /// serial engine tracks continuously), then lane epochs once the feed
    /// is drained. Leaves the clock at the last processed event time, like
    /// the serial event loop.
    pub(super) fn drive_events_par(&mut self, bound: u64) {
        loop {
            self.pump();
            if self.next_feed == self.ingest.admitted {
                break;
            }
            match self.next_time() {
                Some(tn) if tn <= bound => self.set_clock(tn),
                _ => return,
            }
        }
        self.run_epochs(bound);
    }

    /// Splits the session into shard lanes, runs the epoch loop, and
    /// reassembles — the serial representation stays authoritative between
    /// drives.
    fn run_epochs(&mut self, bound: u64) {
        let k = self.cfg.shards;
        let lookahead = self.lookahead();
        debug_assert!(lookahead > 0, "guarded by par_eligible");
        let mut sys = std::mem::take(&mut self.sys).into_iter();
        let mut workers = std::mem::take(&mut self.workers).into_iter();
        let mut links = std::mem::take(&mut self.links).into_iter();
        let mut expected = std::mem::take(&mut self.expected).into_iter();
        let mut arrived = std::mem::take(&mut self.arrived).into_iter();
        let mut slot_at = std::mem::take(&mut self.slot_at).into_iter();
        let mut exec_q = std::mem::take(&mut self.exec_q).into_iter();
        let mut lanes: Vec<Lane> = (0..k)
            .map(|id| Lane {
                id: id as u16,
                sys: sys.next().expect("k shards"),
                workers: workers.next().expect("k shards"),
                link: links.next().expect("k shards"),
                expected: expected.next().expect("k shards"),
                arrived: arrived.next().expect("k shards"),
                slot_at: slot_at.next().expect("k shards"),
                exec_q: exec_q.next().expect("k shards"),
                outbox: Vec::new(),
                starts: Vec::new(),
                events: Vec::new(),
                spans: self.spans.as_ref().map(|_| SpanLog::new()),
                finished: 0,
                now: self.t,
                seq: 0,
            })
            .collect();
        let world = World {
            placement: &self.placement,
            remote: &self.remote,
            frag_total: &self.frag_total,
            durs: &self.durs,
            frag_ready: DisjointSlice::new(&mut self.frag_ready),
            local_popped: DisjointSlice::new(&mut self.local_popped),
            local_slot: DisjointSlice::new(&mut self.local_slot),
            dispatch: self.cfg.dispatch,
            collect_events: self.events.is_enabled(),
            test_panic: test_lane_panic(),
        };
        let caps: Vec<usize> = (0..k).map(|s| self.cfg.shard_workers(s)).collect();
        let mut merge = MergeState {
            log: &mut self.log,
            events: &mut self.events,
            link_sent: &mut self.link_sent,
            finished: &mut self.ingest.finished,
            clock: &mut self.t,
            sampler: self.sampler.as_mut(),
            caps,
            sends: Vec::new(),
            starts: Vec::new(),
            evs: Vec::new(),
        };
        // The configured count caps OS threads; the machine caps them
        // further (spawning beyond the cores only adds barrier traffic,
        // and results are identical for any thread count). Setting
        // PICOS_CLUSTER_FORCE_THREADS skips the machine cap so the
        // threaded path is exercised even on starved boxes.
        let mut threads = self.cfg.threads.min(k).max(1);
        if std::env::var_os("PICOS_CLUSTER_FORCE_THREADS").is_none() {
            threads = threads.min(available_threads());
        }
        let panic_note = if threads <= 1 {
            catch_unwind(AssertUnwindSafe(|| {
                run_inline(&mut lanes, &world, &mut merge, lookahead, bound)
            }))
            .err()
            .map(panic_message)
        } else {
            run_threaded(&mut lanes, &world, &mut merge, lookahead, bound, threads)
        };
        for lane in lanes {
            self.sys.push(lane.sys);
            self.workers.push(lane.workers);
            self.links.push(lane.link);
            self.expected.push(lane.expected);
            self.arrived.push(lane.arrived);
            self.slot_at.push(lane.slot_at);
            self.exec_q.push(lane.exec_q);
            if let (Some(log), Some(lane_log)) = (self.spans.as_mut(), lane.spans) {
                log.extend_from(&lane_log);
            }
        }
        if let Some(detail) = panic_note {
            // Lane state past the panic point is unspecified — even the
            // parity advance below could trip an engine assert. Mark the
            // session dead so no driver touches it again, and surface the
            // typed error from `into_report`.
            self.engine_err = Some(ClusterError::LanePanic { detail });
            return;
        }
        // Serial parity: every pump advances every shard core to the
        // current event time; lanes only advanced to their own last event.
        let t = self.t;
        for s in self.sys.iter_mut() {
            s.advance_to(t);
        }
    }
}

#[cfg(test)]
thread_local! {
    /// Lane id forced to panic on its first epoch (tests only; a
    /// thread-local so parallel `cargo test` threads stay isolated).
    static TEST_LANE_PANIC: std::cell::Cell<Option<u16>> =
        const { std::cell::Cell::new(None) };
}

#[cfg(test)]
fn test_lane_panic() -> Option<u16> {
    TEST_LANE_PANIC.with(|c| c.get())
}

#[cfg(not(test))]
fn test_lane_panic() -> Option<u16> {
    None
}

#[cfg(test)]
mod panic_tests {
    use super::*;
    use crate::config::ClusterConfig;
    use crate::system::run_cluster;
    use picos_trace::gen;

    #[test]
    fn lane_panic_surfaces_as_typed_error_not_hang() {
        // Force real OS threads so the barrier/poison path is exercised
        // even on a one-core machine (same caveat as the epoch-loop test:
        // the env var only selects the threaded loop).
        std::env::set_var("PICOS_CLUSTER_FORCE_THREADS", "1");
        TEST_LANE_PANIC.with(|c| c.set(Some(3)));
        let tr = gen::stream(gen::StreamConfig::heavy(200));
        let cfg = ClusterConfig::balanced(4, 8).with_threads(4);
        let got = run_cluster(&tr, &cfg);
        TEST_LANE_PANIC.with(|c| c.set(None));
        std::env::remove_var("PICOS_CLUSTER_FORCE_THREADS");
        match got {
            Err(ClusterError::LanePanic { detail }) => {
                assert!(
                    detail.contains("injected test panic in lane 3"),
                    "panic message must survive: {detail}"
                );
            }
            other => panic!("expected LanePanic, got {other:?}"),
        }
    }

    #[test]
    fn inline_lane_panic_is_caught_too() {
        TEST_LANE_PANIC.with(|c| c.set(Some(0)));
        let tr = gen::stream(gen::StreamConfig::heavy(150));
        // threads > available cores on CI boxes falls back to the inline
        // epoch loop (no FORCE env), covering the catch there.
        let cfg = ClusterConfig::balanced(2, 4).with_threads(2);
        let got = run_cluster(&tr, &cfg);
        TEST_LANE_PANIC.with(|c| c.set(None));
        assert!(
            matches!(got, Err(ClusterError::LanePanic { .. })),
            "expected LanePanic, got {got:?}"
        );
    }
}
