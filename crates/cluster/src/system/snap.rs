//! Snapshot/restore for [`ClusterSession`]: the full dynamic cluster
//! state — every shard core, worker pool and interconnect port, the
//! ingress reorder stages, the Distributor's per-task plan, the fault
//! layer and the observation state — through the positional codec.
//!
//! The restore contract mirrors the other engines': build a session with
//! the *identical* configuration, then [`ClusterSession::load_state`]
//! overwrites its dynamic state. A configuration fingerprint (plus
//! attachment guards for the sampler, span log and fault plan) rejects
//! mismatched targets instead of silently diverging. The engine thread
//! count is deliberately **not** fingerprinted: the parallel engine is
//! bit-identical to the serial one, so a snapshot taken under either
//! drives on unchanged under the other.

use super::{ClusterMsg, ClusterSession};
use crate::config::{ClusterConfig, ShardPolicy};
use crate::fault::Packet;
use picos_core::SlotRef;
use picos_metrics::span::SpanLog;
use picos_metrics::WindowSampler;
use picos_runtime::snap::{dir_code, dir_from};
use picos_trace::snap::{guard, Dec, Enc, SnapError};
use picos_trace::{Dependence, Value};
use std::collections::VecDeque;
use std::sync::Arc;

/// Stable wire code of a placement policy.
fn policy_code(p: ShardPolicy) -> u64 {
    match p {
        ShardPolicy::AddrHash => 0,
        ShardPolicy::RoundRobin => 1,
        ShardPolicy::LocalityAffine => 2,
    }
}

/// Mixes every behaviour-relevant cluster configuration field (including
/// the attached fault plan — its seed alone changes every fault draw)
/// into a fingerprint, so a snapshot only restores into a session built
/// from an equivalent config. Each shard core's own configuration is
/// guarded separately inside its [`picos_core::PicosSystem`] record.
fn cluster_fingerprint(cfg: &ClusterConfig) -> u64 {
    fn mix(h: u64, v: u64) -> u64 {
        (h ^ v).wrapping_mul(0x100_0000_01b3)
    }
    let mut h = [
        cfg.shards as u64,
        policy_code(cfg.policy),
        cfg.workers as u64,
        cfg.link.occupancy,
        cfg.link.latency,
        cfg.link.setup,
        cfg.link.width as u64,
        cfg.dispatch,
    ]
    .into_iter()
    .fold(0xcbf2_9ce4_8422_2325, mix);
    if let Some(p) = &cfg.faults {
        h = [
            1,
            p.seed,
            p.drop_rate.to_bits(),
            p.dup_rate.to_bits(),
            p.jitter_rate.to_bits(),
            p.max_jitter,
            p.link_timeout,
            p.max_retries as u64,
            p.pauses.len() as u64,
            p.worker_faults.len() as u64,
        ]
        .into_iter()
        .fold(h, mix);
        for w in &p.pauses {
            h = mix(mix(mix(h, w.shard as u64), w.at), w.until);
        }
        for f in &p.worker_faults {
            h = mix(mix(h, f.shard as u64), f.at);
        }
    }
    h
}

/// Packs a TM slot reference into one integer (`trs << 16 | entry`).
fn slot_pack(s: SlotRef) -> u64 {
    (s.trs as u64) << 16 | s.entry as u64
}

fn slot_unpack(v: u64) -> SlotRef {
    SlotRef::new((v >> 16) as u8, (v & 0xFFFF) as u16)
}

fn enc_deps(e: &mut Enc, deps: &Arc<[Dependence]>) {
    e.seq(deps.iter(), |e, d| {
        e.u64(d.addr).u64(dir_code(d.dir));
    });
}

fn dec_deps(d: &mut Dec) -> Result<Arc<[Dependence]>, SnapError> {
    let deps: Vec<Dependence> = d.seq(|d| Ok(Dependence::new(d.u64()?, dir_from(d.u64()?)?)))?;
    Ok(deps.into())
}

/// Encodes one interconnect message (variant code first).
fn enc_cluster_msg(e: &mut Enc, m: &ClusterMsg) {
    match m {
        ClusterMsg::Register { task, deps } => {
            e.u64(0).u32(*task);
            enc_deps(e, deps);
        }
        ClusterMsg::Ready { task } => {
            e.u64(1).u32(*task);
        }
        ClusterMsg::Finish { task } => {
            e.u64(2).u32(*task);
        }
    }
}

/// Decodes one interconnect message written by [`enc_cluster_msg`].
fn dec_cluster_msg(d: &mut Dec) -> Result<ClusterMsg, SnapError> {
    match d.u64()? {
        0 => Ok(ClusterMsg::Register {
            task: d.u32()?,
            deps: dec_deps(d)?,
        }),
        1 => Ok(ClusterMsg::Ready { task: d.u32()? }),
        2 => Ok(ClusterMsg::Finish { task: d.u32()? }),
        other => Err(SnapError::new(format!(
            "unknown cluster message code {other}"
        ))),
    }
}

/// Encodes one wire packet: the fault envelope plus its message.
fn enc_packet(e: &mut Enc, p: &Packet<ClusterMsg>) {
    e.u32(p.id).bool(p.drop);
    enc_cluster_msg(e, &p.msg);
}

fn dec_packet(d: &mut Dec) -> Result<Packet<ClusterMsg>, SnapError> {
    Ok(Packet {
        id: d.u32()?,
        drop: d.bool()?,
        msg: dec_cluster_msg(d)?,
    })
}

impl ClusterSession {
    /// Serializes the full dynamic cluster state.
    /// [`ClusterSession::load_state`] overwrites an identically configured
    /// session with it; [`Clone`] is the in-memory fork.
    pub fn save_state(&self) -> Value {
        let mut e = Enc::new();
        e.u64(cluster_fingerprint(&self.cfg))
            .bool(self.sampler.is_some())
            .bool(self.spans.is_some())
            .bool(self.faults.is_some())
            .val(Value::Arr(
                self.sys.iter().map(|s| s.save_state()).collect(),
            ))
            .val(Value::Arr(
                self.workers.iter().map(|w| w.save_state()).collect(),
            ))
            .val(Value::Arr(
                self.links
                    .iter()
                    .map(|l| l.save_state_with(enc_packet))
                    .collect(),
            ))
            .seq(self.expected.iter(), |e, q| {
                e.u32s(q.iter().copied());
            })
            .seq(self.arrived.iter(), |e, m| {
                let mut entries: Vec<(u32, &Arc<[Dependence]>)> =
                    m.iter().map(|(&t, d)| (t, d)).collect();
                entries.sort_unstable_by_key(|&(t, _)| t);
                e.seq(entries, |e, (t, deps)| {
                    e.u32(t);
                    enc_deps(e, deps);
                });
            })
            .seq(self.slot_at.iter(), |e, m| {
                let mut entries: Vec<(u32, SlotRef)> = m.iter().map(|(&t, &s)| (t, s)).collect();
                entries.sort_unstable_by_key(|&(t, _)| t);
                e.seq(entries, |e, (t, slot)| {
                    e.u32(t).u64(slot_pack(slot));
                });
            })
            .seq(self.exec_q.iter(), |e, q| {
                e.u32s(q.iter().copied());
            })
            .u64s(self.placement.iter().map(|&p| p as u64))
            .seq(self.local.iter(), enc_deps)
            .seq(self.remote.iter(), |e, frags| {
                e.seq(frags.iter(), |e, (shard, deps)| {
                    e.u64(*shard as u64);
                    enc_deps(e, deps);
                });
            })
            .u64s(self.frag_total.iter().map(|&v| v as u64))
            .u64s(self.frag_ready.iter().map(|&v| v as u64))
            .bools(self.local_popped.iter().copied())
            .u64s(self.local_slot.iter().map(|&s| slot_pack(s)))
            .u64s(self.durs.iter().copied())
            .usize(self.rr)
            .usize(self.next_feed)
            .u64(self.t)
            .u64s(self.link_sent.iter().copied())
            .u32s({
                let mut r: Vec<u32> = self.restarts.iter().copied().collect();
                r.sort_unstable();
                r
            })
            .val(self.ingest.save_state())
            .val(self.log.save_state())
            .val(self.events.save_state())
            .val(match &self.sampler {
                Some(s) => s.save_state(),
                None => Value::Null,
            })
            .val(match &self.spans {
                Some(s) => s.save_state(),
                None => Value::Null,
            })
            .val(match &self.faults {
                Some(f) => f.save_state_with(enc_cluster_msg),
                None => Value::Null,
            });
        e.done()
    }

    /// Overwrites this session's dynamic state with the state recorded by
    /// [`ClusterSession::save_state`]. Continuing the restored session —
    /// under either the serial or the parallel engine — is bit-exact with
    /// the session the snapshot was taken from.
    ///
    /// # Errors
    ///
    /// Returns [`SnapError`] on a malformed record or when the snapshot
    /// was taken under a different cluster configuration, fault plan or
    /// observation setup.
    pub fn load_state(&mut self, v: &Value) -> Result<(), SnapError> {
        let k = self.cfg.shards;
        let mut d = Dec::new(v, "cluster session")?;
        guard("cluster config", d.u64()?, cluster_fingerprint(&self.cfg))?;
        guard(
            "cluster sampler attached",
            d.bool()? as u64,
            self.sampler.is_some() as u64,
        )?;
        guard(
            "cluster spans attached",
            d.bool()? as u64,
            self.spans.is_some() as u64,
        )?;
        guard(
            "cluster fault layer attached",
            d.bool()? as u64,
            self.faults.is_some() as u64,
        )?;
        let sys = d.val()?;
        let workers = d.val()?;
        let links = d.val()?;
        let expected: Vec<VecDeque<u32>> = d.seq(|d| Ok(d.u32s()?.into()))?;
        let arrived: Vec<Vec<(u32, Arc<[Dependence]>)>> =
            d.seq(|d| d.seq(|d| Ok((d.u32()?, dec_deps(d)?))))?;
        let slot_at: Vec<Vec<(u32, SlotRef)>> =
            d.seq(|d| d.seq(|d| Ok((d.u32()?, slot_unpack(d.u64()?)))))?;
        let exec_q: Vec<VecDeque<u32>> = d.seq(|d| Ok(d.u32s()?.into()))?;
        for (name, len) in [
            ("expected", expected.len()),
            ("arrived", arrived.len()),
            ("slot_at", slot_at.len()),
            ("exec_q", exec_q.len()),
        ] {
            if len != k {
                return Err(SnapError::new(format!(
                    "cluster session: {len} {name} columns for {k} shards"
                )));
            }
        }
        let placement: Vec<u16> = d.u64s()?.into_iter().map(|v| v as u16).collect();
        let local: Vec<Arc<[Dependence]>> = d.seq(dec_deps)?;
        let remote: Vec<Vec<(u16, Arc<[Dependence]>)>> =
            d.seq(|d| d.seq(|d| Ok((d.u64()? as u16, dec_deps(d)?))))?;
        let frag_total: Vec<u8> = d.u64s()?.into_iter().map(|v| v as u8).collect();
        let frag_ready: Vec<u8> = d.u64s()?.into_iter().map(|v| v as u8).collect();
        let local_popped = d.bools()?;
        let local_slot: Vec<SlotRef> = d.u64s()?.into_iter().map(slot_unpack).collect();
        let durs = d.u64s()?;
        let rr = d.usize()?;
        let next_feed = d.usize()?;
        let t = d.u64()?;
        let link_sent = d.u64s()?;
        if link_sent.len() != k {
            return Err(SnapError::new(format!(
                "cluster session: {} link counters for {k} shards",
                link_sent.len()
            )));
        }
        let restarts = d.u32s()?;
        // Everything decoded; now apply, overwriting in place so a decode
        // error above leaves the session untouched.
        {
            let mut d = Dec::new(sys, "cluster shard cores")?;
            if d.remaining() != k {
                return Err(SnapError::new(format!(
                    "cluster session: {} shard cores for {k} shards",
                    d.remaining()
                )));
            }
            for s in self.sys.iter_mut() {
                s.load_state(d.val()?)?;
            }
        }
        {
            let mut d = Dec::new(workers, "cluster worker pools")?;
            if d.remaining() != k {
                return Err(SnapError::new(format!(
                    "cluster session: {} worker pools for {k} shards",
                    d.remaining()
                )));
            }
            for w in self.workers.iter_mut() {
                w.load_state(d.val()?)?;
            }
        }
        {
            let mut d = Dec::new(links, "cluster links")?;
            if d.remaining() != k {
                return Err(SnapError::new(format!(
                    "cluster session: {} links for {k} shards",
                    d.remaining()
                )));
            }
            for l in self.links.iter_mut() {
                l.load_state_with(d.val()?, dec_packet)?;
            }
        }
        self.ingest.load_state(d.val()?)?;
        self.log.load_state(d.val()?)?;
        self.events.load_state(d.val()?)?;
        self.sampler = match d.val()? {
            Value::Null => None,
            v => Some(WindowSampler::load_state(v)?),
        };
        self.spans = match d.val()? {
            Value::Null => None,
            v => Some(SpanLog::load_state(v)?),
        };
        match (&mut self.faults, d.val()?) {
            (None, Value::Null) => {}
            (Some(f), v) => f.load_state_with(v, dec_cluster_msg)?,
            (None, _) => {
                return Err(SnapError::new("cluster session: unexpected fault state"));
            }
        }
        self.expected = expected;
        self.arrived = arrived
            .into_iter()
            .map(|m| m.into_iter().collect())
            .collect();
        self.slot_at = slot_at
            .into_iter()
            .map(|m| m.into_iter().collect())
            .collect();
        self.exec_q = exec_q;
        self.placement = placement;
        self.local = local;
        self.remote = remote;
        self.frag_total = frag_total;
        self.frag_ready = frag_ready;
        self.local_popped = local_popped;
        self.local_slot = local_slot;
        self.durs = durs;
        self.rr = rr;
        self.next_feed = next_feed;
        self.t = t;
        self.link_sent = link_sent;
        self.restarts = restarts.into_iter().collect();
        self.engine_err = None;
        Ok(())
    }
}
