//! The cluster driver: N Picos shards, a Distributor, and the inter-shard
//! interconnect, advanced as one deterministic discrete-event loop.
//!
//! # Protocol
//!
//! For every task the Distributor splits the dependence list into
//! per-home-shard fragments (see [`crate::home_shard`]):
//!
//! 1. **Registration.** The local fragment (placement shard) enters that
//!    shard's Gateway queue directly, exactly like the HW-only HIL driver's
//!    pre-load. Remote fragments cross the interconnect as registration
//!    messages of `deps + 1` payload words. Each shard **ingests fragments
//!    in global task-creation order** (an ingress reorder stage buffers
//!    early arrivals), so every per-address dependence chain sees the same
//!    registration order a single Picos would — this is what preserves
//!    TaskGraph-order correctness for any shard count.
//! 2. **Wake-up.** A fragment popping out of a remote shard's Task
//!    Scheduler sends a ready notice back to the placement shard (one
//!    word). The task may start once its local fragment has popped *and*
//!    every remote notice has arrived.
//! 3. **Execution.** The placement shard's TS output port hands tasks to
//!    workers with the HW-only dispatch cost. Remote-task fragments at the
//!    head of the ready stream are consumed unconditionally; a local task
//!    at the head waits for a free worker (the single-Picos discipline).
//! 4. **Finish.** Worker completion notifies the local shard immediately
//!    and every remote fragment shard over the interconnect, releasing
//!    TM/DM/VM entries and waking successors there.
//!
//! With one shard, steps 2 and 4's remote halves never fire and the loop
//! is statement-for-statement the HW-only driver: cycle-identical.

use crate::config::{home_shard, ClusterConfig, ClusterError, ShardPolicy};
use picos_core::{FinishedReq, PicosSystem, SlotRef, Stats};
use picos_hil::Link;
use picos_runtime::ExecReport;
use picos_trace::{Dependence, TaskId, Trace};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Messages crossing the inter-shard interconnect.
#[derive(Debug, Clone)]
enum ClusterMsg {
    /// A remote dependence-registration fragment travelling to the home
    /// shard of its addresses. Sized by its dependence count on the link.
    Register { task: u32, deps: Arc<[Dependence]> },
    /// A remote fragment became ready; travels to the placement shard.
    Ready { task: u32 },
    /// The task finished; travels to a remote fragment's shard.
    Finish { task: u32 },
}

/// Per-task placement and fragment plan, fixed before the clock starts.
struct Plan {
    /// Executing shard of each task.
    placement: Vec<u16>,
    /// Dependences homed at the placement shard (order preserved).
    local: Vec<Arc<[Dependence]>>,
    /// Remote fragments, ascending shard order.
    remote: Vec<Vec<(u16, Arc<[Dependence]>)>>,
}

impl Plan {
    fn build(trace: &Trace, cfg: &ClusterConfig) -> Plan {
        let n = trace.len();
        let k = cfg.shards;
        let empty: Arc<[Dependence]> = Arc::from(Vec::new());
        let mut placement = Vec::with_capacity(n);
        let mut local = Vec::with_capacity(n);
        let mut remote = Vec::with_capacity(n);
        if k == 1 {
            for t in trace.iter() {
                placement.push(0);
                local.push(t.deps.clone());
                remote.push(Vec::new());
            }
            return Plan {
                placement,
                local,
                remote,
            };
        }
        let mut rr = 0usize; // fallback for dependence-free tasks
        let mut counts = vec![0usize; k];
        for (i, t) in trace.iter().enumerate() {
            let p = match cfg.policy {
                ShardPolicy::RoundRobin => i % k,
                ShardPolicy::AddrHash => match t.deps.first() {
                    Some(d) => home_shard(d.addr, k),
                    None => {
                        rr += 1;
                        (rr - 1) % k
                    }
                },
                ShardPolicy::LocalityAffine => {
                    if t.deps.is_empty() {
                        rr += 1;
                        (rr - 1) % k
                    } else {
                        counts.iter_mut().for_each(|c| *c = 0);
                        for d in t.deps.iter() {
                            counts[home_shard(d.addr, k)] += 1;
                        }
                        let best = *counts.iter().max().expect("k > 0");
                        counts.iter().position(|&c| c == best).expect("max exists")
                    }
                }
            };
            // Bucket the dependence list by home shard, preserving order.
            let mut buckets: Vec<(usize, Vec<Dependence>)> = Vec::new();
            for &d in t.deps.iter() {
                let h = home_shard(d.addr, k);
                match buckets.iter_mut().find(|(s, _)| *s == h) {
                    Some((_, v)) => v.push(d),
                    None => buckets.push((h, vec![d])),
                }
            }
            buckets.sort_by_key(|(s, _)| *s);
            let mut loc = empty.clone();
            let mut rem = Vec::new();
            for (s, deps) in buckets {
                if s == p {
                    loc = deps.into();
                } else {
                    rem.push((s as u16, Arc::<[Dependence]>::from(deps)));
                }
            }
            placement.push(p as u16);
            local.push(loc);
            remote.push(rem);
        }
        Plan {
            placement,
            local,
            remote,
        }
    }
}

fn min_next(cands: impl IntoIterator<Item = Option<u64>>) -> Option<u64> {
    cands.into_iter().flatten().min()
}

/// Runs a trace through the cluster; returns the schedule with engine
/// label `"cluster"`.
///
/// # Errors
///
/// [`ClusterError::Config`] on an invalid configuration,
/// [`ClusterError::Stalled`] if the run cannot complete (an engine bug).
pub fn run_cluster(trace: &Trace, cfg: &ClusterConfig) -> Result<ExecReport, ClusterError> {
    run_cluster_with_stats(trace, cfg).map(|(r, _)| r)
}

/// Sums per-shard hardware counters into cluster totals (peaks add, the
/// same convention [`PicosSystem::stats`] uses across its own instances).
pub fn merged_stats(per_shard: &[Stats]) -> Stats {
    let mut total = Stats::default();
    for s in per_shard {
        total.merge(s);
    }
    total
}

/// Like [`run_cluster`], but also returns each shard's hardware counters
/// (index = shard id; aggregate with [`merged_stats`]).
///
/// # Errors
///
/// See [`run_cluster`].
pub fn run_cluster_with_stats(
    trace: &Trace,
    cfg: &ClusterConfig,
) -> Result<(ExecReport, Vec<Stats>), ClusterError> {
    cfg.validate().map_err(ClusterError::Config)?;
    let n = trace.len();
    let k = cfg.shards;
    let plan = Plan::build(trace, cfg);

    let mut sys: Vec<PicosSystem> = (0..k)
        .map(|_| PicosSystem::new(cfg.picos.clone()))
        .collect();
    let mut workers: Vec<picos_hil::Workers> = (0..k)
        .map(|s| picos_hil::Workers::new(cfg.shard_workers(s)))
        .collect();
    let mut links: Vec<Link<ClusterMsg>> = (0..k).map(|_| Link::new(cfg.link)).collect();

    // Ingress reorder stage: fragments enter each shard's Gateway strictly
    // in task-creation order.
    let mut expected: Vec<VecDeque<u32>> = vec![VecDeque::new(); k];
    let mut arrived: Vec<HashMap<u32, Arc<[Dependence]>>> = vec![HashMap::new(); k];
    // Remote fragments' TM slots, recorded when they pop ready.
    let mut slot_at: Vec<HashMap<u32, SlotRef>> = vec![HashMap::new(); k];
    // Readiness countdown: local pop + one notice per remote fragment.
    let frag_total: Vec<u8> = plan.remote.iter().map(|r| 1 + r.len() as u8).collect();
    let mut frag_ready: Vec<u8> = vec![0; n];
    let mut local_popped: Vec<bool> = vec![false; n];
    let mut local_slot: Vec<SlotRef> = vec![SlotRef::new(0, 0); n];
    // Tasks fully ready (last notice arrived) awaiting a free worker.
    let mut exec_q: Vec<VecDeque<u32>> = vec![VecDeque::new(); k];

    let mut start = vec![0u64; n];
    let mut end = vec![0u64; n];
    let mut order: Vec<u32> = Vec::with_capacity(n);

    // Starts a task on shard `s`'s workers with the HW-only dispatch cost.
    // Both readiness paths (direct local pop, exec_q drain after the last
    // remote notice) must stay byte-identical, so they share this helper.
    #[allow(clippy::too_many_arguments)]
    fn start_task(
        workers: &mut picos_hil::Workers,
        trace: &Trace,
        dispatch: u64,
        t: u64,
        task: u32,
        slot: SlotRef,
        start: &mut [u64],
        end: &mut [u64],
        order: &mut Vec<u32>,
    ) {
        let st = t + dispatch;
        let dur = trace.tasks()[task as usize].duration;
        start[task as usize] = st;
        end[task as usize] = st + dur;
        order.push(task);
        workers.start(st + dur, task, slot);
    }

    let mut next_submit = 0usize;
    let mut done = 0usize;
    let mut t = 0u64;
    let mut touched = vec![false; k];
    loop {
        for s in sys.iter_mut() {
            s.advance_to(t);
        }
        touched.iter_mut().for_each(|f| *f = false);
        // Worker completions: notify the local shard now, remote fragment
        // shards over the interconnect.
        for s in 0..k {
            while let Some((task, slot)) = workers[s].pop_done_at(t) {
                sys[s].notify_finished(FinishedReq {
                    task: TaskId::new(task),
                    slot,
                });
                for &(r, _) in &plan.remote[task as usize] {
                    links[r as usize].send(t, ClusterMsg::Finish { task });
                }
                done += 1;
                touched[s] = true;
            }
        }
        // Interconnect deliveries.
        for s in 0..k {
            while let Some(msg) = links[s].pop_delivery_at(t) {
                match msg {
                    ClusterMsg::Register { task, deps } => {
                        arrived[s].insert(task, deps);
                    }
                    ClusterMsg::Ready { task } => {
                        let ti = task as usize;
                        frag_ready[ti] += 1;
                        if frag_ready[ti] == frag_total[ti] {
                            debug_assert!(local_popped[ti], "local pop counts toward the total");
                            exec_q[s].push_back(task);
                        }
                    }
                    ClusterMsg::Finish { task } => {
                        let slot = slot_at[s]
                            .remove(&task)
                            .expect("remote fragment popped before its task ran");
                        sys[s].notify_finished(FinishedReq {
                            task: TaskId::new(task),
                            slot,
                        });
                        touched[s] = true;
                    }
                }
            }
        }
        // Distributor: create every task the taskwait structure allows.
        while next_submit < trace.creation_limit(done) {
            let i = next_submit as u32;
            let p = plan.placement[next_submit] as usize;
            expected[p].push_back(i);
            arrived[p].insert(i, plan.local[next_submit].clone());
            for (r, deps) in &plan.remote[next_submit] {
                expected[*r as usize].push_back(i);
                let words = deps.len() + 1;
                links[*r as usize].send_words(
                    t,
                    ClusterMsg::Register {
                        task: i,
                        deps: deps.clone(),
                    },
                    words,
                );
            }
            next_submit += 1;
        }
        // Ingress: feed each Gateway in creation order.
        for s in 0..k {
            while let Some(&head) = expected[s].front() {
                let Some(deps) = arrived[s].remove(&head) else {
                    break;
                };
                sys[s].submit(TaskId::new(head), deps);
                expected[s].pop_front();
                touched[s] = true;
            }
        }
        for s in 0..k {
            if touched[s] {
                sys[s].advance_to(t);
            }
        }
        // Execution: first the tasks whose last remote notice arrived
        // earlier, then the shard's ready stream.
        for s in 0..k {
            while workers[s].idle() > 0 {
                let Some(&task) = exec_q[s].front() else {
                    break;
                };
                exec_q[s].pop_front();
                start_task(
                    &mut workers[s],
                    trace,
                    cfg.dispatch,
                    t,
                    task,
                    local_slot[task as usize],
                    &mut start,
                    &mut end,
                    &mut order,
                );
            }
            while let Some(rt) = sys[s].peek_ready() {
                let task = rt.task.raw();
                let ti = task as usize;
                if plan.placement[ti] as usize != s {
                    // A remote fragment: consume it and wake the placement
                    // shard over the interconnect.
                    let rt = sys[s].pop_ready().expect("peeked");
                    slot_at[s].insert(task, rt.slot);
                    links[plan.placement[ti] as usize].send(t, ClusterMsg::Ready { task });
                    continue;
                }
                if frag_ready[ti] + 1 == frag_total[ti] {
                    // Popping the local fragment completes readiness: take
                    // it only when a worker can start it (the single-Picos
                    // TS discipline — otherwise it waits in the TS buffer).
                    if workers[s].idle() == 0 {
                        break;
                    }
                    let rt = sys[s].pop_ready().expect("peeked");
                    local_slot[ti] = rt.slot;
                    local_popped[ti] = true;
                    frag_ready[ti] += 1;
                    start_task(
                        &mut workers[s],
                        trace,
                        cfg.dispatch,
                        t,
                        task,
                        rt.slot,
                        &mut start,
                        &mut end,
                        &mut order,
                    );
                } else {
                    // Remote notices outstanding: park the fragment so it
                    // cannot head-of-line-block tasks queued behind it.
                    let rt = sys[s].pop_ready().expect("peeked");
                    local_slot[ti] = rt.slot;
                    local_popped[ti] = true;
                    frag_ready[ti] += 1;
                }
            }
        }
        let next = min_next(
            sys.iter()
                .map(|s| s.next_event_time())
                .chain(workers.iter().map(|w| w.next_done()))
                .chain(links.iter().map(|l| l.next_delivery())),
        );
        match next {
            Some(tn) => t = tn,
            None => break,
        }
    }
    let clean = order.len() == n
        && sys.iter().all(|s| s.in_flight() == 0)
        && links.iter().all(|l| l.in_flight() == 0)
        && workers.iter().all(|w| !w.busy())
        && exec_q.iter().all(VecDeque::is_empty)
        && expected.iter().all(VecDeque::is_empty);
    if !clean {
        return Err(ClusterError::Stalled {
            executed: order.len(),
            total: n,
            at: t,
        });
    }
    let report = ExecReport {
        engine: "cluster".into(),
        workers: cfg.workers,
        makespan: end.iter().copied().max().unwrap_or(0),
        sequential: trace.sequential_time(),
        order,
        start,
        end,
    };
    let stats = sys.iter().map(PicosSystem::stats).collect();
    Ok((report, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use picos_trace::gen;
    use picos_trace::TaskGraph;

    fn run(trace: &Trace, shards: usize, workers: usize) -> ExecReport {
        let r = run_cluster(trace, &ClusterConfig::balanced(shards, workers))
            .unwrap_or_else(|e| panic!("{shards} shards: {e}"));
        r.validate(trace)
            .unwrap_or_else(|e| panic!("{shards} shards: {e}"));
        r
    }

    #[test]
    fn all_shard_counts_complete_and_validate() {
        let tr = gen::cholesky(gen::CholeskyConfig::paper(128));
        for shards in [1usize, 2, 3, 4, 8] {
            let r = run(&tr, shards, 16);
            assert_eq!(r.order.len(), tr.len());
        }
    }

    #[test]
    fn all_policies_are_legal() {
        let tr = gen::sparselu(gen::SparseLuConfig::paper(128));
        for policy in ShardPolicy::ALL {
            let cfg = ClusterConfig {
                policy,
                ..ClusterConfig::balanced(4, 12)
            };
            let r = run_cluster(&tr, &cfg).unwrap_or_else(|e| panic!("{policy}: {e}"));
            r.validate(&tr).unwrap_or_else(|e| panic!("{policy}: {e}"));
        }
    }

    #[test]
    fn random_traces_are_legal_on_every_policy() {
        for seed in 0..6u64 {
            let tr = gen::random_trace(gen::RandomConfig::default(), seed);
            let g = TaskGraph::build(&tr);
            for policy in ShardPolicy::ALL {
                for shards in [2usize, 4] {
                    let cfg = ClusterConfig {
                        policy,
                        ..ClusterConfig::balanced(shards, 8)
                    };
                    let r = run_cluster(&tr, &cfg)
                        .unwrap_or_else(|e| panic!("seed {seed} {policy} {shards}: {e}"));
                    assert!(
                        g.is_topological(&r.order),
                        "seed {seed} {policy} {shards}: order illegal"
                    );
                    r.validate(&tr)
                        .unwrap_or_else(|e| panic!("seed {seed} {policy} {shards}: {e}"));
                }
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let tr = gen::stream(gen::StreamConfig::heavy(600));
        let cfg = ClusterConfig::balanced(4, 16);
        let a = run_cluster_with_stats(&tr, &cfg).unwrap();
        let b = run_cluster_with_stats(&tr, &cfg).unwrap();
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
    }

    #[test]
    fn taskwait_barriers_respected() {
        let mut tr = Trace::new("barriered");
        let kc = picos_trace::KernelClass::GENERIC;
        for i in 0..20u64 {
            tr.push(kc, [Dependence::inout(0x1000 + i * 0x40)], 50);
        }
        tr.push_taskwait();
        for i in 0..20u64 {
            tr.push(kc, [Dependence::inout(0x9000 + i * 0x40)], 50);
        }
        for shards in [1usize, 3] {
            let r = run(&tr, shards, 6);
            r.validate(&tr).unwrap();
        }
    }

    #[test]
    fn invalid_configs_error_not_panic() {
        let tr = gen::synthetic(gen::Case::Case1);
        let e = run_cluster(&tr, &ClusterConfig::balanced(0, 4));
        assert!(matches!(e, Err(ClusterError::Config(_))));
        let e = run_cluster(&tr, &ClusterConfig::balanced(4, 2));
        assert!(matches!(e, Err(ClusterError::Config(_))));
        assert!(e.unwrap_err().to_string().contains("workers"));
    }

    #[test]
    fn empty_trace_is_a_noop() {
        let tr = Trace::new("empty");
        let (r, stats) = run_cluster_with_stats(&tr, &ClusterConfig::balanced(2, 4)).unwrap();
        assert_eq!(r.makespan, 0);
        assert_eq!(merged_stats(&stats).tasks_completed, 0);
    }

    #[test]
    fn per_shard_stats_cover_all_tasks() {
        let tr = gen::stream(gen::StreamConfig::heavy(500));
        let (_, stats) = run_cluster_with_stats(&tr, &ClusterConfig::balanced(4, 16)).unwrap();
        assert_eq!(stats.len(), 4);
        let total = merged_stats(&stats);
        // Every task submits a local fragment; remote fragments add more.
        assert!(total.tasks_submitted >= tr.len() as u64);
        assert_eq!(total.tasks_submitted, total.tasks_completed);
        // Sharding must actually spread dependence processing.
        let active = stats.iter().filter(|s| s.deps_processed > 0).count();
        assert!(active >= 2, "only {active} shards processed dependences");
    }

    #[test]
    fn lifo_policy_is_legal_on_clusters() {
        let tr = gen::lu(gen::LuConfig::paper(64));
        let mut cfg = ClusterConfig::balanced(3, 9);
        cfg.picos = cfg.picos.with_ts_policy(picos_core::TsPolicy::Lifo);
        let r = run_cluster(&tr, &cfg).unwrap();
        r.validate(&tr).unwrap();
    }
}
