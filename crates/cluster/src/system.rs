//! The cluster driver: N Picos shards, a Distributor, and the inter-shard
//! interconnect, advanced as one deterministic discrete-event loop — a
//! resumable [`ClusterSession`] that ingests task fragments as they
//! arrive.
//!
//! # Protocol
//!
//! For every task the Distributor splits the dependence list into
//! per-home-shard fragments (see [`crate::home_shard`]):
//!
//! 1. **Registration.** The local fragment (placement shard) enters that
//!    shard's Gateway queue directly, exactly like the HW-only HIL driver's
//!    pre-load. Remote fragments cross the interconnect as registration
//!    messages of `deps + 1` payload words. Each shard **ingests fragments
//!    in global task-creation order** (an ingress reorder stage buffers
//!    early arrivals), so every per-address dependence chain sees the same
//!    registration order a single Picos would — this is what preserves
//!    TaskGraph-order correctness for any shard count.
//! 2. **Wake-up.** A fragment popping out of a remote shard's Task
//!    Scheduler sends a ready notice back to the placement shard (one
//!    word). The task may start once its local fragment has popped *and*
//!    every remote notice has arrived.
//! 3. **Execution.** The placement shard's TS output port hands tasks to
//!    workers with the HW-only dispatch cost. Remote-task fragments at the
//!    head of the ready stream are consumed unconditionally; a local task
//!    at the head waits for a free worker (the single-Picos discipline).
//! 4. **Finish.** Worker completion notifies the local shard immediately
//!    and every remote fragment shard over the interconnect, releasing
//!    TM/DM/VM entries and waking successors there.
//!
//! With one shard, steps 2 and 4's remote halves never fire and the loop
//! is statement-for-statement the HW-only driver: cycle-identical.

mod par_drive;
mod snap;

use crate::config::{home_shard, ClusterConfig, ClusterError, ShardPolicy};
use crate::fault::{FaultCounters, FaultPlan, FaultState, Packet};
use picos_core::{FinishedReq, PicosSystem, SlotRef, Stats};
use picos_hil::Link;
use picos_metrics::span::{SpanKind, SpanLog};
use picos_metrics::{SeriesSpec, Timeline, WindowSampler};
use picos_runtime::session::{
    feed_trace, Admission, EventLog, EventLoopCore, Ingest, ScheduleLog, SessionConfig,
    SessionCore, SimEvent,
};
use picos_runtime::ExecReport;
use picos_trace::{Dependence, TaskDescriptor, TaskId, Trace};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

/// Messages crossing the inter-shard interconnect.
#[derive(Debug, Clone)]
enum ClusterMsg {
    /// A remote dependence-registration fragment travelling to the home
    /// shard of its addresses. Sized by its dependence count on the link.
    Register { task: u32, deps: Arc<[Dependence]> },
    /// A remote fragment became ready; travels to the placement shard.
    Ready { task: u32 },
    /// The task finished; travels to a remote fragment's shard.
    Finish { task: u32 },
}

impl ClusterMsg {
    /// The task this message is about, for span annotation.
    fn task(&self) -> u32 {
        match self {
            ClusterMsg::Register { task, .. }
            | ClusterMsg::Ready { task }
            | ClusterMsg::Finish { task } => *task,
        }
    }
}

fn min_next(cands: impl IntoIterator<Item = Option<u64>>) -> Option<u64> {
    cands.into_iter().flatten().min()
}

/// Everything a finished cluster session yields: the report, per-shard
/// hardware counters, the stitched [`Timeline`] when a telemetry window
/// was attached, and the [`FaultCounters`] when an active [`FaultPlan`]
/// was.
pub type ClusterOutput = (
    ExecReport,
    Vec<Stats>,
    Option<Timeline>,
    Option<FaultCounters>,
    Option<SpanLog>,
);

/// A resumable cluster stepper: shards ingest dependence-list fragments as
/// tasks stream in, with placement and fragment planning performed
/// per-task at submission (the policies only look at the task itself, so
/// streaming placement equals the batch plan).
///
/// Feeding a whole trace and finishing is cycle-identical to
/// [`run_cluster_with_stats`]; with one shard both are cycle-identical to
/// the HW-only HIL driver.
///
/// Cloning is a deep copy of the entire cluster — the in-memory fork
/// primitive: a cloned session diverges freely without touching the
/// original. [`ClusterSession::save_state`] /
/// [`ClusterSession::load_state`] are the serialized equivalents.
#[derive(Debug, Clone)]
pub struct ClusterSession {
    cfg: ClusterConfig,
    sys: Vec<PicosSystem>,
    workers: Vec<picos_hil::Workers>,
    links: Vec<Link<Packet<ClusterMsg>>>,
    /// Ingress reorder stage: fragments enter each shard's Gateway
    /// strictly in task-creation order.
    expected: Vec<VecDeque<u32>>,
    arrived: Vec<HashMap<u32, Arc<[Dependence]>>>,
    /// Remote fragments' TM slots, recorded when they pop ready.
    slot_at: Vec<HashMap<u32, SlotRef>>,
    /// Tasks fully ready (last notice arrived) awaiting a free worker.
    exec_q: Vec<VecDeque<u32>>,
    // Per-task plan and readiness state, grown at submission.
    placement: Vec<u16>,
    local: Vec<Arc<[Dependence]>>,
    remote: Vec<Vec<(u16, Arc<[Dependence]>)>>,
    /// Readiness countdown target: local pop + one notice per remote
    /// fragment.
    frag_total: Vec<u8>,
    frag_ready: Vec<u8>,
    local_popped: Vec<bool>,
    local_slot: Vec<SlotRef>,
    durs: Vec<u64>,
    /// Round-robin fallback for dependence-free tasks.
    rr: usize,
    /// Scratch for the locality-affine placement count.
    counts: Vec<usize>,
    empty_deps: Arc<[Dependence]>,
    /// Distributor cursor: next admitted task to create.
    next_feed: usize,
    t: u64,
    touched: Vec<bool>,
    ingest: Ingest,
    log: ScheduleLog,
    events: EventLog,
    /// Messages ever sent into each shard's ingress link (cumulative; the
    /// windowed-delta probe of the interconnect series).
    link_sent: Vec<u64>,
    /// Cluster-level telemetry (worker occupancy, per-link interconnect
    /// occupancy); each shard's core sampler rides inside its
    /// [`PicosSystem`]. `None` keeps every clock move sampling-free.
    sampler: Option<WindowSampler>,
    /// Driver-side lifecycle span recorder (submit, dispatch, start,
    /// finish, interconnect traffic, faults); each shard core's own probe
    /// rides inside its [`PicosSystem`] and is merged at finish. In
    /// parallel drives the lanes record into their own logs with the same
    /// cycle stamps, so the canonically sorted result is thread-count
    /// independent. Observation-only.
    spans: Option<SpanLog>,
    /// The attached fault layer (ack/retry protocol, fault draws, pause
    /// deferral, worker-fault schedule), or `None` for the plain engine.
    faults: Option<Box<FaultState<ClusterMsg>>>,
    /// Tasks whose first execution a fail-stop worker fault killed; their
    /// restart updates the schedule log instead of appending to it.
    restarts: HashSet<u32>,
    /// A caught parallel-lane panic: the session is dead and reports this
    /// instead of driving further.
    engine_err: Option<ClusterError>,
}

impl ClusterSession {
    /// Opens a session.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::Config`] on an invalid configuration.
    pub fn new(cfg: ClusterConfig, session: SessionConfig) -> Result<Self, ClusterError> {
        cfg.validate().map_err(ClusterError::Config)?;
        session.validate().map_err(ClusterError::Config)?;
        let k = cfg.shards;
        let mut sys: Vec<PicosSystem> = (0..k)
            .map(|_| PicosSystem::new(cfg.picos.clone()))
            .collect();
        let sampler = session.timeline_window.map(|w| {
            let mut series = vec![SeriesSpec::gauge("workers.busy")];
            for s in 0..k {
                series.push(SeriesSpec::gauge(format!("link{s}.inflight")));
                series.push(SeriesSpec::delta(format!("link{s}.sent")));
            }
            // Fault series only for an *active* plan: a zero-fault plan's
            // timeline must match a plan-free run column for column.
            if cfg.faults.as_ref().is_some_and(FaultPlan::is_active) {
                for name in [
                    "faults.drops",
                    "faults.retries",
                    "faults.redeliveries",
                    "faults.recoveries",
                ] {
                    series.push(SeriesSpec::delta(name));
                }
            }
            for shard in sys.iter_mut() {
                shard.attach_timeline(w);
            }
            WindowSampler::new(w, series)
        });
        // An inactive plan (nothing it could ever inject) attaches no
        // runtime state at all: the session runs the literal plain engine,
        // so zero-fault bit-identity — and the fault layer's 3% overhead
        // budget — hold structurally.
        let faults = cfg
            .faults
            .clone()
            .filter(FaultPlan::is_active)
            .map(|p| Box::new(FaultState::new(p, k)));
        let spans = session.trace_spans.then(|| {
            for (s, shard) in sys.iter_mut().enumerate() {
                shard.attach_spans(s as u16);
            }
            SpanLog::new()
        });
        Ok(ClusterSession {
            sys,
            workers: (0..k)
                .map(|s| picos_hil::Workers::new(cfg.shard_workers(s)))
                .collect(),
            links: (0..k).map(|_| Link::new(cfg.link)).collect(),
            expected: vec![VecDeque::new(); k],
            arrived: vec![HashMap::new(); k],
            slot_at: vec![HashMap::new(); k],
            exec_q: vec![VecDeque::new(); k],
            placement: Vec::new(),
            local: Vec::new(),
            remote: Vec::new(),
            frag_total: Vec::new(),
            frag_ready: Vec::new(),
            local_popped: Vec::new(),
            local_slot: Vec::new(),
            durs: Vec::new(),
            rr: 0,
            counts: vec![0; k],
            empty_deps: Arc::from(Vec::new()),
            next_feed: 0,
            t: 0,
            touched: vec![false; k],
            ingest: Ingest::new(session.window),
            log: ScheduleLog::default(),
            events: EventLog::new(session.collect_events),
            link_sent: vec![0; k],
            sampler,
            spans,
            faults,
            restarts: HashSet::new(),
            engine_err: None,
            cfg,
        })
    }

    /// Reads the cluster-level probe points (worker occupancy, per-link
    /// interconnect occupancy and traffic) in the sampler's series order.
    fn probe_cluster(&self, out: &mut [u64]) {
        out[0] = (0..self.cfg.shards)
            .map(|s| (self.cfg.shard_workers(s) - self.workers[s].idle()) as u64)
            .sum();
        for (s, link) in self.links.iter().enumerate() {
            out[1 + 2 * s] = link.in_flight() as u64;
            out[2 + 2 * s] = self.link_sent[s];
        }
        if let Some(c) = self.fault_counters() {
            let base = 1 + 2 * self.cfg.shards;
            out[base] = c.drops;
            out[base + 1] = c.retries;
            out[base + 2] = c.redeliveries;
            out[base + 3] = c.recoveries;
        }
    }

    /// End-of-run fault/recovery counters, present only when an *active*
    /// fault plan is attached (a zero-fault plan reports nothing, keeping
    /// it observationally identical to no plan at all).
    pub fn fault_counters(&self) -> Option<FaultCounters> {
        self.faults
            .as_ref()
            .filter(|f| f.plan_active())
            .map(|f| f.counters())
    }

    /// Places one task and splits its dependence list into per-home-shard
    /// fragments (the streaming equivalent of the batch plan).
    fn plan_task(&mut self, i: usize, task: &TaskDescriptor) {
        let k = self.cfg.shards;
        if k == 1 {
            self.placement.push(0);
            self.local.push(task.deps.clone());
            self.remote.push(Vec::new());
            return;
        }
        let p = match self.cfg.policy {
            ShardPolicy::RoundRobin => i % k,
            ShardPolicy::AddrHash => match task.deps.first() {
                Some(d) => home_shard(d.addr, k),
                None => {
                    self.rr += 1;
                    (self.rr - 1) % k
                }
            },
            ShardPolicy::LocalityAffine => {
                if task.deps.is_empty() {
                    self.rr += 1;
                    (self.rr - 1) % k
                } else {
                    self.counts.iter_mut().for_each(|c| *c = 0);
                    for d in task.deps.iter() {
                        self.counts[home_shard(d.addr, k)] += 1;
                    }
                    let best = *self.counts.iter().max().expect("k > 0");
                    self.counts
                        .iter()
                        .position(|&c| c == best)
                        .expect("max exists")
                }
            }
        };
        // Bucket the dependence list by home shard, preserving order.
        let mut buckets: Vec<(usize, Vec<Dependence>)> = Vec::new();
        for &d in task.deps.iter() {
            let h = home_shard(d.addr, k);
            match buckets.iter_mut().find(|(s, _)| *s == h) {
                Some((_, v)) => v.push(d),
                None => buckets.push((h, vec![d])),
            }
        }
        buckets.sort_by_key(|(s, _)| *s);
        let mut loc = self.empty_deps.clone();
        let mut rem = Vec::new();
        for (s, deps) in buckets {
            if s == p {
                loc = deps.into();
            } else {
                rem.push((s as u16, Arc::<[Dependence]>::from(deps)));
            }
        }
        self.placement.push(p as u16);
        self.local.push(loc);
        self.remote.push(rem);
    }

    /// Starts a task on shard `s`'s workers with the HW-only dispatch
    /// cost. Both readiness paths (direct local pop, `exec_q` drain after
    /// the last remote notice) share this helper so they stay identical.
    fn start_task(&mut self, s: usize, task: u32, slot: SlotRef) {
        let st = self.t + self.cfg.dispatch;
        let dur = self.durs[task as usize];
        let end = if self.restarts.remove(&task) {
            // A fail-stop fault killed the first execution; the restart
            // replaces its schedule entry instead of appending a new one.
            self.log.rebegin(task, st, dur)
        } else {
            self.log.begin(task, st, dur)
        };
        self.events.push(SimEvent::TaskStarted { task, at: st });
        if let Some(log) = &mut self.spans {
            log.record(SpanKind::Dispatched, self.t, s as u16, task, 0);
            log.record(SpanKind::Started, st, s as u16, task, 0);
        }
        self.workers[s].start(end, task, slot);
    }

    /// Sends one interconnect message: through the fault layer when one is
    /// attached (packet id, fate draws, retry deadline), plain otherwise.
    fn send_msg(
        &mut self,
        faults: &mut Option<Box<FaultState<ClusterMsg>>>,
        from: usize,
        to: usize,
        msg: ClusterMsg,
        words: usize,
    ) {
        self.link_sent[to] += 1;
        let task = msg.task();
        let id = match faults.as_mut() {
            Some(f) => f.send(self.t, from as u16, to as u16, msg, words, &mut self.links),
            None => {
                self.links[to].send_words(self.t, Packet::plain(msg), words);
                0
            }
        };
        if let Some(log) = &mut self.spans {
            log.record(SpanKind::MsgSend, self.t, from as u16, task, id);
        }
        self.events.push(SimEvent::ShardMsg {
            from: from as u16,
            to: to as u16,
            at: self.t,
        });
    }

    /// Handles one delivered interconnect message at shard `s` — the
    /// shared body behind fresh link deliveries and pause-released
    /// deferrals. `pkt_id` is the delivered wire packet's id (0 for plain
    /// packets), forwarded to the message's delivery span.
    fn deliver(&mut self, s: usize, msg: ClusterMsg, pkt_id: u32) {
        if let Some(log) = &mut self.spans {
            log.record(SpanKind::MsgDeliver, self.t, s as u16, msg.task(), pkt_id);
        }
        match msg {
            ClusterMsg::Register { task, deps } => {
                self.arrived[s].insert(task, deps);
            }
            ClusterMsg::Ready { task } => {
                let ti = task as usize;
                self.frag_ready[ti] += 1;
                if self.frag_ready[ti] == self.frag_total[ti] {
                    debug_assert!(self.local_popped[ti], "local pop counts toward the total");
                    self.exec_q[s].push_back(task);
                }
            }
            ClusterMsg::Finish { task } => {
                let slot = self.slot_at[s]
                    .remove(&task)
                    .expect("remote fragment popped before its task ran");
                self.sys[s].notify_finished(FinishedReq {
                    task: TaskId::new(task),
                    slot,
                });
                self.touched[s] = true;
            }
        }
    }

    /// Runs the session to quiescence and returns the schedule report plus
    /// each shard's hardware counters (index = shard id; aggregate with
    /// [`merged_stats`]).
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::Stalled`] if work remains that no event
    /// will release (an engine bug).
    pub fn into_report(self) -> Result<(ExecReport, Vec<Stats>), ClusterError> {
        self.into_report_full().map(|(r, s, _)| (r, s))
    }

    /// Like [`ClusterSession::into_report_full`], and also returns the
    /// final fault-protocol counters when an *active* [`FaultPlan`] is
    /// attached (`None` for fault-free sessions and zero-fault plans, whose
    /// runs are bit-identical to no plan at all) plus the run's lifecycle
    /// [`SpanLog`] when the session was opened with span tracing: driver
    /// events merged with every shard core's probe events, in recording
    /// order. Serial and parallel drives record the same event *multiset*
    /// in different interleavings; [`SpanLog::canonical_sort`] makes the
    /// logs bit-equal for any thread count.
    ///
    /// # Errors
    ///
    /// See [`ClusterSession::into_report`].
    pub fn into_output(self) -> Result<ClusterOutput, ClusterError> {
        self.finish_parts()
    }

    /// Like [`ClusterSession::into_report`], and also returns the run's
    /// [`Timeline`] when the session was opened with a telemetry window:
    /// the cluster series (`workers.busy`, per-link `linkK.inflight` /
    /// `linkK.sent`) stitched with every shard core's probe series under
    /// the `sK.core.` scopes.
    ///
    /// # Errors
    ///
    /// See [`ClusterSession::into_report`].
    pub fn into_report_full(
        self,
    ) -> Result<(ExecReport, Vec<Stats>, Option<Timeline>), ClusterError> {
        self.finish_parts().map(|(r, s, tl, _, _)| (r, s, tl))
    }

    fn finish_parts(mut self) -> Result<ClusterOutput, ClusterError> {
        if self.par_eligible() {
            // Unbounded drive: the epoch engine stops when every lane is
            // quiescent, exactly where drive_finish would.
            self.drive_events_par(u64::MAX);
        } else if self.engine_err.is_none() {
            self.drive_finish();
        }
        if let Some(e) = self.engine_err.take() {
            return Err(e);
        }
        let n = self.ingest.admitted;
        let clean = self.log.order.len() == n
            && self.sys.iter().all(|s| s.in_flight() == 0)
            && self.links.iter().all(|l| l.in_flight() == 0)
            && self.workers.iter().all(|w| !w.busy())
            && self.exec_q.iter().all(VecDeque::is_empty)
            && self.expected.iter().all(VecDeque::is_empty)
            && self.next_feed == n;
        if !clean {
            // A run that completed despite timed-out messages reports
            // success; only an *incomplete* run surfaces the fault error.
            if let Some(e) = self.faults.as_ref().and_then(|f| f.error().cloned()) {
                return Err(e);
            }
            return Err(ClusterError::Stalled {
                executed: self.log.order.len(),
                total: n,
                at: self.t,
            });
        }
        let stats = self.sys.iter().map(PicosSystem::stats).collect();
        let timeline = match self.sampler.take() {
            Some(sampler) => {
                let end = self.t;
                let cluster = sampler.finish(end, |out| self.probe_cluster(out));
                let shard_tls: Vec<Timeline> = self
                    .sys
                    .iter_mut()
                    .map(|s| {
                        s.take_timeline()
                            .expect("every shard sampler attached alongside the cluster sampler")
                    })
                    .collect();
                let mut parts: Vec<(String, &Timeline)> = vec![(String::new(), &cluster)];
                for (k, tl) in shard_tls.iter().enumerate() {
                    parts.push((format!("s{k}.core."), tl));
                }
                let borrowed: Vec<(&str, &Timeline)> =
                    parts.iter().map(|(p, t)| (p.as_str(), *t)).collect();
                Some(Timeline::stitch(&borrowed))
            }
            None => None,
        };
        let fault_counters = self.fault_counters();
        let mut spans = self.spans.take();
        if let Some(log) = spans.as_mut() {
            for shard in self.sys.iter_mut() {
                if let Some(core) = shard.take_spans() {
                    log.extend_from(&core);
                }
            }
        }
        Ok((
            self.log.into_report("cluster", self.cfg.workers),
            stats,
            timeline,
            fault_counters,
            spans,
        ))
    }
}

impl EventLoopCore for ClusterSession {
    /// Runs the loop body of the batch driver at the current time.
    fn pump(&mut self) {
        let k = self.cfg.shards;
        let t = self.t;
        // The fault layer moves into a local for the pump's duration so
        // its methods can borrow the links/session state alongside it.
        let mut faults = self.faults.take();
        for s in self.sys.iter_mut() {
            s.advance_to(t);
        }
        self.touched.iter_mut().for_each(|f| *f = false);
        // Fault layer first: fail-stop worker faults (a killed in-flight
        // task re-enters the execution queue for deterministic
        // re-execution), then due retry deadlines.
        if let Some(f) = faults.as_mut() {
            while let Some(sh) = f.due_worker_fault(t) {
                let s = sh as usize;
                if let Some((task, slot)) = self.workers[s].fail_one() {
                    self.local_slot[task as usize] = slot;
                    self.restarts.insert(task);
                    self.exec_q[s].push_back(task);
                    f.note_recovery();
                    if let Some(log) = &mut self.spans {
                        log.record(SpanKind::Fault, t, sh, task, 0);
                    }
                }
            }
            for (from, to) in f.pump_retries(t, &mut self.links) {
                self.link_sent[to as usize] += 1;
                self.events.push(SimEvent::ShardMsg { from, to, at: t });
                if let Some(log) = &mut self.spans {
                    log.record(SpanKind::MsgRetry, t, from, u32::MAX, 0);
                }
            }
        }
        // Worker completions: notify the local shard now, remote fragment
        // shards over the interconnect.
        for s in 0..k {
            while let Some((task, slot)) = self.workers[s].pop_done_at(t) {
                self.sys[s].notify_finished(FinishedReq {
                    task: TaskId::new(task),
                    slot,
                });
                for ri in 0..self.remote[task as usize].len() {
                    let r = self.remote[task as usize][ri].0 as usize;
                    self.send_msg(&mut faults, s, r, ClusterMsg::Finish { task }, 1);
                }
                self.ingest.finished += 1;
                self.events.push(SimEvent::TaskFinished { task, at: t });
                if let Some(log) = &mut self.spans {
                    log.record(SpanKind::Finished, t, s as u16, task, 0);
                }
                self.touched[s] = true;
            }
        }
        // Interconnect deliveries: pause-released deferrals first (they
        // arrived earlier), then fresh arrivals, each through the fault
        // layer's receive path when one is attached.
        for s in 0..k {
            if let Some(f) = faults.as_mut() {
                while let Some(pkt) = f.pop_deferred(s, t) {
                    let id = pkt.id;
                    if let Some(msg) = f.receive(s, t, pkt) {
                        self.deliver(s, msg, id);
                    }
                }
            }
            while let Some(pkt) = self.links[s].pop_delivery_at(t) {
                let id = pkt.id;
                match faults.as_mut() {
                    Some(f) => {
                        if let Some(msg) = f.receive(s, t, pkt) {
                            self.deliver(s, msg, id);
                        }
                    }
                    None => self.deliver(s, pkt.msg, id),
                }
            }
        }
        // Distributor: create every task the taskwait structure allows.
        while self.ingest.feedable(self.next_feed, self.ingest.finished) {
            let i = self.next_feed as u32;
            let p = self.placement[self.next_feed] as usize;
            self.expected[p].push_back(i);
            self.arrived[p].insert(i, self.local[self.next_feed].clone());
            for ri in 0..self.remote[self.next_feed].len() {
                let (r, deps) = self.remote[self.next_feed][ri].clone();
                self.expected[r as usize].push_back(i);
                let words = deps.len() + 1;
                self.send_msg(
                    &mut faults,
                    p,
                    r as usize,
                    ClusterMsg::Register { task: i, deps },
                    words,
                );
            }
            self.next_feed += 1;
        }
        // Ingress: feed each Gateway in creation order.
        for s in 0..k {
            while let Some(&head) = self.expected[s].front() {
                let Some(deps) = self.arrived[s].remove(&head) else {
                    break;
                };
                self.sys[s].submit(TaskId::new(head), deps);
                self.expected[s].pop_front();
                self.touched[s] = true;
            }
        }
        for s in 0..k {
            if self.touched[s] {
                self.sys[s].advance_to(t);
            }
        }
        // Execution: first the tasks whose last remote notice arrived
        // earlier, then the shard's ready stream.
        for s in 0..k {
            while self.workers[s].idle() > 0 {
                let Some(&task) = self.exec_q[s].front() else {
                    break;
                };
                self.exec_q[s].pop_front();
                self.start_task(s, task, self.local_slot[task as usize]);
            }
            while let Some(rt) = self.sys[s].peek_ready() {
                let task = rt.task.raw();
                let ti = task as usize;
                if self.placement[ti] as usize != s {
                    // A remote fragment: consume it and wake the placement
                    // shard over the interconnect.
                    let rt = self.sys[s].pop_ready().expect("peeked");
                    self.slot_at[s].insert(task, rt.slot);
                    let p = self.placement[ti] as usize;
                    self.send_msg(&mut faults, s, p, ClusterMsg::Ready { task }, 1);
                    continue;
                }
                if self.frag_ready[ti] + 1 == self.frag_total[ti] {
                    // Popping the local fragment completes readiness: take
                    // it only when a worker can start it (the single-Picos
                    // TS discipline — otherwise it waits in the TS buffer).
                    if self.workers[s].idle() == 0 {
                        break;
                    }
                    let rt = self.sys[s].pop_ready().expect("peeked");
                    self.local_slot[ti] = rt.slot;
                    self.local_popped[ti] = true;
                    self.frag_ready[ti] += 1;
                    self.start_task(s, task, rt.slot);
                } else {
                    // Remote notices outstanding: park the fragment so it
                    // cannot head-of-line-block tasks queued behind it.
                    let rt = self.sys[s].pop_ready().expect("peeked");
                    self.local_slot[ti] = rt.slot;
                    self.local_popped[ti] = true;
                    self.frag_ready[ti] += 1;
                }
            }
        }
        self.faults = faults;
    }

    fn next_time(&self) -> Option<u64> {
        min_next(
            self.sys
                .iter()
                .map(|s| s.next_event_time())
                .chain(self.workers.iter().map(|w| w.next_done()))
                .chain(self.links.iter().map(|l| l.next_delivery()))
                .chain(std::iter::once(
                    self.faults.as_ref().and_then(|f| f.next_time()),
                )),
        )
    }

    fn clock(&self) -> u64 {
        self.t
    }

    fn set_clock(&mut self, t: u64) {
        // Telemetry boundary crossing: cluster state is constant between
        // pumps, so sampling before the clock moves observes the state
        // each crossed boundary lived under.
        if self.sampler.as_ref().is_some_and(|s| s.due(t)) {
            let mut sampler = self.sampler.take().expect("checked above");
            sampler.advance(t, |out| self.probe_cluster(out));
            self.sampler = Some(sampler);
        }
        self.t = t;
    }

    fn on_clock_jump(&mut self) {
        for s in self.sys.iter_mut() {
            s.advance_to(self.t);
        }
    }

    /// Whether the next submission cannot be ingested right now.
    fn ingest_blocked(&self) -> bool {
        self.ingest.saturated()
            || (self.next_feed < self.ingest.admitted
                && !self.ingest.feedable(self.next_feed, self.ingest.finished))
    }
}

impl SessionCore for ClusterSession {
    fn submit(&mut self, task: &TaskDescriptor) -> Admission {
        if self.ingest.saturated() {
            return Admission::Backpressured;
        }
        let id = self.ingest.admit() as usize;
        self.log.admit(task.duration);
        self.plan_task(id, task);
        if let Some(log) = &mut self.spans {
            log.record(
                SpanKind::Submitted,
                self.t,
                self.placement[id],
                id as u32,
                0,
            );
        }
        self.frag_total.push(1 + self.remote[id].len() as u8);
        self.frag_ready.push(0);
        self.local_popped.push(false);
        self.local_slot.push(SlotRef::new(0, 0));
        self.durs.push(task.duration);
        Admission::Accepted
    }

    fn barrier(&mut self) {
        self.ingest.barrier();
    }

    fn advance_to(&mut self, cycle: u64) {
        if self.engine_err.is_some() {
            // A caught lane panic killed the session; the error surfaces
            // from `into_report`.
            return;
        }
        if self.par_eligible() {
            self.drive_events_par(cycle);
            // The serial drive's trailing jump: land exactly on `cycle`
            // (unless a lane panic just killed the session).
            if self.engine_err.is_none() && cycle > self.t {
                self.set_clock(cycle);
                self.on_clock_jump();
            }
        } else {
            self.drive_to(cycle);
        }
    }

    fn step(&mut self) -> bool {
        if self.engine_err.is_some() {
            return false;
        }
        self.drive_step()
    }

    fn now(&self) -> u64 {
        self.t
    }

    fn in_flight(&self) -> usize {
        self.ingest.in_flight()
    }

    fn drain_events(&mut self, out: &mut Vec<SimEvent>) {
        self.events.drain_into(out);
    }

    fn reserve(&mut self, additional: usize) {
        self.ingest.reserve(additional);
        self.log.reserve(additional);
        for v in [&mut self.frag_ready, &mut self.frag_total] {
            v.reserve(additional);
        }
        self.placement.reserve(additional);
        self.local.reserve(additional);
        self.remote.reserve(additional);
        self.local_popped.reserve(additional);
        self.local_slot.reserve(additional);
        self.durs.reserve(additional);
    }
}

/// Runs a trace through the cluster; returns the schedule with engine
/// label `"cluster"`. Opens a [`ClusterSession`], feeds the whole trace
/// and finishes it.
///
/// # Errors
///
/// [`ClusterError::Config`] on an invalid configuration,
/// [`ClusterError::Stalled`] if the run cannot complete (an engine bug).
pub fn run_cluster(trace: &Trace, cfg: &ClusterConfig) -> Result<ExecReport, ClusterError> {
    run_cluster_with_stats(trace, cfg).map(|(r, _)| r)
}

/// Aggregates per-shard hardware counters into cluster totals under the
/// explicit [`Stats::merge`] rules: monotone totals (busy cycles, stalls,
/// processed dependences) sum across shards; `peak_*` high-water marks
/// take the maximum — shards peak at different times, so summing their
/// peaks would fabricate an occupancy no memory ever held. (Within one
/// shard, [`PicosSystem::stats`] still sums its own per-TRS/per-DCT peaks:
/// those describe disjoint memories of one accelerator, the
/// [`Stats::merge_sum`] convention.) A one-shard cluster's merged stats
/// equal the single system's stats bit-for-bit.
pub fn merged_stats(per_shard: &[Stats]) -> Stats {
    let mut total = Stats::default();
    for s in per_shard {
        total.merge(s);
    }
    total
}

/// Like [`run_cluster`], but also returns each shard's hardware counters
/// (index = shard id; aggregate with [`merged_stats`]).
///
/// # Errors
///
/// See [`run_cluster`].
pub fn run_cluster_with_stats(
    trace: &Trace,
    cfg: &ClusterConfig,
) -> Result<(ExecReport, Vec<Stats>), ClusterError> {
    let mut s = ClusterSession::new(cfg.clone(), SessionConfig::batch())?;
    feed_trace(&mut s, trace).expect("unbounded window cannot stall");
    s.into_report()
}

#[cfg(test)]
mod tests {
    use super::*;
    use picos_trace::gen;
    use picos_trace::TaskGraph;

    fn run(trace: &Trace, shards: usize, workers: usize) -> ExecReport {
        let r = run_cluster(trace, &ClusterConfig::balanced(shards, workers))
            .unwrap_or_else(|e| panic!("{shards} shards: {e}"));
        r.validate(trace)
            .unwrap_or_else(|e| panic!("{shards} shards: {e}"));
        r
    }

    #[test]
    fn all_shard_counts_complete_and_validate() {
        let tr = gen::cholesky(gen::CholeskyConfig::paper(128));
        for shards in [1usize, 2, 3, 4, 8] {
            let r = run(&tr, shards, 16);
            assert_eq!(r.order.len(), tr.len());
        }
    }

    #[test]
    fn all_policies_are_legal() {
        let tr = gen::sparselu(gen::SparseLuConfig::paper(128));
        for policy in ShardPolicy::ALL {
            let cfg = ClusterConfig {
                policy,
                ..ClusterConfig::balanced(4, 12)
            };
            let r = run_cluster(&tr, &cfg).unwrap_or_else(|e| panic!("{policy}: {e}"));
            r.validate(&tr).unwrap_or_else(|e| panic!("{policy}: {e}"));
        }
    }

    #[test]
    fn random_traces_are_legal_on_every_policy() {
        for seed in 0..6u64 {
            let tr = gen::random_trace(gen::RandomConfig::default(), seed);
            let g = TaskGraph::build(&tr);
            for policy in ShardPolicy::ALL {
                for shards in [2usize, 4] {
                    let cfg = ClusterConfig {
                        policy,
                        ..ClusterConfig::balanced(shards, 8)
                    };
                    let r = run_cluster(&tr, &cfg)
                        .unwrap_or_else(|e| panic!("seed {seed} {policy} {shards}: {e}"));
                    assert!(
                        g.is_topological(&r.order),
                        "seed {seed} {policy} {shards}: order illegal"
                    );
                    r.validate(&tr)
                        .unwrap_or_else(|e| panic!("seed {seed} {policy} {shards}: {e}"));
                }
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let tr = gen::stream(gen::StreamConfig::heavy(600));
        let cfg = ClusterConfig::balanced(4, 16);
        let a = run_cluster_with_stats(&tr, &cfg).unwrap();
        let b = run_cluster_with_stats(&tr, &cfg).unwrap();
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
    }

    #[test]
    fn taskwait_barriers_respected() {
        let mut tr = Trace::new("barriered");
        let kc = picos_trace::KernelClass::GENERIC;
        for i in 0..20u64 {
            tr.push(kc, [Dependence::inout(0x1000 + i * 0x40)], 50);
        }
        tr.push_taskwait();
        for i in 0..20u64 {
            tr.push(kc, [Dependence::inout(0x9000 + i * 0x40)], 50);
        }
        for shards in [1usize, 3] {
            let r = run(&tr, shards, 6);
            r.validate(&tr).unwrap();
        }
    }

    #[test]
    fn invalid_configs_error_not_panic() {
        let tr = gen::synthetic(gen::Case::Case1);
        let e = run_cluster(&tr, &ClusterConfig::balanced(0, 4));
        assert!(matches!(e, Err(ClusterError::Config(_))));
        let e = run_cluster(&tr, &ClusterConfig::balanced(4, 2));
        assert!(matches!(e, Err(ClusterError::Config(_))));
        assert!(e.unwrap_err().to_string().contains("workers"));
    }

    #[test]
    fn empty_trace_is_a_noop() {
        let tr = Trace::new("empty");
        let (r, stats) = run_cluster_with_stats(&tr, &ClusterConfig::balanced(2, 4)).unwrap();
        assert_eq!(r.makespan, 0);
        assert_eq!(merged_stats(&stats).tasks_completed, 0);
    }

    #[test]
    fn per_shard_stats_cover_all_tasks() {
        let tr = gen::stream(gen::StreamConfig::heavy(500));
        let (_, stats) = run_cluster_with_stats(&tr, &ClusterConfig::balanced(4, 16)).unwrap();
        assert_eq!(stats.len(), 4);
        let total = merged_stats(&stats);
        // Every task submits a local fragment; remote fragments add more.
        assert!(total.tasks_submitted >= tr.len() as u64);
        assert_eq!(total.tasks_submitted, total.tasks_completed);
        // Sharding must actually spread dependence processing.
        let active = stats.iter().filter(|s| s.deps_processed > 0).count();
        assert!(active >= 2, "only {active} shards processed dependences");
    }

    #[test]
    fn lifo_policy_is_legal_on_clusters() {
        let tr = gen::lu(gen::LuConfig::paper(64));
        let mut cfg = ClusterConfig::balanced(3, 9);
        cfg.picos = cfg.picos.with_ts_policy(picos_core::TsPolicy::Lifo);
        let r = run_cluster(&tr, &cfg).unwrap();
        r.validate(&tr).unwrap();
    }

    #[test]
    fn session_matches_batch_run() {
        let tr = gen::stream(gen::StreamConfig::heavy(400));
        let cfg = ClusterConfig::balanced(3, 12);
        let batch = run_cluster_with_stats(&tr, &cfg).unwrap();
        let mut s = ClusterSession::new(cfg, SessionConfig::batch()).unwrap();
        feed_trace(&mut s, &tr).unwrap();
        let streamed = s.into_report().unwrap();
        assert_eq!(batch, streamed);
    }

    #[test]
    fn session_emits_shard_messages() {
        let tr = gen::stream(gen::StreamConfig::heavy(200));
        let mut s = ClusterSession::new(
            ClusterConfig::balanced(4, 8),
            SessionConfig {
                collect_events: true,
                ..SessionConfig::batch()
            },
        )
        .unwrap();
        feed_trace(&mut s, &tr).unwrap();
        let mut events = Vec::new();
        // Settle nothing yet: events materialize as the session runs.
        s.drain_events(&mut events);
        let n = tr.len();
        let (r, _) = {
            let mut s = s;
            s.advance_to(u64::MAX / 2);
            s.drain_events(&mut events);
            s.into_report().unwrap()
        };
        assert_eq!(r.order.len(), n);
        let shard_msgs = events
            .iter()
            .filter(|e| matches!(e, SimEvent::ShardMsg { .. }))
            .count();
        let starts = events
            .iter()
            .filter(|e| matches!(e, SimEvent::TaskStarted { .. }))
            .count();
        assert!(shard_msgs > 0, "a 4-shard run must cross the interconnect");
        assert_eq!(starts, n, "every task start must be reported");
    }

    #[test]
    fn parallel_engine_is_bit_identical_to_serial() {
        let tr = gen::stream(gen::StreamConfig::heavy(600));
        for shards in [2usize, 4] {
            let serial = run_cluster_with_stats(&tr, &ClusterConfig::balanced(shards, 16)).unwrap();
            for threads in 2..=shards {
                let cfg = ClusterConfig::balanced(shards, 16).with_threads(threads);
                let par = run_cluster_with_stats(&tr, &cfg).unwrap();
                assert_eq!(serial, par, "{shards} shards, {threads} threads");
            }
        }
    }

    #[test]
    fn threaded_epoch_loop_matches_inline() {
        // Force real OS threads past the available-parallelism cap so the
        // barrier/coordinator path runs even on a one-core machine. The
        // variable is process-global, but its only effect is choosing the
        // threaded loop, which is result-identical by design.
        std::env::set_var("PICOS_CLUSTER_FORCE_THREADS", "1");
        let tr = gen::stream(gen::StreamConfig::heavy(400));
        let serial = run_cluster_with_stats(&tr, &ClusterConfig::balanced(4, 12)).unwrap();
        for threads in [2usize, 4] {
            let cfg = ClusterConfig::balanced(4, 12).with_threads(threads);
            let par = run_cluster_with_stats(&tr, &cfg).unwrap();
            assert_eq!(serial, par, "{threads} forced threads");
        }
        std::env::remove_var("PICOS_CLUSTER_FORCE_THREADS");
    }

    #[test]
    fn parallel_engine_matches_serial_event_stream() {
        let tr = gen::stream(gen::StreamConfig::heavy(300));
        let collect = |threads: usize| {
            let cfg = ClusterConfig::balanced(4, 12).with_threads(threads);
            let mut s = ClusterSession::new(
                cfg,
                SessionConfig {
                    collect_events: true,
                    ..SessionConfig::batch()
                },
            )
            .unwrap();
            feed_trace(&mut s, &tr).unwrap();
            s.advance_to(u64::MAX / 2);
            let mut events = Vec::new();
            s.drain_events(&mut events);
            (events, s.into_report().unwrap())
        };
        let (serial_events, serial_report) = collect(1);
        let (par_events, par_report) = collect(4);
        assert_eq!(serial_report, par_report);
        assert_eq!(
            serial_events, par_events,
            "the merged event stream must reproduce serial order"
        );
    }

    #[test]
    fn parallel_engine_respects_taskwait_gates() {
        // Gated creation keeps the Distributor live mid-run, so the drive
        // must fall back to serial pumping until each gate clears.
        let mut tr = Trace::new("barriered");
        let kc = picos_trace::KernelClass::GENERIC;
        for i in 0..40u64 {
            tr.push(kc, [Dependence::inout(0x1000 + (i % 11) * 0x40)], 60);
        }
        tr.push_taskwait();
        for i in 0..40u64 {
            tr.push(kc, [Dependence::inout(0x9000 + (i % 7) * 0x40)], 45);
        }
        let serial = run_cluster_with_stats(&tr, &ClusterConfig::balanced(4, 8)).unwrap();
        let par =
            run_cluster_with_stats(&tr, &ClusterConfig::balanced(4, 8).with_threads(4)).unwrap();
        assert_eq!(serial, par);
    }

    #[test]
    fn parallel_windowed_session_matches_serial() {
        let tr = gen::stream(gen::StreamConfig::heavy(300));
        let drive = |threads: usize| {
            let cfg = ClusterConfig::balanced(2, 8).with_threads(threads);
            let mut s = ClusterSession::new(cfg, SessionConfig::windowed(16)).unwrap();
            for task in tr.iter() {
                loop {
                    match s.submit(task) {
                        Admission::Accepted => break,
                        Admission::Backpressured => assert!(s.step(), "blocked session drains"),
                    }
                }
            }
            s.into_report().unwrap()
        };
        assert_eq!(drive(1), drive(2));
    }

    #[test]
    fn timed_parallel_sessions_match_serial_bit_for_bit() {
        // Sampler-attached sessions run the epoch engine too: every window
        // boundary lands on an epoch-planning point, where the merged lane
        // state equals the serial engine's — the stitched timeline must be
        // bit-identical for any thread count and any window size (windows
        // both smaller and larger than the interconnect lookahead).
        let tr = gen::stream(gen::StreamConfig::heavy(300));
        for window in [8u64, 64, 512] {
            let run_timed = |threads: usize| {
                let cfg = ClusterConfig::balanced(4, 8).with_threads(threads);
                let mut s = ClusterSession::new(cfg, SessionConfig::timed(window)).unwrap();
                feed_trace(&mut s, &tr).unwrap();
                s.into_report_full().unwrap()
            };
            let (sr, ss, stl) = run_timed(1);
            for threads in [2usize, 4] {
                let (pr, ps, ptl) = run_timed(threads);
                assert_eq!(sr, pr, "window {window}, {threads} threads");
                assert_eq!(ss, ps, "window {window}, {threads} threads");
                assert_eq!(
                    stl.as_ref().expect("timed"),
                    ptl.as_ref().expect("timed"),
                    "window {window}, {threads} threads: timelines must match"
                );
            }
        }
    }

    #[test]
    fn windowed_session_backpressures_and_completes() {
        let tr = gen::stream(gen::StreamConfig::heavy(300));
        let mut s = ClusterSession::new(ClusterConfig::balanced(2, 8), SessionConfig::windowed(16))
            .unwrap();
        let mut retries = 0u64;
        for task in tr.iter() {
            loop {
                match s.submit(task) {
                    Admission::Accepted => break,
                    Admission::Backpressured => {
                        retries += 1;
                        assert!(s.step(), "blocked session must drain");
                    }
                }
            }
            assert!(s.in_flight() <= 16);
        }
        assert!(retries > 0, "a 16-task window must backpressure");
        let (r, stats) = s.into_report().unwrap();
        r.validate(&tr).unwrap();
        assert_eq!(r.order.len(), tr.len(), "no task may be dropped");
        let total = merged_stats(&stats);
        // Per-shard counters count fragments, so they can exceed the task
        // count but must balance.
        assert_eq!(total.tasks_submitted, total.tasks_completed);
    }

    /// Feeds tasks `range` of the trace, honoring its taskwait barriers
    /// and draining backpressure — the prefix-replay driver of the
    /// snapshot tests.
    fn feed_range(s: &mut ClusterSession, tr: &Trace, range: std::ops::Range<usize>) {
        for i in range {
            if tr.barriers().contains(&(i as u32)) {
                s.barrier();
            }
            while s.submit(&tr.tasks()[i]) == Admission::Backpressured {
                assert!(s.step(), "backpressured session must progress");
            }
        }
    }

    #[test]
    fn snapshot_restore_equals_continuous() {
        let tr = gen::sparselu(gen::SparseLuConfig::paper(128));
        let cfg = ClusterConfig::balanced(3, 9);
        let scfg = SessionConfig::windowed(16).with_timeline(64).with_spans();
        for pause in [0, 9, tr.len() / 2] {
            let mut cont = ClusterSession::new(cfg.clone(), scfg).unwrap();
            let mut live = ClusterSession::new(cfg.clone(), scfg).unwrap();
            feed_range(&mut cont, &tr, 0..pause);
            feed_range(&mut live, &tr, 0..pause);

            // Snapshot through the JSON text codec, restore into a fresh
            // identically-configured session.
            let text = picos_trace::snap::value_to_json(&live.save_state());
            let snap = picos_trace::snap::value_from_json(&text).unwrap();
            let mut restored = ClusterSession::new(cfg.clone(), scfg).unwrap();
            restored.load_state(&snap).unwrap();

            feed_range(&mut cont, &tr, pause..tr.len());
            feed_range(&mut restored, &tr, pause..tr.len());
            let a = cont.into_output().unwrap();
            let b = restored.into_output().unwrap();
            assert_eq!(a, b, "pause {pause}");
        }
    }

    #[test]
    fn snapshot_restore_equals_continuous_under_faults() {
        // The fault layer's whole runtime state — RNG cursor, pending
        // retries, dedup table, pause deferrals, worker-fault cursor,
        // counters — must survive the roundtrip: any drift would change
        // every later fault draw.
        let tr = gen::stream(gen::StreamConfig::heavy(300));
        let plan = FaultPlan::new(11)
            .with_drop_rate(0.05)
            .with_dup_rate(0.05)
            .with_jitter(0.2, 8)
            .with_pause(1, 400, 900)
            .with_worker_fault(0, 700);
        let mut cfg = ClusterConfig::balanced(3, 9);
        cfg.faults = Some(plan);
        let scfg = SessionConfig::windowed(16).with_timeline(64);
        for pause in [0, tr.len() / 3, tr.len() - 1] {
            let mut cont = ClusterSession::new(cfg.clone(), scfg).unwrap();
            let mut live = ClusterSession::new(cfg.clone(), scfg).unwrap();
            feed_range(&mut cont, &tr, 0..pause);
            feed_range(&mut live, &tr, 0..pause);

            let text = picos_trace::snap::value_to_json(&live.save_state());
            let snap = picos_trace::snap::value_from_json(&text).unwrap();
            let mut restored = ClusterSession::new(cfg.clone(), scfg).unwrap();
            restored.load_state(&snap).unwrap();

            feed_range(&mut cont, &tr, pause..tr.len());
            feed_range(&mut restored, &tr, pause..tr.len());
            let a = cont.into_output().unwrap();
            let b = restored.into_output().unwrap();
            assert_eq!(a, b, "pause {pause}");
            let c = a.3.expect("active plan");
            assert!(
                c.drops + c.retries + c.redeliveries + c.recoveries > 0,
                "the plan must actually inject faults for this to test anything"
            );
        }
    }

    #[test]
    fn snapshot_crosses_engine_thread_counts() {
        // The fingerprint deliberately excludes the thread knob: parallel
        // and serial engines are bit-identical, so a snapshot taken under
        // one restores and continues under the other.
        let tr = gen::stream(gen::StreamConfig::heavy(400));
        let cut = tr.len() / 2;
        let serial_cfg = ClusterConfig::balanced(4, 12);
        let par_cfg = ClusterConfig::balanced(4, 12).with_threads(4);

        let mut live = ClusterSession::new(par_cfg.clone(), SessionConfig::windowed(32)).unwrap();
        feed_range(&mut live, &tr, 0..cut);
        live.advance_to(live.now() + 1_000);
        let snap = live.save_state();

        let finish = |mut s: ClusterSession| {
            feed_range(&mut s, &tr, cut..tr.len());
            s.into_report().unwrap()
        };
        let mut into_serial = ClusterSession::new(serial_cfg, SessionConfig::windowed(32)).unwrap();
        into_serial.load_state(&snap).unwrap();
        let mut into_par = ClusterSession::new(par_cfg, SessionConfig::windowed(32)).unwrap();
        into_par.load_state(&snap).unwrap();
        assert_eq!(finish(into_serial), finish(into_par));
    }

    #[test]
    fn fork_is_an_independent_replica() {
        let tr = gen::stream(gen::StreamConfig::heavy(250));
        let cfg = ClusterConfig::balanced(3, 9);
        let mut orig = ClusterSession::new(cfg, SessionConfig::batch()).unwrap();
        feed_range(&mut orig, &tr, 0..100);
        let baseline = orig.save_state();

        let mut fork = orig.clone();
        feed_range(&mut fork, &tr, 100..tr.len());
        let forked = fork.into_report().unwrap();

        // Driving the fork to completion left the original untouched.
        assert_eq!(
            picos_trace::snap::value_to_json(&orig.save_state()),
            picos_trace::snap::value_to_json(&baseline)
        );
        feed_range(&mut orig, &tr, 100..tr.len());
        assert_eq!(orig.into_report().unwrap(), forked);
    }

    #[test]
    fn snapshot_rejects_config_mismatch() {
        let tr = gen::stream(gen::StreamConfig::heavy(60));
        let mut live =
            ClusterSession::new(ClusterConfig::balanced(3, 9), SessionConfig::batch()).unwrap();
        feed_range(&mut live, &tr, 0..tr.len());
        let snap = live.save_state();

        // Different shard count: fingerprint mismatch.
        let mut other =
            ClusterSession::new(ClusterConfig::balanced(2, 8), SessionConfig::batch()).unwrap();
        let err = other.load_state(&snap).unwrap_err().to_string();
        assert!(err.contains("cluster config"), "got: {err}");

        // Same cluster, different observation setup.
        let mut timed =
            ClusterSession::new(ClusterConfig::balanced(3, 9), SessionConfig::timed(64)).unwrap();
        let err = timed.load_state(&snap).unwrap_err().to_string();
        assert!(err.contains("sampler"), "got: {err}");

        // Same cluster, different fault plan.
        let mut faulted_cfg = ClusterConfig::balanced(3, 9);
        faulted_cfg.faults = Some(FaultPlan::new(7).with_drop_rate(0.1));
        let mut faulted = ClusterSession::new(faulted_cfg, SessionConfig::batch()).unwrap();
        let err = faulted.load_state(&snap).unwrap_err().to_string();
        assert!(err.contains("cluster config"), "got: {err}");
    }
}
