//! Sharded multi-Picos cluster model: distributed dependence management.
//!
//! The paper's scalability analysis ends at a single Picos — one Gateway,
//! one Arbiter, one set of TRS/DCT instances. This crate models the next
//! step: **N full Picos accelerators** with the dependence space sharded
//! across them by address, a front-end Distributor that places tasks on
//! shards, and an explicit inter-shard interconnect (built from the same
//! [`LinkModel`] delivery/service discipline as the HIL platform's AXI
//! Stream bus) carrying cross-shard dependence-registration, wake-up and
//! finish messages.
//!
//! # Model
//!
//! Every dependence address has a *home shard* ([`home_shard`]): the shard
//! whose Dependence Memory tracks that address's producer/consumer chain.
//! A task is *placed* on one shard by the configured [`ShardPolicy`]; its
//! dependence list is split into per-home-shard **fragments**. The local
//! fragment (deps homed at the placement shard — possibly empty) is
//! submitted directly; remote fragments cross the interconnect as
//! registration messages sized by their dependence count. Each shard
//! ingests fragments strictly in task-creation order (an ingress reorder
//! stage), which is what keeps per-address dependence chains identical to
//! the single-Picos analysis. A fragment that becomes ready at a remote
//! shard sends a wake-up notice back to the placement shard; the task
//! starts on a placement-shard worker once *all* of its fragments are
//! ready, and on finish the placement shard notifies every fragment's
//! shard so DM/VM/TM resources release and successors wake.
//!
//! A **one-shard cluster is cycle-identical to [`picos_hil::HilMode::HwOnly`]**:
//! every dependence is home, no message ever crosses the interconnect, and
//! the driver loop degenerates to the HW-only driver (this is pinned by the
//! conformance suite in `tests/cluster_conformance.rs`).
//!
//! # Quick example
//!
//! ```
//! use picos_cluster::{run_cluster, ClusterConfig};
//! use picos_trace::gen;
//!
//! let trace = gen::stream(gen::StreamConfig::heavy(400));
//! let one = run_cluster(&trace, &ClusterConfig::balanced(1, 16))?;
//! let four = run_cluster(&trace, &ClusterConfig::balanced(4, 16))?;
//! one.validate(&trace)?;
//! four.validate(&trace)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod fault;
mod system;

pub use config::{home_shard, ClusterConfig, ClusterError, ShardPolicy};
pub use fault::{FaultCounters, FaultPlan, ShardPause, WorkerFault};
pub use picos_hil::LinkModel;
pub use system::{
    merged_stats, run_cluster, run_cluster_with_stats, ClusterOutput, ClusterSession,
};
