//! Packet types exchanged between the Picos units.
//!
//! These mirror the packets of the paper's operational flow (Section III-B):
//! new-task and dependence packets on the N1-N6 path, finished and wake-up
//! packets on the F1-F4 path.

use picos_trace::{Dependence, TaskId};

/// A Task Memory slot: which TRS instance and which TM entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SlotRef {
    /// TRS instance index.
    pub trs: u8,
    /// TM entry index inside that TRS.
    pub entry: u16,
}

impl SlotRef {
    /// Creates a slot reference.
    pub const fn new(trs: u8, entry: u16) -> Self {
        SlotRef { trs, entry }
    }
}

impl std::fmt::Display for SlotRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trs{}#{}", self.trs, self.entry)
    }
}

/// A Version Memory entry: which DCT instance and which VM index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VmRef {
    /// DCT instance index.
    pub dct: u8,
    /// VM entry index inside that DCT.
    pub idx: u16,
}

impl VmRef {
    /// Creates a version reference.
    pub const fn new(dct: u8, idx: u16) -> Self {
        VmRef { dct, idx }
    }
}

impl std::fmt::Display for VmRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "dct{}@{}", self.dct, self.idx)
    }
}

/// A new task as submitted by the runtime (GW input, N1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NewTaskReq {
    /// Software task identifier.
    pub task: TaskId,
    /// The task's dependences (address + direction), shared with the trace
    /// so submission never copies the dependence list.
    pub deps: std::sync::Arc<[Dependence]>,
}

/// A finished-task notification from a worker (GW input, F1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FinishedReq {
    /// Software task identifier (for logging / validation).
    pub task: TaskId,
    /// The TM slot the task occupies.
    pub slot: SlotRef,
}

/// A ready-to-execute task delivered by the TS unit to the workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadyTask {
    /// Software task identifier.
    pub task: TaskId,
    /// The TM slot to quote back in the finished notification.
    pub slot: SlotRef,
    /// Cycle at which the task became available at the TS output.
    pub ready_at: super::Cycle,
}

/// How a dependence was resolved by the DCT (the N5 response).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResolveKind {
    /// The dependence is independent / already satisfied: a ready packet.
    Ready,
    /// The dependence must wait; `prev_consumer` carries the previous
    /// consumer of the same version for TRS-side chain bookkeeping
    /// (paper, Section III-D).
    Dependent {
        /// Previous consumer of the version, if this dependence extends a
        /// consumer chain.
        prev_consumer: Option<SlotRef>,
    },
}

/// Messages consumed by a TRS instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrsMsg {
    /// N3: a new task dispatched by the GW into a TM slot.
    NewTask {
        /// Assigned slot.
        slot: SlotRef,
        /// Software task id.
        task: TaskId,
        /// Number of dependences the DCT will report on.
        num_deps: u8,
    },
    /// N5: the DCT's verdict on one dependence.
    Resolve {
        /// Slot of the owning task.
        slot: SlotRef,
        /// Index of the dependence within the task.
        dep_idx: u8,
        /// The VM entry now tracking this dependence.
        vm: VmRef,
        /// Ready or dependent.
        kind: ResolveKind,
    },
    /// F4 / chain link: wake the dependence of `slot` tracked by `vm`.
    Wake {
        /// Slot of the task to wake.
        slot: SlotRef,
        /// VM entry identifying which dependence is being satisfied.
        vm: VmRef,
    },
    /// F2: the task in `slot` finished; release its dependences.
    Finished {
        /// Slot of the finished task.
        slot: SlotRef,
    },
}

/// Messages consumed by a DCT instance on the new-dependence port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NewDepMsg {
    /// Slot of the owning task.
    pub slot: SlotRef,
    /// Index of the dependence within the task.
    pub dep_idx: u8,
    /// The dependence itself.
    pub dep: Dependence,
    /// Set once the message has been counted as a DM conflict, so retries
    /// are not double-counted.
    pub conflict_counted: bool,
    /// Set once the message has been counted as a VM-capacity stall.
    pub vm_stall_counted: bool,
}

/// Messages consumed by a DCT instance on the finished-dependence port (F3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepFinMsg {
    /// The version the finishing task was registered under.
    pub vm: VmRef,
    /// Slot of the finishing task (distinguishes producer from consumers).
    pub from: SlotRef,
}

/// A packet in transit through the Arbiter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArbMsg {
    /// DCT -> TRS or TRS -> TRS traffic.
    ToTrs(u8, TrsMsg),
    /// TRS -> DCT finished-dependence traffic.
    ToDctFin(u8, DepFinMsg),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_and_vm_display() {
        assert_eq!(SlotRef::new(1, 42).to_string(), "trs1#42");
        assert_eq!(VmRef::new(0, 7).to_string(), "dct0@7");
    }

    #[test]
    fn resolve_kind_equality() {
        assert_eq!(ResolveKind::Ready, ResolveKind::Ready);
        let a = ResolveKind::Dependent {
            prev_consumer: Some(SlotRef::new(0, 1)),
        };
        let b = ResolveKind::Dependent {
            prev_consumer: None,
        };
        assert_ne!(a, b);
    }
}
