//! Task Memory: the per-TRS storage for in-flight tasks.
//!
//! TM0 stores task identity, the dependence count and the ready count; the
//! TMX memories store one record per dependence — the VM address the DCT
//! reported and, for consumer chains, the previous consumer to wake next
//! (paper, Section III-A/III-D). One TM entry is one "TRS slot"; the paper's
//! prototype has 256 of them, bounding the in-flight tasks.

use crate::msg::{SlotRef, VmRef};
use picos_trace::TaskId;

/// One TMX dependence record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TmDep {
    /// Index of the dependence within the task.
    pub dep_idx: u8,
    /// The VM entry tracking this dependence.
    pub vm: VmRef,
    /// Previous consumer of the same version: the next chain link to wake
    /// when this dependence is woken (paper, Figure 5 dashed links).
    pub chained_prev: Option<SlotRef>,
    /// Whether the dependence has been satisfied.
    pub resolved: bool,
}

/// One TM entry: an in-flight task.
#[derive(Debug, Clone)]
pub struct TmEntry {
    /// Software task id.
    pub task: TaskId,
    /// Number of dependences the task carries.
    pub num_deps: u8,
    /// Number of dependences already satisfied.
    pub ready_deps: u8,
    /// TMX records, filled in as the DCT answers (N5 packets).
    pub deps: Vec<TmDep>,
    /// Whether the task has been handed to the TS already.
    pub dispatched: bool,
}

impl TmEntry {
    /// Whether every dependence is satisfied.
    pub fn all_ready(&self) -> bool {
        self.ready_deps == self.num_deps
    }

    /// Finds the unresolved TMX record tracking `vm`.
    pub fn dep_by_vm_mut(&mut self, vm: VmRef) -> Option<&mut TmDep> {
        self.deps.iter_mut().find(|d| d.vm == vm && !d.resolved)
    }
}

/// The Task Memory of one TRS instance.
#[derive(Debug, Clone)]
pub struct Tm {
    entries: Vec<Option<TmEntry>>,
    free: Vec<u16>,
    /// Retired TMX vectors, recycled by [`Tm::alloc`] so the steady-state
    /// task flow performs no heap allocation.
    spare_deps: Vec<Vec<TmDep>>,
    peak_live: usize,
}

impl Tm {
    /// Creates a TM with `capacity` entries (paper: 256).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0 && capacity <= 65536);
        Tm {
            entries: vec![None; capacity],
            free: (0..capacity as u16).rev().collect(),
            spare_deps: Vec::new(),
            peak_live: 0,
        }
    }

    /// Total slot capacity.
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Number of in-flight tasks.
    pub fn live(&self) -> usize {
        self.entries.len() - self.free.len()
    }

    /// Highest number of simultaneously live tasks observed.
    pub fn peak_live(&self) -> usize {
        self.peak_live
    }

    /// Whether a slot is available.
    pub fn has_space(&self) -> bool {
        !self.free.is_empty()
    }

    /// Reserves a slot for a task about to be dispatched by the GW.
    ///
    /// The entry is initialised empty; the TRS fills it when the `NewTask`
    /// packet arrives. Returns `None` when the TM is full (the GW must not
    /// process the new task yet — paper, Section III-B N2).
    pub fn alloc(&mut self, task: TaskId, num_deps: u8) -> Option<u16> {
        let idx = self.free.pop()?;
        let deps = self
            .spare_deps
            .pop()
            .unwrap_or_else(|| Vec::with_capacity(num_deps as usize));
        self.entries[idx as usize] = Some(TmEntry {
            task,
            num_deps,
            ready_deps: 0,
            deps,
            dispatched: false,
        });
        self.peak_live = self.peak_live.max(self.live());
        Some(idx)
    }

    /// Frees a slot after its task finished and its dependences were
    /// released (F-flow step 3: "deletes the task inside the assigned TM
    /// slot"). The TMX vector is recycled for the next allocation.
    pub fn free(&mut self, idx: u16) {
        let e = self.entries[idx as usize]
            .take()
            .unwrap_or_else(|| panic!("double free of TM {idx}"));
        let mut deps = e.deps;
        deps.clear();
        self.spare_deps.push(deps);
        self.free.push(idx);
    }

    /// Borrows a live entry.
    pub fn get(&self, idx: u16) -> &TmEntry {
        self.entries[idx as usize]
            .as_ref()
            .expect("TM entry must be live")
    }

    /// Mutably borrows a live entry.
    pub fn get_mut(&mut self, idx: u16) -> &mut TmEntry {
        self.entries[idx as usize]
            .as_mut()
            .expect("TM entry must be live")
    }
}

impl Tm {
    /// Serializes the dynamic state: the free stack (exact order — it is
    /// an allocation stack), the peak and every live entry. The recycled
    /// `spare_deps` capacity pool is behaviourally inert and excluded.
    pub fn save_state(&self) -> picos_trace::Value {
        use crate::snap::{slot_pack, vm_pack};
        use picos_trace::snap::Enc;
        let live = self
            .entries
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.as_ref().map(|e| (i, e)));
        let mut e = Enc::new();
        e.usize(self.entries.len())
            .u64s(self.free.iter().map(|&i| i as u64))
            .usize(self.peak_live)
            .seq(live, |e, (idx, ent)| {
                e.usize(idx)
                    .u32(ent.task.raw())
                    .u64(ent.num_deps as u64)
                    .u64(ent.ready_deps as u64)
                    .bool(ent.dispatched)
                    .seq(&ent.deps, |e, d| {
                        e.u64(d.dep_idx as u64)
                            .u64(vm_pack(d.vm))
                            .opt_u64(d.chained_prev.map(slot_pack))
                            .bool(d.resolved);
                    });
            });
        e.done()
    }

    /// Overwrites the dynamic state from [`Tm::save_state`] output.
    ///
    /// # Errors
    ///
    /// Returns [`picos_trace::SnapError`] on a malformed record or a
    /// capacity mismatch.
    pub fn load_state(&mut self, v: &picos_trace::Value) -> Result<(), picos_trace::SnapError> {
        use crate::snap::{slot_unpack, vm_unpack};
        use picos_trace::snap::{guard, Dec};
        use picos_trace::TaskId;
        let mut d = Dec::new(v, "tm")?;
        guard("tm capacity", d.u64()?, self.entries.len() as u64)?;
        let free = d.u64s()?;
        let peak_live = d.usize()?;
        let live = d.seq(|d| {
            let idx = d.usize()?;
            let task = TaskId::new(d.u32()?);
            let num_deps = d.u64()? as u8;
            let ready_deps = d.u64()? as u8;
            let dispatched = d.bool()?;
            let deps = d.seq(|d| {
                Ok(TmDep {
                    dep_idx: d.u64()? as u8,
                    vm: vm_unpack(d.u64()?),
                    chained_prev: d.opt_u64()?.map(slot_unpack),
                    resolved: d.bool()?,
                })
            })?;
            Ok((
                idx,
                TmEntry {
                    task,
                    num_deps,
                    ready_deps,
                    deps,
                    dispatched,
                },
            ))
        })?;
        self.entries.iter_mut().for_each(|e| *e = None);
        self.free = free.into_iter().map(|v| v as u16).collect();
        self.peak_live = peak_live;
        for (idx, ent) in live {
            let slot = self
                .entries
                .get_mut(idx)
                .ok_or_else(|| picos_trace::SnapError::new("tm: live index out of range"))?;
            *slot = Some(ent);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_until_full() {
        let mut tm = Tm::new(2);
        let a = tm.alloc(TaskId::new(0), 1).unwrap();
        let b = tm.alloc(TaskId::new(1), 0).unwrap();
        assert_ne!(a, b);
        assert!(!tm.has_space());
        assert!(tm.alloc(TaskId::new(2), 0).is_none());
        tm.free(a);
        assert!(tm.has_space());
        assert_eq!(tm.live(), 1);
        assert_eq!(tm.peak_live(), 2);
    }

    #[test]
    fn entry_ready_logic() {
        let mut tm = Tm::new(4);
        let idx = tm.alloc(TaskId::new(7), 2).unwrap();
        {
            let e = tm.get_mut(idx);
            assert!(!e.all_ready());
            e.deps.push(TmDep {
                dep_idx: 0,
                vm: VmRef::new(0, 3),
                chained_prev: None,
                resolved: false,
            });
            e.ready_deps = 1;
            assert!(!e.all_ready());
            e.ready_deps = 2;
            assert!(e.all_ready());
        }
        assert_eq!(tm.get(idx).task, TaskId::new(7));
    }

    #[test]
    fn dep_lookup_by_vm_skips_resolved() {
        let mut tm = Tm::new(4);
        let idx = tm.alloc(TaskId::new(0), 2).unwrap();
        let e = tm.get_mut(idx);
        e.deps.push(TmDep {
            dep_idx: 0,
            vm: VmRef::new(0, 5),
            chained_prev: None,
            resolved: true,
        });
        e.deps.push(TmDep {
            dep_idx: 1,
            vm: VmRef::new(0, 9),
            chained_prev: Some(SlotRef::new(0, 2)),
            resolved: false,
        });
        assert!(
            e.dep_by_vm_mut(VmRef::new(0, 5)).is_none(),
            "resolved skipped"
        );
        let d = e.dep_by_vm_mut(VmRef::new(0, 9)).unwrap();
        assert_eq!(d.dep_idx, 1);
    }

    #[test]
    #[should_panic(expected = "must be live")]
    fn get_freed_entry_panics() {
        let mut tm = Tm::new(2);
        let a = tm.alloc(TaskId::new(0), 0).unwrap();
        tm.free(a);
        tm.get(a);
    }
}
