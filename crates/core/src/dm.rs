//! Dependence Memory: the address-matching cache of the DCT.
//!
//! For each new dependence the DM performs address matching against the
//! dependences that arrived earlier; each distinct live address occupies one
//! way of one set (paper, Section III-C). The three designs differ in
//! associativity and index function:
//!
//! * `DM 8way` — 64 sets x 8 ways, direct index (address LSBs),
//! * `DM 16way` — 64 sets x 16 ways, direct index,
//! * `DM P+8way` — 64 sets x 8 ways, Pearson-hashed index.
//!
//! A **conflict** occurs when a new address misses and its set has no free
//! way; the DCT must stall that dependence until an entry retires. Conflict
//! counts are the paper's Table II.

use crate::config::DmDesign;
use crate::msg::VmRef;
use crate::pearson::{direct_index, pearson_index};

/// Location of a DM entry: `(set, way)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DmSlot {
    /// Set index.
    pub set: usize,
    /// Way index within the set.
    pub way: usize,
}

/// One DM way: a live tracked address.
#[derive(Debug, Clone)]
struct DmEntry {
    /// The dependence address (the cache tag; full 64 bits compared).
    tag: u64,
    /// Oldest live version of this address.
    vm_head: VmRef,
    /// Latest version of this address (where new arrivals append).
    vm_tail: VmRef,
    /// Number of live versions.
    live_versions: u32,
    /// Total arrivals referencing this entry (the paper's per-entry count).
    refs: u32,
    /// Whether every arrival so far was an input (the paper's `I` bit).
    all_inputs: bool,
}

/// Outcome of a DM lookup-or-insert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DmAccess {
    /// The address is already tracked.
    Hit(DmSlot),
    /// The address was inserted into a free way.
    Inserted(DmSlot),
    /// The set is full: a DM conflict; the dependence must stall.
    Conflict,
}

/// The Dependence Memory of one DCT instance.
#[derive(Debug, Clone)]
pub struct Dm {
    design: DmDesign,
    sets: usize,
    ways: usize,
    entries: Vec<Option<DmEntry>>,
    /// Live ways per set: lets lookups skip empty sets and inserts skip the
    /// free-way search in full sets.
    occupancy: Vec<u16>,
    live: usize,
    conflicts: u64,
    peak_live: usize,
}

impl Dm {
    /// Creates an empty DM with the given design and set count.
    pub fn new(design: DmDesign, sets: usize) -> Self {
        let ways = design.ways();
        Dm {
            design,
            sets,
            ways,
            entries: vec![None; sets * ways],
            occupancy: vec![0; sets],
            live: 0,
            conflicts: 0,
            peak_live: 0,
        }
    }

    /// The design of this DM.
    pub fn design(&self) -> DmDesign {
        self.design
    }

    /// Total way capacity (distinct simultaneous addresses).
    pub fn capacity(&self) -> usize {
        self.sets * self.ways
    }

    /// Number of live entries.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Highest number of simultaneously live entries observed.
    pub fn peak_live(&self) -> usize {
        self.peak_live
    }

    /// Number of conflicts recorded so far (Table II).
    pub fn conflicts(&self) -> u64 {
        self.conflicts
    }

    /// Records one conflict event (called once per stalled dependence).
    pub fn count_conflict(&mut self) {
        self.conflicts += 1;
    }

    /// The set index of an address under this design's hash.
    pub fn index(&self, addr: u64) -> usize {
        if self.design.uses_pearson() {
            pearson_index(addr, self.sets)
        } else {
            direct_index(addr, self.sets)
        }
    }

    fn at(&self, slot: DmSlot) -> &DmEntry {
        self.entries[slot.set * self.ways + slot.way]
            .as_ref()
            .expect("DM slot must be live")
    }

    fn at_mut(&mut self, slot: DmSlot) -> &mut DmEntry {
        self.entries[slot.set * self.ways + slot.way]
            .as_mut()
            .expect("DM slot must be live")
    }

    /// Looks up an address; does not insert. Empty sets are skipped via
    /// the occupancy count without touching the ways.
    pub fn lookup(&self, addr: u64) -> Option<DmSlot> {
        let set = self.index(addr);
        if self.occupancy[set] == 0 {
            return None;
        }
        let base = set * self.ways;
        for (way, e) in self.entries[base..base + self.ways].iter().enumerate() {
            if let Some(e) = e {
                if e.tag == addr {
                    return Some(DmSlot { set, way });
                }
            }
        }
        None
    }

    /// Records another arrival on an entry already located by
    /// [`Dm::lookup`]: the hit-path bookkeeping of [`Dm::access`] without
    /// re-walking the set.
    pub fn touch(&mut self, slot: DmSlot, is_input: bool) {
        let e = self.at_mut(slot);
        e.refs += 1;
        e.all_inputs &= is_input;
    }

    /// Looks up an address and, on miss, tries to claim the free way with
    /// the lowest index (paper: "way 0 has the highest priority").
    ///
    /// The set index is computed once and the set's contiguous way slice
    /// is walked a single time, tracking the tag match and the first free
    /// way together; full sets skip the free-way search entirely.
    ///
    /// On [`DmAccess::Inserted`] the caller must immediately call
    /// [`Dm::bind`] to attach the first VM version. Does **not** count
    /// conflicts; the DCT counts them once per stalled dependence via
    /// [`Dm::count_conflict`].
    pub fn access(&mut self, addr: u64, is_input: bool) -> DmAccess {
        let set = self.index(addr);
        let base = set * self.ways;
        let set_full = self.occupancy[set] as usize == self.ways;
        let mut first_free = None;
        for (way, e) in self.entries[base..base + self.ways].iter_mut().enumerate() {
            match e {
                Some(e) if e.tag == addr => {
                    e.refs += 1;
                    e.all_inputs &= is_input;
                    return DmAccess::Hit(DmSlot { set, way });
                }
                None if !set_full && first_free.is_none() => first_free = Some(way),
                _ => {}
            }
        }
        let Some(way) = first_free else {
            return DmAccess::Conflict;
        };
        self.entries[base + way] = Some(DmEntry {
            tag: addr,
            vm_head: VmRef::new(0, 0),
            vm_tail: VmRef::new(0, 0),
            live_versions: 0,
            refs: 1,
            all_inputs: is_input,
        });
        self.occupancy[set] += 1;
        self.live += 1;
        self.peak_live = self.peak_live.max(self.live);
        DmAccess::Inserted(DmSlot { set, way })
    }

    /// Attaches the first VM version to a freshly inserted entry.
    pub fn bind(&mut self, slot: DmSlot, vm: VmRef) {
        let e = self.at_mut(slot);
        debug_assert_eq!(e.live_versions, 0, "bind expects a fresh entry");
        e.vm_head = vm;
        e.vm_tail = vm;
        e.live_versions = 1;
    }

    /// The latest version of the entry (where new arrivals append).
    pub fn tail(&self, slot: DmSlot) -> VmRef {
        self.at(slot).vm_tail
    }

    /// Number of live versions chained on the entry (the paper's
    /// dependence-chain depth for this address).
    pub fn chain_len(&self, slot: DmSlot) -> u32 {
        self.at(slot).live_versions
    }

    /// The oldest live version of the entry.
    pub fn head(&self, slot: DmSlot) -> VmRef {
        self.at(slot).vm_head
    }

    /// Whether all arrivals on this entry so far were inputs.
    pub fn all_inputs(&self, slot: DmSlot) -> bool {
        self.at(slot).all_inputs
    }

    /// Appends a new version at the tail.
    pub fn push_version(&mut self, slot: DmSlot, vm: VmRef) {
        let e = self.at_mut(slot);
        debug_assert!(e.live_versions > 0);
        e.vm_tail = vm;
        e.live_versions += 1;
    }

    /// Retires the head version. `next` is the new head; when `None`, the
    /// whole entry is freed and the way becomes available again.
    ///
    /// Returns `true` when the entry was freed.
    pub fn pop_version(&mut self, slot: DmSlot, next: Option<VmRef>) -> bool {
        let e = self.at_mut(slot);
        debug_assert!(e.live_versions > 0);
        e.live_versions -= 1;
        match next {
            Some(vm) => {
                debug_assert!(e.live_versions > 0, "next version implies entry stays live");
                e.vm_head = vm;
                false
            }
            None => {
                debug_assert_eq!(e.live_versions, 0, "freeing entry with live versions");
                self.entries[slot.set * self.ways + slot.way] = None;
                self.occupancy[slot.set] -= 1;
                self.live -= 1;
                true
            }
        }
    }
}

impl Dm {
    /// Serializes the dynamic state: conflict/peak counters and every live
    /// way. Occupancy counts and the live total are derived on load.
    pub fn save_state(&self) -> picos_trace::Value {
        use crate::snap::vm_pack;
        use picos_trace::snap::Enc;
        let live = self
            .entries
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.as_ref().map(|e| (i, e)));
        let mut e = Enc::new();
        e.usize(self.sets)
            .usize(self.ways)
            .u64(self.conflicts)
            .usize(self.peak_live)
            .seq(live, |e, (idx, ent)| {
                e.usize(idx)
                    .u64(ent.tag)
                    .u64(vm_pack(ent.vm_head))
                    .u64(vm_pack(ent.vm_tail))
                    .u32(ent.live_versions)
                    .u32(ent.refs)
                    .bool(ent.all_inputs);
            });
        e.done()
    }

    /// Overwrites the dynamic state from [`Dm::save_state`] output.
    ///
    /// # Errors
    ///
    /// Returns [`picos_trace::SnapError`] on a malformed record or a
    /// geometry mismatch.
    pub fn load_state(&mut self, v: &picos_trace::Value) -> Result<(), picos_trace::SnapError> {
        use crate::snap::vm_unpack;
        use picos_trace::snap::{guard, Dec};
        let mut d = Dec::new(v, "dm")?;
        guard("dm sets", d.u64()?, self.sets as u64)?;
        guard("dm ways", d.u64()?, self.ways as u64)?;
        let conflicts = d.u64()?;
        let peak_live = d.usize()?;
        let live = d.seq(|d| {
            let idx = d.usize()?;
            let tag = d.u64()?;
            let vm_head = vm_unpack(d.u64()?);
            let vm_tail = vm_unpack(d.u64()?);
            let live_versions = d.u32()?;
            let refs = d.u32()?;
            let all_inputs = d.bool()?;
            Ok((
                idx,
                DmEntry {
                    tag,
                    vm_head,
                    vm_tail,
                    live_versions,
                    refs,
                    all_inputs,
                },
            ))
        })?;
        self.entries.iter_mut().for_each(|e| *e = None);
        self.occupancy.iter_mut().for_each(|o| *o = 0);
        self.conflicts = conflicts;
        self.peak_live = peak_live;
        self.live = live.len();
        for (idx, ent) in live {
            if idx >= self.entries.len() {
                return Err(picos_trace::SnapError::new("dm: live index out of range"));
            }
            self.occupancy[idx / self.ways] += 1;
            self.entries[idx] = Some(ent);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dm(design: DmDesign) -> Dm {
        Dm::new(design, 64)
    }

    #[test]
    fn insert_then_hit() {
        let mut m = dm(DmDesign::PearsonEightWay);
        let a = 0x4000_0040u64;
        let DmAccess::Inserted(slot) = m.access(a, true) else {
            panic!("expected insert");
        };
        m.bind(slot, VmRef::new(0, 3));
        assert_eq!(m.access(a, true), DmAccess::Hit(slot));
        assert_eq!(m.tail(slot), VmRef::new(0, 3));
        assert_eq!(m.head(slot), VmRef::new(0, 3));
        assert_eq!(m.live(), 1);
    }

    #[test]
    fn conflict_when_set_full_direct() {
        let mut m = dm(DmDesign::EightWay);
        // 8 addresses with identical low 6 bits fill set 0.
        for i in 0..8u64 {
            let r = m.access(0x1000_0000 + i * 64 * 1024, false);
            let DmAccess::Inserted(s) = r else { panic!() };
            m.bind(s, VmRef::new(0, i as u16));
        }
        assert_eq!(
            m.access(0x1000_0000 + 9 * 64 * 1024, false),
            DmAccess::Conflict
        );
        assert_eq!(m.live(), 8);
        m.count_conflict();
        assert_eq!(m.conflicts(), 1);
    }

    #[test]
    fn sixteen_way_absorbs_more() {
        let mut m = dm(DmDesign::SixteenWay);
        for i in 0..16u64 {
            let r = m.access(0x1000_0000 + i * 64 * 1024, false);
            assert!(matches!(r, DmAccess::Inserted(_)), "i={i}");
            if let DmAccess::Inserted(s) = r {
                m.bind(s, VmRef::new(0, i as u16));
            }
        }
        assert_eq!(
            m.access(0x1000_0000 + 16 * 64 * 1024, false),
            DmAccess::Conflict
        );
    }

    #[test]
    fn pearson_spreads_clustered_addresses() {
        let mut m = dm(DmDesign::PearsonEightWay);
        // 64 power-of-two-strided addresses that would all collide under
        // direct indexing insert fine here.
        let mut inserted = 0;
        for i in 0..64u64 {
            match m.access(0x1000_0000 + i * 64 * 1024, false) {
                DmAccess::Inserted(s) => {
                    m.bind(s, VmRef::new(0, i as u16));
                    inserted += 1;
                }
                DmAccess::Conflict => {}
                DmAccess::Hit(_) => panic!("distinct addresses cannot hit"),
            }
        }
        assert!(inserted > 48, "only {inserted} inserted");
    }

    #[test]
    fn way_priority_lowest_first() {
        let mut m = dm(DmDesign::EightWay);
        let DmAccess::Inserted(s0) = m.access(0x40, false) else {
            panic!()
        };
        assert_eq!(s0.way, 0);
        m.bind(s0, VmRef::new(0, 0));
        let DmAccess::Inserted(s1) = m.access(0x40 + 64, false) else {
            panic!()
        };
        assert_eq!(s1.way, 1);
    }

    #[test]
    fn version_chain_lifecycle() {
        let mut m = dm(DmDesign::PearsonEightWay);
        let DmAccess::Inserted(s) = m.access(0x99, false) else {
            panic!()
        };
        m.bind(s, VmRef::new(0, 0));
        m.push_version(s, VmRef::new(0, 1));
        m.push_version(s, VmRef::new(0, 2));
        assert_eq!(m.tail(s), VmRef::new(0, 2));
        assert_eq!(m.head(s), VmRef::new(0, 0));
        assert!(!m.pop_version(s, Some(VmRef::new(0, 1))));
        assert_eq!(m.head(s), VmRef::new(0, 1));
        assert!(!m.pop_version(s, Some(VmRef::new(0, 2))));
        assert!(m.pop_version(s, None));
        assert_eq!(m.live(), 0);
        // Way is reusable.
        assert!(matches!(m.access(0xABCD, false), DmAccess::Inserted(_)));
    }

    #[test]
    fn all_inputs_flag_clears_on_writer() {
        let mut m = dm(DmDesign::PearsonEightWay);
        let DmAccess::Inserted(s) = m.access(0x77, true) else {
            panic!()
        };
        m.bind(s, VmRef::new(0, 0));
        assert!(m.all_inputs(s));
        m.access(0x77, true);
        assert!(m.all_inputs(s));
        m.access(0x77, false);
        assert!(!m.all_inputs(s));
    }

    #[test]
    fn peak_live_tracks_maximum() {
        let mut m = dm(DmDesign::PearsonEightWay);
        let DmAccess::Inserted(a) = m.access(0x11, false) else {
            panic!()
        };
        m.bind(a, VmRef::new(0, 0));
        let DmAccess::Inserted(b) = m.access(0x12, false) else {
            panic!()
        };
        m.bind(b, VmRef::new(0, 1));
        m.pop_version(a, None);
        assert_eq!(m.live(), 1);
        assert_eq!(m.peak_live(), 2);
    }
}
