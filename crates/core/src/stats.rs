//! Aggregate statistics of a Picos run.

/// Counters and high-water marks collected by the engine.
///
/// `dm_conflicts` is the paper's Table II metric: the number of dependences
/// that found their DM set full and had to stall.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Stats {
    /// Tasks accepted by the Gateway.
    pub tasks_submitted: u64,
    /// Tasks whose finish was fully processed.
    pub tasks_completed: u64,
    /// Dependences registered by all DCTs.
    pub deps_processed: u64,
    /// Dependences that stalled on a full DM set (Table II).
    pub dm_conflicts: u64,
    /// Dependences that stalled on a full VM.
    pub vm_stalls: u64,
    /// New tasks the GW could not take because no TM slot was free.
    pub tm_stalls: u64,
    /// Wake packets sent by DCTs.
    pub wakes_sent: u64,
    /// Chain wake-ups forwarded backwards by TRS units.
    pub chain_wakes: u64,
    /// Peak in-flight tasks over all TRS instances.
    pub peak_in_flight: usize,
    /// Peak live DM entries over all DCT instances.
    pub peak_dm_live: usize,
    /// Peak live VM entries over all DCT instances.
    pub peak_vm_live: usize,
    /// Peak occupancy of the ready-task output buffer.
    pub peak_ready: usize,
    /// Busy cycles of the Gateway (new-task + finished ports).
    pub busy_gw: u64,
    /// Busy cycles summed over all TRS instances.
    pub busy_trs: u64,
    /// Busy cycles summed over all DCT instances (both ports).
    pub busy_dct: u64,
    /// Busy cycles of the Arbiter.
    pub busy_arb: u64,
    /// Busy cycles of the Task Scheduler.
    pub busy_ts: u64,
}

impl Stats {
    /// Accumulates another instance's counters into `self`, element-wise.
    ///
    /// Peaks are summed, matching how [`crate::PicosSystem::stats`] already
    /// aggregates per-TRS/per-DCT peaks inside one system. This is the
    /// aggregation used for per-shard statistics of a clustered
    /// configuration: a one-shard cluster's merged stats equal the single
    /// system's stats.
    pub fn merge(&mut self, other: &Stats) {
        self.tasks_submitted += other.tasks_submitted;
        self.tasks_completed += other.tasks_completed;
        self.deps_processed += other.deps_processed;
        self.dm_conflicts += other.dm_conflicts;
        self.vm_stalls += other.vm_stalls;
        self.tm_stalls += other.tm_stalls;
        self.wakes_sent += other.wakes_sent;
        self.chain_wakes += other.chain_wakes;
        self.peak_in_flight += other.peak_in_flight;
        self.peak_dm_live += other.peak_dm_live;
        self.peak_vm_live += other.peak_vm_live;
        self.peak_ready += other.peak_ready;
        self.busy_gw += other.busy_gw;
        self.busy_trs += other.busy_trs;
        self.busy_dct += other.busy_dct;
        self.busy_arb += other.busy_arb;
        self.busy_ts += other.busy_ts;
    }

    /// Utilization of a unit class over a run of `makespan` cycles,
    /// normalized per instance.
    pub fn utilization(busy: u64, makespan: u64, instances: usize) -> f64 {
        if makespan == 0 || instances == 0 {
            0.0
        } else {
            busy as f64 / makespan as f64 / instances as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zeroed() {
        let s = Stats::default();
        assert_eq!(s.tasks_submitted, 0);
        assert_eq!(s.dm_conflicts, 0);
        assert_eq!(s.peak_ready, 0);
        assert_eq!(s.busy_gw, 0);
    }

    #[test]
    fn merge_sums_everything() {
        let mut a = Stats {
            tasks_submitted: 1,
            dm_conflicts: 2,
            peak_ready: 3,
            busy_dct: 4,
            ..Stats::default()
        };
        let b = Stats {
            tasks_submitted: 10,
            dm_conflicts: 20,
            peak_ready: 30,
            busy_dct: 40,
            ..Stats::default()
        };
        a.merge(&b);
        assert_eq!(a.tasks_submitted, 11);
        assert_eq!(a.dm_conflicts, 22);
        assert_eq!(a.peak_ready, 33);
        assert_eq!(a.busy_dct, 44);
        let mut c = Stats::default();
        c.merge(&b);
        assert_eq!(c, b, "merging into zero is the identity");
    }

    #[test]
    fn utilization_math() {
        assert_eq!(Stats::utilization(50, 100, 1), 0.5);
        assert_eq!(Stats::utilization(100, 100, 2), 0.5);
        assert_eq!(Stats::utilization(10, 0, 1), 0.0);
    }
}
