//! Aggregate statistics of a Picos run.

/// Counters and high-water marks collected by the engine.
///
/// `dm_conflicts` is the paper's Table II metric: the number of dependences
/// that found their DM set full and had to stall.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Stats {
    /// Tasks accepted by the Gateway.
    pub tasks_submitted: u64,
    /// Tasks whose finish was fully processed.
    pub tasks_completed: u64,
    /// Dependences registered by all DCTs.
    pub deps_processed: u64,
    /// Dependences that stalled on a full DM set (Table II).
    pub dm_conflicts: u64,
    /// Dependences that stalled on a full VM.
    pub vm_stalls: u64,
    /// New tasks the GW could not take because no TM slot was free.
    pub tm_stalls: u64,
    /// Wake packets sent by DCTs.
    pub wakes_sent: u64,
    /// Chain wake-ups forwarded backwards by TRS units.
    pub chain_wakes: u64,
    /// Peak in-flight tasks over all TRS instances.
    pub peak_in_flight: usize,
    /// Peak live DM entries over all DCT instances.
    pub peak_dm_live: usize,
    /// Peak live VM entries over all DCT instances.
    pub peak_vm_live: usize,
    /// Peak occupancy of the ready-task output buffer.
    pub peak_ready: usize,
    /// Busy cycles of the Gateway (new-task + finished ports).
    pub busy_gw: u64,
    /// Busy cycles summed over all TRS instances.
    pub busy_trs: u64,
    /// Busy cycles summed over all DCT instances (both ports).
    pub busy_dct: u64,
    /// Busy cycles of the Arbiter.
    pub busy_arb: u64,
    /// Busy cycles of the Task Scheduler.
    pub busy_ts: u64,
}

impl Stats {
    /// Utilization of a unit class over a run of `makespan` cycles,
    /// normalized per instance.
    pub fn utilization(busy: u64, makespan: u64, instances: usize) -> f64 {
        if makespan == 0 || instances == 0 {
            0.0
        } else {
            busy as f64 / makespan as f64 / instances as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zeroed() {
        let s = Stats::default();
        assert_eq!(s.tasks_submitted, 0);
        assert_eq!(s.dm_conflicts, 0);
        assert_eq!(s.peak_ready, 0);
        assert_eq!(s.busy_gw, 0);
    }

    #[test]
    fn utilization_math() {
        assert_eq!(Stats::utilization(50, 100, 1), 0.5);
        assert_eq!(Stats::utilization(100, 100, 2), 0.5);
        assert_eq!(Stats::utilization(10, 0, 1), 0.0);
    }
}
