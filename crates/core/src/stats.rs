//! Aggregate statistics of a Picos run.
//!
//! [`Stats`] is the flat, field-addressable view the hot path increments;
//! its vocabulary — which fields are monotone totals and which are
//! high-water marks — lives in one table ([`Stats::FIELDS`]) shared with
//! the [`picos_metrics::MetricSet`] registry view, so merge semantics can
//! never drift between the struct and the registry.

use picos_metrics::{MergeRule, MetricSet};

/// Inclusive bucket bounds of the DM version-chain-length histogram
/// (chain depth observed after each successful dependence registration).
pub const DM_CHAIN_BOUNDS: [u64; 6] = [1, 2, 4, 8, 16, 32];

/// Inclusive bucket bounds of the TRS wake-to-ready latency histogram:
/// cycles from the delivery of the message that ultimately readied a task
/// to the TRS finishing the readiness service (queueing included).
pub const TRS_WAKE_BOUNDS: [u64; 7] = [2, 4, 8, 16, 32, 64, 128];

/// Bucket index of an observation under inclusive upper `bounds` (the
/// last bucket is the overflow bucket).
#[inline]
pub fn hist_bucket(bounds: &[u64], v: u64) -> usize {
    bounds.partition_point(|&b| b < v)
}

/// Counters and high-water marks collected by the engine.
///
/// `dm_conflicts` is the paper's Table II metric: the number of dependences
/// that found their DM set full and had to stall.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Stats {
    /// Tasks accepted by the Gateway.
    pub tasks_submitted: u64,
    /// Tasks whose finish was fully processed.
    pub tasks_completed: u64,
    /// Dependences registered by all DCTs.
    pub deps_processed: u64,
    /// Dependences that stalled on a full DM set (Table II).
    pub dm_conflicts: u64,
    /// Dependences that stalled on a full VM.
    pub vm_stalls: u64,
    /// New tasks the GW could not take because no TM slot was free.
    pub tm_stalls: u64,
    /// Wake packets sent by DCTs.
    pub wakes_sent: u64,
    /// Chain wake-ups forwarded backwards by TRS units.
    pub chain_wakes: u64,
    /// Peak in-flight tasks over all TRS instances.
    pub peak_in_flight: usize,
    /// Peak live DM entries over all DCT instances.
    pub peak_dm_live: usize,
    /// Peak live VM entries over all DCT instances.
    pub peak_vm_live: usize,
    /// Peak occupancy of the ready-task output buffer.
    pub peak_ready: usize,
    /// Busy cycles of the Gateway (new-task + finished ports).
    pub busy_gw: u64,
    /// Busy cycles summed over all TRS instances.
    pub busy_trs: u64,
    /// Busy cycles summed over all DCT instances (both ports).
    pub busy_dct: u64,
    /// Busy cycles of the Arbiter.
    pub busy_arb: u64,
    /// Busy cycles of the Task Scheduler.
    pub busy_ts: u64,
    /// Cycles the Gateway's new-task port spent blocked on a free TM slot
    /// (the blocked-on-whom refinement of the `tm_stalls` event count).
    pub gw_wait_tm: u64,
    /// Cycles DCT new-dependence queue heads spent blocked on a DM way.
    pub dct_wait_dm: u64,
    /// Cycles DCT new-dependence queue heads spent blocked on a VM entry.
    pub dct_wait_vm: u64,
    /// DM version-chain depth per registration, bucketed by
    /// [`DM_CHAIN_BOUNDS`] (+1 overflow bucket).
    pub dm_chain_hist: [u64; DM_CHAIN_BOUNDS.len() + 1],
    /// TRS wake-to-ready latency per readied task, bucketed by
    /// [`TRS_WAKE_BOUNDS`] (+1 overflow bucket).
    pub trs_wake_hist: [u64; TRS_WAKE_BOUNDS.len() + 1],
}

/// Field accessor table: name, merge rule, getter, setter. One row per
/// [`Stats`] field, in declaration order.
type FieldRow = (
    &'static str,
    MergeRule,
    fn(&Stats) -> u64,
    fn(&mut Stats, u64),
);

impl Stats {
    /// The metric vocabulary of a Picos run: every field with its name and
    /// merge rule. Totals (task/dependence counts, stalls, busy cycles)
    /// merge by sum; `peak_*` high-water marks merge by max — peaks
    /// observed on different shards at different times must not be added.
    pub const FIELDS: [FieldRow; 20] = [
        (
            "tasks_submitted",
            MergeRule::Sum,
            |s| s.tasks_submitted,
            |s, v| s.tasks_submitted = v,
        ),
        (
            "tasks_completed",
            MergeRule::Sum,
            |s| s.tasks_completed,
            |s, v| s.tasks_completed = v,
        ),
        (
            "deps_processed",
            MergeRule::Sum,
            |s| s.deps_processed,
            |s, v| s.deps_processed = v,
        ),
        (
            "dm_conflicts",
            MergeRule::Sum,
            |s| s.dm_conflicts,
            |s, v| s.dm_conflicts = v,
        ),
        (
            "vm_stalls",
            MergeRule::Sum,
            |s| s.vm_stalls,
            |s, v| s.vm_stalls = v,
        ),
        (
            "tm_stalls",
            MergeRule::Sum,
            |s| s.tm_stalls,
            |s, v| s.tm_stalls = v,
        ),
        (
            "wakes_sent",
            MergeRule::Sum,
            |s| s.wakes_sent,
            |s, v| s.wakes_sent = v,
        ),
        (
            "chain_wakes",
            MergeRule::Sum,
            |s| s.chain_wakes,
            |s, v| s.chain_wakes = v,
        ),
        (
            "peak_in_flight",
            MergeRule::Max,
            |s| s.peak_in_flight as u64,
            |s, v| s.peak_in_flight = v as usize,
        ),
        (
            "peak_dm_live",
            MergeRule::Max,
            |s| s.peak_dm_live as u64,
            |s, v| s.peak_dm_live = v as usize,
        ),
        (
            "peak_vm_live",
            MergeRule::Max,
            |s| s.peak_vm_live as u64,
            |s, v| s.peak_vm_live = v as usize,
        ),
        (
            "peak_ready",
            MergeRule::Max,
            |s| s.peak_ready as u64,
            |s, v| s.peak_ready = v as usize,
        ),
        (
            "busy_gw",
            MergeRule::Sum,
            |s| s.busy_gw,
            |s, v| s.busy_gw = v,
        ),
        (
            "busy_trs",
            MergeRule::Sum,
            |s| s.busy_trs,
            |s, v| s.busy_trs = v,
        ),
        (
            "busy_dct",
            MergeRule::Sum,
            |s| s.busy_dct,
            |s, v| s.busy_dct = v,
        ),
        (
            "busy_arb",
            MergeRule::Sum,
            |s| s.busy_arb,
            |s, v| s.busy_arb = v,
        ),
        (
            "busy_ts",
            MergeRule::Sum,
            |s| s.busy_ts,
            |s, v| s.busy_ts = v,
        ),
        (
            "gw_wait_tm",
            MergeRule::Sum,
            |s| s.gw_wait_tm,
            |s, v| s.gw_wait_tm = v,
        ),
        (
            "dct_wait_dm",
            MergeRule::Sum,
            |s| s.dct_wait_dm,
            |s, v| s.dct_wait_dm = v,
        ),
        (
            "dct_wait_vm",
            MergeRule::Sum,
            |s| s.dct_wait_vm,
            |s, v| s.dct_wait_vm = v,
        ),
    ];

    /// Accumulates another instance's counters into `self` by each field's
    /// [`MergeRule`]: totals sum, peaks take the maximum.
    ///
    /// This is the aggregation for *concurrent* systems — the per-shard
    /// statistics of a clustered configuration. A one-shard cluster's
    /// merged stats equal the single system's stats (merging into the
    /// zeroed default is the identity under both rules). For peaks the max
    /// is itself conservative — shard peaks need not coincide in time —
    /// but unlike the old element-wise sum it never reports an occupancy
    /// that no memory ever held.
    pub fn merge(&mut self, other: &Stats) {
        for (_, rule, get, set) in Self::FIELDS {
            set(self, rule.apply(get(self), get(other)));
        }
        self.merge_hists(other);
    }

    /// Histogram buckets are observation counts, so they sum under both
    /// merge conventions (the [`FieldRow`] table is scalar-only; the
    /// array-valued fields merge here).
    fn merge_hists(&mut self, other: &Stats) {
        for (a, b) in self.dm_chain_hist.iter_mut().zip(other.dm_chain_hist) {
            *a += b;
        }
        for (a, b) in self.trs_wake_hist.iter_mut().zip(other.trs_wake_hist) {
            *a += b;
        }
    }

    /// Accumulates another instance element-wise, summing *every* field,
    /// peaks included. This is the intra-system convention of
    /// [`crate::PicosSystem::stats`] — per-TRS/per-DCT peaks within one
    /// accelerator describe disjoint memories, so their capacities (and
    /// peaks) add. Use [`Stats::merge`] for cross-system aggregation.
    pub fn merge_sum(&mut self, other: &Stats) {
        for (_, _, get, set) in Self::FIELDS {
            set(self, get(self) + get(other));
        }
        self.merge_hists(other);
    }

    /// The registry view of these counters: one metric per field, under
    /// the shared names and merge rules of [`Stats::FIELDS`]. Peaks become
    /// gauges (peak-only; the live value is a timeline concern), totals
    /// become counters.
    pub fn metric_set(&self) -> MetricSet {
        let mut set = MetricSet::new();
        for (name, rule, get, _) in Self::FIELDS {
            match rule {
                MergeRule::Sum => {
                    set.counter(name, get(self), MergeRule::Sum);
                }
                MergeRule::Max => {
                    set.gauge(name, get(self), get(self));
                }
            }
        }
        set.histogram_counts(
            "dm_chain_len",
            DM_CHAIN_BOUNDS.to_vec(),
            self.dm_chain_hist.to_vec(),
        );
        set.histogram_counts(
            "trs_wake_latency",
            TRS_WAKE_BOUNDS.to_vec(),
            self.trs_wake_hist.to_vec(),
        );
        set
    }

    /// Utilization of a unit class over a run of `makespan` cycles,
    /// normalized per instance.
    pub fn utilization(busy: u64, makespan: u64, instances: usize) -> f64 {
        if makespan == 0 || instances == 0 {
            0.0
        } else {
            busy as f64 / makespan as f64 / instances as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zeroed() {
        let s = Stats::default();
        assert_eq!(s.tasks_submitted, 0);
        assert_eq!(s.dm_conflicts, 0);
        assert_eq!(s.peak_ready, 0);
        assert_eq!(s.busy_gw, 0);
    }

    fn sample(scale: u64) -> Stats {
        let mut s = Stats::default();
        for (i, (_, _, _, set)) in Stats::FIELDS.iter().enumerate() {
            set(&mut s, (i as u64 + 1) * scale);
        }
        s
    }

    #[test]
    fn merge_sums_totals_and_maxes_peaks() {
        let mut a = Stats {
            tasks_submitted: 1,
            dm_conflicts: 2,
            peak_ready: 3,
            busy_dct: 4,
            ..Stats::default()
        };
        let b = Stats {
            tasks_submitted: 10,
            dm_conflicts: 20,
            peak_ready: 30,
            busy_dct: 40,
            ..Stats::default()
        };
        a.merge(&b);
        assert_eq!(a.tasks_submitted, 11);
        assert_eq!(a.dm_conflicts, 22);
        assert_eq!(a.peak_ready, 30, "peaks take the max, never the sum");
        assert_eq!(a.busy_dct, 44);
    }

    #[test]
    fn one_shard_merge_is_the_identity() {
        // The documented invariant: merging a single system's stats into
        // the zeroed default reproduces them exactly, so a one-shard
        // cluster reports the single system's counters bit-for-bit.
        let b = sample(7);
        let mut c = Stats::default();
        c.merge(&b);
        assert_eq!(c, b);
        let mut c = Stats::default();
        c.merge_sum(&b);
        assert_eq!(c, b);
    }

    #[test]
    fn merge_sum_regression_peaks_add_intra_system() {
        // Old lossy cross-shard behaviour, now available only under its
        // honest name: every field sums, peaks included.
        let mut a = sample(1);
        a.merge_sum(&sample(2));
        assert_eq!(a.peak_ready, 3 * 12, "peak_ready is field 12 (1-based)");
        assert_eq!(a.tasks_submitted, 3);
    }

    #[test]
    fn merge_agrees_with_metric_set_merge() {
        // The struct merge and the registry merge share one rule table;
        // pin that they cannot drift.
        let mut a = sample(3);
        let b = sample(5);
        let mut view = a.metric_set();
        view.merge(&b.metric_set());
        a.merge(&b);
        for (name, _, get, _) in Stats::FIELDS {
            assert_eq!(view.value(name), Some(get(&a)), "{name}");
        }
        assert_eq!(view.len(), Stats::FIELDS.len() + 2, "plus two histograms");
    }

    #[test]
    fn histograms_sum_under_both_merges() {
        let mut a = Stats::default();
        a.dm_chain_hist[0] = 3;
        a.trs_wake_hist[2] = 1;
        let mut b = Stats::default();
        b.dm_chain_hist[0] = 4;
        b.trs_wake_hist[2] = 5;
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.dm_chain_hist[0], 7);
        assert_eq!(m.trs_wake_hist[2], 6);
        let mut s = a.clone();
        s.merge_sum(&b);
        assert_eq!(s.dm_chain_hist[0], 7);
        // The registry view carries the same buckets.
        let view = m.metric_set();
        let picos_metrics::MetricValue::Histogram { bounds, counts } =
            &view.get("dm_chain_len").expect("registered").value
        else {
            panic!("dm_chain_len must be a histogram");
        };
        assert_eq!(bounds, &DM_CHAIN_BOUNDS.to_vec());
        assert_eq!(counts[0], 7);
    }

    #[test]
    fn hist_bucket_respects_inclusive_bounds() {
        assert_eq!(hist_bucket(&DM_CHAIN_BOUNDS, 1), 0);
        assert_eq!(hist_bucket(&DM_CHAIN_BOUNDS, 2), 1);
        assert_eq!(hist_bucket(&DM_CHAIN_BOUNDS, 3), 2);
        assert_eq!(hist_bucket(&DM_CHAIN_BOUNDS, 32), 5);
        assert_eq!(hist_bucket(&DM_CHAIN_BOUNDS, 33), 6, "overflow bucket");
    }

    #[test]
    fn utilization_math() {
        assert_eq!(Stats::utilization(50, 100, 1), 0.5);
        assert_eq!(Stats::utilization(100, 100, 2), 0.5);
        assert_eq!(Stats::utilization(10, 0, 1), 0.0);
    }
}
