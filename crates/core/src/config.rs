//! Configuration of the Picos hardware model.
//!
//! [`PicosConfig`] captures the design space the paper explores: the DM
//! organisation (Section III-C), the memory geometries (Section III-A) and
//! the number of TRS/DCT instances (the "future architecture" of Figure 3a).
//! [`Timing`] holds the per-operation service times of each unit, calibrated
//! against the paper's Table IV (see `DESIGN.md`, "Calibration targets").

/// Simulation time in clock cycles of the accelerator.
pub type Cycle = u64;

/// Organisation of the Dependence Memory (paper, Section III-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DmDesign {
    /// 64-set, 8-way cache-like memory with direct hash (address LSBs).
    EightWay,
    /// 64-set, 16-way cache-like memory with direct hash.
    SixteenWay,
    /// 64-set, 8-way cache-like memory with Pearson hashing.
    PearsonEightWay,
}

impl DmDesign {
    /// The three designs in paper order.
    pub const ALL: [DmDesign; 3] = [
        DmDesign::EightWay,
        DmDesign::SixteenWay,
        DmDesign::PearsonEightWay,
    ];

    /// Associativity of the design.
    pub fn ways(self) -> usize {
        match self {
            DmDesign::EightWay | DmDesign::PearsonEightWay => 8,
            DmDesign::SixteenWay => 16,
        }
    }

    /// Whether the index function applies Pearson hashing.
    pub fn uses_pearson(self) -> bool {
        matches!(self, DmDesign::PearsonEightWay)
    }

    /// Paper-style display name.
    pub fn name(self) -> &'static str {
        match self {
            DmDesign::EightWay => "DM 8way",
            DmDesign::SixteenWay => "DM 16way",
            DmDesign::PearsonEightWay => "DM P+8way",
        }
    }

    /// Version Memory entries paired with this design.
    ///
    /// The paper doubles the VM from 512 to 1024 entries for the 16-way DM
    /// "to keep it coherent with the DM size" (Section V-B).
    pub fn default_vm_entries(self) -> usize {
        match self {
            DmDesign::SixteenWay => 1024,
            _ => 512,
        }
    }
}

impl std::fmt::Display for DmDesign {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Ready-task ordering of the Task Scheduler unit (paper, Figure 9 right).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TsPolicy {
    /// First-in first-out (the prototype's default).
    #[default]
    Fifo,
    /// Last-in first-out.
    Lifo,
}

/// Per-operation service times of the hardware units, in cycles.
///
/// Defaults reproduce the magnitudes of the paper's Table IV HW-only mode:
/// the Gateway sustains one dependence-free task every ~15 cycles, the DCT
/// pipeline accepts one dependence every ~16 cycles, and the first-task
/// latency lands near 45 cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Timing {
    /// Wire/FIFO hop latency between units.
    pub wire: Cycle,
    /// Gateway: read one new task's meta-data and dispatch it to a TRS.
    pub gw_task: Cycle,
    /// Gateway: forward one dependence to a DCT.
    pub gw_dep: Cycle,
    /// Gateway: read one finished task and distribute it to its TRS.
    pub gw_fin: Cycle,
    /// TRS: store a new task into TM0.
    pub trs_new: Cycle,
    /// TRS: record a ready/dependent packet from the DCT.
    pub trs_resolve: Cycle,
    /// TRS: process a wake-up (including following one chain link).
    pub trs_wake: Cycle,
    /// TRS: base cost of processing a finished task.
    pub trs_fin: Cycle,
    /// TRS: additional cost per dependence of a finished task.
    pub trs_fin_dep: Cycle,
    /// DCT: per-dependence compare/insert pipeline interval.
    pub dct_dep: Cycle,
    /// DCT: extra pipeline-fill cost for the first dependence of a task.
    pub dct_task_sync: Cycle,
    /// DCT: release one dependence of a finished task.
    pub dct_fin: Cycle,
    /// Arbiter: route one packet between TRS and DCT.
    pub arb: Cycle,
    /// TS: enqueue one ready task.
    pub ts: Cycle,
}

impl Default for Timing {
    fn default() -> Self {
        Timing {
            wire: 1,
            gw_task: 15,
            gw_dep: 1,
            gw_fin: 1,
            trs_new: 12,
            trs_resolve: 4,
            trs_wake: 1,
            trs_fin: 1,
            trs_fin_dep: 1,
            dct_dep: 16,
            dct_task_sync: 8,
            dct_fin: 2,
            arb: 1,
            ts: 4,
        }
    }
}

/// Complete configuration of a Picos instance.
#[derive(Debug, Clone, PartialEq)]
pub struct PicosConfig {
    /// Dependence Memory organisation.
    pub dm_design: DmDesign,
    /// Number of DM sets (paper: 64, indexed by 6 bits).
    pub dm_sets: usize,
    /// Number of Task Reservation Station instances.
    pub num_trs: usize,
    /// Number of Dependence Chain Tracker instances.
    pub num_dct: usize,
    /// Task Memory entries per TRS (paper: 256 in-flight tasks).
    pub tm_entries: usize,
    /// Version Memory entries per DCT (paper: 512; 1024 for 16-way).
    pub vm_entries: usize,
    /// Maximum dependences per task (paper: 15).
    pub max_deps_per_task: usize,
    /// Ready-queue policy of the TS unit.
    pub ts_policy: TsPolicy,
    /// Unit service times.
    pub timing: Timing,
}

impl PicosConfig {
    /// The paper's baseline configuration (one TRS, one DCT) with the given
    /// DM design.
    pub fn baseline(dm: DmDesign) -> Self {
        PicosConfig {
            dm_design: dm,
            dm_sets: 64,
            num_trs: 1,
            num_dct: 1,
            tm_entries: 256,
            vm_entries: dm.default_vm_entries(),
            max_deps_per_task: 15,
            ts_policy: TsPolicy::Fifo,
            timing: Timing::default(),
        }
    }

    /// The most balanced design of the paper's evaluation: Pearson-hashed
    /// 8-way DM (Section V-B).
    pub fn balanced() -> Self {
        PicosConfig::baseline(DmDesign::PearsonEightWay)
    }

    /// The "future architecture" (paper, Figure 3a): `n` TRS and `n` DCT
    /// instances behind the Arbiter.
    pub fn future(n: usize, dm: DmDesign) -> Self {
        PicosConfig {
            num_trs: n,
            num_dct: n,
            ..PicosConfig::baseline(dm)
        }
    }

    /// Sets the TS policy (builder style).
    pub fn with_ts_policy(mut self, policy: TsPolicy) -> Self {
        self.ts_policy = policy;
        self
    }

    /// Total in-flight task capacity (TM entries over all TRS instances).
    pub fn in_flight_capacity(&self) -> usize {
        self.num_trs * self.tm_entries
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first violated constraint: all
    /// counts must be positive, TM entries at most 65536 (slot ids are
    /// 16-bit), instance counts at most 256 (ids are 8-bit), and
    /// `max_deps_per_task` at most 15 (TMX capacity).
    pub fn validate(&self) -> Result<(), String> {
        if self.dm_sets == 0 {
            return Err("dm_sets must be positive".into());
        }
        if self.num_trs == 0 || self.num_dct == 0 {
            return Err("need at least one TRS and one DCT".into());
        }
        if self.num_trs > 256 || self.num_dct > 256 {
            return Err("at most 256 TRS/DCT instances (8-bit ids)".into());
        }
        if self.tm_entries == 0 || self.tm_entries > 65536 {
            return Err("tm_entries must be in 1..=65536 (16-bit slot ids)".into());
        }
        if self.vm_entries == 0 || self.vm_entries > 65536 {
            return Err("vm_entries must be in 1..=65536 (16-bit ids)".into());
        }
        if self.max_deps_per_task == 0 || self.max_deps_per_task > 15 {
            return Err("max_deps_per_task must be in 1..=15 (TMX capacity)".into());
        }
        Ok(())
    }
}

impl Default for PicosConfig {
    fn default() -> Self {
        PicosConfig::balanced()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dm_design_properties() {
        assert_eq!(DmDesign::EightWay.ways(), 8);
        assert_eq!(DmDesign::SixteenWay.ways(), 16);
        assert_eq!(DmDesign::PearsonEightWay.ways(), 8);
        assert!(DmDesign::PearsonEightWay.uses_pearson());
        assert!(!DmDesign::EightWay.uses_pearson());
        assert_eq!(DmDesign::SixteenWay.default_vm_entries(), 1024);
        assert_eq!(DmDesign::EightWay.default_vm_entries(), 512);
        assert_eq!(DmDesign::PearsonEightWay.to_string(), "DM P+8way");
    }

    #[test]
    fn baseline_validates() {
        for dm in DmDesign::ALL {
            let c = PicosConfig::baseline(dm);
            assert!(c.validate().is_ok());
            assert_eq!(c.in_flight_capacity(), 256);
        }
    }

    #[test]
    fn future_architecture() {
        let c = PicosConfig::future(4, DmDesign::PearsonEightWay);
        assert!(c.validate().is_ok());
        assert_eq!(c.num_trs, 4);
        assert_eq!(c.in_flight_capacity(), 1024);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = PicosConfig::balanced();
        c.num_trs = 0;
        assert!(c.validate().is_err());

        let mut c = PicosConfig::balanced();
        c.max_deps_per_task = 16;
        assert!(c.validate().is_err());

        let mut c = PicosConfig::balanced();
        c.tm_entries = 0;
        assert!(c.validate().is_err());

        let mut c = PicosConfig::balanced();
        c.dm_sets = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn ts_policy_builder() {
        let c = PicosConfig::balanced().with_ts_policy(TsPolicy::Lifo);
        assert_eq!(c.ts_policy, TsPolicy::Lifo);
        assert_eq!(TsPolicy::default(), TsPolicy::Fifo);
    }
}
