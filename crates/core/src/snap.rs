//! Shared snapshot codec helpers for the core types.
//!
//! The engine's message vocabulary is re-used verbatim inside wheel
//! events, FIFO queues and the Arbiter, so their encodings live here once.
//! References pack into single integers (`SlotRef` = `trs << 16 | entry`,
//! `VmRef` = `dct << 16 | idx`, `DmSlot` = `set << 32 | way`) — snapshots
//! stay compact and the per-field cost stays one [`Enc`]/[`Dec`] call.

use crate::config::PicosConfig;
use crate::msg::{ArbMsg, DepFinMsg, NewDepMsg, ResolveKind, SlotRef, TrsMsg, VmRef};
use crate::stats::Stats;
use crate::DmSlot;
use picos_trace::snap::{Dec, Enc, SnapError};
use picos_trace::{Dependence, Direction, TaskId, Value};

pub(crate) fn slot_pack(s: SlotRef) -> u64 {
    (s.trs as u64) << 16 | s.entry as u64
}

pub(crate) fn slot_unpack(v: u64) -> SlotRef {
    SlotRef::new((v >> 16) as u8, (v & 0xFFFF) as u16)
}

pub(crate) fn vm_pack(r: VmRef) -> u64 {
    (r.dct as u64) << 16 | r.idx as u64
}

pub(crate) fn vm_unpack(v: u64) -> VmRef {
    VmRef::new((v >> 16) as u8, (v & 0xFFFF) as u16)
}

pub(crate) fn dm_slot_pack(s: DmSlot) -> u64 {
    (s.set as u64) << 32 | s.way as u64
}

pub(crate) fn dm_slot_unpack(v: u64) -> DmSlot {
    DmSlot {
        set: (v >> 32) as usize,
        way: (v & 0xFFFF_FFFF) as usize,
    }
}

pub(crate) fn dir_code(d: Direction) -> u64 {
    match d {
        Direction::In => 0,
        Direction::Out => 1,
        Direction::InOut => 2,
    }
}

pub(crate) fn dir_from(code: u64) -> Result<Direction, SnapError> {
    Ok(match code {
        0 => Direction::In,
        1 => Direction::Out,
        2 => Direction::InOut,
        other => return Err(SnapError::new(format!("unknown direction {other}"))),
    })
}

/// A dependence packs into `(addr, dir)` slots within the current record.
pub(crate) fn enc_dep(e: &mut Enc, d: Dependence) {
    e.u64(d.addr).u64(dir_code(d.dir));
}

pub(crate) fn dec_dep(d: &mut Dec<'_>) -> Result<Dependence, SnapError> {
    let addr = d.u64()?;
    let dir = dir_from(d.u64()?)?;
    Ok(Dependence::new(addr, dir))
}

/// A TRS message: one variant code, then that variant's fields.
pub(crate) fn enc_trs_msg(e: &mut Enc, m: &TrsMsg) {
    match *m {
        TrsMsg::NewTask {
            slot,
            task,
            num_deps,
        } => {
            e.u64(0)
                .u64(slot_pack(slot))
                .u32(task.raw())
                .u64(num_deps as u64);
        }
        TrsMsg::Resolve {
            slot,
            dep_idx,
            vm,
            kind,
        } => {
            e.u64(1)
                .u64(slot_pack(slot))
                .u64(dep_idx as u64)
                .u64(vm_pack(vm));
            match kind {
                ResolveKind::Ready => {
                    e.bool(true).opt_u64(None);
                }
                ResolveKind::Dependent { prev_consumer } => {
                    e.bool(false).opt_u64(prev_consumer.map(slot_pack));
                }
            }
        }
        TrsMsg::Wake { slot, vm } => {
            e.u64(2).u64(slot_pack(slot)).u64(vm_pack(vm));
        }
        TrsMsg::Finished { slot } => {
            e.u64(3).u64(slot_pack(slot));
        }
    }
}

pub(crate) fn dec_trs_msg(d: &mut Dec<'_>) -> Result<TrsMsg, SnapError> {
    Ok(match d.u64()? {
        0 => TrsMsg::NewTask {
            slot: slot_unpack(d.u64()?),
            task: TaskId::new(d.u32()?),
            num_deps: d.u64()? as u8,
        },
        1 => {
            let slot = slot_unpack(d.u64()?);
            let dep_idx = d.u64()? as u8;
            let vm = vm_unpack(d.u64()?);
            let ready = d.bool()?;
            let prev = d.opt_u64()?.map(slot_unpack);
            TrsMsg::Resolve {
                slot,
                dep_idx,
                vm,
                kind: if ready {
                    ResolveKind::Ready
                } else {
                    ResolveKind::Dependent {
                        prev_consumer: prev,
                    }
                },
            }
        }
        2 => TrsMsg::Wake {
            slot: slot_unpack(d.u64()?),
            vm: vm_unpack(d.u64()?),
        },
        3 => TrsMsg::Finished {
            slot: slot_unpack(d.u64()?),
        },
        other => return Err(SnapError::new(format!("unknown TrsMsg kind {other}"))),
    })
}

pub(crate) fn enc_new_dep(e: &mut Enc, m: &NewDepMsg) {
    e.u64(slot_pack(m.slot)).u64(m.dep_idx as u64);
    enc_dep(e, m.dep);
    e.bool(m.conflict_counted).bool(m.vm_stall_counted);
}

pub(crate) fn dec_new_dep(d: &mut Dec<'_>) -> Result<NewDepMsg, SnapError> {
    Ok(NewDepMsg {
        slot: slot_unpack(d.u64()?),
        dep_idx: d.u64()? as u8,
        dep: dec_dep(d)?,
        conflict_counted: d.bool()?,
        vm_stall_counted: d.bool()?,
    })
}

pub(crate) fn enc_dep_fin(e: &mut Enc, m: DepFinMsg) {
    e.u64(vm_pack(m.vm)).u64(slot_pack(m.from));
}

pub(crate) fn dec_dep_fin(d: &mut Dec<'_>) -> Result<DepFinMsg, SnapError> {
    Ok(DepFinMsg {
        vm: vm_unpack(d.u64()?),
        from: slot_unpack(d.u64()?),
    })
}

pub(crate) fn enc_arb_msg(e: &mut Enc, m: &ArbMsg) {
    match m {
        ArbMsg::ToTrs(trs, inner) => {
            e.u64(0).u64(*trs as u64);
            enc_trs_msg(e, inner);
        }
        ArbMsg::ToDctFin(dct, inner) => {
            e.u64(1).u64(*dct as u64);
            enc_dep_fin(e, *inner);
        }
    }
}

pub(crate) fn dec_arb_msg(d: &mut Dec<'_>) -> Result<ArbMsg, SnapError> {
    Ok(match d.u64()? {
        0 => {
            let trs = d.u64()? as u8;
            ArbMsg::ToTrs(trs, dec_trs_msg(d)?)
        }
        1 => {
            let dct = d.u64()? as u8;
            ArbMsg::ToDctFin(dct, dec_dep_fin(d)?)
        }
        other => return Err(SnapError::new(format!("unknown ArbMsg kind {other}"))),
    })
}

impl Stats {
    /// Serializes every counter in [`Stats::FIELDS`] order plus the two
    /// histograms.
    pub fn save_state(&self) -> Value {
        let mut e = Enc::new();
        e.u64s(Self::FIELDS.iter().map(|(_, _, get, _)| get(self)))
            .u64s(self.dm_chain_hist.iter().copied())
            .u64s(self.trs_wake_hist.iter().copied());
        e.done()
    }

    /// Rebuilds stats serialized by [`Stats::save_state`].
    ///
    /// # Errors
    ///
    /// Returns [`SnapError`] on a malformed record.
    pub fn load_state(v: &Value) -> Result<Stats, SnapError> {
        let mut d = Dec::new(v, "stats")?;
        let fields = d.u64s()?;
        if fields.len() != Self::FIELDS.len() {
            return Err(SnapError::new("stats: field count mismatch"));
        }
        let mut s = Stats::default();
        for ((_, _, _, set), v) in Self::FIELDS.iter().zip(fields) {
            set(&mut s, v);
        }
        let dm = d.u64s()?;
        let wake = d.u64s()?;
        if dm.len() != s.dm_chain_hist.len() || wake.len() != s.trs_wake_hist.len() {
            return Err(SnapError::new("stats: histogram shape mismatch"));
        }
        s.dm_chain_hist.copy_from_slice(&dm);
        s.trs_wake_hist.copy_from_slice(&wake);
        Ok(s)
    }
}

/// One fingerprint over every behaviour-relevant configuration field.
/// Restore overwrites dynamic state only, so the restoring session must be
/// built from an identical config; a fingerprint mismatch is a hard error,
/// never silent corruption.
pub(crate) fn config_fingerprint(cfg: &PicosConfig) -> u64 {
    let t = &cfg.timing;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x100_0000_01b3);
    };
    mix(match cfg.dm_design {
        crate::DmDesign::EightWay => 1,
        crate::DmDesign::SixteenWay => 2,
        crate::DmDesign::PearsonEightWay => 3,
    });
    mix(cfg.dm_sets as u64);
    mix(cfg.num_trs as u64);
    mix(cfg.num_dct as u64);
    mix(cfg.tm_entries as u64);
    mix(cfg.vm_entries as u64);
    mix(cfg.max_deps_per_task as u64);
    mix(match cfg.ts_policy {
        crate::TsPolicy::Fifo => 1,
        crate::TsPolicy::Lifo => 2,
    });
    for v in [
        t.wire,
        t.gw_task,
        t.gw_dep,
        t.gw_fin,
        t.trs_new,
        t.trs_resolve,
        t.trs_wake,
        t.trs_fin,
        t.trs_fin_dep,
        t.dct_dep,
        t.dct_task_sync,
        t.dct_fin,
        t.arb,
        t.ts,
    ] {
        mix(v);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refs_pack_roundtrip() {
        let s = SlotRef::new(3, 65535);
        assert_eq!(slot_unpack(slot_pack(s)), s);
        let v = VmRef::new(255, 1);
        assert_eq!(vm_unpack(vm_pack(v)), v);
        let d = DmSlot { set: 63, way: 15 };
        assert_eq!(dm_slot_unpack(dm_slot_pack(d)), d);
    }

    #[test]
    fn trs_msg_roundtrip() {
        let msgs = [
            TrsMsg::NewTask {
                slot: SlotRef::new(0, 9),
                task: TaskId::new(7),
                num_deps: 3,
            },
            TrsMsg::Resolve {
                slot: SlotRef::new(1, 2),
                dep_idx: 1,
                vm: VmRef::new(0, 4),
                kind: ResolveKind::Ready,
            },
            TrsMsg::Resolve {
                slot: SlotRef::new(1, 2),
                dep_idx: 1,
                vm: VmRef::new(0, 4),
                kind: ResolveKind::Dependent {
                    prev_consumer: Some(SlotRef::new(0, 3)),
                },
            },
            TrsMsg::Wake {
                slot: SlotRef::new(0, 1),
                vm: VmRef::new(1, 2),
            },
            TrsMsg::Finished {
                slot: SlotRef::new(0, 0),
            },
        ];
        for m in msgs {
            let mut e = Enc::new();
            enc_trs_msg(&mut e, &m);
            let v = e.done();
            let mut d = Dec::new(&v, "t").unwrap();
            assert_eq!(dec_trs_msg(&mut d).unwrap(), m);
        }
    }

    #[test]
    fn stats_roundtrip() {
        let mut s = Stats {
            tasks_submitted: 11,
            peak_ready: 4,
            ..Stats::default()
        };
        s.dm_chain_hist[2] = 9;
        s.trs_wake_hist[7] = 1;
        let back = Stats::load_state(&s.save_state()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn fingerprint_sees_timing_and_policy() {
        let a = PicosConfig::balanced();
        let mut b = a.clone();
        assert_eq!(config_fingerprint(&a), config_fingerprint(&b));
        b.timing.dct_dep += 1;
        assert_ne!(config_fingerprint(&a), config_fingerprint(&b));
        let mut c = a.clone();
        c.ts_policy = crate::TsPolicy::Lifo;
        assert_ne!(config_fingerprint(&a), config_fingerprint(&c));
    }
}
