//! Task Reservation Station: the major task-management unit.
//!
//! The TRS "stores in-flight tasks, tracks the readiness of new tasks and
//! manages the deletion of finished tasks" (paper, Section III-A). Its four
//! message handlers implement the N3/N5/N6 steps of new-task processing, the
//! F2/F3 steps of finished-task processing and the backwards consumer-chain
//! wake-up of Section III-D.

use crate::config::Timing;
use crate::msg::{DepFinMsg, ResolveKind, SlotRef, TrsMsg, VmRef};
use crate::tm::{Tm, TmDep};
use crate::Cycle;
use picos_trace::TaskId;

/// Packets a TRS emits while handling one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrsEmit {
    /// N6: the task is ready; hand it to the TS.
    ReadyToTs {
        /// Software task id.
        task: TaskId,
        /// The task's slot (quoted back on finish).
        slot: SlotRef,
    },
    /// F3: tell a DCT one dependence of a finished task is released.
    DepFinished {
        /// Destination DCT instance.
        dct: u8,
        /// The release packet.
        msg: DepFinMsg,
    },
    /// Backwards chain link: wake the previous consumer (routed through the
    /// Arbiter, possibly to another TRS instance).
    ChainWake {
        /// Destination TRS instance.
        trs: u8,
        /// The slot to wake.
        slot: SlotRef,
        /// The version being satisfied.
        vm: VmRef,
    },
}

/// One Task Reservation Station instance.
#[derive(Debug, Clone)]
pub struct Trs {
    id: u8,
    /// The TM0 + TMX storage.
    pub tm: Tm,
    /// Wake-ups that arrived before their dependence's resolve packet.
    ///
    /// The DCT's finish engine can answer faster than its new-dependence
    /// pipeline, so a `Wake` may overtake the `Resolve{Dependent}` that
    /// creates the TMX record it targets. The hardware interlocks this
    /// case; the model holds the wake until the record appears.
    pending_wakes: Vec<(SlotRef, VmRef)>,
    tasks_dispatched: u64,
    wakes_forwarded: u64,
    early_wakes: u64,
}

impl Trs {
    /// Creates TRS instance `id` with `tm_entries` task slots.
    pub fn new(id: u8, tm_entries: usize) -> Self {
        Trs {
            id,
            tm: Tm::new(tm_entries),
            pending_wakes: Vec::new(),
            tasks_dispatched: 0,
            wakes_forwarded: 0,
            early_wakes: 0,
        }
    }

    /// Instance index.
    pub fn id(&self) -> u8 {
        self.id
    }

    /// Tasks this TRS has marked ready (sent to the TS).
    pub fn tasks_dispatched(&self) -> u64 {
        self.tasks_dispatched
    }

    /// Chain wake-ups this TRS forwarded backwards.
    pub fn wakes_forwarded(&self) -> u64 {
        self.wakes_forwarded
    }

    /// Wake-ups that overtook their resolve packet and had to be held.
    pub fn early_wakes(&self) -> u64 {
        self.early_wakes
    }

    /// Serializes the dynamic state: the Task Memory, held early wakes and
    /// the instance counters.
    pub fn save_state(&self) -> picos_trace::Value {
        use crate::snap::{slot_pack, vm_pack};
        use picos_trace::snap::Enc;
        let mut e = Enc::new();
        e.u64(self.id as u64)
            .val(self.tm.save_state())
            .seq(&self.pending_wakes, |e, (slot, vm)| {
                e.u64(slot_pack(*slot)).u64(vm_pack(*vm));
            })
            .u64(self.tasks_dispatched)
            .u64(self.wakes_forwarded)
            .u64(self.early_wakes);
        e.done()
    }

    /// Overwrites the dynamic state from [`Trs::save_state`] output.
    ///
    /// # Errors
    ///
    /// Returns [`picos_trace::SnapError`] on a malformed record or an
    /// instance mismatch.
    pub fn load_state(&mut self, v: &picos_trace::Value) -> Result<(), picos_trace::SnapError> {
        use crate::snap::{slot_unpack, vm_unpack};
        use picos_trace::snap::{guard, Dec};
        let mut d = Dec::new(v, "trs")?;
        guard("trs id", d.u64()?, self.id as u64)?;
        self.tm.load_state(d.val()?)?;
        self.pending_wakes = d.seq(|d| Ok((slot_unpack(d.u64()?), vm_unpack(d.u64()?))))?;
        self.tasks_dispatched = d.u64()?;
        self.wakes_forwarded = d.u64()?;
        self.early_wakes = d.u64()?;
        Ok(())
    }

    /// Satisfies the dependence of `slot` tracked by `vm`: marks it
    /// resolved, dispatches the task if complete, and follows the consumer
    /// chain backwards.
    fn apply_wake(&mut self, slot: SlotRef, vm: VmRef, out: &mut Vec<TrsEmit>) {
        let e = self.tm.get_mut(slot.entry);
        let dep = e
            .dep_by_vm_mut(vm)
            .expect("apply_wake requires a registered dependence");
        dep.resolved = true;
        let chain = dep.chained_prev.take();
        e.ready_deps += 1;
        if e.all_ready() && !e.dispatched {
            e.dispatched = true;
            self.tasks_dispatched += 1;
            out.push(TrsEmit::ReadyToTs { task: e.task, slot });
        }
        // Follow the consumer chain backwards (paper, Figure 5: links 2
        // and 3 are issued by the TRS via the Arbiter).
        if let Some(prev) = chain {
            self.wakes_forwarded += 1;
            out.push(TrsEmit::ChainWake {
                trs: prev.trs,
                slot: prev,
                vm,
            });
        }
    }

    /// Handles one message; returns the service cost in cycles and appends
    /// output packets to `out`.
    pub fn handle(&mut self, msg: TrsMsg, t: &Timing, out: &mut Vec<TrsEmit>) -> Cycle {
        match msg {
            TrsMsg::NewTask {
                slot,
                task,
                num_deps,
            } => {
                debug_assert_eq!(slot.trs, self.id);
                let e = self.tm.get_mut(slot.entry);
                debug_assert_eq!(e.task, task, "slot/task mismatch");
                debug_assert_eq!(e.num_deps, num_deps);
                // If the task has no dependences it is ready at once (N6).
                if e.all_ready() && !e.dispatched {
                    e.dispatched = true;
                    self.tasks_dispatched += 1;
                    out.push(TrsEmit::ReadyToTs { task, slot });
                }
                t.trs_new
            }
            TrsMsg::Resolve {
                slot,
                dep_idx,
                vm,
                kind,
            } => {
                debug_assert_eq!(slot.trs, self.id);
                let e = self.tm.get_mut(slot.entry);
                let (resolved, chained_prev) = match kind {
                    ResolveKind::Ready => (true, None),
                    ResolveKind::Dependent { prev_consumer } => (false, prev_consumer),
                };
                e.deps.push(TmDep {
                    dep_idx,
                    vm,
                    chained_prev,
                    resolved,
                });
                if resolved {
                    e.ready_deps += 1;
                    if e.all_ready() && !e.dispatched {
                        e.dispatched = true;
                        self.tasks_dispatched += 1;
                        out.push(TrsEmit::ReadyToTs { task: e.task, slot });
                    }
                } else if let Some(pos) = self
                    .pending_wakes
                    .iter()
                    .position(|&(s, v)| s == slot && v == vm)
                {
                    // A wake overtook this resolve: satisfy it now.
                    self.pending_wakes.swap_remove(pos);
                    self.apply_wake(slot, vm, out);
                }
                t.trs_resolve
            }
            TrsMsg::Wake { slot, vm } => {
                debug_assert_eq!(slot.trs, self.id);
                if self.tm.get_mut(slot.entry).dep_by_vm_mut(vm).is_none() {
                    // The resolve packet for this dependence is still in
                    // flight; hold the wake until it lands.
                    self.early_wakes += 1;
                    self.pending_wakes.push((slot, vm));
                } else {
                    self.apply_wake(slot, vm, out);
                }
                t.trs_wake
            }
            TrsMsg::Finished { slot } => {
                debug_assert_eq!(slot.trs, self.id);
                let e = self.tm.get(slot.entry);
                debug_assert!(e.dispatched, "finish for a task never dispatched");
                debug_assert!(e.all_ready(), "finish for a task not ready");
                let ndeps = e.deps.len();
                for d in &e.deps {
                    out.push(TrsEmit::DepFinished {
                        dct: d.vm.dct,
                        msg: DepFinMsg {
                            vm: d.vm,
                            from: slot,
                        },
                    });
                }
                self.tm.free(slot.entry);
                t.trs_fin + t.trs_fin_dep * ndeps as Cycle
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Trs, Timing, Vec<TrsEmit>) {
        (Trs::new(0, 16), Timing::default(), Vec::new())
    }

    fn new_task(trs: &mut Trs, task: u32, num_deps: u8) -> SlotRef {
        let entry = trs.tm.alloc(TaskId::new(task), num_deps).unwrap();
        SlotRef::new(0, entry)
    }

    #[test]
    fn independent_task_goes_straight_to_ts() {
        let (mut trs, t, mut out) = setup();
        let slot = new_task(&mut trs, 1, 0);
        let cost = trs.handle(
            TrsMsg::NewTask {
                slot,
                task: TaskId::new(1),
                num_deps: 0,
            },
            &t,
            &mut out,
        );
        assert_eq!(cost, t.trs_new);
        assert_eq!(
            out,
            vec![TrsEmit::ReadyToTs {
                task: TaskId::new(1),
                slot
            }]
        );
        assert_eq!(trs.tasks_dispatched(), 1);
    }

    #[test]
    fn ready_resolve_counts_up_to_dispatch() {
        let (mut trs, t, mut out) = setup();
        let slot = new_task(&mut trs, 2, 2);
        trs.handle(
            TrsMsg::NewTask {
                slot,
                task: TaskId::new(2),
                num_deps: 2,
            },
            &t,
            &mut out,
        );
        assert!(out.is_empty());
        trs.handle(
            TrsMsg::Resolve {
                slot,
                dep_idx: 0,
                vm: VmRef::new(0, 1),
                kind: ResolveKind::Ready,
            },
            &t,
            &mut out,
        );
        assert!(out.is_empty(), "one of two deps ready");
        trs.handle(
            TrsMsg::Resolve {
                slot,
                dep_idx: 1,
                vm: VmRef::new(0, 2),
                kind: ResolveKind::Ready,
            },
            &t,
            &mut out,
        );
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0], TrsEmit::ReadyToTs { .. }));
    }

    #[test]
    fn dependent_then_wake() {
        let (mut trs, t, mut out) = setup();
        let slot = new_task(&mut trs, 3, 1);
        trs.handle(
            TrsMsg::NewTask {
                slot,
                task: TaskId::new(3),
                num_deps: 1,
            },
            &t,
            &mut out,
        );
        trs.handle(
            TrsMsg::Resolve {
                slot,
                dep_idx: 0,
                vm: VmRef::new(0, 4),
                kind: ResolveKind::Dependent {
                    prev_consumer: None,
                },
            },
            &t,
            &mut out,
        );
        assert!(out.is_empty());
        trs.handle(
            TrsMsg::Wake {
                slot,
                vm: VmRef::new(0, 4),
            },
            &t,
            &mut out,
        );
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0], TrsEmit::ReadyToTs { .. }));
    }

    #[test]
    fn wake_follows_consumer_chain_backwards() {
        let (mut trs, t, mut out) = setup();
        // Two consumer tasks of the same version; the second chains to the
        // first (it arrived later, so it is woken first).
        let s1 = new_task(&mut trs, 10, 1);
        let s2 = new_task(&mut trs, 11, 1);
        let vm = VmRef::new(0, 9);
        for (slot, task, prev) in [(s1, 10, None), (s2, 11, Some(s1))] {
            trs.handle(
                TrsMsg::NewTask {
                    slot,
                    task: TaskId::new(task),
                    num_deps: 1,
                },
                &t,
                &mut out,
            );
            trs.handle(
                TrsMsg::Resolve {
                    slot,
                    dep_idx: 0,
                    vm,
                    kind: ResolveKind::Dependent {
                        prev_consumer: prev,
                    },
                },
                &t,
                &mut out,
            );
        }
        assert!(out.is_empty());
        // DCT wakes the LAST consumer (s2).
        trs.handle(TrsMsg::Wake { slot: s2, vm }, &t, &mut out);
        // s2 is ready AND a chain wake to s1 is emitted.
        assert_eq!(out.len(), 2);
        assert!(out.contains(&TrsEmit::ReadyToTs {
            task: TaskId::new(11),
            slot: s2
        }));
        assert!(out.contains(&TrsEmit::ChainWake {
            trs: 0,
            slot: s1,
            vm
        }));
        assert_eq!(trs.wakes_forwarded(), 1);
        out.clear();
        // The chain wake is routed back (engine does this); s1 becomes ready.
        trs.handle(TrsMsg::Wake { slot: s1, vm }, &t, &mut out);
        assert_eq!(
            out,
            vec![TrsEmit::ReadyToTs {
                task: TaskId::new(10),
                slot: s1
            }]
        );
    }

    #[test]
    fn finish_releases_every_dep_and_frees_slot() {
        let (mut trs, t, mut out) = setup();
        let slot = new_task(&mut trs, 4, 2);
        trs.handle(
            TrsMsg::NewTask {
                slot,
                task: TaskId::new(4),
                num_deps: 2,
            },
            &t,
            &mut out,
        );
        trs.handle(
            TrsMsg::Resolve {
                slot,
                dep_idx: 0,
                vm: VmRef::new(0, 1),
                kind: ResolveKind::Ready,
            },
            &t,
            &mut out,
        );
        trs.handle(
            TrsMsg::Resolve {
                slot,
                dep_idx: 1,
                vm: VmRef::new(1, 2),
                kind: ResolveKind::Ready,
            },
            &t,
            &mut out,
        );
        out.clear();
        let live_before = trs.tm.live();
        let cost = trs.handle(TrsMsg::Finished { slot }, &t, &mut out);
        assert_eq!(cost, t.trs_fin + 2 * t.trs_fin_dep);
        assert_eq!(trs.tm.live(), live_before - 1);
        let dcts: Vec<u8> = out
            .iter()
            .map(|e| match e {
                TrsEmit::DepFinished { dct, .. } => *dct,
                other => panic!("unexpected emit {other:?}"),
            })
            .collect();
        assert_eq!(
            dcts,
            vec![0, 1],
            "one release per dependence, routed per DCT"
        );
    }
}
