//! Version Memory: live versions of each tracked dependence address.
//!
//! Since each address is saved only once in the DM, the VM "saves and
//! controls all its live versions" (paper, Section III-A): each `Out`/`InOut`
//! arrival opens a new version; `In` arrivals join the latest version as
//! consumers. A version records its producer slot, its most recent consumer
//! (the head of the TRS-side wake-up chain), consumer counters and the link
//! to the next version — everything Section III-D's dependence-chain example
//! exercises.

use crate::dm::DmSlot;
use crate::msg::{SlotRef, VmRef};

/// One live version of a dependence address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VmEntry {
    /// The task that produces this version; `None` for a version opened by
    /// pure readers (no producer to wait for).
    pub producer: Option<SlotRef>,
    /// Whether the producer has finished (vacuously true when `producer` is
    /// `None`).
    pub producer_finished: bool,
    /// The most recent consumer: the entry point of the wake-up chain that
    /// runs backwards through the TRS TMX links (paper, Figure 5).
    pub last_consumer: Option<SlotRef>,
    /// Total consumers registered on this version.
    pub consumers_total: u32,
    /// Consumers that have finished.
    pub consumers_finished: u32,
    /// The next (younger) version of the same address, if any.
    pub next: Option<VmRef>,
    /// The DM slot owning this version chain.
    pub dm_slot: DmSlot,
}

impl VmEntry {
    /// Whether the version is fully drained: producer finished and every
    /// registered consumer finished.
    pub fn drained(&self) -> bool {
        self.producer_finished && self.consumers_finished == self.consumers_total
    }
}

/// The Version Memory of one DCT instance: a fixed-capacity slab.
#[derive(Debug, Clone)]
pub struct Vm {
    entries: Vec<Option<VmEntry>>,
    free: Vec<u16>,
    stalls: u64,
    peak_live: usize,
}

impl Vm {
    /// Creates a VM with `capacity` entries (paper: 512, or 1024 for the
    /// 16-way DM).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0 && capacity <= 65536);
        Vm {
            entries: vec![None; capacity],
            free: (0..capacity as u16).rev().collect(),
            stalls: 0,
            peak_live: 0,
        }
    }

    /// Total entry capacity.
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Number of live versions.
    pub fn live(&self) -> usize {
        self.entries.len() - self.free.len()
    }

    /// Highest number of simultaneously live versions observed.
    pub fn peak_live(&self) -> usize {
        self.peak_live
    }

    /// Number of allocation failures recorded (capacity stalls).
    pub fn stalls(&self) -> u64 {
        self.stalls
    }

    /// Records one capacity-stall event.
    pub fn count_stall(&mut self) {
        self.stalls += 1;
    }

    /// Whether an allocation would succeed.
    pub fn has_space(&self) -> bool {
        !self.free.is_empty()
    }

    /// Allocates a version entry; `None` when the VM is full (the DCT must
    /// stall the dependence until a version retires).
    pub fn alloc(&mut self, entry: VmEntry) -> Option<u16> {
        let idx = self.free.pop()?;
        self.entries[idx as usize] = Some(entry);
        self.peak_live = self.peak_live.max(self.live());
        Some(idx)
    }

    /// Frees a version entry.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the entry is not live.
    pub fn free(&mut self, idx: u16) {
        debug_assert!(
            self.entries[idx as usize].is_some(),
            "double free of VM {idx}"
        );
        self.entries[idx as usize] = None;
        self.free.push(idx);
    }

    /// Borrows a live version.
    pub fn get(&self, idx: u16) -> &VmEntry {
        self.entries[idx as usize]
            .as_ref()
            .expect("VM entry must be live")
    }

    /// Mutably borrows a live version.
    pub fn get_mut(&mut self, idx: u16) -> &mut VmEntry {
        self.entries[idx as usize]
            .as_mut()
            .expect("VM entry must be live")
    }
}

impl Vm {
    /// Serializes the dynamic state: the free stack (exact order), the
    /// counters and every live version.
    pub fn save_state(&self) -> picos_trace::Value {
        use crate::snap::{dm_slot_pack, slot_pack, vm_pack};
        use picos_trace::snap::Enc;
        let live = self
            .entries
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.as_ref().map(|e| (i, e)));
        let mut e = Enc::new();
        e.usize(self.entries.len())
            .u64s(self.free.iter().map(|&i| i as u64))
            .u64(self.stalls)
            .usize(self.peak_live)
            .seq(live, |e, (idx, ent)| {
                e.usize(idx)
                    .opt_u64(ent.producer.map(slot_pack))
                    .bool(ent.producer_finished)
                    .opt_u64(ent.last_consumer.map(slot_pack))
                    .u32(ent.consumers_total)
                    .u32(ent.consumers_finished)
                    .opt_u64(ent.next.map(vm_pack))
                    .u64(dm_slot_pack(ent.dm_slot));
            });
        e.done()
    }

    /// Overwrites the dynamic state from [`Vm::save_state`] output.
    ///
    /// # Errors
    ///
    /// Returns [`picos_trace::SnapError`] on a malformed record or a
    /// capacity mismatch.
    pub fn load_state(&mut self, v: &picos_trace::Value) -> Result<(), picos_trace::SnapError> {
        use crate::snap::{dm_slot_unpack, slot_unpack, vm_unpack};
        use picos_trace::snap::{guard, Dec};
        let mut d = Dec::new(v, "vm")?;
        guard("vm capacity", d.u64()?, self.entries.len() as u64)?;
        let free = d.u64s()?;
        let stalls = d.u64()?;
        let peak_live = d.usize()?;
        let live = d.seq(|d| {
            let idx = d.usize()?;
            Ok((
                idx,
                VmEntry {
                    producer: d.opt_u64()?.map(slot_unpack),
                    producer_finished: d.bool()?,
                    last_consumer: d.opt_u64()?.map(slot_unpack),
                    consumers_total: d.u32()?,
                    consumers_finished: d.u32()?,
                    next: d.opt_u64()?.map(vm_unpack),
                    dm_slot: dm_slot_unpack(d.u64()?),
                },
            ))
        })?;
        self.entries.iter_mut().for_each(|e| *e = None);
        self.free = free.into_iter().map(|v| v as u16).collect();
        self.stalls = stalls;
        self.peak_live = peak_live;
        for (idx, ent) in live {
            let slot = self
                .entries
                .get_mut(idx)
                .ok_or_else(|| picos_trace::SnapError::new("vm: live index out of range"))?;
            *slot = Some(ent);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry() -> VmEntry {
        VmEntry {
            producer: Some(SlotRef::new(0, 1)),
            producer_finished: false,
            last_consumer: None,
            consumers_total: 0,
            consumers_finished: 0,
            next: None,
            dm_slot: DmSlot { set: 0, way: 0 },
        }
    }

    #[test]
    fn alloc_free_cycle() {
        let mut vm = Vm::new(4);
        let a = vm.alloc(entry()).unwrap();
        let b = vm.alloc(entry()).unwrap();
        assert_ne!(a, b);
        assert_eq!(vm.live(), 2);
        vm.free(a);
        assert_eq!(vm.live(), 1);
        let c = vm.alloc(entry()).unwrap();
        assert_eq!(c, a, "freed entry is reused");
    }

    #[test]
    fn capacity_exhaustion() {
        let mut vm = Vm::new(2);
        vm.alloc(entry()).unwrap();
        vm.alloc(entry()).unwrap();
        assert!(!vm.has_space());
        assert!(vm.alloc(entry()).is_none());
        vm.count_stall();
        assert_eq!(vm.stalls(), 1);
    }

    #[test]
    fn drained_logic() {
        let mut e = entry();
        assert!(!e.drained());
        e.producer_finished = true;
        assert!(e.drained());
        e.consumers_total = 2;
        e.consumers_finished = 1;
        assert!(!e.drained());
        e.consumers_finished = 2;
        assert!(e.drained());
    }

    #[test]
    fn pure_reader_version_drains_on_consumers() {
        let mut e = VmEntry {
            producer: None,
            producer_finished: true,
            last_consumer: Some(SlotRef::new(0, 5)),
            consumers_total: 1,
            consumers_finished: 0,
            next: None,
            dm_slot: DmSlot { set: 1, way: 2 },
        };
        assert!(!e.drained());
        e.consumers_finished = 1;
        assert!(e.drained());
    }

    #[test]
    fn peak_live_monotone() {
        let mut vm = Vm::new(8);
        let a = vm.alloc(entry()).unwrap();
        let _b = vm.alloc(entry()).unwrap();
        vm.free(a);
        assert_eq!(vm.peak_live(), 2);
        assert_eq!(vm.live(), 1);
    }

    #[test]
    fn get_and_mutate() {
        let mut vm = Vm::new(2);
        let a = vm.alloc(entry()).unwrap();
        vm.get_mut(a).consumers_total = 7;
        assert_eq!(vm.get(a).consumers_total, 7);
    }
}
