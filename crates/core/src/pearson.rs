//! Pearson hashing for the DM P+8way design (paper, Section III-C and
//! Figure 4).
//!
//! The hardware applies a Pearson byte-substitution to each of the four
//! bytes of the 32 LSBs of a dependence address, xors the four hashed bytes
//! together and takes the low 6 bits as the DM set index. Pearson hashing
//! (Pearson, CACM 1990) is a table-driven permutation of byte values, which
//! is what lets it break the power-of-two address clustering that direct
//! indexing suffers from.

/// A 256-entry permutation table (a fixed, bijective shuffle of 0..=255).
///
/// Generated once with a linear-congruential Fisher-Yates shuffle; the exact
/// permutation is irrelevant as long as it is a bijection with no obvious
/// arithmetic structure, which the unit tests check.
pub const PEARSON_TABLE: [u8; 256] = build_table();

const fn build_table() -> [u8; 256] {
    let mut t = [0u8; 256];
    let mut i = 0;
    while i < 256 {
        t[i] = i as u8;
        i += 1;
    }
    // Fisher-Yates with a deterministic LCG (numerical recipes constants).
    let mut state: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut j = 255;
    while j > 0 {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let k = (state >> 33) as usize % (j + 1);
        let tmp = t[j];
        t[j] = t[k];
        t[k] = tmp;
        j -= 1;
    }
    t
}

/// Pearson hash of a single byte: one table substitution.
#[inline]
pub fn pearson_byte(b: u8) -> u8 {
    PEARSON_TABLE[b as usize]
}

/// The DM P+8way index function: substitute each byte of the 32 LSBs,
/// xor-fold, and take the low 6 bits (paper, Figure 4).
#[inline]
pub fn pearson_index(addr: u64, sets: usize) -> usize {
    let lsb = addr as u32;
    let h = pearson_byte(lsb as u8)
        ^ pearson_byte((lsb >> 8) as u8)
        ^ pearson_byte((lsb >> 16) as u8)
        ^ pearson_byte((lsb >> 24) as u8);
    h as usize % sets
}

/// The direct index function of DM 8way / 16way: the low address bits.
#[inline]
pub fn direct_index(addr: u64, sets: usize) -> usize {
    (addr as usize) % sets
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_a_permutation() {
        let mut seen = [false; 256];
        for &v in PEARSON_TABLE.iter() {
            assert!(!seen[v as usize], "duplicate value {v}");
            seen[v as usize] = true;
        }
    }

    #[test]
    fn table_is_not_identity() {
        let moved = (0..256).filter(|&i| PEARSON_TABLE[i] != i as u8).count();
        assert!(moved > 200, "only {moved} entries moved");
    }

    #[test]
    fn pearson_spreads_power_of_two_strides() {
        // Addresses with stride 32768 (a 64x64 f64 block) collapse onto one
        // set under direct indexing but spread under Pearson.
        let addrs: Vec<u64> = (0..256).map(|i| 0x4000_0000 + i * 32768).collect();
        let direct: std::collections::HashSet<_> =
            addrs.iter().map(|&a| direct_index(a, 64)).collect();
        let pearson: std::collections::HashSet<_> =
            addrs.iter().map(|&a| pearson_index(a, 64)).collect();
        assert_eq!(direct.len(), 1);
        assert!(pearson.len() > 32, "pearson used {} sets", pearson.len());
    }

    #[test]
    fn pearson_index_in_range() {
        for a in [0u64, 1, 0xdead_beef, u64::MAX, 0x5555_0000_1234] {
            assert!(pearson_index(a, 64) < 64);
            assert!(direct_index(a, 64) < 64);
        }
    }

    #[test]
    fn pearson_is_deterministic() {
        assert_eq!(
            pearson_index(0x1234_5678, 64),
            pearson_index(0x1234_5678, 64)
        );
    }

    #[test]
    fn pearson_uses_only_lsb32() {
        // The hardware hashes the LSB 32 bits only.
        assert_eq!(
            pearson_index(0xFFFF_0000_1234_5678, 64),
            pearson_index(0x1234_5678, 64)
        );
    }

    #[test]
    fn balanced_distribution_on_sequential_blocks() {
        // Chi-square-ish check: 4096 sequential block addresses should fill
        // all 64 sets reasonably evenly (no set more than 4x the mean).
        let mut counts = [0usize; 64];
        for i in 0..4096u64 {
            counts[pearson_index(0x4000_0000 + i * 8192, 64)] += 1;
        }
        let mean = 4096 / 64;
        assert!(counts.iter().all(|&c| c > 0), "empty set");
        assert!(counts.iter().all(|&c| c < 4 * mean), "hot set: {counts:?}");
    }
}
