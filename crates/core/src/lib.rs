//! Cycle-timed model of the **Picos** hardware task/dependence manager.
//!
//! This crate reproduces the accelerator of *"Performance Analysis of a
//! Hardware Accelerator of Dependence Management for Task-based Dataflow
//! Programming models"* (Tan et al., ISPASS 2016): a Gateway, Task
//! Reservation Stations (task memory, readiness tracking), Dependence Chain
//! Trackers (dependence + version memories, address matching, wake-up
//! chains), an Arbiter and a Task Scheduler, coupled by FIFOs and modelled
//! as a deterministic discrete-event simulation.
//!
//! The three Dependence Memory designs the paper evaluates — 8-way and
//! 16-way direct-hash, and the Pearson-hashed 8-way that wins the
//! evaluation — are selected through [`DmDesign`].
//!
//! # Quick example
//!
//! ```
//! use picos_core::{FinishedReq, PicosConfig, PicosSystem};
//! use picos_trace::gen;
//!
//! let trace = gen::cholesky(gen::CholeskyConfig::paper(256));
//! let mut sys = PicosSystem::new(PicosConfig::balanced());
//! sys.submit_all(&trace);
//! // Instant workers: acknowledge every ready task immediately.
//! sys.run_to_quiescence(100_000_000, |ready| {
//!     Some(FinishedReq { task: ready.task, slot: ready.slot })
//! })?;
//! assert_eq!(sys.stats().tasks_completed, 120);
//! # Ok::<(), picos_core::EngineError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod dct;
mod dm;
mod engine;
mod msg;
mod pearson;
mod snap;
mod stats;
mod tm;
mod trs;
mod vm;

pub use config::{Cycle, DmDesign, PicosConfig, Timing, TsPolicy};
pub use dct::{dct_for_addr, Dct, DctBlocked, DctEmit};
pub use dm::{Dm, DmAccess, DmSlot};
pub use engine::{EngineError, PicosSystem};
pub use msg::{
    ArbMsg, DepFinMsg, FinishedReq, NewDepMsg, NewTaskReq, ReadyTask, ResolveKind, SlotRef, TrsMsg,
    VmRef,
};
pub use pearson::{direct_index, pearson_byte, pearson_index, PEARSON_TABLE};
pub use stats::Stats;
pub use tm::{Tm, TmDep, TmEntry};
pub use trs::{Trs, TrsEmit};
pub use vm::{Vm, VmEntry};
