//! Dependence Chain Tracker: the major dependence-management unit.
//!
//! For each new dependence the DCT matches the address against earlier
//! arrivals (DM), registers the dependence in the version chain (VM) and
//! answers the TRS with a ready or dependent packet (N5). For each finished
//! dependence it updates the version state and wakes waiting tasks (F4):
//! Producer-Consumer chains are woken **from the last consumer** (the TRS
//! then walks the chain backwards), Producer-Producer chains are woken in
//! sequence as versions drain (paper, Section III-D).

use crate::config::Timing;
use crate::dm::{Dm, DmAccess};
use crate::msg::{DepFinMsg, NewDepMsg, ResolveKind, TrsMsg, VmRef};
use crate::stats::{hist_bucket, DM_CHAIN_BOUNDS};
use crate::vm::{Vm, VmEntry};
use crate::Cycle;

/// Packets a DCT emits while handling one message (all routed via the ARB).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DctEmit {
    /// Destination TRS instance.
    pub trs: u8,
    /// The packet.
    pub msg: TrsMsg,
}

/// Why a new dependence could not be processed right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DctBlocked {
    /// The DM set for this address is full (Table II conflict).
    DmConflict,
    /// The VM has no free entry.
    VmFull,
}

/// One Dependence Chain Tracker instance.
#[derive(Debug, Clone)]
pub struct Dct {
    id: u8,
    /// The Dependence Memory.
    pub dm: Dm,
    /// The Version Memory.
    pub vm: Vm,
    deps_processed: u64,
    wakes_sent: u64,
    chain_hist: [u64; DM_CHAIN_BOUNDS.len() + 1],
}

impl Dct {
    /// Creates DCT instance `id`.
    pub fn new(id: u8, dm: Dm, vm: Vm) -> Self {
        Dct {
            id,
            dm,
            vm,
            deps_processed: 0,
            wakes_sent: 0,
            chain_hist: [0; DM_CHAIN_BOUNDS.len() + 1],
        }
    }

    /// Instance index.
    pub fn id(&self) -> u8 {
        self.id
    }

    /// New dependences successfully registered.
    pub fn deps_processed(&self) -> u64 {
        self.deps_processed
    }

    /// Wake packets sent to TRS instances.
    pub fn wakes_sent(&self) -> u64 {
        self.wakes_sent
    }

    /// DM version-chain depth observed after each successful
    /// registration, bucketed by [`DM_CHAIN_BOUNDS`].
    pub fn chain_hist(&self) -> &[u64; DM_CHAIN_BOUNDS.len() + 1] {
        &self.chain_hist
    }

    #[inline]
    fn observe_chain(&mut self, len: u32) {
        self.chain_hist[hist_bucket(&DM_CHAIN_BOUNDS, u64::from(len))] += 1;
    }

    /// Handles a new dependence (N5).
    ///
    /// # Errors
    ///
    /// Returns [`DctBlocked`] when the dependence cannot be stored; the
    /// caller must keep the message at the queue head and retry after a
    /// finished dependence frees resources.
    pub fn handle_new(
        &mut self,
        msg: &NewDepMsg,
        t: &Timing,
        out: &mut Vec<DctEmit>,
    ) -> Result<Cycle, DctBlocked> {
        let dep = msg.dep;
        let is_input = !dep.dir.writes();
        // Reserve VM space up front: every outcome except a pure-reader hit
        // on an unfinished producer needs at most one new version, and a
        // fresh address always needs one.
        match self.dm.lookup(dep.addr) {
            Some(slot) => {
                if is_input {
                    // Consumer: joins the latest version.
                    let tail_ref = self.dm.tail(slot);
                    // Touch the DM entry for the refs/all_inputs bookkeeping.
                    self.dm.touch(slot, is_input);
                    let tail = self.vm.get_mut(tail_ref.idx);
                    tail.consumers_total += 1;
                    let kind = if tail.producer_finished {
                        // Producer already done: satisfied immediately.
                        ResolveKind::Ready
                    } else {
                        // Chain: remember the previous consumer; the TRS
                        // stores it in this task's TMX record.
                        let prev = tail.last_consumer.replace(msg.slot);
                        ResolveKind::Dependent {
                            prev_consumer: prev,
                        }
                    };
                    out.push(DctEmit {
                        trs: msg.slot.trs,
                        msg: TrsMsg::Resolve {
                            slot: msg.slot,
                            dep_idx: msg.dep_idx,
                            vm: tail_ref,
                            kind,
                        },
                    });
                } else {
                    // Producer: open a new version behind the current tail.
                    if !self.vm.has_space() {
                        return Err(DctBlocked::VmFull);
                    }
                    let tail_ref = self.dm.tail(slot);
                    self.dm.touch(slot, is_input);
                    let new_idx = self
                        .vm
                        .alloc(VmEntry {
                            producer: Some(msg.slot),
                            producer_finished: false,
                            last_consumer: None,
                            consumers_total: 0,
                            consumers_finished: 0,
                            next: None,
                            dm_slot: slot,
                        })
                        .expect("space checked above");
                    let new_ref = VmRef::new(self.id, new_idx);
                    self.vm.get_mut(tail_ref.idx).next = Some(new_ref);
                    self.dm.push_version(slot, new_ref);
                    // A live tail is never fully drained (it would have been
                    // deleted), so the new producer always waits; it is
                    // woken when the previous version resolves.
                    out.push(DctEmit {
                        trs: msg.slot.trs,
                        msg: TrsMsg::Resolve {
                            slot: msg.slot,
                            dep_idx: msg.dep_idx,
                            vm: new_ref,
                            kind: ResolveKind::Dependent {
                                prev_consumer: None,
                            },
                        },
                    });
                }
                self.observe_chain(self.dm.chain_len(slot));
            }
            None => {
                // First arrival for this address: needs a DM way + a VM
                // entry; either can stall.
                if !self.vm.has_space() {
                    return Err(DctBlocked::VmFull);
                }
                let slot = match self.dm.access(dep.addr, is_input) {
                    DmAccess::Inserted(s) => s,
                    DmAccess::Conflict => return Err(DctBlocked::DmConflict),
                    DmAccess::Hit(_) => unreachable!("lookup said miss"),
                };
                let new_idx = self
                    .vm
                    .alloc(VmEntry {
                        producer: if is_input { None } else { Some(msg.slot) },
                        producer_finished: is_input,
                        last_consumer: if is_input { Some(msg.slot) } else { None },
                        consumers_total: u32::from(is_input),
                        consumers_finished: 0,
                        next: None,
                        dm_slot: slot,
                    })
                    .expect("space checked above");
                let new_ref = VmRef::new(self.id, new_idx);
                self.dm.bind(slot, new_ref);
                // Independent: ready packet (N5).
                out.push(DctEmit {
                    trs: msg.slot.trs,
                    msg: TrsMsg::Resolve {
                        slot: msg.slot,
                        dep_idx: msg.dep_idx,
                        vm: new_ref,
                        kind: ResolveKind::Ready,
                    },
                });
                self.observe_chain(self.dm.chain_len(slot));
            }
        }
        self.deps_processed += 1;
        let sync = if msg.dep_idx == 0 { t.dct_task_sync } else { 0 };
        Ok(t.dct_dep + sync)
    }

    /// Handles a finished dependence (F3/F4).
    pub fn handle_fin(&mut self, msg: DepFinMsg, t: &Timing, out: &mut Vec<DctEmit>) -> Cycle {
        debug_assert_eq!(msg.vm.dct, self.id);
        let idx = msg.vm.idx;
        let v = self.vm.get_mut(idx);
        let was_producer = v.producer == Some(msg.from) && !v.producer_finished;
        if was_producer {
            v.producer_finished = true;
            if v.consumers_finished < v.consumers_total {
                // Wake the LAST consumer; the TRS walks the chain backwards
                // (paper, Figure 5 link 1).
                let target = v
                    .last_consumer
                    .expect("unfinished consumers imply a last consumer");
                self.wakes_sent += 1;
                out.push(DctEmit {
                    trs: target.trs,
                    msg: TrsMsg::Wake {
                        slot: target,
                        vm: msg.vm,
                    },
                });
                return t.dct_fin;
            }
        } else {
            v.consumers_finished += 1;
            debug_assert!(
                v.consumers_finished <= v.consumers_total,
                "more consumer finishes than consumers"
            );
        }
        if self.vm.get(idx).drained() {
            self.resolve_version(msg.vm, out);
        }
        t.dct_fin
    }

    /// Deletes a fully drained version, waking the next version's producer
    /// (Producer-Producer chain, paper Figure 5 links 4/5) and freeing the
    /// DM entry when it was the last version.
    fn resolve_version(&mut self, vm_ref: VmRef, out: &mut Vec<DctEmit>) {
        let (next, dm_slot) = {
            let v = self.vm.get(vm_ref.idx);
            debug_assert!(v.drained());
            (v.next, v.dm_slot)
        };
        if let Some(next_ref) = next {
            let producer = self
                .vm
                .get(next_ref.idx)
                .producer
                .expect("non-head versions are opened by producers");
            self.wakes_sent += 1;
            out.push(DctEmit {
                trs: producer.trs,
                msg: TrsMsg::Wake {
                    slot: producer,
                    vm: next_ref,
                },
            });
        }
        self.dm.pop_version(dm_slot, next);
        self.vm.free(vm_ref.idx);
    }

    /// Serializes the dynamic state: the DM, the VM and the instance
    /// counters.
    pub fn save_state(&self) -> picos_trace::Value {
        use picos_trace::snap::Enc;
        let mut e = Enc::new();
        e.u64(self.id as u64)
            .val(self.dm.save_state())
            .val(self.vm.save_state())
            .u64(self.deps_processed)
            .u64(self.wakes_sent)
            .u64s(self.chain_hist.iter().copied());
        e.done()
    }

    /// Overwrites the dynamic state from [`Dct::save_state`] output.
    ///
    /// # Errors
    ///
    /// Returns [`picos_trace::SnapError`] on a malformed record or an
    /// instance mismatch.
    pub fn load_state(&mut self, v: &picos_trace::Value) -> Result<(), picos_trace::SnapError> {
        use picos_trace::snap::{guard, Dec};
        let mut d = Dec::new(v, "dct")?;
        guard("dct id", d.u64()?, self.id as u64)?;
        self.dm.load_state(d.val()?)?;
        self.vm.load_state(d.val()?)?;
        self.deps_processed = d.u64()?;
        self.wakes_sent = d.u64()?;
        let hist = d.u64s()?;
        if hist.len() != self.chain_hist.len() {
            return Err(picos_trace::SnapError::new("dct: histogram shape mismatch"));
        }
        self.chain_hist.copy_from_slice(&hist);
        Ok(())
    }

    /// Returns the wake a drained head version owes; used by the engine
    /// after consumer chains complete. (Helper for tests.)
    #[doc(hidden)]
    pub fn debug_version(&self, idx: u16) -> &VmEntry {
        self.vm.get(idx)
    }
}

/// Convenience: which DCT instance owns an address (GW routing rule; all
/// arrivals for one address must reach the same DCT).
pub fn dct_for_addr(addr: u64, num_dct: usize) -> u8 {
    if num_dct == 1 {
        return 0;
    }
    // Fibonacci hashing, taking the HIGH bits of the product: the low bits
    // of `x * odd` are just a permutation of x's low bits, which are zero
    // for stride-aligned block addresses and would funnel every dependence
    // to DCT 0.
    let h = (addr >> 6).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
    (h as usize % num_dct) as u8
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DmDesign;
    use crate::msg::SlotRef;
    use picos_trace::Dependence;

    fn dct() -> Dct {
        Dct::new(0, Dm::new(DmDesign::PearsonEightWay, 64), Vm::new(16))
    }

    fn new_dep(slot_entry: u16, dep_idx: u8, dep: Dependence) -> NewDepMsg {
        NewDepMsg {
            slot: SlotRef::new(0, slot_entry),
            dep_idx,
            dep,
            conflict_counted: false,
            vm_stall_counted: false,
        }
    }

    fn ready_of(out: &[DctEmit]) -> Vec<(u16, ResolveKind)> {
        out.iter()
            .map(|e| match e.msg {
                TrsMsg::Resolve { slot, kind, .. } => (slot.entry, kind),
                ref other => panic!("unexpected {other:?}"),
            })
            .collect()
    }

    #[test]
    fn first_arrival_is_ready() {
        let mut d = dct();
        let t = Timing::default();
        let mut out = Vec::new();
        let cost = d
            .handle_new(&new_dep(1, 0, Dependence::inout(0xA0)), &t, &mut out)
            .unwrap();
        assert_eq!(cost, t.dct_dep + t.dct_task_sync);
        assert_eq!(ready_of(&out), vec![(1, ResolveKind::Ready)]);
        assert_eq!(d.dm.live(), 1);
        assert_eq!(d.vm.live(), 1);
    }

    #[test]
    fn non_first_dep_skips_sync_cost() {
        let mut d = dct();
        let t = Timing::default();
        let mut out = Vec::new();
        let cost = d
            .handle_new(&new_dep(1, 3, Dependence::input(0xB0)), &t, &mut out)
            .unwrap();
        assert_eq!(cost, t.dct_dep);
    }

    /// Walks the full paper Figure 5 example: T1 inout, T2-T4 in, T5-T6
    /// inout, then finishes in order and checks every wake.
    #[test]
    fn figure5_dependence_chain() {
        let mut d = dct();
        let t = Timing::default();
        let a = Dependence::inout(0xA0);
        let r = Dependence::input(0xA0);
        let mut out = Vec::new();

        // T1 (slot 1): ready.
        d.handle_new(&new_dep(1, 0, a), &t, &mut out).unwrap();
        assert_eq!(ready_of(&out), vec![(1, ResolveKind::Ready)]);
        let vm0 = match out[0].msg {
            TrsMsg::Resolve { vm, .. } => vm,
            _ => unreachable!(),
        };
        out.clear();

        // T2 (slot 2): first consumer -> dependent, no prev.
        d.handle_new(&new_dep(2, 0, r), &t, &mut out).unwrap();
        assert_eq!(
            ready_of(&out),
            vec![(
                2,
                ResolveKind::Dependent {
                    prev_consumer: None
                }
            )]
        );
        out.clear();

        // T3 (slot 3): second consumer -> dependent, prev = T2.
        d.handle_new(&new_dep(3, 0, r), &t, &mut out).unwrap();
        assert_eq!(
            ready_of(&out),
            vec![(
                3,
                ResolveKind::Dependent {
                    prev_consumer: Some(SlotRef::new(0, 2))
                }
            )]
        );
        out.clear();

        // T4 (slot 4): third consumer -> prev = T3.
        d.handle_new(&new_dep(4, 0, r), &t, &mut out).unwrap();
        out.clear();

        // T5, T6 (slots 5, 6): producers -> new versions, dependent.
        d.handle_new(&new_dep(5, 0, a), &t, &mut out).unwrap();
        let vm1 = match out[0].msg {
            TrsMsg::Resolve { vm, kind, .. } => {
                assert_eq!(
                    kind,
                    ResolveKind::Dependent {
                        prev_consumer: None
                    }
                );
                vm
            }
            _ => unreachable!(),
        };
        out.clear();
        d.handle_new(&new_dep(6, 0, a), &t, &mut out).unwrap();
        let vm2 = match out[0].msg {
            TrsMsg::Resolve { vm, .. } => vm,
            _ => unreachable!(),
        };
        out.clear();
        // One DM entry, three VM versions (paper: "one DM entry and three
        // VM entries have been assigned").
        assert_eq!(d.dm.live(), 1);
        assert_eq!(d.vm.live(), 3);

        // T1 finishes: wake the LAST consumer (T4), link 1.
        d.handle_fin(
            DepFinMsg {
                vm: vm0,
                from: SlotRef::new(0, 1),
            },
            &t,
            &mut out,
        );
        assert_eq!(
            out,
            vec![DctEmit {
                trs: 0,
                msg: TrsMsg::Wake {
                    slot: SlotRef::new(0, 4),
                    vm: vm0
                }
            }]
        );
        out.clear();

        // T2, T3 finish: counters only. T4's finish drains v0: wake T5
        // (link 4) and delete the first VM entry.
        for c in [2, 3] {
            d.handle_fin(
                DepFinMsg {
                    vm: vm0,
                    from: SlotRef::new(0, c),
                },
                &t,
                &mut out,
            );
            assert!(out.is_empty(), "consumer {c} finish must not wake");
        }
        d.handle_fin(
            DepFinMsg {
                vm: vm0,
                from: SlotRef::new(0, 4),
            },
            &t,
            &mut out,
        );
        assert_eq!(
            out,
            vec![DctEmit {
                trs: 0,
                msg: TrsMsg::Wake {
                    slot: SlotRef::new(0, 5),
                    vm: vm1
                }
            }]
        );
        assert_eq!(d.vm.live(), 2);
        out.clear();

        // T5 finishes: wake T6, delete second entry.
        d.handle_fin(
            DepFinMsg {
                vm: vm1,
                from: SlotRef::new(0, 5),
            },
            &t,
            &mut out,
        );
        assert_eq!(
            out,
            vec![DctEmit {
                trs: 0,
                msg: TrsMsg::Wake {
                    slot: SlotRef::new(0, 6),
                    vm: vm2
                }
            }]
        );
        out.clear();

        // T6 finishes: everything is deleted.
        d.handle_fin(
            DepFinMsg {
                vm: vm2,
                from: SlotRef::new(0, 6),
            },
            &t,
            &mut out,
        );
        assert!(out.is_empty());
        assert_eq!(d.vm.live(), 0);
        assert_eq!(d.dm.live(), 0);
    }

    #[test]
    fn pure_readers_are_all_ready() {
        let mut d = dct();
        let t = Timing::default();
        let mut out = Vec::new();
        for slot in 1..=3 {
            d.handle_new(&new_dep(slot, 0, Dependence::input(0xC0)), &t, &mut out)
                .unwrap();
        }
        assert!(ready_of(&out).iter().all(|(_, k)| *k == ResolveKind::Ready));
        // One shared version with three consumers.
        assert_eq!(d.vm.live(), 1);
        // All three finish: version drains, DM freed.
        let vm = VmRef::new(0, 0);
        out.clear();
        for slot in 1..=3 {
            d.handle_fin(
                DepFinMsg {
                    vm,
                    from: SlotRef::new(0, slot),
                },
                &t,
                &mut out,
            );
        }
        assert!(out.is_empty());
        assert_eq!(d.dm.live(), 0);
    }

    #[test]
    fn consumer_after_producer_finished_is_ready() {
        let mut d = dct();
        let t = Timing::default();
        let mut out = Vec::new();
        d.handle_new(&new_dep(1, 0, Dependence::output(0xD0)), &t, &mut out)
            .unwrap();
        let vm = match out[0].msg {
            TrsMsg::Resolve { vm, .. } => vm,
            _ => unreachable!(),
        };
        out.clear();
        // Producer finishes with no consumers and no next version...
        d.handle_fin(
            DepFinMsg {
                vm,
                from: SlotRef::new(0, 1),
            },
            &t,
            &mut out,
        );
        assert!(out.is_empty());
        // ... so the entry is deleted; a late consumer is independent.
        assert_eq!(d.dm.live(), 0);
        d.handle_new(&new_dep(2, 0, Dependence::input(0xD0)), &t, &mut out)
            .unwrap();
        assert_eq!(ready_of(&out), vec![(2, ResolveKind::Ready)]);
    }

    #[test]
    fn dm_conflict_blocks() {
        let mut d = Dct::new(0, Dm::new(DmDesign::EightWay, 64), Vm::new(64));
        let t = Timing::default();
        let mut out = Vec::new();
        // Fill set 0 with eight clustered producers.
        for i in 0..8u16 {
            d.handle_new(
                &new_dep(i + 1, 0, Dependence::inout(0x1000 + u64::from(i) * 0x40000)),
                &t,
                &mut out,
            )
            .unwrap();
        }
        out.clear();
        let r = d.handle_new(
            &new_dep(20, 0, Dependence::inout(0x1000 + 9 * 0x40000)),
            &t,
            &mut out,
        );
        assert_eq!(r.unwrap_err(), DctBlocked::DmConflict);
        assert!(out.is_empty(), "blocked dependence must not emit");
    }

    #[test]
    fn vm_full_blocks() {
        let mut d = Dct::new(0, Dm::new(DmDesign::PearsonEightWay, 64), Vm::new(1));
        let t = Timing::default();
        let mut out = Vec::new();
        d.handle_new(&new_dep(1, 0, Dependence::inout(0xE0)), &t, &mut out)
            .unwrap();
        let r = d.handle_new(&new_dep(2, 0, Dependence::inout(0xF0)), &t, &mut out);
        assert_eq!(r.unwrap_err(), DctBlocked::VmFull);
        // A producer on the SAME address also needs a version.
        let r = d.handle_new(&new_dep(3, 0, Dependence::inout(0xE0)), &t, &mut out);
        assert_eq!(r.unwrap_err(), DctBlocked::VmFull);
    }

    #[test]
    fn dct_for_addr_is_stable_and_in_range() {
        for n in [1usize, 2, 4] {
            for a in [0u64, 0x40, 0x1234_5678, u64::MAX] {
                let d = dct_for_addr(a, n);
                assert!(usize::from(d) < n);
                assert_eq!(d, dct_for_addr(a, n));
            }
        }
        assert_eq!(dct_for_addr(0xABCD, 1), 0);
    }

    #[test]
    fn producer_after_consumers_waits_for_war() {
        let mut d = dct();
        let t = Timing::default();
        let mut out = Vec::new();
        // Reader opens the version (no producer).
        d.handle_new(&new_dep(1, 0, Dependence::input(0xAA)), &t, &mut out)
            .unwrap();
        out.clear();
        // Writer must wait for the reader (WAR).
        d.handle_new(&new_dep(2, 0, Dependence::output(0xAA)), &t, &mut out)
            .unwrap();
        match out[0].msg {
            TrsMsg::Resolve { kind, .. } => {
                assert_eq!(
                    kind,
                    ResolveKind::Dependent {
                        prev_consumer: None
                    }
                )
            }
            ref other => panic!("unexpected {other:?}"),
        }
        out.clear();
        // Reader finishes: head version drains, writer woken.
        d.handle_fin(
            DepFinMsg {
                vm: VmRef::new(0, 0),
                from: SlotRef::new(0, 1),
            },
            &t,
            &mut out,
        );
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0].msg, TrsMsg::Wake { slot, .. } if slot == SlotRef::new(0, 2)));
    }
}
