//! The discrete-event engine tying the Picos units together.
//!
//! [`PicosSystem`] wires the Gateway, the TRS and DCT instances, the Arbiter
//! and the Task Scheduler with FIFO message queues and advances them in
//! cycle-stamped events. Each unit serves one message at a time with the
//! service times of [`crate::Timing`]; message hand-offs pay a wire latency.
//! This reproduces the paper's asynchronous FIFO-coupled control units
//! (Section III-A) at the fidelity its measurements need: per-unit
//! throughput, pipeline latency, and the stall behaviour of the DM/VM/TM
//! resources.
//!
//! # Event core
//!
//! The engine is built for throughput — it is the inner loop of every
//! figure, sweep cell and HIL run — without giving up cycle-exactness:
//!
//! * **Timing wheel.** Events live on a circular calendar queue sized to
//!   the largest service time, with a far-future overflow heap for exotic
//!   [`crate::Timing`] values. Service times are small constants, so pushes
//!   and pops are O(1) with no comparisons. FIFO order within a wheel slot
//!   preserves emission order, which is exactly the `(time, seq)` order the
//!   previous binary heap produced — determinism is structural.
//! * **Demand-driven wake-up.** Every service completion schedules a
//!   wake-up for its own unit at its busy horizon — stored as a per-slot
//!   unit bitmask, so applying a batch's wakes is one OR into the pending
//!   mask — and every message delivery marks the receiving unit pending.
//!   A scheduling pass polls only the pending units, in the same fixed
//!   unit order the old full scan used; resource releases re-mark the
//!   units they can unblock (TM slots → Gateway, DM/VM entries → the
//!   owning DCT's new-dependence port). Deliveries whose service cannot
//!   be observed early by any other unit (ARB, TS, DCT-fin, non-Finished
//!   TRS messages) are served directly at delivery time, skipping the
//!   queue round-trip.
//! * **Allocation-free hot path.** Unit out-vectors are reusable scratch
//!   buffers, queues are flat head-cursor FIFOs, and the wheel slots
//!   recycle their capacity, so steady-state event processing performs no
//!   heap allocation.
//!
//! The external interface is the co-processor interface of the paper:
//! [`PicosSystem::submit`] delivers a new task (N1), [`PicosSystem::pop_ready`]
//! retrieves a ready task from the TS (the worker side of N6), and
//! [`PicosSystem::notify_finished`] reports a finished task (F1). Time only
//! advances through [`PicosSystem::advance_to`], so a driver (the HIL crate)
//! can interleave its own event loop.

use crate::config::{PicosConfig, TsPolicy};
use crate::dct::{dct_for_addr, Dct, DctBlocked, DctEmit};
use crate::dm::Dm;
use crate::msg::{
    ArbMsg, DepFinMsg, FinishedReq, NewDepMsg, NewTaskReq, ReadyTask, SlotRef, TrsMsg,
};
use crate::stats::{hist_bucket, Stats, TRS_WAKE_BOUNDS};
use crate::trs::{Trs, TrsEmit};
use crate::vm::Vm;
use crate::Cycle;
use picos_metrics::span::{SpanKind, SpanLog};
use picos_metrics::{SeriesSpec, Timeline, WindowSampler};
use picos_trace::snap::{Dec, Enc, SnapError};
use picos_trace::{Dependence, TaskId, Trace, Value};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::Arc;

/// Message deliveries and unit wake-ups carried by the timing wheel.
///
/// All variants are `Copy`: batch processing reads events straight out of
/// a wheel slot without moving the slot's storage.
#[derive(Debug, Clone, Copy)]
enum Delivery {
    Trs(u8, TrsMsg),
    DctNew(u8, NewDepMsg),
    DctFin(u8, DepFinMsg),
    Arb(ArbMsg),
    Ts(TaskId, SlotRef),
    ReadyOut(ReadyTask),
    /// A unit's busy horizon passes: re-poll exactly that unit (by rank).
    /// Replaces the old payload-free `Free` broadcast that forced a full
    /// unit scan per batch.
    Wake(u32),
}

/// An event parked on the overflow heap (beyond the wheel horizon).
#[derive(Debug, Clone)]
struct Ev {
    t: Cycle,
    seq: u64,
    d: Delivery,
}

impl PartialEq for Ev {
    fn eq(&self, other: &Self) -> bool {
        self.t == other.t && self.seq == other.seq
    }
}
impl Eq for Ev {}
impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ev {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.t, self.seq).cmp(&(other.t, other.seq))
    }
}

/// A flat FIFO for `Copy` messages: a `Vec` plus a head cursor that resets
/// when the queue drains. Faster than `VecDeque` on the hot path (no wrap
/// masking) and allocation-free once warmed up.
#[derive(Debug, Clone)]
struct Fifo<T: Copy> {
    buf: Vec<T>,
    head: usize,
}

impl<T: Copy> Default for Fifo<T> {
    fn default() -> Self {
        Fifo {
            buf: Vec::new(),
            head: 0,
        }
    }
}

impl<T: Copy> Fifo<T> {
    #[inline]
    fn push(&mut self, x: T) {
        self.buf.push(x);
    }

    #[inline]
    fn pop(&mut self) -> Option<T> {
        let x = *self.buf.get(self.head)?;
        self.head += 1;
        if self.head == self.buf.len() {
            self.buf.clear();
            self.head = 0;
        } else if self.head >= 64 && self.head * 2 >= self.buf.len() {
            // Compact a long-lived non-empty queue so memory stays
            // proportional to peak depth, not total traffic.
            self.buf.copy_within(self.head.., 0);
            self.buf.truncate(self.buf.len() - self.head);
            self.head = 0;
        }
        Some(x)
    }

    #[inline]
    fn front(&self) -> Option<&T> {
        self.buf.get(self.head)
    }

    #[inline]
    fn front_mut(&mut self) -> Option<&mut T> {
        self.buf.get_mut(self.head)
    }

    #[inline]
    fn is_empty(&self) -> bool {
        self.head == self.buf.len()
    }
}

/// Span recorder state: the log plus the slot bookkeeping that turns
/// slot-addressed unit events back into task-addressed lifecycle events
/// (`NewDepMsg` carries the TM slot, not the task). Exists only while
/// tracing is attached — every probe site pays one `Option` branch when it
/// is not, the same contract as the [`WindowSampler`].
#[derive(Debug, Clone)]
struct SpanProbe {
    log: SpanLog,
    shard: u16,
    /// Task occupying each TM slot (dense `trs * tm_entries + entry`).
    slot_task: Vec<u32>,
    /// Dependences of the slot's task still awaiting DM registration.
    slot_left: Vec<u8>,
}

/// Gateway new-task port: either idle or forwarding the dependences of the
/// task it just dispatched (N4 happens one dependence per `gw_dep` cycles).
#[derive(Debug, Clone)]
enum GwState {
    Idle,
    Dispatching {
        deps: Arc<[Dependence]>,
        slot: SlotRef,
        next: usize,
    },
}

/// The complete Picos accelerator model.
///
/// Cloning is a deep copy of the full dynamic state — the fork primitive
/// of the snapshot subsystem (an ephemeral what-if replica shares nothing
/// with its parent).
#[derive(Debug, Clone)]
pub struct PicosSystem {
    cfg: PicosConfig,
    now: Cycle,

    // Event core: a timing wheel over [now, now + wheel_mask] plus an
    // overflow heap for events beyond that horizon. Slot FIFO order equals
    // emission order, so no per-event sequence numbers are needed on the
    // wheel; the overflow heap keeps its own.
    wheel: Vec<Vec<Delivery>>,
    wheel_bits: Vec<u64>,
    wheel_mask: Cycle,
    wheel_len: usize,
    // Wake events, stored as per-slot unit bitmasks instead of wheel
    // entries: wake order within a batch is irrelevant (marks are
    // idempotent), so applying a slot's wakes is one OR into `pending`
    // per word. `wake_wheel` is `wake_words` words per slot; `wake_bits`
    // tracks slots with at least one wake; `wake_slots` counts them.
    wake_wheel: Vec<u64>,
    wake_bits: Vec<u64>,
    wake_words: usize,
    wake_slots: usize,
    overflow: BinaryHeap<Reverse<Ev>>,
    overflow_seq: u64,
    /// Exact earliest event time over wheel + overflow (`Cycle::MAX` when
    /// empty), kept current by `emit` and recomputed after each batch:
    /// `next_event_time` is O(1).
    next_at: Cycle,

    // Demand-driven scheduling: one bit per unit, set when the unit may be
    // able to start a service. Bit positions are unit ranks in the
    // canonical poll order (see `poll`); the rank-space boundaries are
    // precomputed at construction.
    pending: Vec<u64>,
    rank_dct0: u32,
    rank_arb0: u32,

    // External interfaces.
    ext_new: VecDeque<NewTaskReq>,
    ext_fin: VecDeque<FinishedReq>,
    ready_buf: VecDeque<ReadyTask>,

    // Internal queues.
    trs_q: Vec<Fifo<TrsMsg>>,
    dct_new_q: Vec<Fifo<NewDepMsg>>,
    dct_fin_q: Vec<Fifo<DepFinMsg>>,
    arb_q: Fifo<ArbMsg>,
    ts_q: Fifo<(TaskId, SlotRef)>,

    // Units.
    trs: Vec<Trs>,
    dct: Vec<Dct>,
    gw_state: GwState,
    gw_blocked_counted: bool,
    rr_trs: usize,

    // Per-unit busy horizons.
    gw_new_busy: Cycle,
    gw_fin_busy: Cycle,
    trs_busy: Vec<Cycle>,
    dct_new_busy: Vec<Cycle>,
    dct_fin_busy: Vec<Cycle>,
    arb_busy: Cycle,
    ts_busy: Cycle,

    // Reusable out-vectors for the unit handlers (allocation-free path).
    scratch_trs: Vec<TrsEmit>,
    scratch_dct: Vec<DctEmit>,

    in_flight: usize,
    stats: Stats,

    /// Optional cycle-windowed telemetry. `None` (the default) keeps the
    /// hot path sampling-free: every probe point is a plain field the
    /// engine maintains anyway, and time advancement pays exactly one
    /// branch to see that no sampler is attached.
    sampler: Option<WindowSampler>,

    /// Optional task-lifecycle span recorder, same contract as `sampler`.
    spans: Option<SpanProbe>,

    // Blocked-on-whom wait attribution (always on, plain counters): when
    // a port first observes a block the cycle is latched; the wait is
    // charged when the head finally goes through.
    gw_blocked_at: Cycle,
    dct_dm_blocked_at: Vec<Cycle>,
    dct_vm_blocked_at: Vec<Cycle>,
    /// Delivery cycle of the last slot-addressed TRS input per TM slot:
    /// the start of the wake-to-ready latency histogram observation.
    slot_in_at: Vec<Cycle>,
}

/// Wheel size for a configuration: a power of two strictly larger than the
/// longest service-plus-wire delay, so in-horizon events never wrap onto a
/// live slot. Exotic timings beyond the cap go to the overflow heap.
fn wheel_size(cfg: &PicosConfig) -> usize {
    let t = &cfg.timing;
    let max_service = [
        t.gw_task,
        t.gw_dep,
        t.gw_fin,
        t.trs_new,
        t.trs_resolve,
        t.trs_wake,
        t.trs_fin
            .saturating_add(t.trs_fin_dep.saturating_mul(cfg.max_deps_per_task as Cycle)),
        t.dct_dep.saturating_add(t.dct_task_sync),
        t.dct_fin,
        t.arb,
        t.ts,
    ]
    .into_iter()
    .max()
    .unwrap_or(1);
    let horizon = max_service.saturating_add(t.wire).saturating_add(1);
    (horizon.min(4096) as usize).next_power_of_two().max(64)
}

impl PicosSystem {
    /// Poll rank of the Gateway finished-task port (first in scan order).
    const RANK_GW_FIN: u32 = 0;
    /// Poll rank of the Gateway new-task port.
    const RANK_GW_NEW: u32 = 1;

    fn rank_trs(&self, i: usize) -> u32 {
        2 + i as u32
    }

    fn rank_dct_fin(&self, j: usize) -> u32 {
        self.rank_dct0 + 2 * j as u32
    }

    fn rank_dct_new(&self, j: usize) -> u32 {
        self.rank_dct_fin(j) + 1
    }

    fn rank_arb(&self) -> u32 {
        self.rank_arb0
    }

    fn rank_ts(&self) -> u32 {
        self.rank_arb0 + 1
    }

    /// Builds a system from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`PicosConfig::validate`].
    pub fn new(cfg: PicosConfig) -> Self {
        cfg.validate().expect("invalid Picos configuration");
        let trs = (0..cfg.num_trs)
            .map(|i| Trs::new(i as u8, cfg.tm_entries))
            .collect::<Vec<_>>();
        let dct = (0..cfg.num_dct)
            .map(|i| {
                Dct::new(
                    i as u8,
                    Dm::new(cfg.dm_design, cfg.dm_sets),
                    Vm::new(cfg.vm_entries),
                )
            })
            .collect::<Vec<_>>();
        let size = wheel_size(&cfg);
        let num_units = 4 + cfg.num_trs + 2 * cfg.num_dct;
        let wake_words = num_units.div_ceil(64);
        PicosSystem {
            now: 0,
            wheel: vec![Vec::new(); size],
            wheel_bits: vec![0; size / 64],
            wheel_mask: (size - 1) as Cycle,
            wheel_len: 0,
            wake_wheel: vec![0; size * wake_words],
            wake_bits: vec![0; size / 64],
            wake_words,
            wake_slots: 0,
            overflow: BinaryHeap::new(),
            overflow_seq: 0,
            next_at: Cycle::MAX,
            pending: vec![0; num_units.div_ceil(64)],
            rank_dct0: 2 + cfg.num_trs as u32,
            rank_arb0: 2 + cfg.num_trs as u32 + 2 * cfg.num_dct as u32,
            ext_new: VecDeque::new(),
            ext_fin: VecDeque::new(),
            ready_buf: VecDeque::new(),
            trs_q: vec![Fifo::default(); cfg.num_trs],
            dct_new_q: vec![Fifo::default(); cfg.num_dct],
            dct_fin_q: vec![Fifo::default(); cfg.num_dct],
            arb_q: Fifo::default(),
            ts_q: Fifo::default(),
            trs,
            dct,
            gw_state: GwState::Idle,
            gw_blocked_counted: false,
            rr_trs: 0,
            gw_new_busy: 0,
            gw_fin_busy: 0,
            trs_busy: vec![0; cfg.num_trs],
            dct_new_busy: vec![0; cfg.num_dct],
            dct_fin_busy: vec![0; cfg.num_dct],
            arb_busy: 0,
            ts_busy: 0,
            scratch_trs: Vec::new(),
            scratch_dct: Vec::new(),
            in_flight: 0,
            stats: Stats::default(),
            sampler: None,
            spans: None,
            gw_blocked_at: 0,
            dct_dm_blocked_at: vec![0; cfg.num_dct],
            dct_vm_blocked_at: vec![0; cfg.num_dct],
            slot_in_at: vec![0; cfg.num_trs * cfg.tm_entries],
            cfg,
        }
    }

    /// The timeline vocabulary of the core: queue/memory occupancy gauges
    /// and per-unit busy/stall/progress deltas, in probe order.
    pub fn timeline_series() -> Vec<SeriesSpec> {
        vec![
            SeriesSpec::gauge("occ.input"),
            SeriesSpec::gauge("occ.ready"),
            SeriesSpec::gauge("occ.inflight"),
            SeriesSpec::gauge("occ.tm"),
            SeriesSpec::gauge("occ.dm"),
            SeriesSpec::gauge("occ.vm"),
            SeriesSpec::delta("busy.gw"),
            SeriesSpec::delta("busy.trs"),
            SeriesSpec::delta("busy.dct"),
            SeriesSpec::delta("busy.arb"),
            SeriesSpec::delta("busy.ts"),
            SeriesSpec::delta("stall.tm"),
            SeriesSpec::delta("stall.dm"),
            SeriesSpec::delta("stall.vm"),
            SeriesSpec::delta("done.tasks"),
            SeriesSpec::delta("done.deps"),
            SeriesSpec::delta("wait.gw_tm"),
            SeriesSpec::delta("wait.dct_dm"),
            SeriesSpec::delta("wait.dct_vm"),
        ]
    }

    /// Reads every probe point into `out`, in [`PicosSystem::timeline_series`]
    /// order. Pure observation: nothing in the engine changes.
    fn probe(&self, out: &mut [u64]) {
        out[0] = self.ext_new.len() as u64;
        out[1] = self.ready_buf.len() as u64;
        out[2] = self.in_flight as u64;
        out[3] = self.trs.iter().map(|t| t.tm.live()).sum::<usize>() as u64;
        out[4] = self.dct.iter().map(|d| d.dm.live()).sum::<usize>() as u64;
        out[5] = self.dct.iter().map(|d| d.vm.live()).sum::<usize>() as u64;
        out[6] = self.stats.busy_gw;
        out[7] = self.stats.busy_trs;
        out[8] = self.stats.busy_dct;
        out[9] = self.stats.busy_arb;
        out[10] = self.stats.busy_ts;
        out[11] = self.stats.tm_stalls;
        out[12] = self.dct.iter().map(|d| d.dm.conflicts()).sum();
        out[13] = self.dct.iter().map(|d| d.vm.stalls()).sum();
        out[14] = self.stats.tasks_completed;
        out[15] = self.dct.iter().map(Dct::deps_processed).sum();
        out[16] = self.stats.gw_wait_tm;
        out[17] = self.stats.dct_wait_dm;
        out[18] = self.stats.dct_wait_vm;
    }

    /// Attaches a cycle-windowed telemetry sampler: from now on, every
    /// window boundary the simulation clock crosses snapshots the probe
    /// points of [`PicosSystem::timeline_series`]. Observation-only — the
    /// schedule, the event order and every counter are bit-identical with
    /// and without a sampler attached.
    ///
    /// # Panics
    ///
    /// Panics on a zero window.
    pub fn attach_timeline(&mut self, window: Cycle) {
        self.sampler = Some(WindowSampler::new(window, Self::timeline_series()));
    }

    /// Detaches the sampler and returns the finished [`Timeline`],
    /// finalized at the current time (the last sample may cover a partial
    /// window). `None` when no sampler was attached.
    pub fn take_timeline(&mut self) -> Option<Timeline> {
        let sampler = self.sampler.take()?;
        Some(sampler.finish(self.now, |out| self.probe(out)))
    }

    /// Attaches a task-lifecycle span recorder tagged with `shard` (0 for
    /// single-system engines). From now on the engine records
    /// [`SpanKind::DepsRegistered`] (per task, when its last dependence
    /// registers with the DM), [`SpanKind::LastDepReleased`] and
    /// [`SpanKind::Ready`]. Observation-only: the schedule, event order
    /// and every counter are bit-identical with and without the recorder.
    pub fn attach_spans(&mut self, shard: u16) {
        let slots = self.cfg.num_trs * self.cfg.tm_entries;
        self.spans = Some(SpanProbe {
            log: SpanLog::with_capacity(4 * slots),
            shard,
            slot_task: vec![0; slots],
            slot_left: vec![0; slots],
        });
    }

    /// Detaches the span recorder and returns its log (recording order;
    /// callers canonicalize). `None` when none was attached.
    pub fn take_spans(&mut self) -> Option<SpanLog> {
        self.spans.take().map(|p| p.log)
    }

    /// Whether a span recorder is attached.
    pub fn spans_attached(&self) -> bool {
        self.spans.is_some()
    }

    /// Dense index of a TM slot (spans and wake-latency bookkeeping).
    #[inline]
    fn slot_key(&self, slot: SlotRef) -> usize {
        slot.trs as usize * self.cfg.tm_entries + slot.entry as usize
    }

    /// Current simulation time.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// The configuration this system was built with.
    pub fn config(&self) -> &PicosConfig {
        &self.cfg
    }

    /// Submits a new task (N1). The GW will pick it up when it has cycles
    /// and a free TM slot.
    ///
    /// Takes the dependence list by value as a shared slice: submitting a
    /// task straight from a [`picos_trace::TaskDescriptor`] is a refcount
    /// bump (`t.deps.clone()`), never a per-task copy. Plain `Vec`s and
    /// arrays still convert implicitly.
    ///
    /// # Panics
    ///
    /// Panics if the task has more dependences than the configured maximum.
    pub fn submit(&mut self, task: TaskId, deps: impl Into<Arc<[Dependence]>>) {
        let deps = deps.into();
        assert!(
            deps.len() <= self.cfg.max_deps_per_task,
            "task {task} exceeds max_deps_per_task"
        );
        self.ext_new.push_back(NewTaskReq { task, deps });
        self.mark(Self::RANK_GW_NEW);
    }

    /// Submits every task of a trace in creation order: the bulk
    /// equivalent of calling [`PicosSystem::submit`] per task, with the
    /// input queue pre-sized once instead of grown incrementally.
    ///
    /// # Panics
    ///
    /// Panics if any task has more dependences than the configured maximum.
    pub fn submit_all(&mut self, trace: &Trace) {
        self.ext_new.reserve(trace.len());
        for t in trace.iter() {
            self.submit(t.id, t.deps.clone());
        }
    }

    /// Pre-sizes the new-task input queue for `additional` more
    /// submissions (the incremental counterpart of
    /// [`PicosSystem::submit_all`]'s one-shot reservation).
    pub fn reserve_new(&mut self, additional: usize) {
        self.ext_new.reserve(additional);
    }

    /// Number of submitted tasks the GW has not accepted yet.
    pub fn pending_new(&self) -> usize {
        self.ext_new.len()
    }

    /// Reports a finished task (F1).
    pub fn notify_finished(&mut self, fin: FinishedReq) {
        self.ext_fin.push_back(fin);
        self.mark(Self::RANK_GW_FIN);
    }

    /// Retrieves a ready task from the TS buffer, honouring the configured
    /// FIFO/LIFO policy. Only tasks that became ready at or before the
    /// current time are visible (they are, by construction of the event
    /// loop).
    pub fn pop_ready(&mut self) -> Option<ReadyTask> {
        match self.cfg.ts_policy {
            TsPolicy::Fifo => self.ready_buf.pop_front(),
            TsPolicy::Lifo => self.ready_buf.pop_back(),
        }
    }

    /// Peeks at the ready task [`PicosSystem::pop_ready`] would return,
    /// without removing it. Lets a driver decide whether to consume the
    /// head of the ready stream (the cluster driver routes remote-task
    /// fragments unconditionally but takes local tasks only when an
    /// execution slot is free).
    pub fn peek_ready(&self) -> Option<&ReadyTask> {
        match self.cfg.ts_policy {
            TsPolicy::Fifo => self.ready_buf.front(),
            TsPolicy::Lifo => self.ready_buf.back(),
        }
    }

    /// Number of ready tasks waiting to be retrieved.
    pub fn ready_len(&self) -> usize {
        self.ready_buf.len()
    }

    /// Tasks in flight: accepted by the GW and not yet fully retired.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Time of the next internal event, if any. Meaningful after
    /// [`PicosSystem::advance_to`] has run to the current time (the engine
    /// is then quiescent at `now` and this is the true next activity).
    pub fn next_event_time(&self) -> Option<Cycle> {
        if self.next_at == Cycle::MAX {
            None
        } else {
            Some(self.next_at)
        }
    }

    /// Recomputes the earliest event time by scanning wheel and overflow.
    fn scan_next(&self) -> Cycle {
        let wheel = self.wheel_next_time().unwrap_or(Cycle::MAX);
        let over = self.overflow.peek().map_or(Cycle::MAX, |Reverse(e)| e.t);
        wheel.min(over)
    }

    /// Whether the engine has no internal activity left (events, queued
    /// messages or a mid-dispatch GW). Ready tasks may still be waiting in
    /// the output buffer, and the driver may still owe finish notifications.
    pub fn is_quiescent(&self) -> bool {
        self.wheel_len == 0
            && self.wake_slots == 0
            && self.overflow.is_empty()
            && self.ext_new.is_empty()
            && self.ext_fin.is_empty()
            && self.arb_q.is_empty()
            && self.ts_q.is_empty()
            && self.trs_q.iter().all(Fifo::is_empty)
            && self.dct_new_q.iter().all(Fifo::is_empty)
            && self.dct_fin_q.iter().all(Fifo::is_empty)
            && matches!(self.gw_state, GwState::Idle)
    }

    /// Snapshot of the run statistics.
    pub fn stats(&self) -> Stats {
        let mut s = self.stats.clone();
        s.deps_processed = self.dct.iter().map(Dct::deps_processed).sum();
        s.dm_conflicts = self.dct.iter().map(|d| d.dm.conflicts()).sum();
        s.vm_stalls = self.dct.iter().map(|d| d.vm.stalls()).sum();
        s.wakes_sent = self.dct.iter().map(Dct::wakes_sent).sum();
        s.chain_wakes = self.trs.iter().map(Trs::wakes_forwarded).sum();
        s.peak_in_flight = self.trs.iter().map(|t| t.tm.peak_live()).sum();
        s.peak_dm_live = self.dct.iter().map(|d| d.dm.peak_live()).sum();
        s.peak_vm_live = self.dct.iter().map(|d| d.vm.peak_live()).sum();
        for d in &self.dct {
            for (k, v) in d.chain_hist().iter().enumerate() {
                s.dm_chain_hist[k] += v;
            }
        }
        s
    }

    /// Advances simulated time to `t`, processing every internal event and
    /// every unit that can make progress on the way.
    pub fn advance_to(&mut self, t: Cycle) {
        debug_assert!(t >= self.now, "time cannot go backwards");
        loop {
            self.schedule_pass();
            let batch_t = self.next_at;
            if batch_t > t {
                // Covers the empty case too (`next_at` is `Cycle::MAX`).
                break;
            }
            self.set_now(batch_t);
            self.process_batch(batch_t);
        }
        self.set_now(t);
        // Pick up any externally pushed messages at the final time.
        self.schedule_pass();
    }

    /// Runs the engine until it is quiescent, with a watchdog.
    ///
    /// Intended for tests and simple drivers that execute tasks with no
    /// simulated duration: the `on_ready` callback receives every ready task
    /// and returns finish notifications to feed back.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Watchdog`] if the engine fails to become
    /// quiescent within `max_cycles`.
    pub fn run_to_quiescence(
        &mut self,
        max_cycles: Cycle,
        mut on_ready: impl FnMut(ReadyTask) -> Option<FinishedReq>,
    ) -> Result<(), EngineError> {
        let deadline = self.now + max_cycles;
        // Absorb externally pushed work at the current time; inside the
        // loop, advancing to each event time keeps the engine current.
        self.advance_to(self.now);
        loop {
            let mut fed = false;
            while let Some(r) = self.pop_ready() {
                if let Some(fin) = on_ready(r) {
                    self.notify_finished(fin);
                    fed = true;
                }
            }
            if fed {
                self.advance_to(self.now);
            }
            match self.next_event_time() {
                Some(t) => {
                    if t > deadline {
                        return Err(EngineError::Watchdog { at: self.now });
                    }
                    self.advance_to(t);
                }
                None => {
                    // Nothing can move any more: either the run is complete
                    // or work remains that no event will ever release.
                    return if self.is_quiescent() && self.in_flight == 0 {
                        Ok(())
                    } else {
                        Err(EngineError::Deadlock { at: self.now })
                    };
                }
            }
        }
    }

    /// Schedules an event. In-horizon events go to their wheel slot (FIFO,
    /// preserving emission order); far-future events to the overflow heap.
    #[inline]
    fn emit(&mut self, at: Cycle, d: Delivery) {
        debug_assert!(at >= self.now, "cannot emit into the past");
        if at < self.next_at {
            self.next_at = at;
        }
        if at - self.now <= self.wheel_mask {
            let slot = (at & self.wheel_mask) as usize;
            self.wheel[slot].push(d);
            self.wheel_bits[slot / 64] |= 1u64 << (slot % 64);
            self.wheel_len += 1;
        } else {
            self.overflow_seq += 1;
            self.overflow.push(Reverse(Ev {
                t: at,
                seq: self.overflow_seq,
                d,
            }));
        }
    }

    /// Schedules a unit wake-up: an OR into the slot's unit bitmask (order
    /// among same-slot wakes is irrelevant — marks are idempotent).
    #[inline]
    fn emit_wake(&mut self, at: Cycle, rank: u32) {
        debug_assert!(at >= self.now, "cannot emit into the past");
        if at < self.next_at {
            self.next_at = at;
        }
        if at - self.now <= self.wheel_mask {
            let slot = (at & self.wheel_mask) as usize;
            let bit = 1u64 << (slot % 64);
            if self.wake_bits[slot / 64] & bit == 0 {
                self.wake_bits[slot / 64] |= bit;
                self.wake_slots += 1;
            }
            self.wake_wheel[slot * self.wake_words + (rank / 64) as usize] |= 1u64 << (rank % 64);
        } else {
            self.overflow_seq += 1;
            self.overflow.push(Reverse(Ev {
                t: at,
                seq: self.overflow_seq,
                d: Delivery::Wake(rank),
            }));
        }
    }

    /// Moves time forward and migrates overflow events that now fit the
    /// wheel horizon. Migration happens before anything is emitted at the
    /// new time, so slot FIFO order stays equal to global emission order.
    fn set_now(&mut self, t: Cycle) {
        // Telemetry boundary crossing. State is constant between event
        // batches, so sampling *before* `now` moves observes exactly the
        // state each crossed boundary lived under (events scheduled at the
        // boundary itself have not been served yet).
        if self.sampler.as_ref().is_some_and(|s| s.due(t)) {
            let mut sampler = self.sampler.take().expect("checked above");
            sampler.advance(t, |out| self.probe(out));
            self.sampler = Some(sampler);
        }
        self.now = t;
        while let Some(Reverse(head)) = self.overflow.peek() {
            if head.t - self.now > self.wheel_mask {
                break;
            }
            let Reverse(ev) = self.overflow.pop().expect("peeked");
            if let Delivery::Wake(rank) = ev.d {
                self.emit_wake(ev.t, rank);
                continue;
            }
            let slot = (ev.t & self.wheel_mask) as usize;
            self.wheel[slot].push(ev.d);
            self.wheel_bits[slot / 64] |= 1u64 << (slot % 64);
            self.wheel_len += 1;
        }
    }

    /// Earliest occupied wheel slot (delivery or wake) at or after `now`,
    /// as an absolute time.
    fn wheel_next_time(&self) -> Option<Cycle> {
        if self.wheel_len == 0 && self.wake_slots == 0 {
            return None;
        }
        let size = self.wheel.len();
        let words = self.wheel_bits.len();
        let start = (self.now & self.wheel_mask) as usize;
        if words == 1 {
            // 64-slot wheel (the default-timing case): rotating the single
            // occupancy word by `start` turns "next occupied slot at or
            // after start, circular" into a plain trailing-zeros count.
            let w = (self.wheel_bits[0] | self.wake_bits[0]).rotate_right(start as u32);
            return Some(self.now + Cycle::from(w.trailing_zeros()));
        }
        let (sw, sb) = (start / 64, start % 64);
        for k in 0..=words {
            let idx = (sw + k) % words;
            let mut word = self.wheel_bits[idx] | self.wake_bits[idx];
            if k == 0 {
                word &= !0u64 << sb; // only slots at or after `start`
            } else if k == words {
                word &= !(!0u64 << sb); // wrapped: only slots before `start`
            }
            if word != 0 {
                let slot = idx * 64 + word.trailing_zeros() as usize;
                let delta = (slot + size - start) & self.wheel_mask as usize;
                return Some(self.now + delta as Cycle);
            }
        }
        unreachable!("events pending but no occupied slot")
    }

    /// Applies every event in the slot for `batch_t`, in emission order.
    /// Events emitted *at* `batch_t` while the batch runs (possible only
    /// with zero-cost timings) land in the same slot and are applied too.
    fn process_batch(&mut self, batch_t: Cycle) {
        let slot = (batch_t & self.wheel_mask) as usize;
        // Wakes first: one OR per word moves the slot's unit mask into
        // `pending` (relative order against deliveries does not matter —
        // both only feed the scheduling pass that follows).
        let wbit = 1u64 << (slot % 64);
        if self.wake_bits[slot / 64] & wbit != 0 {
            self.wake_bits[slot / 64] &= !wbit;
            self.wake_slots -= 1;
            let base = slot * self.wake_words;
            for w in 0..self.wake_words {
                self.pending[w] |= self.wake_wheel[base + w];
                self.wake_wheel[base + w] = 0;
            }
        }
        if !self.wheel[slot].is_empty() {
            let mut batch = std::mem::take(&mut self.wheel[slot]);
            let mut consumed = batch.len();
            for d in batch.drain(..) {
                self.apply(d);
            }
            // Zero-cost timings can emit at `batch_t` while the batch runs;
            // those land in the (now empty) live slot — absorb them too.
            while !self.wheel[slot].is_empty() {
                std::mem::swap(&mut batch, &mut self.wheel[slot]);
                consumed += batch.len();
                for d in batch.drain(..) {
                    self.apply(d);
                }
            }
            self.wheel[slot] = batch;
            self.wheel_len -= consumed;
        }
        self.wheel_bits[slot / 64] &= !(1u64 << (slot % 64));
        self.next_at = self.scan_next();
    }

    /// Marks a unit for polling in the next scheduling pass.
    #[inline]
    fn mark(&mut self, rank: u32) {
        self.pending[(rank / 64) as usize] |= 1u64 << (rank % 64);
    }

    /// First pending unit with rank `from` or higher.
    fn next_pending(&self, from: u32) -> Option<u32> {
        let words = self.pending.len();
        let mut w = (from / 64) as usize;
        if w >= words {
            return None;
        }
        let mut word = self.pending[w] & (!0u64 << (from % 64));
        loop {
            if word != 0 {
                return Some(w as u32 * 64 + word.trailing_zeros());
            }
            w += 1;
            if w >= words {
                return None;
            }
            word = self.pending[w];
        }
    }

    /// One scheduling pass: polls every pending unit once, in canonical
    /// rank order (GW-fin, GW-new, TRS 0.., DCT-fin/DCT-new pairs, ARB,
    /// TS — the same order the old full scan used). Units marked during
    /// the pass at a *later* rank are polled in this pass, exactly like a
    /// single scan; marks for earlier ranks stay pending for the next
    /// batch, again matching the scan.
    fn schedule_pass(&mut self) {
        let mut cursor = 0u32;
        while let Some(rank) = self.next_pending(cursor) {
            self.pending[(rank / 64) as usize] &= !(1u64 << (rank % 64));
            cursor = rank + 1;
            self.poll(rank);
        }
    }

    /// Polls the unit with the given rank.
    fn poll(&mut self, rank: u32) {
        match rank {
            Self::RANK_GW_FIN => self.try_gw_fin(),
            Self::RANK_GW_NEW => self.try_gw_new(),
            r if r < self.rank_dct_fin(0) => self.try_trs((r - 2) as usize),
            r if r < self.rank_arb() => {
                let off = r - self.rank_dct_fin(0);
                let j = (off / 2) as usize;
                if off.is_multiple_of(2) {
                    self.try_dct_fin(j);
                } else {
                    self.try_dct_new(j);
                }
            }
            r if r == self.rank_arb() => self.try_arb(),
            _ => self.try_ts(),
        }
    }

    #[inline]
    fn apply(&mut self, d: Delivery) {
        match d {
            // A non-`Finished` TRS message touches only the TRS's own TM
            // entries, so an idle TRS with an empty queue serves it straight
            // from the batch. `Finished` frees a TM slot the Gateway polls
            // for, and the Gateway's poll precedes the TRS's in the pass
            // order — serving it early would let the GW see the space one
            // batch sooner, so it takes the queue path.
            Delivery::Trs(i, m) => {
                let i = i as usize;
                // Latch the delivery cycle of slot-addressed inputs: the
                // observation start of the wake-to-ready histogram.
                match m {
                    TrsMsg::NewTask { slot, .. }
                    | TrsMsg::Resolve { slot, .. }
                    | TrsMsg::Wake { slot, .. } => {
                        let key = self.slot_key(slot);
                        self.slot_in_at[key] = self.now;
                    }
                    TrsMsg::Finished { .. } => {}
                }
                if !matches!(m, TrsMsg::Finished { .. })
                    && self.now >= self.trs_busy[i]
                    && self.trs_q[i].is_empty()
                {
                    self.serve_trs(i, m);
                } else {
                    self.trs_q[i].push(m);
                    let r = self.rank_trs(i);
                    self.mark(r);
                }
            }
            // New dependences must observe the fin-before-new pass order on
            // the shared DM/VM, so they always take the queue path.
            Delivery::DctNew(j, m) => {
                self.dct_new_q[j as usize].push(m);
                let r = self.rank_dct_new(j as usize);
                self.mark(r);
            }
            // The finish port's resource releases are visible to the same
            // DCT's new-dependence poll in this batch's pass either way
            // (fin precedes new in the pass order), so direct service is
            // cycle-identical.
            Delivery::DctFin(j, m) => {
                let j = j as usize;
                if self.now >= self.dct_fin_busy[j] && self.dct_fin_q[j].is_empty() {
                    self.serve_dct_fin(j, m);
                } else {
                    self.dct_fin_q[j].push(m);
                    let r = self.rank_dct_fin(j);
                    self.mark(r);
                }
            }
            // ARB and TS serve only their own state (no shared resources,
            // no cross-unit marks), so an idle unit with an empty queue
            // serves the message straight from the batch — the scheduling
            // pass would do exactly this at the same cycle, minus the
            // queue round-trip.
            Delivery::Arb(m) => {
                if self.now >= self.arb_busy && self.arb_q.is_empty() {
                    self.serve_arb(m);
                } else {
                    self.arb_q.push(m);
                    let r = self.rank_arb();
                    self.mark(r);
                }
            }
            Delivery::Ts(task, slot) => {
                if self.now >= self.ts_busy && self.ts_q.is_empty() {
                    self.serve_ts(task, slot);
                } else {
                    self.ts_q.push((task, slot));
                    let r = self.rank_ts();
                    self.mark(r);
                }
            }
            Delivery::ReadyOut(rt) => {
                if let Some(p) = &mut self.spans {
                    p.log
                        .record(SpanKind::Ready, rt.ready_at, p.shard, rt.task.raw(), 0);
                }
                self.ready_buf.push_back(rt);
                self.stats.peak_ready = self.stats.peak_ready.max(self.ready_buf.len());
            }
            Delivery::Wake(rank) => self.mark(rank),
        }
    }

    fn try_gw_new(&mut self) {
        if self.now < self.gw_new_busy {
            return;
        }
        let wire = self.cfg.timing.wire;
        match &mut self.gw_state {
            GwState::Idle => {
                let Some(front) = self.ext_new.front() else {
                    return;
                };
                // N2: find a free TRS slot, round-robin over instances.
                let n = self.trs.len();
                let mut chosen = None;
                for k in 0..n {
                    let i = (self.rr_trs + k) % n;
                    if self.trs[i].tm.has_space() {
                        chosen = Some(i);
                        break;
                    }
                }
                let Some(i) = chosen else {
                    // "If there is no free slot, GW does not process the
                    // new task" (paper, Section III-B). A TM release will
                    // re-mark this port (see `try_trs`).
                    if !self.gw_blocked_counted {
                        self.stats.tm_stalls += 1;
                        self.gw_blocked_counted = true;
                        self.gw_blocked_at = self.now;
                    }
                    return;
                };
                if self.gw_blocked_counted {
                    self.stats.gw_wait_tm += self.now - self.gw_blocked_at;
                }
                self.gw_blocked_counted = false;
                self.rr_trs = (i + 1) % n;
                let num_deps = front.deps.len() as u8;
                let entry = self.trs[i]
                    .tm
                    .alloc(front.task, num_deps)
                    .expect("has_space checked");
                let req = self.ext_new.pop_front().expect("front checked");
                let slot = SlotRef::new(i as u8, entry);
                self.stats.tasks_submitted += 1;
                self.in_flight += 1;
                let done = self.now + self.cfg.timing.gw_task;
                self.stats.busy_gw += self.cfg.timing.gw_task;
                self.gw_new_busy = done;
                if let Some(p) = &mut self.spans {
                    let key = slot.trs as usize * self.cfg.tm_entries + slot.entry as usize;
                    p.slot_task[key] = req.task.raw();
                    p.slot_left[key] = num_deps;
                    if num_deps == 0 {
                        // No dependences to route: registration completes
                        // with the Gateway's accept service itself.
                        p.log
                            .record(SpanKind::DepsRegistered, done, p.shard, req.task.raw(), 0);
                    }
                }
                self.emit(
                    done + wire,
                    Delivery::Trs(
                        slot.trs,
                        TrsMsg::NewTask {
                            slot,
                            task: req.task,
                            num_deps,
                        },
                    ),
                );
                self.emit_wake(done, Self::RANK_GW_NEW);
                if !req.deps.is_empty() {
                    self.gw_state = GwState::Dispatching {
                        deps: req.deps,
                        slot,
                        next: 0,
                    };
                }
            }
            GwState::Dispatching { deps, slot, next } => {
                let dep = deps[*next];
                let dep_idx = *next as u8;
                let slot = *slot;
                *next += 1;
                let last = *next == deps.len();
                if last {
                    self.gw_state = GwState::Idle;
                }
                let j = dct_for_addr(dep.addr, self.dct.len());
                let done = self.now + self.cfg.timing.gw_dep;
                self.stats.busy_gw += self.cfg.timing.gw_dep;
                self.gw_new_busy = done;
                self.emit(
                    done + wire,
                    Delivery::DctNew(
                        j,
                        NewDepMsg {
                            slot,
                            dep_idx,
                            dep,
                            conflict_counted: false,
                            vm_stall_counted: false,
                        },
                    ),
                );
                self.emit_wake(done, Self::RANK_GW_NEW);
            }
        }
    }

    fn try_gw_fin(&mut self) {
        if self.now < self.gw_fin_busy {
            return;
        }
        let Some(fin) = self.ext_fin.pop_front() else {
            return;
        };
        let done = self.now + self.cfg.timing.gw_fin;
        self.stats.busy_gw += self.cfg.timing.gw_fin;
        self.gw_fin_busy = done;
        self.emit(
            done + self.cfg.timing.wire,
            Delivery::Trs(fin.slot.trs, TrsMsg::Finished { slot: fin.slot }),
        );
        self.emit_wake(done, Self::RANK_GW_FIN);
    }

    fn try_trs(&mut self, i: usize) {
        if self.now < self.trs_busy[i] {
            return;
        }
        let Some(msg) = self.trs_q[i].pop() else {
            return;
        };
        self.serve_trs(i, msg);
    }

    fn serve_trs(&mut self, i: usize, msg: TrsMsg) {
        if matches!(msg, TrsMsg::Finished { .. }) {
            self.in_flight -= 1;
            self.stats.tasks_completed += 1;
            // The freed TM slot can unblock a Gateway stalled on capacity;
            // the GW's rank precedes ours, so it is re-polled at the next
            // batch — exactly when the old full scan would retry it.
            self.mark(Self::RANK_GW_NEW);
        }
        let mut out = std::mem::take(&mut self.scratch_trs);
        let cost = self.trs[i].handle(msg, &self.cfg.timing, &mut out);
        let done = self.now + cost;
        self.stats.busy_trs += cost;
        self.trs_busy[i] = done;
        let wire = self.cfg.timing.wire;
        for e in out.drain(..) {
            match e {
                TrsEmit::ReadyToTs { task, slot } => {
                    // Wake-to-ready latency: from the delivery of the input
                    // that readied the slot to this service completing
                    // (queueing at the TRS included).
                    let lat = done - self.slot_in_at[self.slot_key(slot)];
                    self.stats.trs_wake_hist[hist_bucket(&TRS_WAKE_BOUNDS, lat)] += 1;
                    if let Some(p) = &mut self.spans {
                        p.log
                            .record(SpanKind::LastDepReleased, done, p.shard, task.raw(), 0);
                    }
                    self.emit(done + wire, Delivery::Ts(task, slot));
                }
                TrsEmit::DepFinished { dct, msg } => {
                    self.emit(done + wire, Delivery::Arb(ArbMsg::ToDctFin(dct, msg)));
                }
                TrsEmit::ChainWake { trs, slot, vm } => {
                    self.emit(
                        done + wire,
                        Delivery::Arb(ArbMsg::ToTrs(trs, TrsMsg::Wake { slot, vm })),
                    );
                }
            }
        }
        self.scratch_trs = out;
        let rank = self.rank_trs(i);
        self.emit_wake(done, rank);
    }

    fn try_dct_new(&mut self, j: usize) {
        if self.now < self.dct_new_busy[j] {
            return;
        }
        let Some(front) = self.dct_new_q[j].front() else {
            return;
        };
        let front = *front;
        let mut out = std::mem::take(&mut self.scratch_dct);
        match self.dct[j].handle_new(&front, &self.cfg.timing, &mut out) {
            Ok(cost) => {
                self.dct_new_q[j].pop();
                // Charge the blocked-on-whom wait now that the head went
                // through (the `*_counted` flags mark the first block; the
                // latch below records when it was observed).
                if front.conflict_counted {
                    self.stats.dct_wait_dm += self.now - self.dct_dm_blocked_at[j];
                }
                if front.vm_stall_counted {
                    self.stats.dct_wait_vm += self.now - self.dct_vm_blocked_at[j];
                }
                let done = self.now + cost;
                self.stats.busy_dct += cost;
                self.dct_new_busy[j] = done;
                if let Some(p) = &mut self.spans {
                    let key =
                        front.slot.trs as usize * self.cfg.tm_entries + front.slot.entry as usize;
                    p.slot_left[key] -= 1;
                    if p.slot_left[key] == 0 {
                        let task = p.slot_task[key];
                        p.log
                            .record(SpanKind::DepsRegistered, done, p.shard, task, 0);
                    }
                }
                let wire = self.cfg.timing.wire;
                for e in out.drain(..) {
                    self.emit(done + wire, Delivery::Arb(ArbMsg::ToTrs(e.trs, e.msg)));
                }
                let rank = self.rank_dct_new(j);
                self.emit_wake(done, rank);
            }
            Err(blocked) => {
                // Head-of-line stall: the dependence stays queued; count the
                // event once. It is retried when this DCT's finish port
                // frees resources (see `try_dct_fin`).
                let head = self.dct_new_q[j].front_mut().expect("front checked");
                match blocked {
                    DctBlocked::DmConflict if !head.conflict_counted => {
                        head.conflict_counted = true;
                        self.dct[j].dm.count_conflict();
                        self.dct_dm_blocked_at[j] = self.now;
                    }
                    DctBlocked::VmFull if !head.vm_stall_counted => {
                        head.vm_stall_counted = true;
                        self.dct[j].vm.count_stall();
                        self.dct_vm_blocked_at[j] = self.now;
                    }
                    _ => {}
                }
            }
        }
        self.scratch_dct = out;
    }

    fn try_dct_fin(&mut self, j: usize) {
        if self.now < self.dct_fin_busy[j] {
            return;
        }
        let Some(msg) = self.dct_fin_q[j].pop() else {
            return;
        };
        self.serve_dct_fin(j, msg);
    }

    fn serve_dct_fin(&mut self, j: usize, msg: DepFinMsg) {
        let mut out = std::mem::take(&mut self.scratch_dct);
        let cost = self.dct[j].handle_fin(msg, &self.cfg.timing, &mut out);
        let done = self.now + cost;
        self.stats.busy_dct += cost;
        self.dct_fin_busy[j] = done;
        let wire = self.cfg.timing.wire;
        for e in out.drain(..) {
            self.emit(done + wire, Delivery::Arb(ArbMsg::ToTrs(e.trs, e.msg)));
        }
        self.scratch_dct = out;
        // Released DM/VM entries can unblock the head of our new-dependence
        // queue; its rank follows ours, so it is retried in this same pass
        // — the old scan's fin-before-new order.
        let r_new = self.rank_dct_new(j);
        self.mark(r_new);
        let rank = self.rank_dct_fin(j);
        self.emit_wake(done, rank);
    }

    fn try_arb(&mut self) {
        if self.now < self.arb_busy {
            return;
        }
        let Some(msg) = self.arb_q.pop() else {
            return;
        };
        self.serve_arb(msg);
    }

    fn serve_arb(&mut self, msg: ArbMsg) {
        let done = self.now + self.cfg.timing.arb;
        self.stats.busy_arb += self.cfg.timing.arb;
        self.arb_busy = done;
        let wire = self.cfg.timing.wire;
        match msg {
            ArbMsg::ToTrs(i, m) => self.emit(done + wire, Delivery::Trs(i, m)),
            ArbMsg::ToDctFin(j, m) => self.emit(done + wire, Delivery::DctFin(j, m)),
        }
        let rank = self.rank_arb();
        self.emit_wake(done, rank);
    }

    fn try_ts(&mut self) {
        if self.now < self.ts_busy {
            return;
        }
        let Some((task, slot)) = self.ts_q.pop() else {
            return;
        };
        self.serve_ts(task, slot);
    }

    fn serve_ts(&mut self, task: TaskId, slot: SlotRef) {
        let done = self.now + self.cfg.timing.ts;
        self.stats.busy_ts += self.cfg.timing.ts;
        self.ts_busy = done;
        let at = done + self.cfg.timing.wire;
        self.emit(
            at,
            Delivery::ReadyOut(ReadyTask {
                task,
                slot,
                ready_at: at,
            }),
        );
        let rank = self.rank_ts();
        self.emit_wake(done, rank);
    }
}

// ---------------------------------------------------------------- snapshots

/// A delivery: one variant code, then that variant's fields.
fn enc_delivery(e: &mut Enc, d: &Delivery) {
    use crate::snap::*;
    match d {
        Delivery::Trs(i, m) => {
            e.u64(0).u64(*i as u64);
            enc_trs_msg(e, m);
        }
        Delivery::DctNew(i, m) => {
            e.u64(1).u64(*i as u64);
            enc_new_dep(e, m);
        }
        Delivery::DctFin(i, m) => {
            e.u64(2).u64(*i as u64);
            enc_dep_fin(e, *m);
        }
        Delivery::Arb(m) => {
            e.u64(3);
            enc_arb_msg(e, m);
        }
        Delivery::Ts(task, slot) => {
            e.u64(4).u32(task.raw()).u64(slot_pack(*slot));
        }
        Delivery::ReadyOut(r) => {
            e.u64(5)
                .u32(r.task.raw())
                .u64(slot_pack(r.slot))
                .u64(r.ready_at);
        }
        Delivery::Wake(rank) => {
            e.u64(6).u32(*rank);
        }
    }
}

fn dec_delivery(d: &mut Dec<'_>) -> Result<Delivery, SnapError> {
    use crate::snap::*;
    Ok(match d.u64()? {
        0 => {
            let i = d.u64()? as u8;
            Delivery::Trs(i, dec_trs_msg(d)?)
        }
        1 => {
            let i = d.u64()? as u8;
            Delivery::DctNew(i, dec_new_dep(d)?)
        }
        2 => {
            let i = d.u64()? as u8;
            Delivery::DctFin(i, dec_dep_fin(d)?)
        }
        3 => Delivery::Arb(dec_arb_msg(d)?),
        4 => Delivery::Ts(TaskId::new(d.u32()?), slot_unpack(d.u64()?)),
        5 => Delivery::ReadyOut(ReadyTask {
            task: TaskId::new(d.u32()?),
            slot: slot_unpack(d.u64()?),
            ready_at: d.u64()?,
        }),
        6 => Delivery::Wake(d.u32()?),
        other => return Err(SnapError::new(format!("unknown delivery kind {other}"))),
    })
}

fn enc_new_req(e: &mut Enc, r: &NewTaskReq) {
    e.u32(r.task.raw()).seq(r.deps.iter(), |e, dep| {
        crate::snap::enc_dep(e, *dep);
    });
}

fn dec_new_req(d: &mut Dec<'_>) -> Result<NewTaskReq, SnapError> {
    let task = TaskId::new(d.u32()?);
    let deps = d.seq(crate::snap::dec_dep)?;
    Ok(NewTaskReq {
        task,
        deps: deps.into(),
    })
}

impl PicosSystem {
    /// Serializes the complete dynamic state: the clock, the timing wheel
    /// (events keyed by absolute time), the wake wheel, the overflow heap,
    /// every queue, every unit table, the Gateway, telemetry and the
    /// blocked-at latches. Config-derived structure is *not* recorded —
    /// [`PicosSystem::load_state`] overwrites an identically configured
    /// system, guarded by a config fingerprint.
    pub fn save_state(&self) -> Value {
        let mut e = Enc::new();
        e.u64(crate::snap::config_fingerprint(&self.cfg))
            .u64(self.now);
        // Timing wheel: occupied slots as (absolute time, deliveries).
        let size = self.wheel.len() as Cycle;
        let abs = |slot: usize| -> Cycle {
            self.now + ((slot as Cycle + size - (self.now & self.wheel_mask)) & self.wheel_mask)
        };
        let occupied = self
            .wheel
            .iter()
            .enumerate()
            .filter(|(_, evs)| !evs.is_empty());
        e.seq(occupied, |e, (slot, evs)| {
            e.u64(abs(slot)).seq(evs, enc_delivery);
        });
        let wakes = (0..self.wheel.len()).filter(|&slot| {
            self.wake_wheel[slot * self.wake_words..(slot + 1) * self.wake_words]
                .iter()
                .any(|&w| w != 0)
        });
        e.seq(wakes, |e, slot| {
            e.u64(abs(slot)).u64s(
                self.wake_wheel[slot * self.wake_words..(slot + 1) * self.wake_words]
                    .iter()
                    .copied(),
            );
        });
        let mut overflow: Vec<&Ev> = self.overflow.iter().map(|Reverse(ev)| ev).collect();
        overflow.sort_by_key(|ev| (ev.t, ev.seq));
        e.seq(overflow, |e, ev| {
            e.u64(ev.t).u64(ev.seq);
            enc_delivery(e, &ev.d);
        });
        e.u64(self.overflow_seq)
            .u64(self.next_at)
            .u64s(self.pending.iter().copied())
            .seq(&self.ext_new, enc_new_req)
            .seq(&self.ext_fin, |e, f| {
                e.u32(f.task.raw()).u64(crate::snap::slot_pack(f.slot));
            })
            .seq(&self.ready_buf, |e, r| {
                e.u32(r.task.raw())
                    .u64(crate::snap::slot_pack(r.slot))
                    .u64(r.ready_at);
            })
            .seq(&self.trs_q, |e, q| {
                e.seq(&q.buf[q.head..], crate::snap::enc_trs_msg);
            })
            .seq(&self.dct_new_q, |e, q| {
                e.seq(&q.buf[q.head..], crate::snap::enc_new_dep);
            })
            .seq(&self.dct_fin_q, |e, q| {
                e.seq(&q.buf[q.head..], |e, m| crate::snap::enc_dep_fin(e, *m));
            })
            .seq(&self.arb_q.buf[self.arb_q.head..], |e, m| {
                crate::snap::enc_arb_msg(e, m);
            })
            .seq(&self.ts_q.buf[self.ts_q.head..], |e, (task, slot)| {
                e.u32(task.raw()).u64(crate::snap::slot_pack(*slot));
            })
            .val(Value::Arr(self.trs.iter().map(Trs::save_state).collect()))
            .val(Value::Arr(self.dct.iter().map(Dct::save_state).collect()));
        let mut gw = Enc::new();
        match &self.gw_state {
            GwState::Idle => {
                gw.u64(0);
            }
            GwState::Dispatching { deps, slot, next } => {
                gw.u64(1)
                    .seq(deps.iter(), |e, dep| crate::snap::enc_dep(e, *dep))
                    .u64(crate::snap::slot_pack(*slot))
                    .usize(*next);
            }
        }
        e.val(gw.done())
            .bool(self.gw_blocked_counted)
            .usize(self.rr_trs)
            .u64(self.gw_new_busy)
            .u64(self.gw_fin_busy)
            .u64s(self.trs_busy.iter().copied())
            .u64s(self.dct_new_busy.iter().copied())
            .u64s(self.dct_fin_busy.iter().copied())
            .u64(self.arb_busy)
            .u64(self.ts_busy)
            .usize(self.in_flight)
            .val(self.stats.save_state())
            .val(match &self.sampler {
                Some(s) => s.save_state(),
                None => Value::Null,
            });
        let spans = match &self.spans {
            Some(p) => {
                let mut se = Enc::new();
                se.val(p.log.save_state())
                    .u64(p.shard as u64)
                    .u32s(p.slot_task.iter().copied())
                    .u64s(p.slot_left.iter().map(|&b| b as u64));
                se.done()
            }
            None => Value::Null,
        };
        e.val(spans)
            .u64(self.gw_blocked_at)
            .u64s(self.dct_dm_blocked_at.iter().copied())
            .u64s(self.dct_vm_blocked_at.iter().copied())
            .u64s(self.slot_in_at.iter().copied());
        e.done()
    }

    /// Overwrites the dynamic state of an identically configured system
    /// with the state recorded by [`PicosSystem::save_state`]. Continuing
    /// from the restored state is bit-exact with continuing the original.
    ///
    /// # Errors
    ///
    /// Returns [`SnapError`] on a malformed record or when the snapshot
    /// was taken under a different configuration.
    pub fn load_state(&mut self, v: &Value) -> Result<(), SnapError> {
        use picos_trace::snap::guard;
        let mut d = Dec::new(v, "picos")?;
        guard(
            "picos config",
            d.u64()?,
            crate::snap::config_fingerprint(&self.cfg),
        )?;
        let now = d.u64()?;
        let wheel = d.seq(|d| {
            let t = d.u64()?;
            let evs = d.seq(dec_delivery)?;
            Ok((t, evs))
        })?;
        let wakes = d.seq(|d| Ok((d.u64()?, d.u64s()?)))?;
        let overflow = d.seq(|d| {
            let t = d.u64()?;
            let seq = d.u64()?;
            let dv = dec_delivery(d)?;
            Ok(Ev { t, seq, d: dv })
        })?;
        let overflow_seq = d.u64()?;
        let next_at = d.u64()?;
        let pending = d.u64s()?;
        let ext_new = d.seq(dec_new_req)?;
        let ext_fin = d.seq(|d| {
            Ok(FinishedReq {
                task: TaskId::new(d.u32()?),
                slot: crate::snap::slot_unpack(d.u64()?),
            })
        })?;
        let ready_buf = d.seq(|d| {
            Ok(ReadyTask {
                task: TaskId::new(d.u32()?),
                slot: crate::snap::slot_unpack(d.u64()?),
                ready_at: d.u64()?,
            })
        })?;
        let trs_q = d.seq(|d| d.seq(crate::snap::dec_trs_msg))?;
        let dct_new_q = d.seq(|d| d.seq(crate::snap::dec_new_dep))?;
        let dct_fin_q = d.seq(|d| d.seq(crate::snap::dec_dep_fin))?;
        let arb_q = d.seq(crate::snap::dec_arb_msg)?;
        let ts_q = d.seq(|d| Ok((TaskId::new(d.u32()?), crate::snap::slot_unpack(d.u64()?))))?;
        let trs_states = d
            .val()?
            .as_array()
            .ok_or_else(|| SnapError::new("picos: TRS table is not an array"))?;
        let dct_states = d
            .val()?
            .as_array()
            .ok_or_else(|| SnapError::new("picos: DCT table is not an array"))?;
        guard(
            "picos num_trs",
            trs_states.len() as u64,
            self.trs.len() as u64,
        )?;
        guard(
            "picos num_dct",
            dct_states.len() as u64,
            self.dct.len() as u64,
        )?;
        let gw_v = d.val()?;
        let mut gd = Dec::new(gw_v, "gw")?;
        let gw_state = match gd.u64()? {
            0 => GwState::Idle,
            1 => {
                let deps = gd.seq(crate::snap::dec_dep)?;
                GwState::Dispatching {
                    deps: deps.into(),
                    slot: crate::snap::slot_unpack(gd.u64()?),
                    next: gd.usize()?,
                }
            }
            other => return Err(SnapError::new(format!("unknown GW state {other}"))),
        };
        let gw_blocked_counted = d.bool()?;
        let rr_trs = d.usize()?;
        let gw_new_busy = d.u64()?;
        let gw_fin_busy = d.u64()?;
        let trs_busy = d.u64s()?;
        let dct_new_busy = d.u64s()?;
        let dct_fin_busy = d.u64s()?;
        let arb_busy = d.u64()?;
        let ts_busy = d.u64()?;
        let in_flight = d.usize()?;
        let stats = Stats::load_state(d.val()?)?;
        let sampler = match d.val()? {
            Value::Null => None,
            v => Some(WindowSampler::load_state(v)?),
        };
        let spans = match d.val()? {
            Value::Null => None,
            v => {
                let mut sd = Dec::new(v, "span probe")?;
                let log = SpanLog::load_state(sd.val()?)?;
                let shard = sd.u64()? as u16;
                let slot_task = sd.u32s()?;
                let slot_left: Vec<u8> = sd.u64s()?.into_iter().map(|v| v as u8).collect();
                let slots = self.cfg.num_trs * self.cfg.tm_entries;
                guard("span slots", slot_task.len() as u64, slots as u64)?;
                Some(SpanProbe {
                    log,
                    shard,
                    slot_task,
                    slot_left,
                })
            }
        };
        let gw_blocked_at = d.u64()?;
        let dct_dm_blocked_at = d.u64s()?;
        let dct_vm_blocked_at = d.u64s()?;
        let slot_in_at = d.u64s()?;
        if pending.len() != self.pending.len()
            || trs_busy.len() != self.trs_busy.len()
            || dct_new_busy.len() != self.dct_new_busy.len()
            || dct_fin_busy.len() != self.dct_fin_busy.len()
            || dct_dm_blocked_at.len() != self.dct_dm_blocked_at.len()
            || dct_vm_blocked_at.len() != self.dct_vm_blocked_at.len()
            || slot_in_at.len() != self.slot_in_at.len()
            || trs_q.len() != self.trs_q.len()
            || dct_new_q.len() != self.dct_new_q.len()
            || dct_fin_q.len() != self.dct_fin_q.len()
        {
            return Err(SnapError::new("picos: per-unit table shape mismatch"));
        }
        // All sections decoded — overwrite.
        self.now = now;
        for slot in &mut self.wheel {
            slot.clear();
        }
        self.wheel_bits.iter_mut().for_each(|w| *w = 0);
        self.wheel_len = 0;
        for (t, evs) in wheel {
            if t < now || t - now > self.wheel_mask {
                return Err(SnapError::new("picos: wheel event outside horizon"));
            }
            let slot = (t & self.wheel_mask) as usize;
            self.wheel_bits[slot / 64] |= 1u64 << (slot % 64);
            self.wheel_len += evs.len();
            self.wheel[slot] = evs;
        }
        self.wake_wheel.iter_mut().for_each(|w| *w = 0);
        self.wake_bits.iter_mut().for_each(|w| *w = 0);
        self.wake_slots = 0;
        for (t, words) in wakes {
            if t < now || t - now > self.wheel_mask || words.len() != self.wake_words {
                return Err(SnapError::new("picos: wake slot outside horizon"));
            }
            let slot = (t & self.wheel_mask) as usize;
            self.wake_bits[slot / 64] |= 1u64 << (slot % 64);
            self.wake_slots += 1;
            self.wake_wheel[slot * self.wake_words..(slot + 1) * self.wake_words]
                .copy_from_slice(&words);
        }
        self.overflow = overflow.into_iter().map(Reverse).collect();
        self.overflow_seq = overflow_seq;
        self.next_at = next_at;
        self.pending = pending;
        self.ext_new = ext_new.into();
        self.ext_fin = ext_fin.into();
        self.ready_buf = ready_buf.into();
        fn fifo<T: Copy>(buf: Vec<T>) -> Fifo<T> {
            Fifo { buf, head: 0 }
        }
        self.trs_q = trs_q.into_iter().map(fifo).collect();
        self.dct_new_q = dct_new_q.into_iter().map(fifo).collect();
        self.dct_fin_q = dct_fin_q.into_iter().map(fifo).collect();
        self.arb_q = Fifo {
            buf: arb_q,
            head: 0,
        };
        self.ts_q = Fifo { buf: ts_q, head: 0 };
        for (t, v) in self.trs.iter_mut().zip(trs_states) {
            t.load_state(v)?;
        }
        for (dc, v) in self.dct.iter_mut().zip(dct_states) {
            dc.load_state(v)?;
        }
        self.gw_state = gw_state;
        self.gw_blocked_counted = gw_blocked_counted;
        self.rr_trs = rr_trs;
        self.gw_new_busy = gw_new_busy;
        self.gw_fin_busy = gw_fin_busy;
        self.trs_busy = trs_busy;
        self.dct_new_busy = dct_new_busy;
        self.dct_fin_busy = dct_fin_busy;
        self.arb_busy = arb_busy;
        self.ts_busy = ts_busy;
        self.in_flight = in_flight;
        self.stats = stats;
        self.sampler = sampler;
        self.spans = spans;
        self.gw_blocked_at = gw_blocked_at;
        self.dct_dm_blocked_at = dct_dm_blocked_at;
        self.dct_vm_blocked_at = dct_vm_blocked_at;
        self.slot_in_at = slot_in_at;
        Ok(())
    }
}

/// Errors surfaced by the engine's convenience runners.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineError {
    /// The run exceeded its cycle budget.
    Watchdog {
        /// Time at which the watchdog fired.
        at: Cycle,
    },
    /// No event can make progress but work remains.
    Deadlock {
        /// Time at which the deadlock was detected.
        at: Cycle,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Watchdog { at } => write!(f, "watchdog expired at cycle {at}"),
            EngineError::Deadlock { at } => write!(f, "engine deadlocked at cycle {at}"),
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DmDesign, PicosConfig};
    use picos_trace::{gen, TaskGraph, Trace};

    /// Runs a trace through the engine with instant workers (tasks finish
    /// the moment they pop out ready) and returns the execution order.
    fn run_instant(cfg: PicosConfig, trace: &Trace) -> (Vec<u32>, PicosSystem) {
        let mut sys = PicosSystem::new(cfg);
        sys.submit_all(trace);
        let mut order = Vec::new();
        sys.run_to_quiescence(200_000_000, |r| {
            order.push(r.task.raw());
            Some(FinishedReq {
                task: r.task,
                slot: r.slot,
            })
        })
        .expect("run must complete");
        (order, sys)
    }

    /// Advances the engine event by event until no internal event remains,
    /// without acknowledging any ready task. Shared shape of the old
    /// "advance until quiescent with a guard counter" test loops.
    fn drain_events(sys: &mut PicosSystem) {
        sys.advance_to(sys.now()); // absorb externally pushed work
        let mut guard = 0u32;
        while let Some(t) = sys.next_event_time() {
            sys.advance_to(t);
            guard += 1;
            assert!(guard < 1_000_000, "engine failed to drain");
        }
    }

    #[test]
    fn single_independent_task_flows_through() {
        let mut tr = Trace::new("one");
        tr.push(picos_trace::KernelClass::GENERIC, [], 1);
        let (order, sys) = run_instant(PicosConfig::balanced(), &tr);
        assert_eq!(order, vec![0]);
        let s = sys.stats();
        assert_eq!(s.tasks_submitted, 1);
        assert_eq!(s.tasks_completed, 1);
        assert_eq!(sys.in_flight(), 0);
        assert!(sys.is_quiescent());
    }

    #[test]
    fn chain_executes_in_order() {
        let tr = gen::synthetic(gen::Case::Case4);
        let (order, _) = run_instant(PicosConfig::balanced(), &tr);
        assert_eq!(order.len(), 100);
        let expected: Vec<u32> = (0..100).collect();
        assert_eq!(order, expected, "inout chain must serialize");
    }

    #[test]
    fn all_synthetic_cases_complete_topologically() {
        for c in gen::Case::ALL {
            let tr = gen::synthetic(c);
            let g = TaskGraph::build(&tr);
            for dm in DmDesign::ALL {
                let (order, sys) = run_instant(PicosConfig::baseline(dm), &tr);
                assert_eq!(order.len(), tr.len(), "{c:?} {dm}");
                assert!(g.is_topological(&order), "{c:?} {dm} order illegal");
                assert_eq!(sys.stats().tasks_completed as usize, tr.len());
            }
        }
    }

    #[test]
    fn consumer_chain_wakes_from_last() {
        // One producer, three consumers, then run: consumers must pop out
        // in reverse creation order (paper, Figure 5).
        let mut tr = Trace::new("fan");
        let k = picos_trace::KernelClass::GENERIC;
        tr.push(k, [picos_trace::Dependence::inout(0xA0)], 1);
        for _ in 0..3 {
            tr.push(k, [picos_trace::Dependence::input(0xA0)], 1);
        }
        let mut sys = PicosSystem::new(PicosConfig::balanced());
        sys.submit_all(&tr);
        // The paper's Figure 5 assumes all tasks arrive before the first
        // one finishes: hold the producer's finish until every dependence
        // is registered, then observe the wake order.
        sys.advance_to(5_000);
        let producer = sys.pop_ready().expect("producer ready");
        assert_eq!(producer.task.raw(), 0);
        assert_eq!(sys.ready_len(), 0, "consumers must wait");
        sys.notify_finished(FinishedReq {
            task: producer.task,
            slot: producer.slot,
        });
        let mut ready_order = Vec::new();
        sys.run_to_quiescence(1_000_000, |r| {
            ready_order.push(r.task.raw());
            Some(FinishedReq {
                task: r.task,
                slot: r.slot,
            })
        })
        .unwrap();
        assert_eq!(
            ready_order,
            vec![3, 2, 1],
            "consumers wake from the last backwards"
        );
    }

    #[test]
    fn lifo_policy_reverses_pop_order() {
        // Many independent tasks become ready; LIFO pops the youngest.
        let mut tr = Trace::new("indep");
        let k = picos_trace::KernelClass::GENERIC;
        for _ in 0..10 {
            tr.push(k, [], 1);
        }
        let mut sys = PicosSystem::new(PicosConfig::balanced().with_ts_policy(TsPolicy::Lifo));
        sys.submit_all(&tr);
        // Let everything become ready without executing anything.
        drain_events(&mut sys);
        assert_eq!(sys.ready_len(), 10);
        assert_eq!(sys.peek_ready().unwrap().task.raw(), 9);
        let first = sys.pop_ready().unwrap();
        assert_eq!(first.task.raw(), 9, "LIFO pops youngest");
        assert_eq!(sys.peek_ready().unwrap().task.raw(), 8, "peek follows pop");
        let mut fifo_sys = PicosSystem::new(PicosConfig::balanced());
        fifo_sys.submit_all(&tr);
        drain_events(&mut fifo_sys);
        assert_eq!(fifo_sys.peek_ready().unwrap().task.raw(), 0);
        assert_eq!(
            fifo_sys.pop_ready().unwrap().task.raw(),
            0,
            "FIFO pops oldest"
        );
    }

    #[test]
    fn tm_capacity_backpressures_gateway() {
        // 300 independent tasks but only 256 slots: the GW must stall until
        // finishes free slots; with no finishes delivered the ready buffer
        // holds at most 256.
        let mut tr = Trace::new("many");
        let k = picos_trace::KernelClass::GENERIC;
        for _ in 0..300 {
            tr.push(k, [], 1);
        }
        let mut sys = PicosSystem::new(PicosConfig::balanced());
        sys.submit_all(&tr);
        drain_events(&mut sys);
        assert_eq!(sys.ready_len(), 256);
        assert_eq!(sys.pending_new(), 300 - 256);
        assert!(sys.stats().tm_stalls >= 1);
        // Finishing tasks lets the rest through.
        let mut done = 0;
        sys.run_to_quiescence(10_000_000, |r| {
            done += 1;
            Some(FinishedReq {
                task: r.task,
                slot: r.slot,
            })
        })
        .unwrap();
        assert_eq!(done, 300);
    }

    #[test]
    fn multi_instance_configuration_completes() {
        let tr = gen::cholesky(gen::CholeskyConfig::paper(256));
        let g = TaskGraph::build(&tr);
        let (order, sys) = run_instant(PicosConfig::future(2, DmDesign::PearsonEightWay), &tr);
        assert_eq!(order.len(), tr.len());
        assert!(g.is_topological(&order));
        assert!(sys.is_quiescent());
    }

    #[test]
    fn direct_hash_counts_conflicts_on_clustered_addresses() {
        // Twelve producer tasks on addresses that cluster onto one DM set
        // under direct indexing (stride 64). Held in flight together they
        // need 12 live entries: the 8-way direct DM must stall 4 of them,
        // Pearson spreads them and stalls none.
        let mut tr = Trace::new("clustered");
        let k = picos_trace::KernelClass::GENERIC;
        for i in 0..12u64 {
            tr.push(k, [picos_trace::Dependence::output(0x9000 + i * 0x1000)], 1);
        }
        let run = |dm: DmDesign| {
            let mut sys = PicosSystem::new(PicosConfig::baseline(dm));
            sys.submit_all(&tr);
            // Hold every finish until nothing more can happen, pinning all
            // insertable entries live at once.
            drain_events(&mut sys);
            let mut pending = Vec::new();
            while let Some(r) = sys.pop_ready() {
                pending.push(FinishedReq {
                    task: r.task,
                    slot: r.slot,
                });
            }
            for f in pending {
                sys.notify_finished(f);
            }
            sys.run_to_quiescence(10_000_000, |r| {
                Some(FinishedReq {
                    task: r.task,
                    slot: r.slot,
                })
            })
            .unwrap();
            sys.stats().dm_conflicts
        };
        // Conflicts are counted per head-of-line blocking event: the ninth
        // dependence stalls the DCT once and the ones queued behind it only
        // retry after entries free up, so at least one event must appear.
        let c8 = run(DmDesign::EightWay);
        let cp = run(DmDesign::PearsonEightWay);
        assert!(c8 >= 1, "8-way direct must conflict: {c8}");
        assert_eq!(cp, 0, "pearson must not conflict here");
    }

    #[test]
    fn watchdog_fires_when_finishes_withheld() {
        let mut tr = Trace::new("nofin");
        tr.push(picos_trace::KernelClass::GENERIC, [], 1);
        let mut sys = PicosSystem::new(PicosConfig::balanced());
        sys.submit_all(&tr);
        // Never acknowledge ready tasks: the engine goes quiet with the task
        // in flight; run_to_quiescence must report the deadlock.
        let r = sys.run_to_quiescence(1_000, |_r| None);
        assert!(r.is_err());
    }

    #[test]
    fn deterministic_across_runs() {
        let tr = gen::sparselu(gen::SparseLuConfig::paper(256));
        let (o1, s1) = run_instant(PicosConfig::balanced(), &tr);
        let (o2, s2) = run_instant(PicosConfig::balanced(), &tr);
        assert_eq!(o1, o2);
        assert_eq!(s1.now(), s2.now());
        assert_eq!(s1.stats(), s2.stats());
    }

    #[test]
    fn timeline_is_observation_only_and_sums_exactly() {
        let tr = gen::sparselu(gen::SparseLuConfig::paper(128));
        let (plain_order, plain) = run_instant(PicosConfig::balanced(), &tr);
        let mut sys = PicosSystem::new(PicosConfig::balanced());
        sys.attach_timeline(500);
        sys.submit_all(&tr);
        let mut order = Vec::new();
        sys.run_to_quiescence(200_000_000, |r| {
            order.push(r.task.raw());
            Some(FinishedReq {
                task: r.task,
                slot: r.slot,
            })
        })
        .expect("run must complete");
        // Probes change no cycle: same schedule, same clock, same stats.
        assert_eq!(order, plain_order);
        assert_eq!(sys.now(), plain.now());
        assert_eq!(sys.stats(), plain.stats());
        let tl = sys.take_timeline().expect("sampler attached");
        assert!(sys.take_timeline().is_none(), "sampler detaches once");
        assert!(tl.len() >= 2, "a multi-kilocycle run spans several windows");
        // Delta series reproduce the end-of-run counters exactly.
        let stats = plain.stats();
        let sum = |name: &str| tl.column(name).unwrap().iter().sum::<u64>();
        assert_eq!(sum("busy.gw"), stats.busy_gw);
        assert_eq!(sum("busy.dct"), stats.busy_dct);
        assert_eq!(sum("done.tasks"), stats.tasks_completed);
        assert_eq!(sum("done.deps"), stats.deps_processed);
        // The single-ported Arbiter cannot book much more than one window
        // of busy time per window (bookings land at service start, so one
        // in-progress service may spill over the boundary).
        let arb = tl.series_index("busy.arb").unwrap();
        for i in 0..tl.len() {
            let (s, e, v) = tl.sample(i);
            assert!(v[arb] <= (e - s) + 64, "window [{s},{e}) overfull ARB");
        }
    }

    #[test]
    fn huge_service_times_route_through_overflow() {
        // Timings far beyond the wheel cap exercise the overflow heap; the
        // run must still complete deterministically.
        let mut cfg = PicosConfig::balanced();
        cfg.timing.gw_task = 10_000;
        cfg.timing.dct_dep = 9_000;
        let mut tr = Trace::new("slowunits");
        let k = picos_trace::KernelClass::GENERIC;
        tr.push(k, [picos_trace::Dependence::inout(0xA0)], 1);
        tr.push(k, [picos_trace::Dependence::input(0xA0)], 1);
        let (order, sys) = run_instant(cfg, &tr);
        assert_eq!(order, vec![0, 1]);
        assert!(sys.is_quiescent());
        assert!(sys.now() > 20_000, "service times must be paid");
    }

    /// Drives a system to quiescence recording the execution order; the
    /// continuation half of the restore==continuous checks.
    fn finish_run(sys: &mut PicosSystem) -> Vec<u32> {
        let mut order = Vec::new();
        sys.run_to_quiescence(200_000_000, |r| {
            order.push(r.task.raw());
            Some(FinishedReq {
                task: r.task,
                slot: r.slot,
            })
        })
        .expect("run must complete");
        order
    }

    #[test]
    fn snapshot_restore_equals_continuous() {
        // Save mid-flight at several depths (with telemetry attached: the
        // sampler cursor and span log are state too), restore into a fresh
        // system, and require the continuations to be bit-identical —
        // execution order, clock, stats, timeline and span log.
        let tr = gen::synthetic(gen::Case::Case6);
        for pause in [0u64, 137, 1_003, 20_011] {
            let mut live = PicosSystem::new(PicosConfig::balanced());
            live.attach_timeline(500);
            live.attach_spans(3);
            live.submit_all(&tr);
            live.advance_to(pause);

            let doc = live.save_state();
            // Through the text codec, as the session snapshot does.
            let text = picos_trace::snap::value_to_json(&doc);
            let parsed = picos_trace::snap::value_from_json(&text).unwrap();
            let mut restored = PicosSystem::new(PicosConfig::balanced());
            restored.attach_timeline(500);
            restored.attach_spans(3);
            restored.load_state(&parsed).unwrap();

            let a = finish_run(&mut live);
            let b = finish_run(&mut restored);
            assert_eq!(a, b, "pause={pause}: execution order diverged");
            assert_eq!(live.now(), restored.now(), "pause={pause}");
            assert_eq!(live.stats(), restored.stats(), "pause={pause}");
            assert_eq!(
                live.take_timeline(),
                restored.take_timeline(),
                "pause={pause}"
            );
            assert_eq!(live.take_spans(), restored.take_spans(), "pause={pause}");
        }
    }

    #[test]
    fn fork_is_an_independent_replica() {
        // Clone mid-flight; the fork and the original must continue
        // identically, and driving the fork must not disturb the original.
        let tr = gen::synthetic(gen::Case::Case2);
        let mut sys = PicosSystem::new(PicosConfig::balanced());
        sys.submit_all(&tr);
        sys.advance_to(2_000);
        let mut fork = sys.clone();
        let a = finish_run(&mut fork);
        let before = sys.now();
        let b = finish_run(&mut sys);
        assert_eq!(before, 2_000, "original untouched while fork ran");
        assert_eq!(a, b);
        assert_eq!(fork.stats(), sys.stats());
    }

    #[test]
    fn snapshot_restores_overflow_heap() {
        // Huge timings park events beyond the wheel horizon; a snapshot
        // taken then must carry the overflow heap exactly.
        let mut cfg = PicosConfig::balanced();
        cfg.timing.gw_task = 10_000;
        cfg.timing.dct_dep = 9_000;
        let mut tr = Trace::new("slowsnap");
        let k = picos_trace::KernelClass::GENERIC;
        tr.push(k, [picos_trace::Dependence::inout(0xA0)], 1);
        tr.push(k, [picos_trace::Dependence::input(0xA0)], 1);
        let mut live = PicosSystem::new(cfg.clone());
        live.submit_all(&tr);
        live.advance_to(500); // mid GW service: overflow is populated
        let mut restored = PicosSystem::new(cfg);
        restored.load_state(&live.save_state()).unwrap();
        assert_eq!(finish_run(&mut live), finish_run(&mut restored));
        assert_eq!(live.now(), restored.now());
        assert_eq!(live.stats(), restored.stats());
    }

    #[test]
    fn snapshot_rejects_config_mismatch() {
        let sys = PicosSystem::new(PicosConfig::balanced());
        let doc = sys.save_state();
        let mut other = PicosSystem::new(PicosConfig::baseline(DmDesign::SixteenWay));
        let err = other.load_state(&doc).unwrap_err();
        assert!(err.message.contains("picos config"), "{err}");
    }
}
