//! The discrete-event engine tying the Picos units together.
//!
//! [`PicosSystem`] wires the Gateway, the TRS and DCT instances, the Arbiter
//! and the Task Scheduler with FIFO message queues and advances them in
//! cycle-stamped events. Each unit serves one message at a time with the
//! service times of [`crate::Timing`]; message hand-offs pay a wire latency.
//! This reproduces the paper's asynchronous FIFO-coupled control units
//! (Section III-A) at the fidelity its measurements need: per-unit
//! throughput, pipeline latency, and the stall behaviour of the DM/VM/TM
//! resources.
//!
//! The external interface is the co-processor interface of the paper:
//! [`PicosSystem::submit`] delivers a new task (N1), [`PicosSystem::pop_ready`]
//! retrieves a ready task from the TS (the worker side of N6), and
//! [`PicosSystem::notify_finished`] reports a finished task (F1). Time only
//! advances through [`PicosSystem::advance_to`], so a driver (the HIL crate)
//! can interleave its own event loop.

use crate::config::{PicosConfig, TsPolicy};
use crate::dct::{dct_for_addr, Dct, DctBlocked, DctEmit};
use crate::dm::Dm;
use crate::msg::{
    ArbMsg, DepFinMsg, FinishedReq, NewDepMsg, NewTaskReq, ReadyTask, SlotRef, TrsMsg,
};
use crate::stats::Stats;
use crate::trs::{Trs, TrsEmit};
use crate::vm::Vm;
use crate::Cycle;
use picos_trace::{Dependence, TaskId};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::Arc;

/// Message deliveries and unit wake-ups, ordered by time then sequence.
#[derive(Debug, Clone)]
enum Delivery {
    Trs(u8, TrsMsg),
    DctNew(u8, NewDepMsg),
    DctFin(u8, DepFinMsg),
    Arb(ArbMsg),
    Ts(TaskId, SlotRef),
    ReadyOut(ReadyTask),
    /// A unit finished its service; no payload, just a scheduling trigger.
    Free,
}

#[derive(Debug)]
struct Ev {
    t: Cycle,
    seq: u64,
    d: Delivery,
}

impl PartialEq for Ev {
    fn eq(&self, other: &Self) -> bool {
        self.t == other.t && self.seq == other.seq
    }
}
impl Eq for Ev {}
impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ev {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.t, self.seq).cmp(&(other.t, other.seq))
    }
}

/// Gateway new-task port: either idle or forwarding the dependences of the
/// task it just dispatched (N4 happens one dependence per `gw_dep` cycles).
#[derive(Debug)]
enum GwState {
    Idle,
    Dispatching {
        deps: Arc<[Dependence]>,
        slot: SlotRef,
        next: usize,
    },
}

/// The complete Picos accelerator model.
#[derive(Debug)]
pub struct PicosSystem {
    cfg: PicosConfig,
    now: Cycle,
    seq: u64,
    events: BinaryHeap<Reverse<Ev>>,

    // External interfaces.
    ext_new: VecDeque<NewTaskReq>,
    ext_fin: VecDeque<FinishedReq>,
    ready_buf: VecDeque<ReadyTask>,

    // Internal queues.
    trs_q: Vec<VecDeque<TrsMsg>>,
    dct_new_q: Vec<VecDeque<NewDepMsg>>,
    dct_fin_q: Vec<VecDeque<DepFinMsg>>,
    arb_q: VecDeque<ArbMsg>,
    ts_q: VecDeque<(TaskId, SlotRef)>,

    // Units.
    trs: Vec<Trs>,
    dct: Vec<Dct>,
    gw_state: GwState,
    gw_blocked_counted: bool,
    rr_trs: usize,

    // Per-unit busy horizons.
    gw_new_busy: Cycle,
    gw_fin_busy: Cycle,
    trs_busy: Vec<Cycle>,
    dct_new_busy: Vec<Cycle>,
    dct_fin_busy: Vec<Cycle>,
    arb_busy: Cycle,
    ts_busy: Cycle,

    in_flight: usize,
    stats: Stats,
}

impl PicosSystem {
    /// Builds a system from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`PicosConfig::validate`].
    pub fn new(cfg: PicosConfig) -> Self {
        cfg.validate().expect("invalid Picos configuration");
        let trs = (0..cfg.num_trs)
            .map(|i| Trs::new(i as u8, cfg.tm_entries))
            .collect::<Vec<_>>();
        let dct = (0..cfg.num_dct)
            .map(|i| {
                Dct::new(
                    i as u8,
                    Dm::new(cfg.dm_design, cfg.dm_sets),
                    Vm::new(cfg.vm_entries),
                )
            })
            .collect::<Vec<_>>();
        PicosSystem {
            now: 0,
            seq: 0,
            events: BinaryHeap::new(),
            ext_new: VecDeque::new(),
            ext_fin: VecDeque::new(),
            ready_buf: VecDeque::new(),
            trs_q: vec![VecDeque::new(); cfg.num_trs],
            dct_new_q: vec![VecDeque::new(); cfg.num_dct],
            dct_fin_q: vec![VecDeque::new(); cfg.num_dct],
            arb_q: VecDeque::new(),
            ts_q: VecDeque::new(),
            trs,
            dct,
            gw_state: GwState::Idle,
            gw_blocked_counted: false,
            rr_trs: 0,
            gw_new_busy: 0,
            gw_fin_busy: 0,
            trs_busy: vec![0; cfg.num_trs],
            dct_new_busy: vec![0; cfg.num_dct],
            dct_fin_busy: vec![0; cfg.num_dct],
            arb_busy: 0,
            ts_busy: 0,
            in_flight: 0,
            stats: Stats::default(),
            cfg,
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// The configuration this system was built with.
    pub fn config(&self) -> &PicosConfig {
        &self.cfg
    }

    /// Submits a new task (N1). The GW will pick it up when it has cycles
    /// and a free TM slot.
    ///
    /// Takes the dependence list by value as a shared slice: submitting a
    /// task straight from a [`picos_trace::TaskDescriptor`] is a refcount
    /// bump (`t.deps.clone()`), never a per-task copy. Plain `Vec`s and
    /// arrays still convert implicitly.
    ///
    /// # Panics
    ///
    /// Panics if the task has more dependences than the configured maximum.
    pub fn submit(&mut self, task: TaskId, deps: impl Into<Arc<[Dependence]>>) {
        let deps = deps.into();
        assert!(
            deps.len() <= self.cfg.max_deps_per_task,
            "task {task} exceeds max_deps_per_task"
        );
        self.ext_new.push_back(NewTaskReq { task, deps });
    }

    /// Number of submitted tasks the GW has not accepted yet.
    pub fn pending_new(&self) -> usize {
        self.ext_new.len()
    }

    /// Reports a finished task (F1).
    pub fn notify_finished(&mut self, fin: FinishedReq) {
        self.ext_fin.push_back(fin);
    }

    /// Retrieves a ready task from the TS buffer, honouring the configured
    /// FIFO/LIFO policy. Only tasks that became ready at or before the
    /// current time are visible (they are, by construction of the event
    /// loop).
    pub fn pop_ready(&mut self) -> Option<ReadyTask> {
        match self.cfg.ts_policy {
            TsPolicy::Fifo => self.ready_buf.pop_front(),
            TsPolicy::Lifo => self.ready_buf.pop_back(),
        }
    }

    /// Number of ready tasks waiting to be retrieved.
    pub fn ready_len(&self) -> usize {
        self.ready_buf.len()
    }

    /// Tasks in flight: accepted by the GW and not yet fully retired.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Time of the next internal event, if any. Meaningful after
    /// [`PicosSystem::advance_to`] has run to the current time (the engine
    /// is then quiescent at `now` and this is the true next activity).
    pub fn next_event_time(&self) -> Option<Cycle> {
        self.events.peek().map(|Reverse(e)| e.t)
    }

    /// Whether the engine has no internal activity left (events, queued
    /// messages or a mid-dispatch GW). Ready tasks may still be waiting in
    /// the output buffer, and the driver may still owe finish notifications.
    pub fn is_quiescent(&self) -> bool {
        self.events.is_empty()
            && self.ext_new.is_empty()
            && self.ext_fin.is_empty()
            && self.arb_q.is_empty()
            && self.ts_q.is_empty()
            && self.trs_q.iter().all(VecDeque::is_empty)
            && self.dct_new_q.iter().all(VecDeque::is_empty)
            && self.dct_fin_q.iter().all(VecDeque::is_empty)
            && matches!(self.gw_state, GwState::Idle)
    }

    /// Snapshot of the run statistics.
    pub fn stats(&self) -> Stats {
        let mut s = self.stats.clone();
        s.deps_processed = self.dct.iter().map(Dct::deps_processed).sum();
        s.dm_conflicts = self.dct.iter().map(|d| d.dm.conflicts()).sum();
        s.vm_stalls = self.dct.iter().map(|d| d.vm.stalls()).sum();
        s.wakes_sent = self.dct.iter().map(Dct::wakes_sent).sum();
        s.chain_wakes = self.trs.iter().map(Trs::wakes_forwarded).sum();
        s.peak_in_flight = self.trs.iter().map(|t| t.tm.peak_live()).sum();
        s.peak_dm_live = self.dct.iter().map(|d| d.dm.peak_live()).sum();
        s.peak_vm_live = self.dct.iter().map(|d| d.vm.peak_live()).sum();
        s
    }

    /// Advances simulated time to `t`, processing every internal event and
    /// every unit that can make progress on the way.
    pub fn advance_to(&mut self, t: Cycle) {
        debug_assert!(t >= self.now, "time cannot go backwards");
        loop {
            self.schedule_all();
            let Some(Reverse(head)) = self.events.peek() else {
                break;
            };
            if head.t > t {
                break;
            }
            let batch_t = head.t;
            self.now = batch_t;
            while let Some(Reverse(head)) = self.events.peek() {
                if head.t != batch_t {
                    break;
                }
                let Reverse(ev) = self.events.pop().expect("peeked");
                self.apply(ev.d);
            }
        }
        self.now = t;
        // Pick up any externally pushed messages at the final time.
        self.schedule_all();
    }

    /// Runs the engine until it is quiescent, with a watchdog.
    ///
    /// Intended for tests and simple drivers that execute tasks with no
    /// simulated duration: the `on_ready` callback receives every ready task
    /// and returns finish notifications to feed back.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Watchdog`] if the engine fails to become
    /// quiescent within `max_cycles`.
    pub fn run_to_quiescence(
        &mut self,
        max_cycles: Cycle,
        mut on_ready: impl FnMut(ReadyTask) -> Option<FinishedReq>,
    ) -> Result<(), EngineError> {
        let deadline = self.now + max_cycles;
        loop {
            // Absorb externally pushed work at the current time.
            self.advance_to(self.now);
            let mut fed = false;
            while let Some(r) = self.pop_ready() {
                if let Some(fin) = on_ready(r) {
                    self.notify_finished(fin);
                    fed = true;
                }
            }
            if fed {
                self.advance_to(self.now);
            }
            match self.next_event_time() {
                Some(t) => {
                    if t > deadline {
                        return Err(EngineError::Watchdog { at: self.now });
                    }
                    self.advance_to(t);
                }
                None => {
                    // Nothing can move any more: either the run is complete
                    // or work remains that no event will ever release.
                    return if self.is_quiescent() && self.in_flight == 0 {
                        Ok(())
                    } else {
                        Err(EngineError::Deadlock { at: self.now })
                    };
                }
            }
        }
    }

    fn emit(&mut self, at: Cycle, d: Delivery) {
        self.seq += 1;
        self.events.push(Reverse(Ev {
            t: at,
            seq: self.seq,
            d,
        }));
    }

    fn apply(&mut self, d: Delivery) {
        match d {
            Delivery::Trs(i, m) => self.trs_q[i as usize].push_back(m),
            Delivery::DctNew(j, m) => self.dct_new_q[j as usize].push_back(m),
            Delivery::DctFin(j, m) => self.dct_fin_q[j as usize].push_back(m),
            Delivery::Arb(m) => self.arb_q.push_back(m),
            Delivery::Ts(task, slot) => self.ts_q.push_back((task, slot)),
            Delivery::ReadyOut(rt) => {
                self.ready_buf.push_back(rt);
                self.stats.peak_ready = self.stats.peak_ready.max(self.ready_buf.len());
            }
            Delivery::Free => {}
        }
    }

    /// One scheduling pass: every idle unit with pending input starts one
    /// service. Deliveries are strictly in the future (service times are
    /// at least one cycle), so a single pass per batch is exact.
    fn schedule_all(&mut self) {
        self.try_gw_fin();
        self.try_gw_new();
        for i in 0..self.trs.len() {
            self.try_trs(i);
        }
        for j in 0..self.dct.len() {
            self.try_dct_fin(j);
            self.try_dct_new(j);
        }
        self.try_arb();
        self.try_ts();
    }

    fn try_gw_new(&mut self) {
        if self.now < self.gw_new_busy {
            return;
        }
        let wire = self.cfg.timing.wire;
        match &mut self.gw_state {
            GwState::Idle => {
                let Some(front) = self.ext_new.front() else {
                    return;
                };
                // N2: find a free TRS slot, round-robin over instances.
                let n = self.trs.len();
                let mut chosen = None;
                for k in 0..n {
                    let i = (self.rr_trs + k) % n;
                    if self.trs[i].tm.has_space() {
                        chosen = Some(i);
                        break;
                    }
                }
                let Some(i) = chosen else {
                    // "If there is no free slot, GW does not process the
                    // new task" (paper, Section III-B).
                    if !self.gw_blocked_counted {
                        self.stats.tm_stalls += 1;
                        self.gw_blocked_counted = true;
                    }
                    return;
                };
                self.gw_blocked_counted = false;
                self.rr_trs = (i + 1) % n;
                let num_deps = front.deps.len() as u8;
                let entry = self.trs[i]
                    .tm
                    .alloc(front.task, num_deps)
                    .expect("has_space checked");
                let req = self.ext_new.pop_front().expect("front checked");
                let slot = SlotRef::new(i as u8, entry);
                self.stats.tasks_submitted += 1;
                self.in_flight += 1;
                let done = self.now + self.cfg.timing.gw_task;
                self.stats.busy_gw += self.cfg.timing.gw_task;
                self.gw_new_busy = done;
                self.emit(
                    done + wire,
                    Delivery::Trs(
                        slot.trs,
                        TrsMsg::NewTask {
                            slot,
                            task: req.task,
                            num_deps,
                        },
                    ),
                );
                self.emit(done, Delivery::Free);
                if !req.deps.is_empty() {
                    self.gw_state = GwState::Dispatching {
                        deps: req.deps,
                        slot,
                        next: 0,
                    };
                }
            }
            GwState::Dispatching { deps, slot, next } => {
                let dep = deps[*next];
                let dep_idx = *next as u8;
                let slot = *slot;
                *next += 1;
                let last = *next == deps.len();
                if last {
                    self.gw_state = GwState::Idle;
                }
                let j = dct_for_addr(dep.addr, self.dct.len());
                let done = self.now + self.cfg.timing.gw_dep;
                self.stats.busy_gw += self.cfg.timing.gw_dep;
                self.gw_new_busy = done;
                self.emit(
                    done + wire,
                    Delivery::DctNew(
                        j,
                        NewDepMsg {
                            slot,
                            dep_idx,
                            dep,
                            conflict_counted: false,
                            vm_stall_counted: false,
                        },
                    ),
                );
                self.emit(done, Delivery::Free);
            }
        }
    }

    fn try_gw_fin(&mut self) {
        if self.now < self.gw_fin_busy {
            return;
        }
        let Some(fin) = self.ext_fin.pop_front() else {
            return;
        };
        let done = self.now + self.cfg.timing.gw_fin;
        self.stats.busy_gw += self.cfg.timing.gw_fin;
        self.gw_fin_busy = done;
        self.emit(
            done + self.cfg.timing.wire,
            Delivery::Trs(fin.slot.trs, TrsMsg::Finished { slot: fin.slot }),
        );
        self.emit(done, Delivery::Free);
    }

    fn try_trs(&mut self, i: usize) {
        if self.now < self.trs_busy[i] {
            return;
        }
        let Some(msg) = self.trs_q[i].pop_front() else {
            return;
        };
        if matches!(msg, TrsMsg::Finished { .. }) {
            self.in_flight -= 1;
            self.stats.tasks_completed += 1;
        }
        let mut out = Vec::new();
        let cost = self.trs[i].handle(msg, &self.cfg.timing, &mut out);
        let done = self.now + cost;
        self.stats.busy_trs += cost;
        self.trs_busy[i] = done;
        let wire = self.cfg.timing.wire;
        for e in out {
            match e {
                TrsEmit::ReadyToTs { task, slot } => {
                    self.emit(done + wire, Delivery::Ts(task, slot));
                }
                TrsEmit::DepFinished { dct, msg } => {
                    self.emit(done + wire, Delivery::Arb(ArbMsg::ToDctFin(dct, msg)));
                }
                TrsEmit::ChainWake { trs, slot, vm } => {
                    self.emit(
                        done + wire,
                        Delivery::Arb(ArbMsg::ToTrs(trs, TrsMsg::Wake { slot, vm })),
                    );
                }
            }
        }
        self.emit(done, Delivery::Free);
    }

    fn try_dct_new(&mut self, j: usize) {
        if self.now < self.dct_new_busy[j] {
            return;
        }
        let Some(front) = self.dct_new_q[j].front() else {
            return;
        };
        let mut out: Vec<DctEmit> = Vec::new();
        let front = *front;
        match self.dct[j].handle_new(&front, &self.cfg.timing, &mut out) {
            Ok(cost) => {
                self.dct_new_q[j].pop_front();
                let done = self.now + cost;
                self.stats.busy_dct += cost;
                self.dct_new_busy[j] = done;
                let wire = self.cfg.timing.wire;
                for e in out {
                    self.emit(done + wire, Delivery::Arb(ArbMsg::ToTrs(e.trs, e.msg)));
                }
                self.emit(done, Delivery::Free);
            }
            Err(blocked) => {
                // Head-of-line stall: the dependence stays queued; count the
                // event once. It will be retried after a finish frees
                // resources (the DCT finish port keeps running).
                let head = self.dct_new_q[j].front_mut().expect("front checked");
                match blocked {
                    DctBlocked::DmConflict if !head.conflict_counted => {
                        head.conflict_counted = true;
                        self.dct[j].dm.count_conflict();
                    }
                    DctBlocked::VmFull if !head.vm_stall_counted => {
                        head.vm_stall_counted = true;
                        self.dct[j].vm.count_stall();
                    }
                    _ => {}
                }
            }
        }
    }

    fn try_dct_fin(&mut self, j: usize) {
        if self.now < self.dct_fin_busy[j] {
            return;
        }
        let Some(msg) = self.dct_fin_q[j].pop_front() else {
            return;
        };
        let mut out = Vec::new();
        let cost = self.dct[j].handle_fin(msg, &self.cfg.timing, &mut out);
        let done = self.now + cost;
        self.stats.busy_dct += cost;
        self.dct_fin_busy[j] = done;
        let wire = self.cfg.timing.wire;
        for e in out {
            self.emit(done + wire, Delivery::Arb(ArbMsg::ToTrs(e.trs, e.msg)));
        }
        self.emit(done, Delivery::Free);
    }

    fn try_arb(&mut self) {
        if self.now < self.arb_busy {
            return;
        }
        let Some(msg) = self.arb_q.pop_front() else {
            return;
        };
        let done = self.now + self.cfg.timing.arb;
        self.stats.busy_arb += self.cfg.timing.arb;
        self.arb_busy = done;
        let wire = self.cfg.timing.wire;
        match msg {
            ArbMsg::ToTrs(i, m) => self.emit(done + wire, Delivery::Trs(i, m)),
            ArbMsg::ToDctFin(j, m) => self.emit(done + wire, Delivery::DctFin(j, m)),
        }
        self.emit(done, Delivery::Free);
    }

    fn try_ts(&mut self) {
        if self.now < self.ts_busy {
            return;
        }
        let Some((task, slot)) = self.ts_q.pop_front() else {
            return;
        };
        let done = self.now + self.cfg.timing.ts;
        self.stats.busy_ts += self.cfg.timing.ts;
        self.ts_busy = done;
        let at = done + self.cfg.timing.wire;
        self.emit(
            at,
            Delivery::ReadyOut(ReadyTask {
                task,
                slot,
                ready_at: at,
            }),
        );
        self.emit(done, Delivery::Free);
    }
}

/// Errors surfaced by the engine's convenience runners.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineError {
    /// The run exceeded its cycle budget.
    Watchdog {
        /// Time at which the watchdog fired.
        at: Cycle,
    },
    /// No event can make progress but work remains.
    Deadlock {
        /// Time at which the deadlock was detected.
        at: Cycle,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Watchdog { at } => write!(f, "watchdog expired at cycle {at}"),
            EngineError::Deadlock { at } => write!(f, "engine deadlocked at cycle {at}"),
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DmDesign, PicosConfig};
    use picos_trace::{gen, TaskGraph, Trace};

    /// Runs a trace through the engine with instant workers (tasks finish
    /// the moment they pop out ready) and returns the execution order.
    fn run_instant(cfg: PicosConfig, trace: &Trace) -> (Vec<u32>, PicosSystem) {
        let mut sys = PicosSystem::new(cfg);
        for t in trace.iter() {
            sys.submit(t.id, t.deps.clone());
        }
        let mut order = Vec::new();
        sys.run_to_quiescence(200_000_000, |r| {
            order.push(r.task.raw());
            Some(FinishedReq {
                task: r.task,
                slot: r.slot,
            })
        })
        .expect("run must complete");
        (order, sys)
    }

    #[test]
    fn single_independent_task_flows_through() {
        let mut tr = Trace::new("one");
        tr.push(picos_trace::KernelClass::GENERIC, [], 1);
        let (order, sys) = run_instant(PicosConfig::balanced(), &tr);
        assert_eq!(order, vec![0]);
        let s = sys.stats();
        assert_eq!(s.tasks_submitted, 1);
        assert_eq!(s.tasks_completed, 1);
        assert_eq!(sys.in_flight(), 0);
        assert!(sys.is_quiescent());
    }

    #[test]
    fn chain_executes_in_order() {
        let tr = gen::synthetic(gen::Case::Case4);
        let (order, _) = run_instant(PicosConfig::balanced(), &tr);
        assert_eq!(order.len(), 100);
        let expected: Vec<u32> = (0..100).collect();
        assert_eq!(order, expected, "inout chain must serialize");
    }

    #[test]
    fn all_synthetic_cases_complete_topologically() {
        for c in gen::Case::ALL {
            let tr = gen::synthetic(c);
            let g = TaskGraph::build(&tr);
            for dm in DmDesign::ALL {
                let (order, sys) = run_instant(PicosConfig::baseline(dm), &tr);
                assert_eq!(order.len(), tr.len(), "{c:?} {dm}");
                assert!(g.is_topological(&order), "{c:?} {dm} order illegal");
                assert_eq!(sys.stats().tasks_completed as usize, tr.len());
            }
        }
    }

    #[test]
    fn consumer_chain_wakes_from_last() {
        // One producer, three consumers, then run: consumers must pop out
        // in reverse creation order (paper, Figure 5).
        let mut tr = Trace::new("fan");
        let k = picos_trace::KernelClass::GENERIC;
        tr.push(k, [picos_trace::Dependence::inout(0xA0)], 1);
        for _ in 0..3 {
            tr.push(k, [picos_trace::Dependence::input(0xA0)], 1);
        }
        let mut sys = PicosSystem::new(PicosConfig::balanced());
        for t in tr.iter() {
            sys.submit(t.id, t.deps.clone());
        }
        // The paper's Figure 5 assumes all tasks arrive before the first
        // one finishes: hold the producer's finish until every dependence
        // is registered, then observe the wake order.
        sys.advance_to(5_000);
        let producer = sys.pop_ready().expect("producer ready");
        assert_eq!(producer.task.raw(), 0);
        assert_eq!(sys.ready_len(), 0, "consumers must wait");
        sys.notify_finished(FinishedReq {
            task: producer.task,
            slot: producer.slot,
        });
        let mut ready_order = Vec::new();
        sys.run_to_quiescence(1_000_000, |r| {
            ready_order.push(r.task.raw());
            Some(FinishedReq {
                task: r.task,
                slot: r.slot,
            })
        })
        .unwrap();
        assert_eq!(
            ready_order,
            vec![3, 2, 1],
            "consumers wake from the last backwards"
        );
    }

    #[test]
    fn lifo_policy_reverses_pop_order() {
        // Many independent tasks become ready; LIFO pops the youngest.
        let mut tr = Trace::new("indep");
        let k = picos_trace::KernelClass::GENERIC;
        for _ in 0..10 {
            tr.push(k, [], 1);
        }
        let mut sys = PicosSystem::new(PicosConfig::balanced().with_ts_policy(TsPolicy::Lifo));
        for t in tr.iter() {
            sys.submit(t.id, t.deps.clone());
        }
        // Let everything become ready without executing anything.
        let mut guard = 0;
        while !sys.is_quiescent() && guard < 100_000 {
            let t = sys.next_event_time().unwrap_or(sys.now());
            sys.advance_to(t);
            guard += 1;
        }
        assert_eq!(sys.ready_len(), 10);
        let first = sys.pop_ready().unwrap();
        assert_eq!(first.task.raw(), 9, "LIFO pops youngest");
        let mut fifo_sys = PicosSystem::new(PicosConfig::balanced());
        for t in tr.iter() {
            fifo_sys.submit(t.id, t.deps.clone());
        }
        let mut guard = 0;
        while !fifo_sys.is_quiescent() && guard < 100_000 {
            let t = fifo_sys.next_event_time().unwrap_or(fifo_sys.now());
            fifo_sys.advance_to(t);
            guard += 1;
        }
        assert_eq!(
            fifo_sys.pop_ready().unwrap().task.raw(),
            0,
            "FIFO pops oldest"
        );
    }

    #[test]
    fn tm_capacity_backpressures_gateway() {
        // 300 independent tasks but only 256 slots: the GW must stall until
        // finishes free slots; with no finishes delivered the ready buffer
        // holds at most 256.
        let mut tr = Trace::new("many");
        let k = picos_trace::KernelClass::GENERIC;
        for _ in 0..300 {
            tr.push(k, [], 1);
        }
        let mut sys = PicosSystem::new(PicosConfig::balanced());
        for t in tr.iter() {
            sys.submit(t.id, t.deps.clone());
        }
        sys.advance_to(0); // prime the scheduler
        let mut guard = 0;
        while sys.next_event_time().is_some() && guard < 1_000_000 {
            let t = sys.next_event_time().unwrap();
            sys.advance_to(t);
            guard += 1;
        }
        assert_eq!(sys.ready_len(), 256);
        assert_eq!(sys.pending_new(), 300 - 256);
        assert!(sys.stats().tm_stalls >= 1);
        // Finishing tasks lets the rest through.
        let mut done = 0;
        sys.run_to_quiescence(10_000_000, |r| {
            done += 1;
            Some(FinishedReq {
                task: r.task,
                slot: r.slot,
            })
        })
        .unwrap();
        assert_eq!(done, 300);
    }

    #[test]
    fn multi_instance_configuration_completes() {
        let tr = gen::cholesky(gen::CholeskyConfig::paper(256));
        let g = TaskGraph::build(&tr);
        let (order, sys) = run_instant(PicosConfig::future(2, DmDesign::PearsonEightWay), &tr);
        assert_eq!(order.len(), tr.len());
        assert!(g.is_topological(&order));
        assert!(sys.is_quiescent());
    }

    #[test]
    fn direct_hash_counts_conflicts_on_clustered_addresses() {
        // Twelve producer tasks on addresses that cluster onto one DM set
        // under direct indexing (stride 64). Held in flight together they
        // need 12 live entries: the 8-way direct DM must stall 4 of them,
        // Pearson spreads them and stalls none.
        let mut tr = Trace::new("clustered");
        let k = picos_trace::KernelClass::GENERIC;
        for i in 0..12u64 {
            tr.push(k, [picos_trace::Dependence::output(0x9000 + i * 0x1000)], 1);
        }
        let run = |dm: DmDesign| {
            let mut sys = PicosSystem::new(PicosConfig::baseline(dm));
            for t in tr.iter() {
                sys.submit(t.id, t.deps.clone());
            }
            // Hold every finish until nothing more can happen, pinning all
            // insertable entries live at once.
            sys.advance_to(1_000_000);
            let mut pending = Vec::new();
            while let Some(r) = sys.pop_ready() {
                pending.push(FinishedReq {
                    task: r.task,
                    slot: r.slot,
                });
            }
            for f in pending {
                sys.notify_finished(f);
            }
            sys.run_to_quiescence(10_000_000, |r| {
                Some(FinishedReq {
                    task: r.task,
                    slot: r.slot,
                })
            })
            .unwrap();
            sys.stats().dm_conflicts
        };
        // Conflicts are counted per head-of-line blocking event: the ninth
        // dependence stalls the DCT once and the ones queued behind it only
        // retry after entries free up, so at least one event must appear.
        let c8 = run(DmDesign::EightWay);
        let cp = run(DmDesign::PearsonEightWay);
        assert!(c8 >= 1, "8-way direct must conflict: {c8}");
        assert_eq!(cp, 0, "pearson must not conflict here");
    }

    #[test]
    fn watchdog_fires_when_finishes_withheld() {
        let mut tr = Trace::new("nofin");
        tr.push(picos_trace::KernelClass::GENERIC, [], 1);
        let mut sys = PicosSystem::new(PicosConfig::balanced());
        for t in tr.iter() {
            sys.submit(t.id, t.deps.clone());
        }
        // Never acknowledge ready tasks: the engine goes quiet with the task
        // in flight; run_to_quiescence must report the deadlock.
        let r = sys.run_to_quiescence(1_000, |_r| None);
        assert!(r.is_err());
    }

    #[test]
    fn deterministic_across_runs() {
        let tr = gen::sparselu(gen::SparseLuConfig::paper(256));
        let (o1, s1) = run_instant(PicosConfig::balanced(), &tr);
        let (o2, s2) = run_instant(PicosConfig::balanced(), &tr);
        assert_eq!(o1, o2);
        assert_eq!(s1.now(), s2.now());
        assert_eq!(s1.stats(), s2.stats());
    }
}
