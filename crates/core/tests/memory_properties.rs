//! Property-based tests of the Picos memories: the DM and VM must never
//! lose or duplicate capacity under arbitrary allocate/free interleavings,
//! and the index functions must stay within bounds for any address.

use picos_core::{Dm, DmAccess, DmDesign, SlotRef, Vm, VmEntry, VmRef};
use proptest::prelude::*;

fn arb_design() -> impl Strategy<Value = DmDesign> {
    prop_oneof![
        Just(DmDesign::EightWay),
        Just(DmDesign::SixteenWay),
        Just(DmDesign::PearsonEightWay),
    ]
}

fn entry() -> VmEntry {
    VmEntry {
        producer: Some(SlotRef::new(0, 0)),
        producer_finished: false,
        last_consumer: None,
        consumers_total: 0,
        consumers_finished: 0,
        next: None,
        dm_slot: picos_core::DmSlot { set: 0, way: 0 },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Insert-then-free round trips restore full DM capacity; live counts
    /// never exceed capacity; the same address always hits after insert.
    #[test]
    fn dm_capacity_conserved(design in arb_design(), addrs in prop::collection::vec(0u64..1u64 << 40, 1..300)) {
        let mut dm = Dm::new(design, 64);
        let mut live: Vec<(u64, picos_core::DmSlot)> = Vec::new();
        for (i, &a) in addrs.iter().enumerate() {
            match dm.access(a, false) {
                DmAccess::Inserted(slot) => {
                    dm.bind(slot, VmRef::new(0, i as u16));
                    prop_assert!(dm.lookup(a) == Some(slot));
                    live.push((a, slot));
                }
                DmAccess::Hit(slot) => {
                    prop_assert!(live.iter().any(|&(la, ls)| la == a && ls == slot));
                }
                DmAccess::Conflict => {
                    // The set must really be full of other addresses.
                    prop_assert!(dm.lookup(a).is_none());
                }
            }
            prop_assert!(dm.live() <= dm.capacity());
            prop_assert_eq!(dm.live(), live.len());
        }
        // Free everything: capacity restored.
        for (_, slot) in live.drain(..) {
            dm.pop_version(slot, None);
        }
        prop_assert_eq!(dm.live(), 0);
    }

    /// Index functions stay in range and are deterministic for any address.
    #[test]
    fn index_in_range(design in arb_design(), addr in any::<u64>()) {
        let dm = Dm::new(design, 64);
        let i1 = dm.index(addr);
        let i2 = dm.index(addr);
        prop_assert!(i1 < 64);
        prop_assert_eq!(i1, i2);
    }

    /// The VM slab never double-allocates, never loses entries, and serves
    /// exactly `capacity` concurrent allocations.
    #[test]
    fn vm_slab_invariants(ops in prop::collection::vec(any::<bool>(), 1..400)) {
        let mut vm = Vm::new(32);
        let mut live: Vec<u16> = Vec::new();
        for alloc in ops {
            if alloc {
                match vm.alloc(entry()) {
                    Some(idx) => {
                        prop_assert!(!live.contains(&idx), "double allocation of {}", idx);
                        live.push(idx);
                    }
                    None => prop_assert_eq!(live.len(), 32, "alloc failed below capacity"),
                }
            } else if let Some(idx) = live.pop() {
                vm.free(idx);
            }
            prop_assert_eq!(vm.live(), live.len());
            prop_assert!(vm.peak_live() <= 32);
        }
    }

    /// DCT routing covers all instances and never goes out of range.
    #[test]
    fn dct_routing(addr in any::<u64>(), n in 1usize..8) {
        let d = picos_core::dct_for_addr(addr, n);
        prop_assert!(usize::from(d) < n);
    }
}

/// The router must not funnel stride-aligned block addresses to one DCT
/// (the pathology of hashing into the low bits).
#[test]
fn dct_routing_spreads_block_strides() {
    for stride in [256u64, 4096, 32768, 524288] {
        let mut used = std::collections::HashSet::new();
        for i in 0..64u64 {
            used.insert(picos_core::dct_for_addr(0x4000_0000 + i * stride, 4));
        }
        assert!(
            used.len() >= 3,
            "stride {stride}: only DCTs {used:?} used"
        );
    }
}
