//! Property-based tests of the Picos memories: the DM and VM must never
//! lose or duplicate capacity under arbitrary allocate/free interleavings,
//! and the index functions must stay within bounds for any address.
//!
//! Cases are drawn from a seeded [`SplitMix64`] (the offline stand-in for
//! `proptest`): each test runs a fixed number of pseudo-random cases and
//! reports the failing seed so a case can be replayed exactly.

use picos_core::{Dm, DmAccess, DmDesign, SlotRef, Vm, VmEntry, VmRef};
use picos_trace::rng::SplitMix64;

const CASES: u64 = 64;

fn arb_design(rng: &mut SplitMix64) -> DmDesign {
    DmDesign::ALL[rng.range_usize(0, DmDesign::ALL.len() - 1)]
}

fn entry() -> VmEntry {
    VmEntry {
        producer: Some(SlotRef::new(0, 0)),
        producer_finished: false,
        last_consumer: None,
        consumers_total: 0,
        consumers_finished: 0,
        next: None,
        dm_slot: picos_core::DmSlot { set: 0, way: 0 },
    }
}

/// Insert-then-free round trips restore full DM capacity; live counts
/// never exceed capacity; the same address always hits after insert.
#[test]
fn dm_capacity_conserved() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(0x0D00 + seed);
        let design = arb_design(&mut rng);
        let n = rng.range_usize(1, 300);
        let addrs: Vec<u64> = (0..n).map(|_| rng.range_u64(0, (1 << 40) - 1)).collect();
        let mut dm = Dm::new(design, 64);
        let mut live: Vec<(u64, picos_core::DmSlot)> = Vec::new();
        for (i, &a) in addrs.iter().enumerate() {
            match dm.access(a, false) {
                DmAccess::Inserted(slot) => {
                    dm.bind(slot, VmRef::new(0, i as u16));
                    assert_eq!(dm.lookup(a), Some(slot), "seed {seed}");
                    live.push((a, slot));
                }
                DmAccess::Hit(slot) => {
                    assert!(
                        live.iter().any(|&(la, ls)| la == a && ls == slot),
                        "seed {seed}: hit on unknown address"
                    );
                }
                DmAccess::Conflict => {
                    // The set must really be full of other addresses.
                    assert!(dm.lookup(a).is_none(), "seed {seed}");
                }
            }
            assert!(dm.live() <= dm.capacity(), "seed {seed}");
            assert_eq!(dm.live(), live.len(), "seed {seed}");
        }
        // Free everything: capacity restored.
        for (_, slot) in live.drain(..) {
            dm.pop_version(slot, None);
        }
        assert_eq!(dm.live(), 0, "seed {seed}");
    }
}

/// Index functions stay in range and are deterministic for any address.
#[test]
fn index_in_range() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(0x1D00 + seed);
        let design = arb_design(&mut rng);
        let addr = rng.next_u64();
        let dm = Dm::new(design, 64);
        let i1 = dm.index(addr);
        let i2 = dm.index(addr);
        assert!(i1 < 64, "seed {seed}");
        assert_eq!(i1, i2, "seed {seed}");
    }
}

/// The VM slab never double-allocates, never loses entries, and serves
/// exactly `capacity` concurrent allocations.
#[test]
fn vm_slab_invariants() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(0x2D00 + seed);
        let ops = rng.range_usize(1, 400);
        let mut vm = Vm::new(32);
        let mut live: Vec<u16> = Vec::new();
        for _ in 0..ops {
            if rng.bool(0.5) {
                match vm.alloc(entry()) {
                    Some(idx) => {
                        assert!(
                            !live.contains(&idx),
                            "seed {seed}: double allocation of {idx}"
                        );
                        live.push(idx);
                    }
                    None => {
                        assert_eq!(live.len(), 32, "seed {seed}: alloc failed below capacity")
                    }
                }
            } else if let Some(idx) = live.pop() {
                vm.free(idx);
            }
            assert_eq!(vm.live(), live.len(), "seed {seed}");
            assert!(vm.peak_live() <= 32, "seed {seed}");
        }
    }
}

/// DCT routing covers all instances and never goes out of range.
#[test]
fn dct_routing() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(0x3D00 + seed);
        let addr = rng.next_u64();
        let n = rng.range_usize(1, 7);
        let d = picos_core::dct_for_addr(addr, n);
        assert!(usize::from(d) < n, "seed {seed}");
    }
}

/// The router must not funnel stride-aligned block addresses to one DCT
/// (the pathology of hashing into the low bits).
#[test]
fn dct_routing_spreads_block_strides() {
    for stride in [256u64, 4096, 32768, 524288] {
        let mut used = std::collections::HashSet::new();
        for i in 0..64u64 {
            used.insert(picos_core::dct_for_addr(0x4000_0000 + i * stride, 4));
        }
        assert!(used.len() >= 3, "stride {stride}: only DCTs {used:?} used");
    }
}
