//! Task and dependence primitives.
//!
//! These types mirror the information the OmpSs runtime hands to Picos at
//! task-creation time (paper, Section III): a task identifier, the number of
//! dependences, and for each dependence its memory address and direction.

use std::fmt;
use std::sync::Arc;

/// Maximum number of dependences a single task may carry.
///
/// The Picos prototype stores at most 15 dependences per task (five TMX
/// memories whose entries hold three dependences each; paper Section III-A).
/// The trace layer enforces the same cap so every trace is representable in
/// hardware.
pub const MAX_DEPS_PER_TASK: usize = 15;

/// Identifier of a task inside a [`crate::Trace`].
///
/// Task ids are dense indices: the `i`-th task created by the program has id
/// `i`. Program (creation) order is semantically meaningful for dataflow
/// dependence analysis, so the id doubles as the creation timestamp.
///
/// # Examples
///
/// ```
/// use picos_trace::TaskId;
/// let id = TaskId::new(3);
/// assert_eq!(id.index(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(u32);

impl TaskId {
    /// Creates a task id from a dense index.
    pub const fn new(index: u32) -> Self {
        TaskId(index)
    }

    /// Returns the dense index of this task.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` value.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl From<u32> for TaskId {
    fn from(v: u32) -> Self {
        TaskId(v)
    }
}

/// Direction of a task dependence, as annotated in the source program
/// (`#pragma omp task input(...) output(...) inout(...)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// The task reads the address (`input`): a consumer.
    In,
    /// The task writes the address (`output`): a producer.
    Out,
    /// The task reads and writes the address (`inout`): both.
    InOut,
}

impl Direction {
    /// Whether the task reads the address (In or InOut).
    pub const fn reads(self) -> bool {
        matches!(self, Direction::In | Direction::InOut)
    }

    /// Whether the task writes the address (Out or InOut).
    pub const fn writes(self) -> bool {
        matches!(self, Direction::Out | Direction::InOut)
    }

    /// Merges two directions on the same address into the strongest one.
    ///
    /// OmpSs collapses duplicate addresses in one task's dependence list:
    /// a read plus a write becomes `InOut`.
    pub fn merge(self, other: Direction) -> Direction {
        if self == other {
            self
        } else {
            Direction::InOut
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Direction::In => "in",
            Direction::Out => "out",
            Direction::InOut => "inout",
        };
        f.write_str(s)
    }
}

/// One task dependence: a memory address plus an access direction.
///
/// Addresses are byte addresses. Generators emit realistic layouts (array
/// strides, per-block heap allocations) because the Picos Dependence Memory
/// indexes on low address bits, so address clustering is a first-order effect
/// (paper, Section III-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Dependence {
    /// Byte address of the data the dependence refers to.
    pub addr: u64,
    /// Access direction.
    pub dir: Direction,
}

impl Dependence {
    /// Creates a new dependence.
    pub const fn new(addr: u64, dir: Direction) -> Self {
        Dependence { addr, dir }
    }

    /// Convenience constructor for an `input` dependence.
    pub const fn input(addr: u64) -> Self {
        Dependence::new(addr, Direction::In)
    }

    /// Convenience constructor for an `output` dependence.
    pub const fn output(addr: u64) -> Self {
        Dependence::new(addr, Direction::Out)
    }

    /// Convenience constructor for an `inout` dependence.
    pub const fn inout(addr: u64) -> Self {
        Dependence::new(addr, Direction::InOut)
    }
}

impl fmt::Display for Dependence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(0x{:x})", self.dir, self.addr)
    }
}

/// Index of a kernel class inside a trace's kernel-name table.
///
/// Each task belongs to a kernel class (e.g. `potrf`, `gemm`, `fwd`). The
/// class drives the duration model and labels experiment output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct KernelClass(pub u16);

impl KernelClass {
    /// The default kernel class used when a trace has a single task type.
    pub const GENERIC: KernelClass = KernelClass(0);
}

/// Everything Picos needs to know about one task.
///
/// This is the software-visible "Task Work Descriptor" of the paper
/// (Section II-A): identity, dependences and, for simulation, the task's
/// execution duration in cycles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskDescriptor {
    /// Dense task id; equals the creation order position.
    pub id: TaskId,
    /// Kernel class of this task (index into the trace's kernel table).
    pub kernel: KernelClass,
    /// The task's dependences, at most [`MAX_DEPS_PER_TASK`].
    ///
    /// Shared (`Arc`) so submitting the task to an engine is a refcount
    /// bump, not a per-task copy of the dependence list — submission is the
    /// hot path of every sweep.
    pub deps: Arc<[Dependence]>,
    /// Execution duration in cycles.
    pub duration: u64,
}

impl TaskDescriptor {
    /// Creates a descriptor, merging duplicate addresses.
    ///
    /// OmpSs semantics collapse repeated addresses in a single task's
    /// dependence list into one dependence with the merged direction, which
    /// is also what the hardware requires (one DM lookup per distinct
    /// address per task).
    ///
    /// # Panics
    ///
    /// Panics if after merging the task has more than [`MAX_DEPS_PER_TASK`]
    /// dependences; generators are expected to respect the hardware limit.
    pub fn new(
        id: TaskId,
        kernel: KernelClass,
        deps: impl IntoIterator<Item = Dependence>,
        duration: u64,
    ) -> Self {
        let mut merged: Vec<Dependence> = Vec::new();
        for d in deps {
            match merged.iter_mut().find(|m| m.addr == d.addr) {
                Some(m) => m.dir = m.dir.merge(d.dir),
                None => merged.push(d),
            }
        }
        assert!(
            merged.len() <= MAX_DEPS_PER_TASK,
            "task {id} has {} dependences, hardware limit is {MAX_DEPS_PER_TASK}",
            merged.len()
        );
        TaskDescriptor {
            id,
            kernel,
            deps: merged.into(),
            duration,
        }
    }

    /// Number of dependences of the task.
    pub fn num_deps(&self) -> usize {
        self.deps.len()
    }

    /// Whether the task has no dependences and is ready on arrival.
    pub fn is_independent(&self) -> bool {
        self.deps.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_id_roundtrip() {
        let id = TaskId::new(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id.raw(), 42);
        assert_eq!(id.to_string(), "T42");
        assert_eq!(TaskId::from(42u32), id);
    }

    #[test]
    fn direction_reads_writes() {
        assert!(Direction::In.reads());
        assert!(!Direction::In.writes());
        assert!(!Direction::Out.reads());
        assert!(Direction::Out.writes());
        assert!(Direction::InOut.reads());
        assert!(Direction::InOut.writes());
    }

    #[test]
    fn direction_merge_is_strongest() {
        assert_eq!(Direction::In.merge(Direction::In), Direction::In);
        assert_eq!(Direction::In.merge(Direction::Out), Direction::InOut);
        assert_eq!(Direction::Out.merge(Direction::In), Direction::InOut);
        assert_eq!(Direction::InOut.merge(Direction::In), Direction::InOut);
        assert_eq!(Direction::Out.merge(Direction::Out), Direction::Out);
    }

    #[test]
    fn descriptor_merges_duplicate_addresses() {
        let t = TaskDescriptor::new(
            TaskId::new(0),
            KernelClass::GENERIC,
            [Dependence::input(0x100), Dependence::output(0x100)],
            10,
        );
        assert_eq!(t.num_deps(), 1);
        assert_eq!(t.deps[0].dir, Direction::InOut);
    }

    #[test]
    fn descriptor_keeps_distinct_addresses() {
        let t = TaskDescriptor::new(
            TaskId::new(1),
            KernelClass::GENERIC,
            [Dependence::input(0x100), Dependence::inout(0x200)],
            10,
        );
        assert_eq!(t.num_deps(), 2);
        assert!(!t.is_independent());
    }

    #[test]
    #[should_panic(expected = "hardware limit")]
    fn descriptor_rejects_too_many_deps() {
        let deps: Vec<_> = (0..16)
            .map(|i| Dependence::input(0x1000 + i * 64))
            .collect();
        TaskDescriptor::new(TaskId::new(0), KernelClass::GENERIC, deps, 1);
    }

    #[test]
    fn independent_task() {
        let t = TaskDescriptor::new(TaskId::new(0), KernelClass::GENERIC, [], 5);
        assert!(t.is_independent());
        assert_eq!(t.num_deps(), 0);
    }

    #[test]
    fn dependence_display() {
        assert_eq!(Dependence::inout(0xff).to_string(), "inout(0xff)");
    }
}
