//! Hand-rolled JSON encoding for [`Trace`].
//!
//! The build environment has no crates.io access, so instead of `serde` the
//! trace format is written and parsed by this small module. The format is
//! stable and self-describing:
//!
//! ```json
//! {
//!   "name": "cholesky", "problem_size": 2048, "block_size": 64,
//!   "kernel_names": ["potrf", "trsm"],
//!   "tasks": [
//!     {"id": 0, "kernel": 0, "duration": 100,
//!      "deps": [{"addr": 4096, "dir": "inout"}]}
//!   ],
//!   "barriers": []
//! }
//! ```

use crate::task::{Dependence, Direction, KernelClass, TaskDescriptor, TaskId};
use crate::trace::Trace;
use std::collections::BTreeMap;
use std::fmt;

/// Error from parsing a JSON trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description of the first problem encountered.
    pub message: String,
    /// Byte offset in the input where the problem was detected.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

// ---------------------------------------------------------------- encoding

/// Escapes `s` for use inside a JSON string literal (content only, no
/// surrounding quotes). Shared by every hand-rolled JSON emitter in the
/// workspace — the sweep harness uses it for workload labels and errors.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

pub(crate) fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    out.push_str(&json_escape(s));
    out.push('"');
}

fn dir_name(d: Direction) -> &'static str {
    match d {
        Direction::In => "in",
        Direction::Out => "out",
        Direction::InOut => "inout",
    }
}

/// Encodes one task descriptor as a JSON object (shared by the trace
/// format, the session journal and the serve wire protocol, which must
/// agree on the task shape).
pub fn task_to_json(out: &mut String, t: &TaskDescriptor) {
    out.push_str(&format!(
        "{{\"id\":{},\"kernel\":{},\"duration\":{},\"deps\":[",
        t.id.raw(),
        t.kernel.0,
        t.duration
    ));
    for (j, d) in t.deps.iter().enumerate() {
        if j > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"addr\":{},\"dir\":\"{}\"}}",
            d.addr,
            dir_name(d.dir)
        ));
    }
    out.push_str("]}");
}

/// Decodes one task descriptor from its parsed JSON object. `i` labels
/// errors ("task {i} ..."); the caller checks id ordering and kernel-table
/// bounds where those constraints apply.
pub fn task_from_value(tv: &Value, i: usize) -> Result<TaskDescriptor, JsonError> {
    let Value::Obj(t) = tv else {
        return Err(bad(format!("task {i} must be an object")));
    };
    let id = as_u64(
        t.get("id").ok_or_else(|| bad("task missing id"))?,
        "task id",
    )?;
    if id > u32::MAX as u64 {
        return Err(bad(format!("task {i} id {id} exceeds 32 bits")));
    }
    let kernel = as_u64(t.get("kernel").unwrap_or(&Value::Int(0)), "task kernel")?;
    if kernel > u16::MAX as u64 {
        return Err(bad(format!("task {i} kernel {kernel} out of range")));
    }
    let duration = as_u64(
        t.get("duration")
            .ok_or_else(|| bad("task missing duration"))?,
        "task duration",
    )?;
    let mut deps = Vec::new();
    for dv in as_arr(t.get("deps"), "task deps")? {
        let Value::Obj(d) = dv else {
            return Err(bad(format!("dependence of task {i} must be an object")));
        };
        let addr = as_u64(
            d.get("addr").ok_or_else(|| bad("dep missing addr"))?,
            "dep addr",
        )?;
        let dir = match as_str(
            d.get("dir").ok_or_else(|| bad("dep missing dir"))?,
            "dep dir",
        )? {
            "in" => Direction::In,
            "out" => Direction::Out,
            "inout" => Direction::InOut,
            other => return Err(bad(format!("unknown dependence direction '{other}'"))),
        };
        deps.push(Dependence::new(addr, dir));
    }
    if deps.len() > crate::task::MAX_DEPS_PER_TASK {
        return Err(bad(format!(
            "task {i} has {} dependences, hardware limit is {}",
            deps.len(),
            crate::task::MAX_DEPS_PER_TASK
        )));
    }
    // TaskDescriptor::new re-merges duplicate addresses, which is a
    // no-op for encoder-produced JSON and a sanitizer for hand-written
    // inputs.
    Ok(TaskDescriptor::new(
        TaskId::new(id as u32),
        KernelClass(kernel as u16),
        deps,
        duration,
    ))
}

/// Encodes a trace to a JSON string.
pub(crate) fn trace_to_json(tr: &Trace) -> String {
    let mut out = String::with_capacity(64 + tr.len() * 64);
    out.push_str("{\"name\":");
    escape_into(&mut out, &tr.name);
    match tr.problem_size {
        Some(v) => out.push_str(&format!(",\"problem_size\":{v}")),
        None => out.push_str(",\"problem_size\":null"),
    }
    match tr.block_size {
        Some(v) => out.push_str(&format!(",\"block_size\":{v}")),
        None => out.push_str(",\"block_size\":null"),
    }
    out.push_str(",\"kernel_names\":[");
    for (i, k) in tr.kernel_names.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        escape_into(&mut out, k);
    }
    out.push_str("],\"tasks\":[");
    for (i, t) in tr.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        task_to_json(&mut out, t);
    }
    out.push_str("],\"barriers\":[");
    for (i, b) in tr.barriers().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&b.to_string());
    }
    out.push_str("]}");
    out
}

// ---------------------------------------------------------------- decoding

/// A parsed JSON value (the subset the trace format needs).
///
/// Unsigned integers keep their exact `u64` value (`Int`); only numbers
/// with a fraction, exponent or sign parse as `Num`. Routing every number
/// through `f64` would silently round addresses above 2^53 — dependence
/// addresses are full 64-bit byte addresses.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON `true` / `false`.
    Bool(bool),
    /// A non-negative integer, kept exact.
    Int(u64),
    /// Any other number (fraction, exponent or sign).
    Num(f64),
    /// A string literal.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object (key order normalised).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The object map, when this value is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The element list, when this value is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string content, when this value is a string.
    pub fn as_string(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The exact integer, when this value is a non-negative integer.
    pub fn as_int(&self) -> Option<u64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, JsonError> {
        Err(JsonError {
            message: message.into(),
            offset: self.pos,
        })
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected '{}'", b as char))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => self.err("expected a JSON value"),
        }
    }

    fn literal(&mut self, text: &str, v: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(v)
        } else {
            self.err(format!("expected '{text}'"))
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        if let Ok(n) = text.parse::<u64>() {
            return Ok(Value::Int(n));
        }
        match text.parse::<f64>() {
            Ok(n) => Ok(Value::Num(n)),
            Err(_) => self.err(format!("invalid number '{text}'")),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return self.err("unterminated string");
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&e) = self.bytes.get(self.pos) else {
                        return self.err("unterminated escape");
                    };
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            let Some(code) = hex else {
                                return self.err("invalid \\u escape");
                            };
                            self.pos += 4;
                            // Surrogate pairs are not needed for trace names;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return self.err("unknown escape"),
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at b.
                    let len = match b {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let start = self.pos - 1;
                    let end = (start + len).min(self.bytes.len());
                    match std::str::from_utf8(&self.bytes[start..end]) {
                        Ok(s) => {
                            out.push_str(s);
                            self.pos = end;
                        }
                        Err(_) => return self.err("invalid UTF-8 in string"),
                    }
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let val = self.value()?;
            map.insert(key, val);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }
}

/// Parses one complete JSON document into a [`Value`] tree.
///
/// This is the workspace's only JSON reader (the build environment has no
/// `serde`), so every in-tree JSON emitter — trace files, the session
/// journal, the Perfetto span export — validates its output through this
/// entry. Rejects trailing characters after the document.
///
/// # Errors
///
/// Returns a [`JsonError`] locating the first malformed byte.
pub fn parse_json(s: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing characters after JSON value");
    }
    Ok(v)
}

pub(crate) use parse_json as parse_value;

pub(crate) fn bad(message: impl Into<String>) -> JsonError {
    JsonError {
        message: message.into(),
        offset: 0,
    }
}

pub(crate) fn as_u64(v: &Value, what: &str) -> Result<u64, JsonError> {
    match v {
        Value::Int(n) => Ok(*n),
        _ => Err(bad(format!("{what} must be a non-negative integer"))),
    }
}

fn as_opt_u64(v: Option<&Value>, what: &str) -> Result<Option<u64>, JsonError> {
    match v {
        None | Some(Value::Null) => Ok(None),
        Some(v) => as_u64(v, what).map(Some),
    }
}

pub(crate) fn as_str<'v>(v: &'v Value, what: &str) -> Result<&'v str, JsonError> {
    match v {
        Value::Str(s) => Ok(s),
        _ => Err(bad(format!("{what} must be a string"))),
    }
}

pub(crate) fn as_arr<'v>(v: Option<&'v Value>, what: &str) -> Result<&'v [Value], JsonError> {
    match v {
        Some(Value::Arr(items)) => Ok(items),
        None => Err(bad(format!("missing field {what}"))),
        _ => Err(bad(format!("{what} must be an array"))),
    }
}

/// Decodes a trace from its JSON encoding.
pub(crate) fn trace_from_json(s: &str) -> Result<Trace, JsonError> {
    let Value::Obj(top) = parse_value(s)? else {
        return Err(bad("top-level value must be an object"));
    };
    let name = as_str(
        top.get("name").ok_or_else(|| bad("missing field name"))?,
        "name",
    )?
    .to_string();
    let problem_size = as_opt_u64(top.get("problem_size"), "problem_size")?;
    let block_size = as_opt_u64(top.get("block_size"), "block_size")?;

    let mut kernel_names = Vec::new();
    if let Some(v) = top.get("kernel_names") {
        for k in as_arr(Some(v), "kernel_names")? {
            kernel_names.push(as_str(k, "kernel name")?.to_string());
        }
    }
    if kernel_names.is_empty() {
        kernel_names.push("task".to_string());
    }

    let mut tasks = Vec::new();
    for (i, tv) in as_arr(top.get("tasks"), "tasks")?.iter().enumerate() {
        let task = task_from_value(tv, i)?;
        if task.id.index() != i {
            return Err(bad(format!(
                "task {i} has out-of-order id {}",
                task.id.raw()
            )));
        }
        if task.kernel.0 as usize >= kernel_names.len() {
            return Err(bad(format!(
                "task {i} kernel {} out of range",
                task.kernel.0
            )));
        }
        tasks.push(task);
    }

    let mut barriers = Vec::new();
    if let Some(v) = top.get("barriers") {
        for b in as_arr(Some(v), "barriers")? {
            // Bounds-check the full u64 before narrowing: `as u32` first
            // would silently wrap huge positions onto valid ones.
            let b = as_u64(b, "barrier position")?;
            if b == 0 || b >= tasks.len() as u64 {
                return Err(bad("barrier position outside 1..tasks.len()"));
            }
            barriers.push(b as u32);
        }
    }
    barriers.sort_unstable();
    barriers.dedup();

    Ok(Trace::from_parts(
        name,
        problem_size,
        block_size,
        kernel_names,
        tasks,
        barriers,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_garbage() {
        assert!(trace_from_json("not json").is_err());
        assert!(trace_from_json("{}").is_err());
        assert!(trace_from_json("{\"name\":\"x\",\"tasks\":[]} trailing").is_err());
    }

    #[test]
    fn accepts_minimal_object() {
        let tr = trace_from_json("{\"name\":\"x\",\"tasks\":[]}").unwrap();
        assert_eq!(tr.name, "x");
        assert!(tr.is_empty());
    }

    #[test]
    fn escapes_roundtrip() {
        let mut tr = Trace::new("weird \"name\"\nwith\tescapes\\");
        tr.push(KernelClass::GENERIC, [Dependence::inout(7)], 3);
        let back = trace_from_json(&trace_to_json(&tr)).unwrap();
        assert_eq!(tr, back);
    }

    #[test]
    fn full_u64_addresses_roundtrip_exactly() {
        // Above 2^53: a float-routed parser would round these.
        let mut tr = Trace::new("wide");
        tr.push(KernelClass::GENERIC, [Dependence::inout(u64::MAX - 1)], 2);
        tr.push(
            KernelClass::GENERIC,
            [Dependence::input(0xffff_8000_0000_0001)],
            u64::MAX,
        );
        let back = trace_from_json(&trace_to_json(&tr)).unwrap();
        assert_eq!(tr, back);
        assert!(trace_from_json("{\"name\":\"x\",\"tasks\":[],\"barriers\":[1.5]}").is_err());
    }

    #[test]
    fn rejects_bad_barrier() {
        let json = "{\"name\":\"x\",\"tasks\":[{\"id\":0,\"duration\":1,\"deps\":[]}],\
                    \"barriers\":[5]}";
        assert!(trace_from_json(json).is_err());
        // A position above 2^32 must be rejected, not wrapped onto a valid
        // barrier by u32 truncation (4294967297 % 2^32 == 1).
        let json = "{\"name\":\"x\",\"tasks\":[\
                    {\"id\":0,\"duration\":1,\"deps\":[]},\
                    {\"id\":1,\"duration\":1,\"deps\":[]},\
                    {\"id\":2,\"duration\":1,\"deps\":[]}],\
                    \"barriers\":[4294967297]}";
        assert!(trace_from_json(json).is_err());
    }

    #[test]
    fn rejects_out_of_order_ids() {
        let json = "{\"name\":\"x\",\"tasks\":[{\"id\":1,\"duration\":1,\"deps\":[]}]}";
        assert!(trace_from_json(json).is_err());
    }
}
