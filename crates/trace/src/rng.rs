//! Small deterministic PRNG for workload generation and property tests.
//!
//! The build environment has no crates.io access, so instead of `rand` the
//! reproduction uses SplitMix64 (Steele, Lea & Flood, "Fast splittable
//! pseudorandom number generators", OOPSLA 2014): a 64-bit state advanced by
//! a Weyl sequence and finalized with an avalanche mix. It is statistically
//! strong enough for trace generation and test-case sampling, trivially
//! seedable, and — critically for the reproduction — byte-for-byte
//! deterministic across platforms and thread counts.

/// SplitMix64 pseudorandom number generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. The same seed always yields the
    /// same sequence.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The raw generator state, for snapshotting: [`SplitMix64::new`] with
    /// this value resumes the sequence exactly where it left off.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)` (Lemire's multiply-shift reduction;
    /// the modulo bias is below 2^-32 for all bounds used here).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform value in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        lo + self.below(hi - lo + 1)
    }

    /// Uniform `usize` in the inclusive range `[lo, hi]`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// Uniform float in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn bool(&mut self, p: f64) -> bool {
        self.f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = (0..8)
            .map({
                let mut r = SplitMix64::new(42);
                move |_| r.next_u64()
            })
            .collect();
        let b: Vec<u64> = (0..8)
            .map({
                let mut r = SplitMix64::new(42);
                move |_| r.next_u64()
            })
            .collect();
        assert_eq!(a, b);
        let mut r = SplitMix64::new(43);
        assert_ne!(a[0], r.next_u64());
    }

    #[test]
    fn ranges_are_inclusive_and_in_bounds() {
        let mut r = SplitMix64::new(7);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let v = r.range_u64(3, 6);
            assert!((3..=6).contains(&v));
            seen_lo |= v == 3;
            seen_hi |= v == 6;
        }
        assert!(seen_lo && seen_hi, "range endpoints must be reachable");
    }

    #[test]
    fn full_range_does_not_overflow() {
        let mut r = SplitMix64::new(1);
        let _ = r.range_u64(0, u64::MAX);
    }

    #[test]
    fn bool_probability_roughly_respected() {
        let mut r = SplitMix64::new(11);
        let hits = (0..10_000).filter(|_| r.bool(0.25)).count();
        assert!((1_900..3_100).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(5);
        for _ in 0..1_000 {
            let v = r.f64();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
