//! LU factorization trace generator (dense, column-panel formulation).
//!
//! The paper's Lu decomposes a `2048 x 2048` matrix with task counts of
//! `nb*(nb+1)/2` for `nb` block-columns and exactly two dependences per task
//! (Table I): the workload is the column-panel right-looking LU where, at
//! step `k`, one task factorizes panel `k` and one task per later column `j`
//! updates it with panel `k`:
//!
//! * `panel(k)`   — `in col(k-1)` (k>0), `inout col(k)`
//! * `update(k,j)` — `in col(k)`, `inout col(j)`  for `j > k`
//!
//! The consumers of `col(k)` are the updates `update(k, k+1..nb)`, created
//! in ascending `j` order. Because Picos wakes consumer chains **from the
//! last consumer backwards** (paper, Section III-D), `update(k, k+1)` — the
//! task on the critical path, since it feeds `panel(k+1)` — is woken *last*.
//! This is exactly the paper's Lu corner case (Section V-A, Figure 9). The
//! [`LuOrder::Modified`] variant creates the updates in descending `j`
//! order ("MLu"), which puts the critical-path update at the chain head.

use crate::gen::calibration::seq_exec_target;
use crate::gen::layout::ArrayLayout;
use crate::task::Dependence;
use crate::trace::Trace;

/// Task-creation order for the update tasks of each step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LuOrder {
    /// Natural ascending-`j` creation order (the paper's "Lu").
    #[default]
    Natural,
    /// Descending-`j` creation order (the paper's "MLu", Figure 9 left).
    Modified,
}

/// Configuration for the LU generator.
#[derive(Debug, Clone, Copy)]
pub struct LuConfig {
    /// Matrix dimension in elements (paper: 2048).
    pub problem_size: u64,
    /// Block dimension in elements (paper: 256, 128, 64, 32).
    pub block_size: u64,
    /// Update-task creation order (Lu vs MLu).
    pub order: LuOrder,
    /// Calibrate durations against the paper's Table I totals.
    pub calibrate: bool,
}

impl LuConfig {
    /// The paper's configuration for a given block size.
    pub fn paper(block_size: u64) -> Self {
        LuConfig {
            problem_size: 2048,
            block_size,
            order: LuOrder::Natural,
            calibrate: true,
        }
    }

    /// The modified-creation-order variant (MLu).
    pub fn paper_modified(block_size: u64) -> Self {
        LuConfig {
            order: LuOrder::Modified,
            ..LuConfig::paper(block_size)
        }
    }

    /// Number of block columns.
    pub fn blocks_per_dim(&self) -> u64 {
        self.problem_size / self.block_size
    }
}

/// Generates the LU trace.
///
/// # Panics
///
/// Panics if `block_size` does not divide `problem_size` or is zero.
pub fn lu(cfg: LuConfig) -> Trace {
    assert!(
        cfg.block_size > 0 && cfg.problem_size.is_multiple_of(cfg.block_size),
        "block size must divide problem size"
    );
    let nb = cfg.blocks_per_dim();
    let name = match cfg.order {
        LuOrder::Natural => "lu",
        LuOrder::Modified => "mlu",
    };
    let mut tr = Trace::new(name).with_sizes(cfg.problem_size, cfg.block_size);
    let k_panel = tr.kernel("lu_panel");
    let k_update = tr.kernel("lu_update");
    // Column panels in a contiguous column-major array: column j starts at
    // element j*bs*n.
    let layout = ArrayLayout::new(0x4800_0000, 8);
    let col_addr = |j: u64| layout.addr(j * cfg.block_size * cfg.problem_size);
    // Panel factorization ~ bs^2 * n work on the remaining column; the
    // trailing update of one column ~ the same order. Use the remaining
    // column height to shrink work as the factorization proceeds.
    let col_height = |k: u64| cfg.problem_size - k * cfg.block_size;

    for k in 0..nb {
        let mut deps = vec![Dependence::inout(col_addr(k))];
        if k > 0 {
            deps.insert(0, Dependence::input(col_addr(k - 1)));
        }
        tr.push(
            k_panel,
            deps,
            cfg.block_size * cfg.block_size * col_height(k),
        );

        let js: Vec<u64> = match cfg.order {
            LuOrder::Natural => ((k + 1)..nb).collect(),
            LuOrder::Modified => ((k + 1)..nb).rev().collect(),
        };
        for j in js {
            tr.push(
                k_update,
                [
                    Dependence::input(col_addr(k)),
                    Dependence::inout(col_addr(j)),
                ],
                cfg.block_size * cfg.block_size * col_height(k),
            );
        }
    }
    if cfg.calibrate {
        tr.calibrate_to(seq_exec_target("lu", cfg.block_size));
    }
    tr
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::calibration::table1_row;
    use crate::graph::TaskGraph;
    use crate::TaskId;

    #[test]
    fn task_counts_match_table1() {
        for bs in [256, 128, 64, 32] {
            let tr = lu(LuConfig::paper(bs));
            assert_eq!(tr.len(), table1_row("lu", bs).unwrap().tasks, "bs {bs}");
        }
    }

    #[test]
    fn dep_count_is_two_except_first_panel() {
        let tr = lu(LuConfig::paper(256));
        assert_eq!(tr.tasks()[0].num_deps(), 1); // first panel
        assert!(tr.iter().skip(1).all(|t| t.num_deps() == 2));
    }

    #[test]
    fn seq_exec_calibrated() {
        let tr = lu(LuConfig::paper(64));
        let target = table1_row("lu", 64).unwrap().seq_exec;
        let err = (tr.sequential_time() as f64 - target as f64).abs() / target as f64;
        assert!(err < 0.01);
    }

    #[test]
    fn update_chain_feeds_next_panel() {
        // panel(1) must depend on update(0,1).
        let tr = lu(LuConfig::paper(256));
        let g = TaskGraph::build(&tr);
        let nb = 8u32;
        // Creation order: panel(0)=0, update(0,1)=1 .. update(0,7)=7,
        // panel(1)=8.
        let panel1 = TaskId::new(nb);
        assert!(g.preds(panel1).contains(&1));
    }

    #[test]
    fn modified_order_reverses_updates() {
        let nat = lu(LuConfig::paper(256));
        let mlu = lu(LuConfig::paper_modified(256));
        assert_eq!(nat.len(), mlu.len());
        assert_eq!(mlu.name, "mlu");
        // In MLu the first update task after panel(0) touches the LAST
        // column.
        let last_col_addr = nat.tasks()[7].deps[1].addr; // update(0,7) inout col7
        assert_eq!(mlu.tasks()[1].deps[1].addr, last_col_addr);
        // Same dataflow structure: identical critical path.
        let gn = TaskGraph::build(&nat).parallelism();
        let gm = TaskGraph::build(&mlu).parallelism();
        assert_eq!(gn.critical_path, gm.critical_path);
        assert_eq!(gn.total_work, gm.total_work);
    }

    #[test]
    fn consumers_of_panel_are_parallel() {
        let tr = lu(LuConfig::paper(256));
        let g = TaskGraph::build(&tr);
        // update(0,j) for j=1..7 are mutually independent.
        let p = g.parallelism();
        assert!(p.max_width >= 7, "width {}", p.max_width);
    }

    #[test]
    fn work_decreases_with_step() {
        let tr = lu(LuConfig {
            calibrate: false,
            ..LuConfig::paper(256)
        });
        // panel(0) is task 0; panel(7) is the last task.
        let first = tr.tasks()[0].duration;
        let last = tr.tasks().last().unwrap().duration;
        assert!(first > last);
    }

    #[test]
    fn addresses_cluster_for_direct_hash() {
        let tr = lu(LuConfig::paper(64));
        let mut low = std::collections::HashSet::new();
        for t in tr.iter() {
            for d in t.deps.iter() {
                low.insert(d.addr & 0x3f);
            }
        }
        assert_eq!(low.len(), 1);
    }
}
