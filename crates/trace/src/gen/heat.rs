//! Gauss-Seidel Heat trace generator.
//!
//! One Gauss-Seidel sweep over an `n x n` grid decomposed into
//! `bs x bs` blocks. Each block task updates its block in place using the
//! four neighbouring blocks, giving the paper's five dependences per task
//! (Table I): `inout` on the block itself and `in` on the north, west,
//! south and east neighbours. Because the sweep updates in row-major order,
//! north/west reads are the freshly-written values (RAW within the sweep)
//! and south/east reads are the previous-iteration values (their writers, if
//! any, are in the next sweep: WAR), producing the classic wavefront
//! dependence pattern.
//!
//! Blocks live inside one contiguous array ([`ArrayLayout`]): their
//! addresses differ by multiples of a large power of two, the address
//! clustering that cripples the direct-indexed DM designs (paper,
//! Section V-A).

use crate::gen::calibration::seq_exec_target;
use crate::gen::layout::ArrayLayout;
use crate::task::Dependence;
use crate::trace::Trace;

/// Configuration for the Heat generator.
#[derive(Debug, Clone, Copy)]
pub struct HeatConfig {
    /// Grid dimension in elements (paper: 2048).
    pub problem_size: u64,
    /// Block dimension in elements (paper: 256, 128, 64, 32).
    pub block_size: u64,
    /// Number of Gauss-Seidel sweeps (paper workload: 1).
    pub sweeps: u32,
    /// Insert an OmpSs `taskwait` between sweeps (e.g. for a convergence
    /// check on the host between iterations).
    pub taskwait_between_sweeps: bool,
    /// Calibrate durations against the paper's Table I totals.
    pub calibrate: bool,
}

impl HeatConfig {
    /// The paper's configuration for a given block size.
    pub fn paper(block_size: u64) -> Self {
        HeatConfig {
            problem_size: 2048,
            block_size,
            sweeps: 1,
            taskwait_between_sweeps: false,
            calibrate: true,
        }
    }

    /// Blocks per grid dimension.
    pub fn blocks_per_dim(&self) -> u64 {
        self.problem_size / self.block_size
    }
}

/// Generates the Heat trace.
///
/// # Panics
///
/// Panics if `block_size` does not divide `problem_size` or is zero.
pub fn heat(cfg: HeatConfig) -> Trace {
    assert!(
        cfg.block_size > 0 && cfg.problem_size.is_multiple_of(cfg.block_size),
        "block size must divide problem size"
    );
    let nb = cfg.blocks_per_dim();
    let mut tr = Trace::new("heat").with_sizes(cfg.problem_size, cfg.block_size);
    let k = tr.kernel("gauss_seidel_block");
    // Row-major element array of f64: block (i, j) starts at element
    // (i*bs*n + j*bs).
    let layout = ArrayLayout::new(0x4000_0000, 8);
    let block_addr =
        |i: u64, j: u64| layout.addr(i * cfg.block_size * cfg.problem_size + j * cfg.block_size);
    // Stencil work is proportional to the block area.
    let weight = cfg.block_size * cfg.block_size;

    for sweep in 0..cfg.sweeps {
        if sweep > 0 && cfg.taskwait_between_sweeps {
            tr.push_taskwait();
        }
        for i in 0..nb {
            for j in 0..nb {
                let mut deps = vec![Dependence::inout(block_addr(i, j))];
                if i > 0 {
                    deps.push(Dependence::input(block_addr(i - 1, j)));
                }
                if j > 0 {
                    deps.push(Dependence::input(block_addr(i, j - 1)));
                }
                if i + 1 < nb {
                    deps.push(Dependence::input(block_addr(i + 1, j)));
                }
                if j + 1 < nb {
                    deps.push(Dependence::input(block_addr(i, j + 1)));
                }
                tr.push(k, deps, weight);
            }
        }
    }
    if cfg.calibrate {
        tr.calibrate_to(seq_exec_target("heat", cfg.block_size) * cfg.sweeps as u64);
    }
    tr
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::calibration::table1_row;
    use crate::graph::TaskGraph;

    #[test]
    fn task_counts_match_table1() {
        for bs in [256, 128, 64, 32] {
            let tr = heat(HeatConfig::paper(bs));
            assert_eq!(tr.len(), table1_row("heat", bs).unwrap().tasks, "bs {bs}");
        }
    }

    #[test]
    fn interior_tasks_have_five_deps() {
        let tr = heat(HeatConfig::paper(256));
        let nb = 8;
        // Interior block (1,1) = task index 1*nb+1.
        assert_eq!(tr.tasks()[nb + 1].num_deps(), 5);
        // Corner block (0,0) has 3.
        assert_eq!(tr.tasks()[0].num_deps(), 3);
        let s = tr.stats();
        assert_eq!(s.max_deps, 5);
        assert_eq!(s.min_deps, 3);
    }

    #[test]
    fn seq_exec_calibrated() {
        for bs in [256, 64] {
            let tr = heat(HeatConfig::paper(bs));
            let target = table1_row("heat", bs).unwrap().seq_exec;
            let total = tr.sequential_time();
            let err = (total as f64 - target as f64).abs() / target as f64;
            assert!(err < 0.01, "bs {bs}: total {total} vs {target}");
        }
    }

    #[test]
    fn wavefront_dependence_structure() {
        let tr = heat(HeatConfig::paper(256));
        let g = TaskGraph::build(&tr);
        let nb = 8u32;
        // Task (1,1) depends on (0,1) and (1,0) via RAW.
        let t11 = crate::TaskId::new(nb + 1);
        let preds = g.preds(t11);
        assert!(preds.contains(&1)); // (0,1)
        assert!(preds.contains(&nb)); // (1,0)
                                      // Wavefront: critical path visits roughly 2*nb-1 antidiagonals.
        let p = g.parallelism();
        assert!(p.max_width >= (nb as usize) - 1, "width {}", p.max_width);
        assert!(p.avg_parallelism > 2.0);
    }

    #[test]
    fn multi_sweep_chains_iterations() {
        let one = heat(HeatConfig {
            sweeps: 1,
            calibrate: false,
            ..HeatConfig::paper(256)
        });
        let two = heat(HeatConfig {
            sweeps: 2,
            calibrate: false,
            ..HeatConfig::paper(256)
        });
        assert_eq!(two.len(), 2 * one.len());
        // Second sweep's block (0,0) depends on first sweep (WAW/WAR).
        let g = TaskGraph::build(&two);
        assert!(!g.preds(crate::TaskId::new(one.len() as u32)).is_empty());
    }

    #[test]
    fn addresses_cluster_for_direct_hash() {
        // All block addresses share the same low 6 bits: the DM-conflict
        // pathology of the direct-hash designs.
        let tr = heat(HeatConfig::paper(128));
        let mut low = std::collections::HashSet::new();
        for t in tr.iter() {
            for d in t.deps.iter() {
                low.insert(d.addr & 0x3f);
            }
        }
        assert_eq!(low.len(), 1);
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn rejects_nondividing_block() {
        heat(HeatConfig {
            problem_size: 100,
            block_size: 33,
            ..HeatConfig::paper(256)
        });
    }

    #[test]
    fn taskwait_between_sweeps_adds_barrier() {
        let tr = heat(HeatConfig {
            sweeps: 3,
            taskwait_between_sweeps: true,
            calibrate: false,
            ..HeatConfig::paper(256)
        });
        assert_eq!(tr.barriers(), &[64, 128]);
        assert_eq!(tr.segments().len(), 3);
        // The barrier lengthens the critical path: sweep 2 cannot overlap
        // the tail of sweep 1 any more.
        let plain = heat(HeatConfig {
            sweeps: 3,
            taskwait_between_sweeps: false,
            calibrate: false,
            ..HeatConfig::paper(256)
        });
        let with_wait = TaskGraph::build(&tr).critical_path();
        let without = TaskGraph::build(&plain).critical_path();
        assert!(with_wait > without, "{with_wait} vs {without}");
    }
}
