//! Open-loop arrival ("stream") workload generator.
//!
//! Models sustained heavy traffic: requests arrive at a configurable rate
//! that does **not** depend on how fast the system drains them (open loop),
//! the regime where a dependence manager's task throughput — not the
//! workload's critical path — decides whether queues stay bounded.
//!
//! Traces carry no arrival timestamps, so arrival is encoded structurally
//! with a **pacer chain**: tick task `i` carries `inout(TICK_CHAIN)` (the
//! chain serializes the pacers, so tick `i` completes at about
//! `(i + 1) * interarrival`) plus `output(tick_addr(i))`. A request that
//! arrives during tick `j` reads `tick_addr(j - 1)`, the newest tick output
//! that exists at its arrival time, and therefore cannot start earlier —
//! but nothing ever blocks the pacer chain itself, so arrivals keep coming
//! whether or not the system keeps up. The encoding works in every engine
//! (it is ordinary dataflow), at the cost of one dedicated worker driving
//! the pacer chain and one extra input dependence per request.
//!
//! Request dependences draw from per-stream address pools (a stream is an
//! independent tenant touching its own block of memory), so cross-stream
//! tasks are independent and the offered load parallelizes — exactly the
//! shape where sharded dependence management can pay off.

use crate::rng::SplitMix64;
use crate::task::{Dependence, Direction, MAX_DEPS_PER_TASK};
use crate::trace::Trace;

/// Address of the pacer chain (written `inout` by every tick task).
const TICK_CHAIN: u64 = 0x7F00_0000;
/// Base address of the per-tick outputs.
const TICK_BASE: u64 = 0x7000_0000;
/// Base address of the request address pools.
const POOL_BASE: u64 = 0x4000_0000;
/// Address slots per stream pool.
const POOL_SLOTS: u64 = 48;

/// Byte address of tick `i`'s output.
fn tick_addr(i: u64) -> u64 {
    TICK_BASE + i * 0x40
}

/// Parameters of the open-loop stream distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamConfig {
    /// Number of request tasks (pacer ticks are generated on top).
    pub tasks: usize,
    /// Mean cycles between request arrivals — the rate knob. Also the
    /// pacer tick length, so arrival times are honoured at tick
    /// granularity.
    pub interarrival: u64,
    /// Independent request streams (tenants), each with its own address
    /// pool. More streams = more parallel offered load.
    pub streams: usize,
    /// Maximum data dependences per request (on top of the arrival tick
    /// input); clamped so the total stays within the hardware limit.
    pub max_deps: usize,
    /// Probability that a data dependence writes (Out or InOut).
    pub write_fraction: f64,
    /// Mean request duration in cycles (sampled uniformly in
    /// `[mean/2, 3*mean/2]`).
    pub mean_duration: u64,
    /// PRNG seed; the same seed always yields the same trace.
    pub seed: u64,
}

impl StreamConfig {
    /// A sustained-heavy-traffic configuration: fine-grained requests
    /// arriving faster than one Picos pipeline's per-task throughput
    /// (Table IV: ~70 cycles/task HW-only), so a single dependence manager
    /// saturates and queues grow.
    pub fn heavy(tasks: usize) -> Self {
        StreamConfig {
            tasks,
            interarrival: 40,
            streams: 8,
            max_deps: 3,
            write_fraction: 0.5,
            mean_duration: 300,
            seed: 0x057A_EA11,
        }
    }
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig::heavy(2_000)
    }
}

/// Draws one request's data dependences (appended to `deps`) and returns
/// its duration: the shared request body of [`stream`] and
/// [`stream_requests`], so the two generators can never drift apart.
/// `used` is caller-provided scratch for slot deduplication.
fn draw_request(
    rng: &mut SplitMix64,
    cfg: &StreamConfig,
    max_deps: usize,
    deps: &mut Vec<Dependence>,
    used: &mut Vec<u64>,
) -> u64 {
    let streams = cfg.streams.max(1) as u64;
    let s = rng.below(streams);
    let ndeps = if max_deps == 0 {
        0
    } else {
        rng.range_usize(0, max_deps)
    };
    used.clear();
    for _ in 0..ndeps {
        let slot = rng.below(POOL_SLOTS);
        if used.contains(&slot) {
            continue; // duplicates would merge; keep the draw count bounded
        }
        used.push(slot);
        let addr = POOL_BASE + s * 0x10_0000 + slot * 0x40;
        let dir = if rng.bool(cfg.write_fraction) {
            if rng.bool(0.5) {
                Direction::Out
            } else {
                Direction::InOut
            }
        } else {
            Direction::In
        };
        deps.push(Dependence::new(addr, dir));
    }
    let mean = cfg.mean_duration.max(1);
    rng.range_u64((mean / 2).max(1), mean + mean / 2)
}

/// Generates an open-loop stream trace from the configuration; the same
/// configuration (including seed) always produces the same trace.
pub fn stream(cfg: StreamConfig) -> Trace {
    let mut rng = SplitMix64::new(cfg.seed);
    let tick = cfg.interarrival.max(1);
    // One dependence is reserved for the arrival tick input.
    let max_deps = cfg.max_deps.min(MAX_DEPS_PER_TASK - 1);
    let mut tr = Trace::new("stream").with_sizes(cfg.tasks as u64, tick);
    let k_tick = tr.kernel("tick");
    let k_req = tr.kernel("request");

    let mut arrival = 0u64;
    let mut ticks_emitted = 0u64;
    let mut deps: Vec<Dependence> = Vec::with_capacity(max_deps + 1);
    let mut used: Vec<u64> = Vec::with_capacity(max_deps);
    for _ in 0..cfg.tasks {
        // Uniform inter-arrival gap in [1, 2*tick - 1]: mean ~ tick.
        arrival += if tick == 1 {
            1
        } else {
            rng.range_u64(1, 2 * tick - 1)
        };
        // The request reads the newest tick output completed before its
        // arrival; requests in the first tick window depend on nothing.
        let tick_idx = arrival / tick;
        // Emit pacer ticks (in creation order, interleaved with requests)
        // up to the one this request reads.
        while tick_idx > 0 && ticks_emitted < tick_idx {
            tr.push(
                k_tick,
                [
                    Dependence::inout(TICK_CHAIN),
                    Dependence::output(tick_addr(ticks_emitted)),
                ],
                tick,
            );
            ticks_emitted += 1;
        }
        deps.clear();
        if tick_idx > 0 {
            deps.push(Dependence::input(tick_addr(tick_idx - 1)));
        }
        let dur = draw_request(&mut rng, &cfg, max_deps, &mut deps, &mut used);
        tr.push(k_req, deps.iter().copied(), dur);
    }
    tr
}

/// Generates the request tasks of an open-loop stream **without** the
/// pacer chain, paired with each request's arrival cycle.
///
/// [`stream`] encodes arrival structurally (tick tasks) so the pacing
/// works inside any batch engine; this variant instead returns the
/// arrival times out of band, for drivers that pace a *streaming session*
/// directly (`picos_backend::pace::ArrivalTrace`): no dedicated pacer
/// worker, no extra dependence per request. Request bodies draw from the
/// same per-stream address pools as [`stream`]; the same configuration
/// always produces the same `(trace, arrivals)` pair.
pub fn stream_requests(cfg: StreamConfig) -> (Trace, Vec<u64>) {
    let mut rng = SplitMix64::new(cfg.seed);
    let tick = cfg.interarrival.max(1);
    let max_deps = cfg.max_deps.min(MAX_DEPS_PER_TASK);
    let mut tr = Trace::new("stream-requests").with_sizes(cfg.tasks as u64, tick);
    let k_req = tr.kernel("request");

    let mut arrival = 0u64;
    let mut arrivals = Vec::with_capacity(cfg.tasks);
    let mut deps: Vec<Dependence> = Vec::with_capacity(max_deps);
    let mut used: Vec<u64> = Vec::with_capacity(max_deps);
    for _ in 0..cfg.tasks {
        // Uniform inter-arrival gap in [1, 2*tick - 1]: mean ~ tick.
        arrival += if tick == 1 {
            1
        } else {
            rng.range_u64(1, 2 * tick - 1)
        };
        arrivals.push(arrival);
        deps.clear();
        let dur = draw_request(&mut rng, &cfg, max_deps, &mut deps, &mut used);
        tr.push(k_req, deps.iter().copied(), dur);
    }
    (tr, arrivals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TaskGraph;
    use crate::task::KernelClass;

    #[test]
    fn deterministic_per_seed() {
        // The satellite property: same seed => byte-identical trace.
        let a = stream(StreamConfig::heavy(500));
        let b = stream(StreamConfig::heavy(500));
        assert_eq!(a, b);
        let c = stream(StreamConfig {
            seed: 1,
            ..StreamConfig::heavy(500)
        });
        assert_ne!(a, c, "a different seed must change the trace");
    }

    #[test]
    fn determinism_over_many_seeds_and_configs() {
        for seed in 0..16u64 {
            for (tasks, interarrival) in [(50, 1), (120, 40), (80, 1_000)] {
                let cfg = StreamConfig {
                    tasks,
                    interarrival,
                    seed,
                    ..StreamConfig::default()
                };
                assert_eq!(stream(cfg), stream(cfg), "seed {seed} {cfg:?}");
            }
        }
    }

    #[test]
    fn pacer_chain_is_open_loop() {
        // Every tick task depends only on the chain and nothing else; no
        // request output feeds a tick, so the pacers can never be blocked
        // by the requests they release.
        let tr = stream(StreamConfig::heavy(400));
        let tick_kernel = tr
            .kernel_names
            .iter()
            .position(|n| n == "tick")
            .expect("tick kernel") as u16;
        let g = TaskGraph::build(&tr);
        let mut ticks = 0;
        for t in tr.iter() {
            if t.kernel == KernelClass(tick_kernel) {
                ticks += 1;
                for &p in g.preds(t.id) {
                    assert_eq!(
                        tr.tasks()[p as usize].kernel,
                        KernelClass(tick_kernel),
                        "tick {t:?} must only wait on earlier ticks"
                    );
                }
            }
        }
        assert!(ticks > 0, "heavy config must emit pacer ticks");
    }

    #[test]
    fn requests_wait_for_their_arrival_tick() {
        let tr = stream(StreamConfig::heavy(300));
        let g = TaskGraph::build(&tr);
        let req_kernel = tr
            .kernel_names
            .iter()
            .position(|n| n == "request")
            .expect("request kernel") as u16;
        // Requests past the first tick window carry a tick input, so they
        // have at least one predecessor.
        let late_with_preds = tr
            .iter()
            .filter(|t| t.kernel == KernelClass(req_kernel) && t.id.index() > 50)
            .filter(|t| !g.preds(t.id).is_empty())
            .count();
        assert!(late_with_preds > 0, "arrival pacing must create edges");
    }

    #[test]
    fn respects_hardware_dep_limit() {
        let tr = stream(StreamConfig {
            max_deps: 40, // clamped
            ..StreamConfig::heavy(300)
        });
        assert!(tr.iter().all(|t| t.num_deps() <= MAX_DEPS_PER_TASK));
    }

    #[test]
    fn request_count_matches_config() {
        let cfg = StreamConfig::heavy(250);
        let tr = stream(cfg);
        let req_kernel = tr.kernel_names.iter().position(|n| n == "request").unwrap() as u16;
        let requests = tr
            .iter()
            .filter(|t| t.kernel == KernelClass(req_kernel))
            .count();
        assert_eq!(requests, cfg.tasks);
        assert!(tr.len() > cfg.tasks, "pacer ticks ride on top");
    }

    #[test]
    fn stream_requests_deterministic_with_monotone_arrivals() {
        let cfg = StreamConfig::heavy(300);
        let (ta, aa) = stream_requests(cfg);
        let (tb, ab) = stream_requests(cfg);
        assert_eq!(ta, tb);
        assert_eq!(aa, ab);
        assert_eq!(ta.len(), 300, "no pacer ticks ride on top");
        assert_eq!(aa.len(), ta.len());
        assert!(
            aa.windows(2).all(|w| w[0] <= w[1]),
            "arrivals nondecreasing"
        );
        assert!(ta.iter().all(|t| t.num_deps() <= MAX_DEPS_PER_TASK));
    }

    #[test]
    fn degenerate_configs_still_generate() {
        let tr = stream(StreamConfig {
            tasks: 10,
            interarrival: 0, // clamped to 1
            streams: 0,      // clamped to 1
            max_deps: 0,
            mean_duration: 0, // clamped to 1
            write_fraction: 1.0,
            seed: 3,
        });
        assert!(tr.len() >= 10);
        assert!(tr.iter().all(|t| t.duration >= 1));
    }
}
