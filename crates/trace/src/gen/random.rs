//! Random trace generator for property-based testing.
//!
//! Produces arbitrary but hardware-representable traces: bounded dependence
//! counts, mixed directions, address pools with reuse. Property tests use
//! these to check that every execution engine completes (no deadlock) and
//! respects the ground-truth dataflow graph.

use crate::rng::SplitMix64;
use crate::task::{Dependence, Direction, MAX_DEPS_PER_TASK};
use crate::trace::Trace;

/// Parameters of the random trace distribution.
#[derive(Debug, Clone, Copy)]
pub struct RandomConfig {
    /// Number of tasks.
    pub tasks: usize,
    /// Size of the shared address pool (smaller = more dependences).
    pub addr_pool: usize,
    /// Maximum dependences per task (clamped to the hardware limit).
    pub max_deps: usize,
    /// Probability that a dependence writes (Out or InOut).
    pub write_fraction: f64,
    /// Maximum task duration in cycles (durations are 1..=max).
    pub max_duration: u64,
}

impl Default for RandomConfig {
    fn default() -> Self {
        RandomConfig {
            tasks: 200,
            addr_pool: 32,
            max_deps: 4,
            write_fraction: 0.4,
            max_duration: 500,
        }
    }
}

/// Generates a random trace from a seed; the same seed always produces the
/// same trace.
pub fn random_trace(cfg: RandomConfig, seed: u64) -> Trace {
    let mut rng = SplitMix64::new(seed);
    let max_deps = cfg.max_deps.min(MAX_DEPS_PER_TASK);
    let mut tr = Trace::new(format!("random-{seed}"));
    let k = tr.kernel("random");
    // A word-strided pool: low-bit clustering varies with pool index so both
    // DM behaviours are exercised.
    let addr_of = |i: usize| 0x9000_0000u64 + (i as u64) * 72;

    for _ in 0..cfg.tasks {
        let ndeps = rng.range_usize(0, max_deps);
        let mut deps: Vec<Dependence> = Vec::with_capacity(ndeps);
        let mut used: Vec<usize> = Vec::with_capacity(ndeps);
        for _ in 0..ndeps {
            // Draw distinct pool slots per task (duplicates would merge).
            let slot = loop {
                let s = rng.range_usize(0, cfg.addr_pool.max(1) - 1);
                if !used.contains(&s) {
                    break s;
                }
                if used.len() >= cfg.addr_pool {
                    break s;
                }
            };
            if used.contains(&slot) {
                continue;
            }
            used.push(slot);
            let dir = if rng.bool(cfg.write_fraction) {
                if rng.bool(0.5) {
                    Direction::Out
                } else {
                    Direction::InOut
                }
            } else {
                Direction::In
            };
            deps.push(Dependence::new(addr_of(slot), dir));
        }
        let dur = rng.range_u64(1, cfg.max_duration.max(1));
        tr.push(k, deps, dur);
    }
    tr
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TaskGraph;

    #[test]
    fn deterministic_per_seed() {
        let a = random_trace(RandomConfig::default(), 7);
        let b = random_trace(RandomConfig::default(), 7);
        assert_eq!(a, b);
        let c = random_trace(RandomConfig::default(), 8);
        assert_ne!(a, c);
    }

    #[test]
    fn respects_dep_limit() {
        let cfg = RandomConfig {
            max_deps: 40, // clamped
            ..RandomConfig::default()
        };
        let tr = random_trace(cfg, 1);
        assert!(tr.iter().all(|t| t.num_deps() <= MAX_DEPS_PER_TASK));
    }

    #[test]
    fn produces_edges_with_small_pool() {
        let cfg = RandomConfig {
            tasks: 100,
            addr_pool: 4,
            write_fraction: 0.6,
            ..RandomConfig::default()
        };
        let g = TaskGraph::build(&random_trace(cfg, 2));
        assert!(g.num_edges() > 0);
    }

    #[test]
    fn no_duplicate_addresses_within_task() {
        let tr = random_trace(RandomConfig::default(), 3);
        for t in tr.iter() {
            let mut addrs: Vec<_> = t.deps.iter().map(|d| d.addr).collect();
            addrs.sort_unstable();
            addrs.dedup();
            assert_eq!(addrs.len(), t.num_deps());
        }
    }

    #[test]
    fn durations_positive_and_bounded() {
        let cfg = RandomConfig {
            max_duration: 10,
            ..RandomConfig::default()
        };
        let tr = random_trace(cfg, 4);
        assert!(tr.iter().all(|t| (1..=10).contains(&t.duration)));
    }
}
