//! SparseLU trace generator.
//!
//! Blocked LU decomposition over a square sparse matrix, following the BSC
//! application repository version (which descends from the BOTS sparselu
//! benchmark): the matrix is a grid of `nb x nb` blocks, only some of which
//! are allocated; new blocks appear ("fill-in") when `bmod` writes to a
//! previously-null block. Kernels and their dependences:
//!
//! * `lu0(k)`      — `inout A[k][k]`                                 (1 dep)
//! * `fwd(k,j)`    — `in A[k][k]`, `inout A[k][j]`                   (2 deps)
//! * `bdiv(i,k)`   — `in A[k][k]`, `inout A[i][k]`                   (2 deps)
//! * `bmod(i,j,k)` — `in A[i][k]`, `in A[k][j]`, `inout A[i][j]`     (3 deps)
//!
//! matching Table I's 1-3 dependences per task. Blocks are individually
//! heap-allocated ([`HeapLayout`]), as in the original benchmark, which
//! gives their addresses low-bit variety and far fewer direct-hash DM
//! conflicts than Heat's contiguous array (paper, Table II).

use crate::gen::calibration::seq_exec_target;
use crate::gen::layout::HeapLayout;
use crate::task::Dependence;
use crate::trace::Trace;

/// Configuration for the SparseLU generator.
#[derive(Debug, Clone, Copy)]
pub struct SparseLuConfig {
    /// Matrix dimension in elements (paper: 2048).
    pub problem_size: u64,
    /// Block dimension in elements (paper: 256, 128, 64, 32).
    pub block_size: u64,
    /// Calibrate durations against the paper's Table I totals.
    pub calibrate: bool,
}

impl SparseLuConfig {
    /// The paper's configuration for a given block size.
    pub fn paper(block_size: u64) -> Self {
        SparseLuConfig {
            problem_size: 2048,
            block_size,
            calibrate: true,
        }
    }

    /// Number of blocks per matrix dimension.
    pub fn blocks_per_dim(&self) -> u64 {
        self.problem_size / self.block_size
    }
}

/// The BOTS `genmat` sparsity pattern: returns whether block `(ii, jj)` is
/// allocated in the initial matrix.
pub fn initially_present(ii: u64, jj: u64) -> bool {
    let mut null_entry = false;
    if ii < jj && !ii.is_multiple_of(3) {
        null_entry = true;
    }
    if ii > jj && !jj.is_multiple_of(3) {
        null_entry = true;
    }
    if ii % 2 == 1 {
        null_entry = true;
    }
    if jj % 2 == 1 {
        null_entry = true;
    }
    if ii == jj {
        null_entry = false;
    }
    if ii == jj + 1 || jj == ii + 1 {
        null_entry = false;
    }
    !null_entry
}

/// Generates the SparseLU trace.
///
/// # Panics
///
/// Panics if `block_size` does not divide `problem_size` or is zero.
pub fn sparselu(cfg: SparseLuConfig) -> Trace {
    assert!(
        cfg.block_size > 0 && cfg.problem_size.is_multiple_of(cfg.block_size),
        "block size must divide problem size"
    );
    let nb = cfg.blocks_per_dim();
    let mut tr = Trace::new("sparselu").with_sizes(cfg.problem_size, cfg.block_size);
    let k_lu0 = tr.kernel("lu0");
    let k_fwd = tr.kernel("fwd");
    let k_bdiv = tr.kernel("bdiv");
    let k_bmod = tr.kernel("bmod");

    let block_bytes = cfg.block_size * cfg.block_size * 8;
    let mut heap = HeapLayout::default();
    let mut addr: Vec<Option<u64>> = vec![None; (nb * nb) as usize];
    for i in 0..nb {
        for j in 0..nb {
            if initially_present(i, j) {
                addr[(i * nb + j) as usize] = Some(heap.alloc(block_bytes));
            }
        }
    }

    // Relative kernel weights in units of bs^3-ish work.
    let b3 = cfg.block_size * cfg.block_size * cfg.block_size;
    let w_lu0 = b3 / 3;
    let w_fwd = b3 / 2;
    let w_bdiv = b3 / 2;
    let w_bmod = b3;

    for k in 0..nb {
        let akk = addr[(k * nb + k) as usize].expect("diagonal block always present");
        tr.push(k_lu0, [Dependence::inout(akk)], w_lu0);
        for j in (k + 1)..nb {
            if let Some(akj) = addr[(k * nb + j) as usize] {
                tr.push(
                    k_fwd,
                    [Dependence::input(akk), Dependence::inout(akj)],
                    w_fwd,
                );
            }
        }
        for i in (k + 1)..nb {
            if let Some(aik) = addr[(i * nb + k) as usize] {
                tr.push(
                    k_bdiv,
                    [Dependence::input(akk), Dependence::inout(aik)],
                    w_bdiv,
                );
            }
        }
        for i in (k + 1)..nb {
            let Some(aik) = addr[(i * nb + k) as usize] else {
                continue;
            };
            for j in (k + 1)..nb {
                let Some(akj) = addr[(k * nb + j) as usize] else {
                    continue;
                };
                // Fill-in: allocate the target block on first write.
                let aij =
                    *addr[(i * nb + j) as usize].get_or_insert_with(|| heap.alloc(block_bytes));
                tr.push(
                    k_bmod,
                    [
                        Dependence::input(aik),
                        Dependence::input(akj),
                        Dependence::inout(aij),
                    ],
                    w_bmod,
                );
            }
        }
    }
    if cfg.calibrate {
        tr.calibrate_to(seq_exec_target("sparselu", cfg.block_size));
    }
    tr
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::calibration::table1_row;
    use crate::graph::TaskGraph;

    #[test]
    fn dep_range_is_1_to_3() {
        let tr = sparselu(SparseLuConfig::paper(128));
        let s = tr.stats();
        assert_eq!(s.min_deps, 1);
        assert_eq!(s.max_deps, 3);
    }

    #[test]
    fn task_counts_close_to_table1() {
        // The exact counts depend on the original input matrix; the BOTS
        // pattern reproduces the paper's within a factor of ~2 and, more
        // importantly, the superquadratic growth with nb.
        let mut counts = Vec::new();
        for bs in [256, 128, 64, 32] {
            let tr = sparselu(SparseLuConfig::paper(bs));
            let paper = table1_row("sparselu", bs).unwrap().tasks;
            let ratio = tr.len() as f64 / paper as f64;
            assert!(
                (0.3..3.0).contains(&ratio),
                "bs {bs}: {} tasks vs paper {paper}",
                tr.len()
            );
            counts.push(tr.len());
        }
        // Growth with decreasing block size.
        assert!(counts.windows(2).all(|w| w[1] > w[0] * 4));
    }

    #[test]
    fn diagonal_always_present() {
        for n in [4, 8, 16] {
            for k in 0..n {
                assert!(initially_present(k, k));
            }
        }
    }

    #[test]
    fn bots_pattern_density_about_half() {
        let nb = 16u64;
        let present = (0..nb)
            .flat_map(|i| (0..nb).map(move |j| (i, j)))
            .filter(|&(i, j)| initially_present(i, j))
            .count();
        let density = present as f64 / (nb * nb) as f64;
        assert!((0.15..0.6).contains(&density), "density {density}");
    }

    #[test]
    fn fillin_blocks_get_written_then_reused() {
        let tr = sparselu(SparseLuConfig::paper(256));
        let g = TaskGraph::build(&tr);
        // bmod tasks must chain on their inout target across steps.
        let bmods: Vec<_> = tr
            .iter()
            .filter(|t| tr.kernel_name(t.kernel) == "bmod")
            .collect();
        assert!(!bmods.is_empty());
        // At least one bmod has a predecessor that is also a bmod (the
        // fill-in chain across k-steps).
        let chained = bmods.iter().any(|t| {
            g.preds(t.id)
                .iter()
                .any(|&p| tr.kernel_name(tr.tasks()[p as usize].kernel) == "bmod")
        });
        assert!(chained);
    }

    #[test]
    fn seq_exec_calibrated() {
        let tr = sparselu(SparseLuConfig::paper(64));
        let target = table1_row("sparselu", 64).unwrap().seq_exec;
        let err = (tr.sequential_time() as f64 - target as f64).abs() / target as f64;
        assert!(err < 0.01);
    }

    #[test]
    fn heap_layout_spreads_low_bits() {
        let tr = sparselu(SparseLuConfig::paper(64));
        let mut low = std::collections::HashSet::new();
        for t in tr.iter() {
            for d in t.deps.iter() {
                low.insert(d.addr & 0x3f);
            }
        }
        assert!(low.len() > 1, "sparse blocks should spread DM sets");
    }

    #[test]
    fn first_task_is_lu0() {
        let tr = sparselu(SparseLuConfig::paper(256));
        assert_eq!(tr.kernel_name(tr.tasks()[0].kernel), "lu0");
        assert_eq!(tr.tasks()[0].num_deps(), 1);
    }
}
