//! Trace generators for the paper's workloads.
//!
//! Seven synthetic testcases ([`synthetic()`]) and five real applications
//! ([`heat()`], [`lu()`], [`sparselu()`], [`cholesky()`], [`h264dec()`])
//! plus a [`random_trace()`] generator for property-based tests.

pub mod calibration;
pub mod cholesky;
pub mod h264;
pub mod heat;
pub mod layout;
pub mod lu;
pub mod random;
pub mod sparselu;
pub mod stream;
pub mod synthetic;

pub use calibration::{seq_exec_target, table1_row, Table1Row, TABLE1};
pub use cholesky::{cholesky, CholeskyConfig};
pub use h264::{h264dec, H264Config};
pub use heat::{heat, HeatConfig};
pub use layout::{ArrayLayout, HeapLayout};
pub use lu::{lu, LuConfig, LuOrder};
pub use random::{random_trace, RandomConfig};
pub use sparselu::{sparselu, SparseLuConfig};
pub use stream::{stream, stream_requests, StreamConfig};
pub use synthetic::{synthetic, Case, SYNTHETIC_DURATION, SYNTHETIC_TASKS};

use crate::trace::Trace;

/// The five real applications of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum App {
    /// Gauss-Seidel Heat diffusion.
    Heat,
    /// Dense LU factorization (column-panel formulation).
    Lu,
    /// Sparse blocked LU factorization.
    SparseLu,
    /// Blocked Cholesky factorization.
    Cholesky,
    /// H.264 video decoder (macroblock-wavefront model).
    H264dec,
}

impl App {
    /// All five applications in paper order.
    pub const ALL: [App; 5] = [
        App::Heat,
        App::Lu,
        App::SparseLu,
        App::Cholesky,
        App::H264dec,
    ];

    /// Lower-case name matching the calibration table.
    pub fn name(self) -> &'static str {
        match self {
            App::Heat => "heat",
            App::Lu => "lu",
            App::SparseLu => "sparselu",
            App::Cholesky => "cholesky",
            App::H264dec => "h264dec",
        }
    }

    /// The paper's four block sizes for this application (Table I).
    pub fn paper_block_sizes(self) -> [u64; 4] {
        match self {
            App::H264dec => [8, 4, 2, 1],
            _ => [256, 128, 64, 32],
        }
    }

    /// Generates the paper-configured trace for a block size.
    pub fn generate(self, block_size: u64) -> Trace {
        match self {
            App::Heat => heat(HeatConfig::paper(block_size)),
            App::Lu => lu(LuConfig::paper(block_size)),
            App::SparseLu => sparselu(SparseLuConfig::paper(block_size)),
            App::Cholesky => cholesky(CholeskyConfig::paper(block_size)),
            App::H264dec => h264dec(H264Config::paper(block_size)),
        }
    }
}

impl std::fmt::Display for App {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_apps_generate_nonempty() {
        for app in App::ALL {
            let bs = app.paper_block_sizes()[0];
            let tr = app.generate(bs);
            assert!(!tr.is_empty(), "{app}");
            assert_eq!(tr.name, app.name());
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(App::SparseLu.to_string(), "sparselu");
        assert_eq!(App::H264dec.to_string(), "h264dec");
    }
}
