//! Memory-layout models for dependence addresses.
//!
//! Dependence addresses matter: the Picos Dependence Memory indexes on the
//! low bits of the address (paper, Section III-C), so how an application lays
//! out its blocks decides how badly a direct-indexed DM clusters. Two layouts
//! cover the paper's applications:
//!
//! * [`ArrayLayout`] — blocks inside one contiguous array (Heat, Lu panels).
//!   Strides are multiples of large powers of two, so the low address bits
//!   are identical across blocks and a direct-hash DM collapses onto a few
//!   sets. This is the clustering the paper observes.
//! * [`HeapLayout`] — one allocation per block (SparseLu, Cholesky, H264
//!   buffers, as in the BSC application repository where blocks are
//!   `malloc`ed individually). Allocation headers and alignment give the
//!   addresses more low-bit variety.

/// Addresses of equally-sized blocks in one contiguous allocation.
#[derive(Debug, Clone, Copy)]
pub struct ArrayLayout {
    base: u64,
    stride: u64,
}

impl ArrayLayout {
    /// Creates a layout starting at `base` with `stride` bytes per block.
    pub fn new(base: u64, stride: u64) -> Self {
        assert!(stride > 0, "stride must be positive");
        ArrayLayout { base, stride }
    }

    /// Address of the `idx`-th block.
    pub fn addr(&self, idx: u64) -> u64 {
        self.base + idx * self.stride
    }

    /// Address of block `(i, j)` in a row-major `cols`-wide grid.
    pub fn addr2(&self, i: u64, j: u64, cols: u64) -> u64 {
        self.addr(i * cols + j)
    }
}

/// A bump allocator imitating per-block `malloc` with chunk headers.
///
/// glibc-style behaviour: each allocation is 16-byte aligned and preceded by
/// a 16-byte header, so consecutive allocations of power-of-two payloads end
/// up at non-power-of-two strides — exactly what gives heap-allocated blocks
/// their low-bit variety.
#[derive(Debug, Clone)]
pub struct HeapLayout {
    next: u64,
}

/// Allocation header size modelled after glibc malloc chunks.
const HEADER: u64 = 16;
/// Allocation alignment.
const ALIGN: u64 = 16;

impl HeapLayout {
    /// Creates a heap starting at `base`.
    pub fn new(base: u64) -> Self {
        HeapLayout { next: base }
    }

    /// Allocates `bytes` and returns the payload address.
    pub fn alloc(&mut self, bytes: u64) -> u64 {
        let addr = (self.next + HEADER).div_ceil(ALIGN) * ALIGN;
        self.next = addr + bytes.max(1);
        addr
    }
}

impl Default for HeapLayout {
    fn default() -> Self {
        // An arbitrary plausible heap base.
        HeapLayout::new(0x5555_0000_0000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn array_layout_strides() {
        let l = ArrayLayout::new(0x1000, 256);
        assert_eq!(l.addr(0), 0x1000);
        assert_eq!(l.addr(3), 0x1000 + 3 * 256);
        assert_eq!(l.addr2(1, 2, 8), 0x1000 + 10 * 256);
    }

    #[test]
    fn array_layout_low_bits_cluster() {
        // Power-of-two stride keeps the low 6 bits identical: the pathology
        // the Pearson hash exists to fix.
        let l = ArrayLayout::new(0x2000, 32768);
        for i in 0..16 {
            assert_eq!(l.addr(i) & 0x3f, 0x2000 & 0x3f);
        }
    }

    #[test]
    fn heap_layout_alignment_and_monotonicity() {
        let mut h = HeapLayout::new(0x1_0000);
        let mut prev = 0;
        for _ in 0..32 {
            let a = h.alloc(32768);
            assert_eq!(a % ALIGN, 0);
            assert!(a > prev);
            prev = a;
        }
    }

    #[test]
    fn heap_layout_varies_low_bits_vs_array() {
        // Allocation header bumps consecutive 2^k blocks off each other,
        // producing more than one distinct low-6-bit pattern.
        let mut h = HeapLayout::new(0x1_0000);
        let mut sets = std::collections::HashSet::new();
        for _ in 0..64 {
            sets.insert(h.alloc(32768) & 0x3f);
        }
        assert!(sets.len() > 1, "heap layout should spread low bits");
    }

    #[test]
    #[should_panic(expected = "stride")]
    fn zero_stride_rejected() {
        ArrayLayout::new(0, 0);
    }
}
