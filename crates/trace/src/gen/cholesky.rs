//! Cholesky factorization trace generator (right-looking blocked variant).
//!
//! Computes `A = L * L'` over an `nb x nb` grid of blocks with the four
//! classic kernels:
//!
//! * `potrf(k)`    — `inout A[k][k]`                                  (1 dep)
//! * `trsm(k,i)`   — `in A[k][k]`, `inout A[i][k]`                    (2 deps)
//! * `syrk(k,i)`   — `in A[i][k]`, `inout A[i][i]`                    (2 deps)
//! * `gemm(k,i,j)` — `in A[i][k]`, `in A[j][k]`, `inout A[i][j]`      (3 deps)
//!
//! Task counts reproduce the paper's Table I exactly:
//! `nb + 2*C(nb,2) + C(nb,3)` kernel invocations give 120 / 816 / 5984 /
//! 45760 tasks for block sizes 256 / 128 / 64 / 32 at problem size 2048.
//! This is also the workload of the paper's Figure 2.

use crate::gen::calibration::seq_exec_target;
use crate::gen::layout::HeapLayout;
use crate::task::Dependence;
use crate::trace::Trace;

/// Configuration for the Cholesky generator.
#[derive(Debug, Clone, Copy)]
pub struct CholeskyConfig {
    /// Matrix dimension in elements (paper: 2048).
    pub problem_size: u64,
    /// Block dimension in elements (paper: 256, 128, 64, 32).
    pub block_size: u64,
    /// Calibrate durations against the paper's Table I totals.
    pub calibrate: bool,
}

impl CholeskyConfig {
    /// The paper's configuration for a given block size.
    pub fn paper(block_size: u64) -> Self {
        CholeskyConfig {
            problem_size: 2048,
            block_size,
            calibrate: true,
        }
    }

    /// Number of blocks per matrix dimension.
    pub fn blocks_per_dim(&self) -> u64 {
        self.problem_size / self.block_size
    }
}

/// Generates the Cholesky trace.
///
/// # Panics
///
/// Panics if `block_size` does not divide `problem_size` or is zero.
pub fn cholesky(cfg: CholeskyConfig) -> Trace {
    assert!(
        cfg.block_size > 0 && cfg.problem_size.is_multiple_of(cfg.block_size),
        "block size must divide problem size"
    );
    let nb = cfg.blocks_per_dim();
    let mut tr = Trace::new("cholesky").with_sizes(cfg.problem_size, cfg.block_size);
    let k_potrf = tr.kernel("potrf");
    let k_trsm = tr.kernel("trsm");
    let k_syrk = tr.kernel("syrk");
    let k_gemm = tr.kernel("gemm");

    // Lower-triangular blocks, individually heap-allocated as in the BSC
    // application repository version.
    let block_bytes = cfg.block_size * cfg.block_size * 8;
    let mut heap = HeapLayout::default();
    let mut addr = vec![0u64; (nb * nb) as usize];
    for i in 0..nb {
        for j in 0..=i {
            addr[(i * nb + j) as usize] = heap.alloc(block_bytes);
        }
    }
    let a = |i: u64, j: u64| addr[(i * nb + j) as usize];

    // Flop-count-proportional weights: potrf b^3/3, trsm b^3, syrk b^3,
    // gemm 2 b^3.
    let b3 = cfg.block_size * cfg.block_size * cfg.block_size;
    let (w_potrf, w_trsm, w_syrk, w_gemm) = (b3 / 3, b3, b3, 2 * b3);

    for k in 0..nb {
        tr.push(k_potrf, [Dependence::inout(a(k, k))], w_potrf);
        for i in (k + 1)..nb {
            tr.push(
                k_trsm,
                [Dependence::input(a(k, k)), Dependence::inout(a(i, k))],
                w_trsm,
            );
        }
        for i in (k + 1)..nb {
            tr.push(
                k_syrk,
                [Dependence::input(a(i, k)), Dependence::inout(a(i, i))],
                w_syrk,
            );
            for j in (k + 1)..i {
                tr.push(
                    k_gemm,
                    [
                        Dependence::input(a(i, k)),
                        Dependence::input(a(j, k)),
                        Dependence::inout(a(i, j)),
                    ],
                    w_gemm,
                );
            }
        }
    }
    if cfg.calibrate {
        tr.calibrate_to(seq_exec_target("cholesky", cfg.block_size));
    }
    tr
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::calibration::table1_row;
    use crate::graph::TaskGraph;
    use crate::TaskId;

    #[test]
    fn task_counts_match_table1_exactly() {
        for bs in [256, 128, 64, 32] {
            let tr = cholesky(CholeskyConfig::paper(bs));
            assert_eq!(
                tr.len(),
                table1_row("cholesky", bs).unwrap().tasks,
                "bs {bs}"
            );
        }
    }

    #[test]
    fn dep_range_is_1_to_3() {
        let tr = cholesky(CholeskyConfig::paper(128));
        let s = tr.stats();
        assert_eq!(s.min_deps, 1);
        assert_eq!(s.max_deps, 3);
    }

    #[test]
    fn kernel_mix_counts() {
        let tr = cholesky(CholeskyConfig::paper(256));
        let nb = 8usize;
        let count = |name: &str| {
            tr.iter()
                .filter(|t| tr.kernel_name(t.kernel) == name)
                .count()
        };
        assert_eq!(count("potrf"), nb);
        assert_eq!(count("trsm"), nb * (nb - 1) / 2);
        assert_eq!(count("syrk"), nb * (nb - 1) / 2);
        assert_eq!(count("gemm"), nb * (nb - 1) * (nb - 2) / 6);
    }

    #[test]
    fn potrf_depends_on_previous_syrk() {
        let tr = cholesky(CholeskyConfig::paper(256));
        let g = TaskGraph::build(&tr);
        // potrf(1): find its task index — the first task after step 0 block.
        let potrf1 = tr
            .iter()
            .skip(1)
            .find(|t| tr.kernel_name(t.kernel) == "potrf")
            .unwrap();
        // It must have predecessors (the syrk(0,1) update on A[1][1]).
        let preds = g.preds(potrf1.id);
        assert!(!preds.is_empty());
        let has_syrk = preds
            .iter()
            .any(|&p| tr.kernel_name(tr.tasks()[p as usize].kernel) == "syrk");
        assert!(has_syrk);
    }

    #[test]
    fn trsm_fanout_from_potrf() {
        let tr = cholesky(CholeskyConfig::paper(256));
        let g = TaskGraph::build(&tr);
        // potrf(0) is task 0; its successors include the 7 trsm(0,i).
        let succ = g.succs(TaskId::new(0));
        assert!(succ.len() >= 7, "{}", succ.len());
    }

    #[test]
    fn seq_exec_calibrated() {
        for bs in [256, 32] {
            let tr = cholesky(CholeskyConfig::paper(bs));
            let target = table1_row("cholesky", bs).unwrap().seq_exec;
            let err = (tr.sequential_time() as f64 - target as f64).abs() / target as f64;
            assert!(err < 0.01, "bs {bs}");
        }
    }

    #[test]
    fn parallelism_grows_with_smaller_blocks() {
        let coarse = TaskGraph::build(&cholesky(CholeskyConfig::paper(256))).parallelism();
        let fine = TaskGraph::build(&cholesky(CholeskyConfig::paper(64))).parallelism();
        assert!(fine.avg_parallelism > coarse.avg_parallelism);
        assert!(fine.max_width > coarse.max_width);
    }

    #[test]
    fn gemm_weight_dominates() {
        let tr = cholesky(CholeskyConfig {
            calibrate: false,
            ..CholeskyConfig::paper(128)
        });
        let by_kernel = |name: &str| -> u64 {
            tr.iter()
                .filter(|t| tr.kernel_name(t.kernel) == name)
                .map(|t| t.duration)
                .sum()
        };
        assert!(by_kernel("gemm") > by_kernel("potrf"));
        assert!(by_kernel("gemm") > by_kernel("trsm"));
    }
}
