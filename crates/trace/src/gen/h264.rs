//! H264dec trace generator (macroblock-wavefront model).
//!
//! The paper uses the StarBench `h264dec` decoder on a 10-frame HD stream
//! with task granularities of 8x8, 4x4, 2x2 and 1x1 macroblock groups. A
//! real bitstream is not reproducible from an algorithm spec, so this
//! generator synthesizes the canonical dependence structure of H.264
//! decoding instead (the substitution recorded in DESIGN.md):
//!
//! * per frame, an **entropy-decode (parse)** task per macroblock group,
//!   serialized within its macroblock *row* through an `inout` bitstream
//!   cursor (the StarBench decoder's inputs carry one slice per row, so
//!   CABAC/CAVLC decoding is sequential within a row but parallel across
//!   rows);
//! * a **reconstruct** task per group that needs its parse output, its
//!   left and upper-right neighbours (intra prediction / deblocking
//!   wavefront) and the co-located group of the previous frame (motion
//!   compensation reference).
//!
//! Reconstruct tasks carry 2-6 dependences, matching Table I's `#Dep 2-6`,
//! and the two-tasks-per-group split reproduces the paper's task counts
//! within ~15% (e.g. 2700 vs 2659 for 8x8).

use crate::gen::calibration::seq_exec_target;
use crate::gen::layout::HeapLayout;
use crate::task::Dependence;
use crate::trace::Trace;

/// Configuration for the H264dec generator.
#[derive(Debug, Clone, Copy)]
pub struct H264Config {
    /// Number of frames to decode (paper: 10).
    pub frames: u32,
    /// Macroblock-group edge length (paper: 8, 4, 2, 1).
    pub block_size: u64,
    /// Frame width in macroblocks (1920 / 16 = 120 for full HD).
    pub mb_width: u64,
    /// Frame height in macroblocks (1088 / 16 = 68 for full HD).
    pub mb_height: u64,
    /// Calibrate durations against the paper's Table I totals.
    pub calibrate: bool,
}

impl H264Config {
    /// The paper's configuration (10 HD frames) for a given group size.
    pub fn paper(block_size: u64) -> Self {
        H264Config {
            frames: 10,
            block_size,
            mb_width: 120,
            mb_height: 68,
            calibrate: true,
        }
    }

    /// Macroblock groups per frame row / column.
    pub fn grid(&self) -> (u64, u64) {
        (
            self.mb_width.div_ceil(self.block_size),
            self.mb_height.div_ceil(self.block_size),
        )
    }
}

/// Generates the H264dec trace.
///
/// # Panics
///
/// Panics if `block_size` is zero or no frames are requested.
pub fn h264dec(cfg: H264Config) -> Trace {
    assert!(cfg.block_size > 0, "block size must be positive");
    assert!(cfg.frames > 0, "need at least one frame");
    let (gw, gh) = cfg.grid();
    let mut tr = Trace::new("h264dec").with_sizes(cfg.frames as u64, cfg.block_size);
    let k_parse = tr.kernel("parse");
    let k_rec = tr.kernel("reconstruct");

    // Per-frame picture buffers and per-row slice cursors, heap-allocated.
    let mut heap = HeapLayout::default();
    let group_bytes = cfg.block_size * cfg.block_size * 16 * 16 * 3 / 2; // YUV420
    let mut cursor: Vec<Vec<u64>> = Vec::with_capacity(cfg.frames as usize);
    let mut pic: Vec<Vec<u64>> = Vec::with_capacity(cfg.frames as usize);
    let mut parse_out: Vec<Vec<u64>> = Vec::with_capacity(cfg.frames as usize);
    for _ in 0..cfg.frames {
        cursor.push((0..gh).map(|_| heap.alloc(64)).collect());
        pic.push((0..gw * gh).map(|_| heap.alloc(group_bytes)).collect());
        parse_out.push((0..gw * gh).map(|_| heap.alloc(group_bytes / 4)).collect());
    }
    let idx = |x: u64, y: u64| (y * gw + x) as usize;

    // Entropy decode is much cheaper than reconstruction; weights per
    // macroblock in the group.
    let mbs = cfg.block_size * cfg.block_size;
    let w_parse = 60 * mbs;
    let w_rec = 240 * mbs;

    for f in 0..cfg.frames as usize {
        // Entropy decode is pipelined with reconstruction in the StarBench
        // decoder: parse rows are emitted just ahead of the reconstruct
        // wavefront, and reconstruct tasks are created in 2D-wave
        // (antidiagonal) order — the traversal order of the decoder's main
        // loop. This keeps a bounded in-flight window (the 256-entry TM)
        // filled with frontier tasks instead of flooding it with one
        // stage's backlog.
        let mut parse_rows_emitted = 0u64;
        let emit_parse_row = |tr: &mut Trace, y: u64| {
            for x in 0..gw {
                tr.push(
                    k_parse,
                    [
                        Dependence::inout(cursor[f][y as usize]),
                        Dependence::output(parse_out[f][idx(x, y)]),
                    ],
                    w_parse,
                );
            }
        };
        for d in 0..(gw + gh - 1) {
            while parse_rows_emitted <= d.min(gh - 1) {
                emit_parse_row(&mut tr, parse_rows_emitted);
                parse_rows_emitted += 1;
            }
            for y in d.saturating_sub(gw - 1)..=d.min(gh - 1) {
                let x = d - y;
                let mut deps = vec![
                    Dependence::input(parse_out[f][idx(x, y)]),
                    Dependence::inout(pic[f][idx(x, y)]),
                ];
                if x > 0 {
                    deps.push(Dependence::input(pic[f][idx(x - 1, y)]));
                }
                if y > 0 {
                    deps.push(Dependence::input(pic[f][idx(x, y - 1)]));
                    if x + 1 < gw {
                        deps.push(Dependence::input(pic[f][idx(x + 1, y - 1)]));
                    }
                }
                if f > 0 {
                    deps.push(Dependence::input(pic[f - 1][idx(x, y)]));
                }
                tr.push(k_rec, deps, w_rec);
            }
        }
    }
    if cfg.calibrate {
        tr.calibrate_to(seq_exec_target("h264dec", cfg.block_size));
    }
    tr
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::calibration::table1_row;
    use crate::graph::TaskGraph;
    use crate::TaskId;

    #[test]
    fn dep_range_is_2_to_6() {
        let tr = h264dec(H264Config::paper(8));
        let s = tr.stats();
        assert_eq!(s.min_deps, 2);
        assert_eq!(s.max_deps, 6);
    }

    #[test]
    fn task_counts_close_to_table1() {
        for bs in [8, 4, 2, 1] {
            let tr = h264dec(H264Config::paper(bs));
            let paper = table1_row("h264dec", bs).unwrap().tasks;
            let ratio = tr.len() as f64 / paper as f64;
            assert!(
                (0.75..1.35).contains(&ratio),
                "bs {bs}: {} vs paper {paper}",
                tr.len()
            );
        }
    }

    /// Parse tasks of one frame grouped into rows: rows are identified by
    /// the shared `inout` cursor address, in first-appearance order.
    fn parse_rows(tr: &crate::Trace) -> Vec<Vec<u32>> {
        let mut rows: Vec<(u64, Vec<u32>)> = Vec::new();
        for t in tr.iter() {
            if tr.kernel_name(t.kernel) != "parse" {
                continue;
            }
            let cursor = t.deps[0].addr;
            match rows.iter_mut().find(|(a, _)| *a == cursor) {
                Some((_, v)) => v.push(t.id.raw()),
                None => rows.push((cursor, vec![t.id.raw()])),
            }
        }
        rows.into_iter().map(|(_, v)| v).collect()
    }

    /// Finds the reconstruct task consuming the output of `parse_id`.
    fn rec_task_for_parse(tr: &crate::Trace, parse_id: u32) -> TaskId {
        let g = TaskGraph::build(tr);
        tr.iter()
            .find(|t| {
                tr.kernel_name(t.kernel) == "reconstruct" && g.preds(t.id).contains(&parse_id)
            })
            .map(|t| t.id)
            .expect("every parse output has a reconstruct consumer")
    }

    #[test]
    fn parse_tasks_serialize_within_rows_only() {
        let cfg = H264Config {
            frames: 1,
            block_size: 8,
            ..H264Config::paper(8)
        };
        let tr = h264dec(cfg);
        let g = TaskGraph::build(&tr);
        let (gw, gh) = cfg.grid();
        let rows = parse_rows(&tr);
        assert_eq!(rows.len(), gh as usize);
        for (y, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), gw as usize, "row {y}");
            // Within a row, each parse task depends on its predecessor.
            for pair in row.windows(2) {
                assert!(
                    g.preds(TaskId::new(pair[1])).contains(&pair[0]),
                    "row {y}: {} must follow {}",
                    pair[1],
                    pair[0]
                );
            }
            // Across rows, the first parse task of each row is independent
            // (parallel slices): the parse stage is not one serial chain.
            assert!(
                g.preds(TaskId::new(row[0])).is_empty(),
                "row {y} must start independent"
            );
        }
    }

    #[test]
    fn reconstruct_waits_for_parse_and_neighbours() {
        let cfg = H264Config {
            frames: 1,
            ..H264Config::paper(8)
        };
        let tr = h264dec(cfg);
        let g = TaskGraph::build(&tr);
        let rows = parse_rows(&tr);
        // Reconstruct of group (1,1): its parse task is rows[1][1].
        let rec = rec_task_for_parse(&tr, rows[1][1]);
        let preds = g.preds(rec);
        let kernel_of = |p: u32| tr.kernel_name(tr.tasks()[p as usize].kernel);
        let n_rec_preds = preds
            .iter()
            .filter(|&&p| kernel_of(p) == "reconstruct")
            .count();
        let n_parse_preds = preds.iter().filter(|&&p| kernel_of(p) == "parse").count();
        assert!(n_rec_preds >= 2, "rec preds {preds:?}");
        assert!(n_parse_preds >= 1, "rec preds {preds:?}");
    }

    #[test]
    fn inter_frame_reference() {
        let cfg = H264Config {
            frames: 2,
            ..H264Config::paper(8)
        };
        let tr = h264dec(cfg);
        let g = TaskGraph::build(&tr);
        let (gw, gh) = cfg.grid();
        let per_frame = 2 * (gw * gh) as u32;
        // Frame 1's reconstruct (0,0) depends on frame 0's reconstruct
        // (0,0). The first task of each frame is its parse (0,0).
        let rec_f0 = rec_task_for_parse(&tr, 0);
        let rec_f1 = rec_task_for_parse(&tr, per_frame);
        assert!(g.preds(rec_f1).contains(&rec_f0.raw()));
    }

    #[test]
    fn parse_and_reconstruct_interleave() {
        // The wave pipeline: the first reconstruct appears right after the
        // first parse row, not after the whole parse stage.
        let cfg = H264Config {
            frames: 1,
            ..H264Config::paper(8)
        };
        let tr = h264dec(cfg);
        let (gw, _) = cfg.grid();
        assert_eq!(
            tr.kernel_name(tr.tasks()[gw as usize].kernel),
            "reconstruct"
        );
        assert_eq!(tr.kernel_name(tr.tasks()[gw as usize + 1].kernel), "parse");
    }

    #[test]
    fn wavefront_parallelism_grows_with_finer_blocks() {
        let coarse = TaskGraph::build(&h264dec(H264Config::paper(8))).parallelism();
        let fine = TaskGraph::build(&h264dec(H264Config::paper(4))).parallelism();
        assert!(fine.max_width >= coarse.max_width);
    }

    #[test]
    fn seq_exec_calibrated() {
        let tr = h264dec(H264Config::paper(8));
        let target = table1_row("h264dec", 8).unwrap().seq_exec;
        let err = (tr.sequential_time() as f64 - target as f64).abs() / target as f64;
        assert!(err < 0.01);
    }

    #[test]
    fn grid_rounds_up() {
        let cfg = H264Config::paper(8);
        assert_eq!(cfg.grid(), (15, 9));
        let cfg1 = H264Config::paper(1);
        assert_eq!(cfg1.grid(), (120, 68));
    }
}
