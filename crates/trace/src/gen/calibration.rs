//! Reference values from the paper's Table I, used to calibrate generated
//! trace durations (total sequential cycles) and to cross-check task counts
//! in the Table I regeneration experiment.

/// One row of the paper's Table I.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table1Row {
    /// Application name as printed in the paper.
    pub app: &'static str,
    /// Problem size (matrix dimension; frames for H264dec).
    pub problem: u64,
    /// Block size.
    pub block: u64,
    /// Number of tasks reported by the paper.
    pub tasks: usize,
    /// Dependence-count range reported by the paper (min, max).
    pub deps: (usize, usize),
    /// Average task size in cycles.
    pub avg_task_size: f64,
    /// Sequential execution time in cycles.
    pub seq_exec: u64,
}

/// The paper's Table I, row by row.
pub const TABLE1: &[Table1Row] = &[
    // Gauss-Seidel Heat
    row("heat", 2048, 256, 64, (5, 5), 3.51e6, 225_000_000),
    row("heat", 2048, 128, 256, (5, 5), 8.20e5, 207_000_000),
    row("heat", 2048, 64, 1024, (5, 5), 2.17e5, 211_000_000),
    row("heat", 2048, 32, 4096, (5, 5), 7.19e4, 241_000_000),
    // Lu
    row("lu", 2048, 256, 36, (2, 2), 5.67e7, 2_040_000_000),
    row("lu", 2048, 128, 136, (2, 2), 1.49e7, 2_040_000_000),
    row("lu", 2048, 64, 528, (2, 2), 4.13e6, 2_170_000_000),
    row("lu", 2048, 32, 2080, (2, 2), 1.53e6, 3_180_000_000),
    // SparseLu
    row("sparselu", 2048, 256, 34, (1, 3), 2.74e7, 930_000_000),
    row("sparselu", 2048, 128, 212, (1, 3), 4.36e6, 924_000_000),
    row("sparselu", 2048, 64, 1512, (1, 3), 6.47e5, 978_000_000),
    row("sparselu", 2048, 32, 11472, (1, 3), 8.28e4, 950_000_000),
    // Cholesky
    row("cholesky", 2048, 256, 120, (1, 3), 6.63e6, 761_000_000),
    row("cholesky", 2048, 128, 816, (1, 3), 9.71e5, 789_000_000),
    row("cholesky", 2048, 64, 5984, (1, 3), 1.47e5, 877_000_000),
    row("cholesky", 2048, 32, 45760, (1, 3), 2.94e4, 1_340_000_000),
    // H264dec (problem = 10 HD frames)
    row("h264dec", 10, 8, 2659, (2, 6), 2.06e6, 5_480_000_000),
    row("h264dec", 10, 4, 9306, (2, 6), 5.91e5, 5_500_000_000),
    row("h264dec", 10, 2, 35894, (2, 6), 1.53e5, 5_480_000_000),
    row("h264dec", 10, 1, 139934, (2, 6), 3.94e4, 5_510_000_000),
];

const fn row(
    app: &'static str,
    problem: u64,
    block: u64,
    tasks: usize,
    deps: (usize, usize),
    avg_task_size: f64,
    seq_exec: u64,
) -> Table1Row {
    Table1Row {
        app,
        problem,
        block,
        tasks,
        deps,
        avg_task_size,
        seq_exec,
    }
}

/// Looks up the Table I row for `(app, block_size)`.
pub fn table1_row(app: &str, block: u64) -> Option<&'static Table1Row> {
    TABLE1.iter().find(|r| r.app == app && r.block == block)
}

/// The paper's sequential execution time for `(app, block)`, used as the
/// duration-calibration target; falls back to a generic per-app total when
/// the block size is not in Table I.
pub fn seq_exec_target(app: &str, block: u64) -> u64 {
    if let Some(r) = table1_row(app, block) {
        return r.seq_exec;
    }
    // Block sizes outside Table I (used by some sweeps): interpolate from
    // the app's geometric-mean total; totals vary little with block size.
    let rows: Vec<_> = TABLE1.iter().filter(|r| r.app == app).collect();
    if rows.is_empty() {
        return 1_000_000_000;
    }
    let mean = rows.iter().map(|r| r.seq_exec as f64).sum::<f64>() / rows.len() as f64;
    mean as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_20_rows() {
        assert_eq!(TABLE1.len(), 20);
    }

    #[test]
    fn lookup_finds_rows() {
        let r = table1_row("cholesky", 64).unwrap();
        assert_eq!(r.tasks, 5984);
        assert!(table1_row("cholesky", 7).is_none());
        assert!(table1_row("nope", 64).is_none());
    }

    #[test]
    fn avg_size_consistent_with_seq_exec() {
        // AveTSize * #Tasks should be within ~25% of SeqExec for all rows
        // (the paper's own columns carry rounding).
        for r in TABLE1 {
            let prod = r.avg_task_size * r.tasks as f64;
            let ratio = prod / r.seq_exec as f64;
            assert!(
                (0.7..1.35).contains(&ratio),
                "{} bs {}: ratio {ratio}",
                r.app,
                r.block
            );
        }
    }

    #[test]
    fn fallback_target_is_sane() {
        let t = seq_exec_target("cholesky", 512);
        assert!(t > 5e8 as u64 && t < 2e9 as u64);
        assert_eq!(seq_exec_target("unknown", 1), 1_000_000_000);
    }
}
