//! The seven synthetic benchmarks of the paper (Section IV-C, Figure 7).
//!
//! Each testcase is a sequence of 100 tasks of length 1 cycle, "issued every
//! cycle", so the processing capacity of the prototype can be measured:
//!
//! * **Case1-3** — independent tasks with 0, 1 and 15 dependences.
//! * **Case4** — a single chain of 100 `inout` dependences.
//! * **Case5** — 10 sets of 10 consumers for the same producer.
//! * **Case6** — 10 sets of 10 producers for the same consumer.
//! * **Case7** — 10 sets of 10 mixed producers/consumers.

use crate::gen::layout::ArrayLayout;
use crate::task::Dependence;
use crate::trace::Trace;

/// Nominal number of tasks per synthetic testcase (paper: "a sequence of
/// 100 tasks"). Case5 and Case6 carry 110 tasks — ten sets of one producer
/// plus ten consumers (or vice versa) — so that the per-task dependence
/// counts match the paper's Table IV `#d1st/avg#d` row exactly.
pub const SYNTHETIC_TASKS: usize = 100;
/// Duration of each synthetic task (paper: "of length 1 cycle").
pub const SYNTHETIC_DURATION: u64 = 1;

/// Identifier of one of the seven synthetic testcases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Case {
    /// 100 independent tasks, no dependences.
    Case1,
    /// 100 independent tasks, 1 input dependence each (distinct addresses).
    Case2,
    /// 100 independent tasks, 15 input dependences each (distinct addresses).
    Case3,
    /// A single Producer-Producer chain of 100 `inout` dependences.
    Case4,
    /// 10 sets of 10 consumers for the same producer.
    Case5,
    /// 10 sets of 10 producers for the same consumer.
    Case6,
    /// 10 sets of 10 mixed producers/consumers.
    Case7,
}

impl Case {
    /// All seven testcases in paper order.
    pub const ALL: [Case; 7] = [
        Case::Case1,
        Case::Case2,
        Case::Case3,
        Case::Case4,
        Case::Case5,
        Case::Case6,
        Case::Case7,
    ];

    /// Paper-style name, e.g. `"Case4"`.
    pub fn name(self) -> &'static str {
        match self {
            Case::Case1 => "Case1",
            Case::Case2 => "Case2",
            Case::Case3 => "Case3",
            Case::Case4 => "Case4",
            Case::Case5 => "Case5",
            Case::Case6 => "Case6",
            Case::Case7 => "Case7",
        }
    }

    /// Whether the paper classifies the case as "independent" (Case1-3).
    pub fn is_independent(self) -> bool {
        matches!(self, Case::Case1 | Case::Case2 | Case::Case3)
    }
}

/// Generates the trace of one synthetic testcase.
pub fn synthetic(case: Case) -> Trace {
    let mut tr = Trace::new(case.name().to_lowercase());
    let k = tr.kernel("synthetic");
    // Both regions are word-strided (f64 element) arrays, as a benchmark
    // reading scalar elements would produce. Word stride matters: it
    // spreads one task's dependences over several DM sets, so a single
    // task can never pin a whole direct-hash set by itself (more than
    // `ways` same-set dependences within ONE task could never be stored,
    // which is why real OmpSs codes pass element addresses, not
    // line-aligned labels).
    let distinct = ArrayLayout::new(0x10_0000, 8);
    let shared = ArrayLayout::new(0x80_0000, 8);
    let mut fresh = 0u64;
    let mut next_fresh = || {
        fresh += 1;
        distinct.addr(fresh - 1)
    };

    match case {
        Case::Case1 => {
            for _ in 0..SYNTHETIC_TASKS {
                tr.push(k, [], SYNTHETIC_DURATION);
            }
        }
        Case::Case2 => {
            for _ in 0..SYNTHETIC_TASKS {
                tr.push(k, [Dependence::input(next_fresh())], SYNTHETIC_DURATION);
            }
        }
        Case::Case3 => {
            for _ in 0..SYNTHETIC_TASKS {
                let deps: Vec<_> = (0..15).map(|_| Dependence::input(next_fresh())).collect();
                tr.push(k, deps, SYNTHETIC_DURATION);
            }
        }
        Case::Case4 => {
            let a = shared.addr(0);
            for _ in 0..SYNTHETIC_TASKS {
                tr.push(k, [Dependence::inout(a)], SYNTHETIC_DURATION);
            }
        }
        Case::Case5 => {
            // 10 sets; each set: one producer writing A_s (plus a seed input
            // so every task carries 2 dependences, matching the paper's
            // avg#d = 2), followed by 10 consumers reading A_s.
            for s in 0..10u64 {
                let a = shared.addr(s);
                tr.push(
                    k,
                    [Dependence::input(next_fresh()), Dependence::inout(a)],
                    SYNTHETIC_DURATION,
                );
                for _ in 0..10 {
                    tr.push(
                        k,
                        [Dependence::input(a), Dependence::output(next_fresh())],
                        SYNTHETIC_DURATION,
                    );
                }
            }
        }
        Case::Case6 => {
            // 10 rounds of: one consumer reading the ten producer outputs of
            // the previous round (11 dependences, which is why the paper
            // reports #d1st = 11), then 10 single-dependence producers
            // rewriting those same addresses.
            let r = shared.addr(32);
            for _ in 0..10 {
                let mut deps: Vec<_> = (0..10).map(|i| Dependence::input(shared.addr(i))).collect();
                deps.push(Dependence::inout(r));
                tr.push(k, deps, SYNTHETIC_DURATION);
                for i in 0..10 {
                    tr.push(k, [Dependence::output(shared.addr(i))], SYNTHETIC_DURATION);
                }
            }
        }
        Case::Case7 => {
            // 10 layers of 10 tasks; every task consumes all ten outputs of
            // the previous layer and produces one output of its own layer:
            // 11 dependences per task, mixed producer/consumer roles.
            for s in 0..10u64 {
                let prev = 1 - s % 2; // ping-pong between two address banks
                let cur = s % 2;
                for i in 0..10u64 {
                    let mut deps: Vec<_> = (0..10)
                        .map(|j| Dependence::input(shared.addr(prev * 16 + j)))
                        .collect();
                    deps.push(Dependence::output(shared.addr(cur * 16 + i)));
                    tr.push(k, deps, SYNTHETIC_DURATION);
                }
            }
        }
    }
    tr
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TaskGraph;

    #[test]
    fn all_cases_have_expected_unit_tasks() {
        for c in Case::ALL {
            let tr = synthetic(c);
            let expected = match c {
                Case::Case5 | Case::Case6 => 110,
                _ => SYNTHETIC_TASKS,
            };
            assert_eq!(tr.len(), expected, "{c:?}");
            assert!(tr.iter().all(|t| t.duration == SYNTHETIC_DURATION));
        }
    }

    #[test]
    fn dep_counts_match_paper_row() {
        // Paper Table IV row "#d1st/avg#d".
        let expect = [
            (Case::Case1, 0.0, 0),
            (Case::Case2, 1.0, 1),
            (Case::Case3, 15.0, 15),
            (Case::Case4, 1.0, 1),
            (Case::Case5, 2.0, 2),
            (Case::Case6, 1.9, 11),
            (Case::Case7, 11.0, 11),
        ];
        for (c, avg, first) in expect {
            let tr = synthetic(c);
            let s = tr.stats();
            assert!(
                (s.avg_deps() - avg).abs() < 0.11,
                "{c:?}: avg {} vs {avg}",
                s.avg_deps()
            );
            assert_eq!(tr.tasks()[0].num_deps(), first, "{c:?} first-task deps");
        }
    }

    #[test]
    fn independent_cases_have_no_edges() {
        for c in [Case::Case1, Case::Case2, Case::Case3] {
            let g = TaskGraph::build(&synthetic(c));
            assert_eq!(g.num_edges(), 0, "{c:?}");
        }
    }

    #[test]
    fn case4_is_single_chain() {
        let g = TaskGraph::build(&synthetic(Case::Case4));
        let p = g.parallelism();
        assert_eq!(p.critical_path, 100);
        assert_eq!(p.max_width, 1);
    }

    #[test]
    fn case5_fanout_structure() {
        let g = TaskGraph::build(&synthetic(Case::Case5));
        // Each producer has 10 consumer successors.
        let producer = crate::TaskId::new(0);
        assert_eq!(g.succs(producer).len(), 10);
        // Consumers of one set are mutually independent.
        let p = g.parallelism();
        assert!(p.max_width >= 10, "width {}", p.max_width);
    }

    #[test]
    fn case6_consumer_waits_for_all_producers() {
        let g = TaskGraph::build(&synthetic(Case::Case6));
        // Second-round consumer is task 11; it must depend on the 10
        // producers of round one (tasks 1..=10) plus the previous consumer
        // (task 0) through the shared inout register.
        let mut preds = g.preds(crate::TaskId::new(11)).to_vec();
        preds.sort_unstable();
        assert_eq!(preds, (0..=10).collect::<Vec<u32>>());
    }

    #[test]
    fn case7_layers_are_dense() {
        let g = TaskGraph::build(&synthetic(Case::Case7));
        // A task in layer 2 depends on all ten tasks of layer 1.
        let t = crate::TaskId::new(10);
        assert_eq!(g.preds(t).len(), 10);
        // All tasks carry 11 dependences.
        let tr = synthetic(Case::Case7);
        assert!(tr.iter().all(|t| t.num_deps() == 11));
    }

    #[test]
    fn case_names() {
        assert_eq!(Case::Case5.name(), "Case5");
        assert!(Case::Case2.is_independent());
        assert!(!Case::Case6.is_independent());
    }

    #[test]
    fn traces_fit_hardware_dep_limit() {
        for c in Case::ALL {
            let tr = synthetic(c);
            assert!(tr.iter().all(|t| t.num_deps() <= crate::MAX_DEPS_PER_TASK));
        }
    }
}
