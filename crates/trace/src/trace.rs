//! The [`Trace`] container: an ordered stream of task descriptors.
//!
//! A trace is the reproduction's stand-in for the instrumented OmpSs runs of
//! the paper (Section IV-A): it records, in creation order, every task with
//! its dependences and execution duration. All three execution engines
//! (Picos hardware model, software runtime model, perfect scheduler) consume
//! the same trace, exactly as the paper feeds the same traces to the HIL
//! platform, Nanos++ and the perfect simulator.

use crate::task::{Dependence, KernelClass, TaskDescriptor, TaskId};
use std::fmt;

/// An ordered stream of tasks plus workload metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Human-readable workload name (e.g. `"cholesky"`, `"case4"`).
    pub name: String,
    /// Problem size (matrix dimension, frame count, ...), if meaningful.
    pub problem_size: Option<u64>,
    /// Block size / task granularity knob, if meaningful.
    pub block_size: Option<u64>,
    /// Kernel-class name table; indexed by [`KernelClass`].
    pub kernel_names: Vec<String>,
    tasks: Vec<TaskDescriptor>,
    /// Taskwait positions: a barrier at position `b` means tasks with id
    /// `>= b` may only be created once every task with id `< b` finished
    /// (OmpSs `#pragma omp taskwait`, paper Section II-A). Sorted,
    /// deduplicated, strictly inside `1..len`.
    barriers: Vec<u32>,
}

impl Trace {
    /// Creates an empty trace with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Trace {
            name: name.into(),
            problem_size: None,
            block_size: None,
            kernel_names: vec!["task".to_string()],
            tasks: Vec::new(),
            barriers: Vec::new(),
        }
    }

    /// Sets the problem/block size metadata (builder style).
    pub fn with_sizes(mut self, problem_size: u64, block_size: u64) -> Self {
        self.problem_size = Some(problem_size);
        self.block_size = Some(block_size);
        self
    }

    /// Registers a kernel name and returns its class index.
    ///
    /// If the name is already registered, the existing index is returned.
    pub fn kernel(&mut self, name: &str) -> KernelClass {
        if let Some(pos) = self.kernel_names.iter().position(|n| n == name) {
            return KernelClass(pos as u16);
        }
        self.kernel_names.push(name.to_string());
        KernelClass((self.kernel_names.len() - 1) as u16)
    }

    /// Returns the name of a kernel class.
    pub fn kernel_name(&self, class: KernelClass) -> &str {
        self.kernel_names
            .get(class.0 as usize)
            .map(String::as_str)
            .unwrap_or("?")
    }

    /// Appends a task built from dependences and a duration; returns its id.
    ///
    /// The task id is assigned from the current trace length, so tasks are
    /// always in creation order.
    pub fn push(
        &mut self,
        kernel: KernelClass,
        deps: impl IntoIterator<Item = Dependence>,
        duration: u64,
    ) -> TaskId {
        let id = TaskId::new(self.tasks.len() as u32);
        self.tasks
            .push(TaskDescriptor::new(id, kernel, deps, duration));
        id
    }

    /// Records an OmpSs `taskwait` at the current position: every task
    /// created after this call waits until all tasks created before it
    /// have finished. No-op at position zero or right after another
    /// taskwait.
    pub fn push_taskwait(&mut self) {
        let pos = self.tasks.len() as u32;
        if pos == 0 || self.barriers.last() == Some(&pos) {
            return;
        }
        self.barriers.push(pos);
    }

    /// The taskwait positions, sorted ascending.
    pub fn barriers(&self) -> &[u32] {
        &self.barriers
    }

    /// The highest task index (exclusive) that may be created once
    /// `finished` tasks have completed: creation stops at the first
    /// taskwait whose prefix has not fully finished.
    pub fn creation_limit(&self, finished: usize) -> usize {
        for &b in &self.barriers {
            if finished < b as usize {
                return b as usize;
            }
        }
        self.tasks.len()
    }

    /// The taskwait segments as index ranges (one range when there are no
    /// barriers).
    pub fn segments(&self) -> Vec<std::ops::Range<usize>> {
        let mut out = Vec::with_capacity(self.barriers.len() + 1);
        let mut start = 0usize;
        for &b in &self.barriers {
            out.push(start..b as usize);
            start = b as usize;
        }
        out.push(start..self.tasks.len());
        out
    }

    /// Number of tasks in the trace.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the trace has no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// The tasks in creation order.
    pub fn tasks(&self) -> &[TaskDescriptor] {
        &self.tasks
    }

    /// Returns a task by id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn task(&self, id: TaskId) -> &TaskDescriptor {
        &self.tasks[id.index()]
    }

    /// Iterates over the tasks in creation order.
    pub fn iter(&self) -> std::slice::Iter<'_, TaskDescriptor> {
        self.tasks.iter()
    }

    /// Total sequential execution time: the sum of all task durations.
    ///
    /// This is the baseline against which all speedups are computed
    /// (paper: "Speedup shown in this paper is computed against the
    /// sequential execution time").
    pub fn sequential_time(&self) -> u64 {
        self.tasks.iter().map(|t| t.duration).sum()
    }

    /// Multiplies every task duration by `num / den`, rounding to nearest,
    /// with a minimum duration of 1 cycle per task.
    ///
    /// Used to calibrate generated traces against the paper's Table I
    /// sequential execution times.
    pub fn scale_durations(&mut self, num: u64, den: u64) {
        assert!(den != 0, "scale denominator must be non-zero");
        for t in &mut self.tasks {
            let scaled = (t.duration as u128 * num as u128 + den as u128 / 2) / den as u128;
            t.duration = (scaled as u64).max(1);
        }
    }

    /// Rescales durations so the total sequential time is as close as
    /// possible to `target` (each task keeps its relative weight).
    pub fn calibrate_to(&mut self, target: u64) {
        let total = self.sequential_time();
        if total == 0 || self.tasks.is_empty() {
            return;
        }
        self.scale_durations(target, total);
    }

    /// Summary statistics of the trace (regenerates one Table I row).
    pub fn stats(&self) -> TraceStats {
        let n = self.tasks.len();
        let mut min_deps = usize::MAX;
        let mut max_deps = 0usize;
        let mut total_deps = 0usize;
        for t in &self.tasks {
            min_deps = min_deps.min(t.num_deps());
            max_deps = max_deps.max(t.num_deps());
            total_deps += t.num_deps();
        }
        if n == 0 {
            min_deps = 0;
        }
        let seq = self.sequential_time();
        TraceStats {
            name: self.name.clone(),
            problem_size: self.problem_size,
            block_size: self.block_size,
            num_tasks: n,
            min_deps,
            max_deps,
            total_deps,
            avg_task_size: if n == 0 { 0.0 } else { seq as f64 / n as f64 },
            sequential_time: seq,
        }
    }

    /// Serializes the trace to a JSON string (hand-rolled encoder; the
    /// build environment has no crates.io access for `serde`).
    pub fn to_json(&self) -> String {
        crate::json::trace_to_json(self)
    }

    /// Deserializes a trace from JSON produced by [`Trace::to_json`].
    ///
    /// # Errors
    ///
    /// Returns an error if the input is not a valid trace encoding.
    pub fn from_json(s: &str) -> Result<Self, crate::json::JsonError> {
        crate::json::trace_from_json(s)
    }

    /// Internal constructor for the JSON decoder: rebuilds a trace from its
    /// parts without re-merging dependences (they were merged at encode
    /// time).
    pub(crate) fn from_parts(
        name: String,
        problem_size: Option<u64>,
        block_size: Option<u64>,
        kernel_names: Vec<String>,
        tasks: Vec<TaskDescriptor>,
        barriers: Vec<u32>,
    ) -> Self {
        Trace {
            name,
            problem_size,
            block_size,
            kernel_names,
            tasks,
            barriers,
        }
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} tasks)", self.name, self.tasks.len())
    }
}

impl Extend<TaskDescriptor> for Trace {
    /// Extends the trace, re-assigning ids to preserve creation order.
    fn extend<T: IntoIterator<Item = TaskDescriptor>>(&mut self, iter: T) {
        for t in iter {
            self.push(t.kernel, t.deps.iter().copied(), t.duration);
        }
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a TaskDescriptor;
    type IntoIter = std::slice::Iter<'a, TaskDescriptor>;

    fn into_iter(self) -> Self::IntoIter {
        self.tasks.iter()
    }
}

/// Summary statistics for a trace; the columns of the paper's Table I.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Workload name.
    pub name: String,
    /// Problem size, if meaningful.
    pub problem_size: Option<u64>,
    /// Block size, if meaningful.
    pub block_size: Option<u64>,
    /// Number of tasks (Table I `#Tasks`).
    pub num_tasks: usize,
    /// Minimum dependences per task.
    pub min_deps: usize,
    /// Maximum dependences per task (with `min_deps`, Table I `#Dep`).
    pub max_deps: usize,
    /// Total dependences over all tasks.
    pub total_deps: usize,
    /// Average task size in cycles (Table I `AveTSize`).
    pub avg_task_size: f64,
    /// Total sequential execution time in cycles (Table I `SeqExec`).
    pub sequential_time: u64,
}

impl TraceStats {
    /// Average number of dependences per task.
    pub fn avg_deps(&self) -> f64 {
        if self.num_tasks == 0 {
            0.0
        } else {
            self.total_deps as f64 / self.num_tasks as f64
        }
    }

    /// The `#Dep` column of Table I: a single number when min == max,
    /// otherwise a `min-max` range.
    pub fn dep_range(&self) -> String {
        if self.min_deps == self.max_deps {
            format!("{}", self.min_deps)
        } else {
            format!("{}-{}", self.min_deps, self.max_deps)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::Direction;

    fn small_trace() -> Trace {
        let mut tr = Trace::new("test").with_sizes(2048, 256);
        let k = tr.kernel("work");
        tr.push(k, [Dependence::inout(0x1000)], 100);
        tr.push(
            k,
            [Dependence::input(0x1000), Dependence::output(0x2000)],
            200,
        );
        tr.push(k, [], 300);
        tr
    }

    #[test]
    fn push_assigns_sequential_ids() {
        let tr = small_trace();
        for (i, t) in tr.iter().enumerate() {
            assert_eq!(t.id.index(), i);
        }
    }

    #[test]
    fn sequential_time_is_sum() {
        assert_eq!(small_trace().sequential_time(), 600);
    }

    #[test]
    fn kernel_registration_dedupes() {
        let mut tr = Trace::new("t");
        let a = tr.kernel("potrf");
        let b = tr.kernel("gemm");
        let a2 = tr.kernel("potrf");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(tr.kernel_name(a), "potrf");
        assert_eq!(tr.kernel_name(b), "gemm");
    }

    #[test]
    fn stats_match_contents() {
        let s = small_trace().stats();
        assert_eq!(s.num_tasks, 3);
        assert_eq!(s.min_deps, 0);
        assert_eq!(s.max_deps, 2);
        assert_eq!(s.total_deps, 3);
        assert_eq!(s.sequential_time, 600);
        assert!((s.avg_task_size - 200.0).abs() < 1e-9);
        assert_eq!(s.dep_range(), "0-2");
        assert!((s.avg_deps() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dep_range_single_value() {
        let mut tr = Trace::new("t");
        let k = KernelClass::GENERIC;
        tr.push(k, [Dependence::inout(0x10)], 1);
        tr.push(k, [Dependence::inout(0x20)], 1);
        assert_eq!(tr.stats().dep_range(), "1");
    }

    #[test]
    fn calibrate_to_hits_target() {
        let mut tr = small_trace();
        tr.calibrate_to(6_000_000);
        let total = tr.sequential_time();
        // Within rounding of the per-task scaling.
        assert!((total as i64 - 6_000_000i64).abs() < 10, "total={total}");
        // Relative weights preserved: 1:2:3.
        let d: Vec<_> = tr.iter().map(|t| t.duration).collect();
        assert!(d[1] > d[0] && d[2] > d[1]);
    }

    #[test]
    fn scale_durations_minimum_one() {
        let mut tr = Trace::new("t");
        tr.push(KernelClass::GENERIC, [], 1);
        tr.scale_durations(1, 1000);
        assert_eq!(tr.tasks()[0].duration, 1);
    }

    #[test]
    fn json_roundtrip() {
        let tr = small_trace();
        let s = tr.to_json();
        let back = Trace::from_json(&s).unwrap();
        assert_eq!(tr, back);
    }

    #[test]
    fn taskwait_positions_and_segments() {
        let mut tr = Trace::new("t");
        let k = KernelClass::GENERIC;
        tr.push_taskwait(); // at 0: no-op
        tr.push(k, [], 1);
        tr.push(k, [], 1);
        tr.push_taskwait();
        tr.push_taskwait(); // duplicate: no-op
        tr.push(k, [], 1);
        assert_eq!(tr.barriers(), &[2]);
        assert_eq!(tr.segments(), vec![0..2, 2..3]);
    }

    #[test]
    fn creation_limit_respects_barriers() {
        let mut tr = Trace::new("t");
        let k = KernelClass::GENERIC;
        for _ in 0..3 {
            tr.push(k, [], 1);
        }
        tr.push_taskwait();
        for _ in 0..2 {
            tr.push(k, [], 1);
        }
        assert_eq!(tr.creation_limit(0), 3);
        assert_eq!(tr.creation_limit(2), 3);
        assert_eq!(tr.creation_limit(3), 5);
        assert_eq!(tr.creation_limit(5), 5);
    }

    #[test]
    fn barriers_survive_serialization() {
        let mut tr = Trace::new("t");
        tr.push(KernelClass::GENERIC, [], 1);
        tr.push_taskwait();
        tr.push(KernelClass::GENERIC, [], 1);
        let back = Trace::from_json(&tr.to_json()).unwrap();
        assert_eq!(back.barriers(), &[1]);
    }

    #[test]
    fn merged_duplicate_addr_in_push() {
        let mut tr = Trace::new("t");
        tr.push(
            KernelClass::GENERIC,
            [Dependence::input(0x10), Dependence::output(0x10)],
            1,
        );
        assert_eq!(tr.task(TaskId::new(0)).num_deps(), 1);
        assert_eq!(tr.task(TaskId::new(0)).deps[0].dir, Direction::InOut);
    }

    #[test]
    fn display_and_extend() {
        let mut tr = small_trace();
        assert_eq!(tr.to_string(), "test (3 tasks)");
        let extra = vec![TaskDescriptor::new(
            TaskId::new(99),
            KernelClass::GENERIC,
            [],
            7,
        )];
        tr.extend(extra);
        assert_eq!(tr.len(), 4);
        // Id re-assigned to maintain creation order.
        assert_eq!(tr.tasks()[3].id.index(), 3);
    }
}
