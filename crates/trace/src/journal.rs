//! Session arrival journal: the accepted input stream of a streaming
//! session, with a stable JSON encoding for crash recovery.
//!
//! A streaming session's schedule is a deterministic function of what it
//! *accepted*: the ordered stream of admitted submissions, taskwait
//! barriers and `advance_to` time assertions. (Rejected submissions and
//! `step` calls don't belong in that stream — a backpressured submit
//! records nothing, and `step` only advances the clock when the session is
//! ingest-blocked, where a replaying driver is forced to make the same
//! advances.) Journaling that stream therefore suffices to rebuild the
//! session bit-exactly after a crash: feed the ops of a [`SessionJournal`]
//! into a fresh session and it reaches the same state, cycle for cycle.
//!
//! The `picos_runtime` crate provides the recording wrapper
//! (`JournaledSession`) and the replay driver (`replay_journal`); this
//! module owns the data model and its JSON codec so the journal can be
//! persisted next to the traces it replays.
//!
//! # Format (version 1)
//!
//! ```json
//! {"version":1,"ops":[
//!   {"op":"submit","task":{"id":0,"kernel":0,"duration":100,
//!                          "deps":[{"addr":4096,"dir":"inout"}]}},
//!   {"op":"barrier"},
//!   {"op":"advance","cycle":4096}
//! ]}
//! ```
//!
//! The `task` object is exactly the trace format's task encoding.

use crate::json::{
    as_arr, as_str, as_u64, bad, parse_value, task_from_value, task_to_json, JsonError, Value,
};
use crate::task::TaskDescriptor;

/// One accepted input operation of a streaming session, in arrival order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalOp {
    /// A task submission that the session **accepted** (backpressured
    /// offers are not part of the input stream).
    Submit(TaskDescriptor),
    /// An OmpSs `taskwait` declaration.
    Barrier,
    /// An `advance_to(cycle)` assertion that no input arrives earlier.
    AdvanceTo(u64),
}

/// The ordered record of everything a streaming session accepted,
/// sufficient to rebuild the session bit-exactly by replay.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SessionJournal {
    ops: Vec<JournalOp>,
}

impl SessionJournal {
    /// An empty journal.
    pub fn new() -> Self {
        SessionJournal::default()
    }

    /// Records an accepted task submission.
    pub fn record_submit(&mut self, task: &TaskDescriptor) {
        self.ops.push(JournalOp::Submit(task.clone()));
    }

    /// Pre-sizes the journal for at least `additional` further ops.
    pub fn reserve(&mut self, additional: usize) {
        self.ops.reserve(additional);
    }

    /// Records a taskwait barrier.
    pub fn record_barrier(&mut self) {
        self.ops.push(JournalOp::Barrier);
    }

    /// Records an `advance_to` time assertion.
    pub fn record_advance_to(&mut self, cycle: u64) {
        self.ops.push(JournalOp::AdvanceTo(cycle));
    }

    /// The recorded operations, in arrival order.
    pub fn ops(&self) -> &[JournalOp] {
        &self.ops
    }

    /// Number of recorded operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The journal suffix starting at op index `from` (a checkpoint
    /// cursor), as its own journal. Indexes past the end yield an empty
    /// journal.
    pub fn tail(&self, from: usize) -> SessionJournal {
        SessionJournal {
            ops: self.ops[from.min(self.ops.len())..].to_vec(),
        }
    }

    /// Number of accepted submissions in the journal.
    pub fn submitted(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, JournalOp::Submit(_)))
            .count()
    }

    /// Encodes the journal as versioned JSON (see the module docs).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(32 + self.ops.len() * 48);
        out.push_str("{\"version\":1,\"ops\":[");
        for (i, op) in self.ops.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            match op {
                JournalOp::Submit(t) => {
                    out.push_str("{\"op\":\"submit\",\"task\":");
                    task_to_json(&mut out, t);
                    out.push('}');
                }
                JournalOp::Barrier => out.push_str("{\"op\":\"barrier\"}"),
                JournalOp::AdvanceTo(c) => {
                    out.push_str(&format!("{{\"op\":\"advance\",\"cycle\":{c}}}"));
                }
            }
        }
        out.push_str("]}");
        out
    }

    /// Decodes a journal from its JSON encoding.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] describing the first structural problem:
    /// malformed JSON, an unsupported version, an unknown op kind, or an
    /// invalid task object.
    pub fn from_json(s: &str) -> Result<Self, JsonError> {
        let Value::Obj(top) = parse_value(s)? else {
            return Err(bad("journal must be a JSON object"));
        };
        let version = as_u64(
            top.get("version")
                .ok_or_else(|| bad("journal missing version"))?,
            "journal version",
        )?;
        if version != 1 {
            return Err(bad(format!("unsupported journal version {version}")));
        }
        let mut ops = Vec::new();
        for (i, ov) in as_arr(top.get("ops"), "ops")?.iter().enumerate() {
            let Value::Obj(o) = ov else {
                return Err(bad(format!("journal op {i} must be an object")));
            };
            let kind = as_str(
                o.get("op").ok_or_else(|| bad("journal op missing kind"))?,
                "op kind",
            )?;
            match kind {
                "submit" => {
                    let tv = o
                        .get("task")
                        .ok_or_else(|| bad(format!("submit op {i} missing task")))?;
                    ops.push(JournalOp::Submit(task_from_value(tv, i)?));
                }
                "barrier" => ops.push(JournalOp::Barrier),
                "advance" => {
                    let cycle = as_u64(
                        o.get("cycle")
                            .ok_or_else(|| bad(format!("advance op {i} missing cycle")))?,
                        "advance cycle",
                    )?;
                    ops.push(JournalOp::AdvanceTo(cycle));
                }
                other => return Err(bad(format!("unknown journal op '{other}'"))),
            }
        }
        Ok(SessionJournal { ops })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{Dependence, KernelClass, TaskId};

    fn sample() -> SessionJournal {
        let mut j = SessionJournal::new();
        j.record_submit(&TaskDescriptor::new(
            TaskId::new(0),
            KernelClass(2),
            [Dependence::inout(0x4000), Dependence::input(u64::MAX - 63)],
            17,
        ));
        j.record_barrier();
        j.record_submit(&TaskDescriptor::new(
            TaskId::new(1),
            KernelClass::GENERIC,
            [],
            1,
        ));
        j.record_advance_to(123_456_789_012);
        j
    }

    #[test]
    fn roundtrips_through_json() {
        let j = sample();
        assert_eq!(j.len(), 4);
        assert_eq!(j.submitted(), 2);
        let back = SessionJournal::from_json(&j.to_json()).unwrap();
        assert_eq!(j, back);
    }

    #[test]
    fn empty_journal_roundtrips() {
        let j = SessionJournal::new();
        assert!(j.is_empty());
        let back = SessionJournal::from_json(&j.to_json()).unwrap();
        assert_eq!(j, back);
    }

    #[test]
    fn rejects_malformed_journals() {
        assert!(SessionJournal::from_json("not json").is_err());
        assert!(SessionJournal::from_json("{}").is_err());
        assert!(SessionJournal::from_json("{\"version\":2,\"ops\":[]}").is_err());
        assert!(SessionJournal::from_json("{\"version\":1,\"ops\":[{\"op\":\"warp\"}]}").is_err());
        assert!(
            SessionJournal::from_json("{\"version\":1,\"ops\":[{\"op\":\"submit\"}]}").is_err()
        );
        assert!(
            SessionJournal::from_json("{\"version\":1,\"ops\":[{\"op\":\"advance\"}]}").is_err()
        );
    }
}
