//! Ground-truth dataflow graph of a trace.
//!
//! The graph applies the OmpSs dependence semantics the Picos hardware
//! implements: within program (creation) order, a reader depends on the last
//! writer of its address (RAW), and a writer depends on the last writer (WAW)
//! and on every reader since that writer (WAR).
//!
//! The graph serves three purposes in the reproduction:
//! * the perfect (roofline) scheduler runs directly on it,
//! * execution engines are validated against it (every execution order must
//!   be one of its topological orders),
//! * its critical path and parallelism profile explain the scalability
//!   ceilings of Figure 11.

use crate::task::TaskId;
use crate::trace::Trace;
use std::collections::HashMap;

/// Immutable dataflow graph over the tasks of a trace.
#[derive(Debug, Clone)]
pub struct TaskGraph {
    preds: Vec<Vec<u32>>,
    succs: Vec<Vec<u32>>,
    durations: Vec<u64>,
    num_edges: usize,
    /// Taskwait positions, inherited from the trace: tasks at or after a
    /// barrier implicitly depend on every task before it.
    barriers: Vec<u32>,
}

impl TaskGraph {
    /// Builds the dataflow graph of a trace.
    ///
    /// Runs the canonical address-map dependence analysis: for every address
    /// it tracks the last writer and the readers since that write, adding
    /// RAW, WAR and WAW edges. Duplicate edges between the same task pair
    /// are collapsed.
    pub fn build(trace: &Trace) -> Self {
        struct AddrState {
            last_writer: Option<u32>,
            readers: Vec<u32>,
        }
        let n = trace.len();
        let mut preds: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut succs: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut addr_map: HashMap<u64, AddrState> = HashMap::new();
        let mut num_edges = 0usize;

        let add_edge = |from: u32,
                        to: u32,
                        preds: &mut Vec<Vec<u32>>,
                        succs: &mut Vec<Vec<u32>>,
                        num_edges: &mut usize| {
            debug_assert!(from < to, "dependence edges must point forward");
            // Predecessor lists are short (<= 15 addresses, few edges per
            // address); linear duplicate check is cheaper than hashing.
            if !preds[to as usize].contains(&from) {
                preds[to as usize].push(from);
                succs[from as usize].push(to);
                *num_edges += 1;
            }
        };

        for t in trace.iter() {
            let me = t.id.raw();
            for d in t.deps.iter() {
                let st = addr_map.entry(d.addr).or_insert(AddrState {
                    last_writer: None,
                    readers: Vec::new(),
                });
                if d.dir.reads() {
                    if let Some(w) = st.last_writer {
                        add_edge(w, me, &mut preds, &mut succs, &mut num_edges);
                    }
                }
                if d.dir.writes() {
                    if let Some(w) = st.last_writer {
                        add_edge(w, me, &mut preds, &mut succs, &mut num_edges);
                    }
                    for &r in &st.readers {
                        if r != me {
                            add_edge(r, me, &mut preds, &mut succs, &mut num_edges);
                        }
                    }
                    st.last_writer = Some(me);
                    st.readers.clear();
                }
                if d.dir.reads() && !d.dir.writes() {
                    st.readers.push(me);
                }
            }
        }

        TaskGraph {
            preds,
            succs,
            durations: trace.iter().map(|t| t.duration).collect(),
            num_edges,
            barriers: trace.barriers().to_vec(),
        }
    }

    /// Taskwait positions inherited from the trace.
    pub fn barriers(&self) -> &[u32] {
        &self.barriers
    }

    /// Number of tasks (nodes).
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }

    /// Number of (deduplicated) dependence edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Predecessors (tasks this task waits for).
    pub fn preds(&self, id: TaskId) -> &[u32] {
        &self.preds[id.index()]
    }

    /// Successors (tasks waiting for this task).
    pub fn succs(&self, id: TaskId) -> &[u32] {
        &self.succs[id.index()]
    }

    /// Duration of a task in cycles.
    pub fn duration(&self, id: TaskId) -> u64 {
        self.durations[id.index()]
    }

    /// Tasks with no predecessors, in creation order.
    pub fn roots(&self) -> Vec<TaskId> {
        (0..self.len())
            .filter(|&i| self.preds[i].is_empty())
            .map(|i| TaskId::new(i as u32))
            .collect()
    }

    /// Checks that `order` (task indices in execution order) is a legal
    /// topological order of the graph, including the taskwait barriers.
    ///
    /// Used by integration tests to validate execution engines.
    pub fn is_topological(&self, order: &[u32]) -> bool {
        if order.len() != self.len() {
            return false;
        }
        let mut pos = vec![usize::MAX; self.len()];
        for (i, &t) in order.iter().enumerate() {
            let Some(slot) = pos.get_mut(t as usize) else {
                return false;
            };
            if *slot != usize::MAX {
                return false; // duplicate
            }
            *slot = i;
        }
        for (to, preds) in self.preds.iter().enumerate() {
            for &from in preds {
                if pos[from as usize] >= pos[to] {
                    return false;
                }
            }
        }
        // Barriers: every task before a taskwait must execute before every
        // task after it.
        for &b in &self.barriers {
            let b = b as usize;
            let before_max = pos[..b].iter().copied().max().unwrap_or(0);
            let after_min = pos[b..].iter().copied().min().unwrap_or(usize::MAX);
            if before_max >= after_min {
                return false;
            }
        }
        true
    }

    /// Critical path length in cycles: the longest duration-weighted chain
    /// (taskwait barriers included).
    ///
    /// This bounds the makespan of any schedule, so
    /// `sequential_time / critical_path` is the roofline speedup with
    /// unlimited workers.
    pub fn critical_path(&self) -> u64 {
        // Tasks are already topologically sorted by creation order (edges
        // only point forward), so a single forward pass suffices. A
        // barrier raises the floor to the maximum finish so far.
        let n = self.len();
        let mut finish = vec![0u64; n];
        let mut best = 0u64;
        let mut floor = 0u64;
        let mut next_barrier = self.barriers.iter().copied().peekable();
        for i in 0..n {
            if next_barrier.peek() == Some(&(i as u32)) {
                next_barrier.next();
                floor = best;
            }
            let dep_start = self.preds[i]
                .iter()
                .map(|&p| finish[p as usize])
                .max()
                .unwrap_or(0);
            let start = dep_start.max(floor);
            finish[i] = start + self.durations[i];
            best = best.max(finish[i]);
        }
        best
    }

    /// Parallelism profile under infinite workers and zero overhead
    /// (taskwait barriers included).
    pub fn parallelism(&self) -> ParallelismProfile {
        let n = self.len();
        let mut finish = vec![0u64; n];
        let mut events: Vec<(u64, i64)> = Vec::with_capacity(2 * n);
        let mut total_work = 0u64;
        let mut best = 0u64;
        let mut floor = 0u64;
        let mut next_barrier = self.barriers.iter().copied().peekable();
        for i in 0..n {
            if next_barrier.peek() == Some(&(i as u32)) {
                next_barrier.next();
                floor = best;
            }
            let dep_start = self.preds[i]
                .iter()
                .map(|&p| finish[p as usize])
                .max()
                .unwrap_or(0);
            let start = dep_start.max(floor);
            finish[i] = start + self.durations[i];
            best = best.max(finish[i]);
            total_work += self.durations[i];
            events.push((start, 1));
            events.push((finish[i], -1));
        }
        let makespan = finish.iter().copied().max().unwrap_or(0);
        events.sort_unstable();
        let mut cur = 0i64;
        let mut max_width = 0i64;
        for (_, delta) in events {
            cur += delta;
            max_width = max_width.max(cur);
        }
        ParallelismProfile {
            critical_path: makespan,
            total_work,
            max_width: max_width.max(0) as usize,
            avg_parallelism: if makespan == 0 {
                0.0
            } else {
                total_work as f64 / makespan as f64
            },
        }
    }
}

/// Summary of the intrinsic parallelism of a task graph.
#[derive(Debug, Clone, PartialEq)]
pub struct ParallelismProfile {
    /// Longest duration-weighted dependence chain, in cycles.
    pub critical_path: u64,
    /// Sum of all task durations, in cycles.
    pub total_work: u64,
    /// Maximum number of tasks simultaneously in flight.
    pub max_width: usize,
    /// `total_work / critical_path`: the average available parallelism.
    pub avg_parallelism: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{Dependence, KernelClass};

    fn k() -> KernelClass {
        KernelClass::GENERIC
    }

    /// chain: T0 -> T1 -> T2 through inout on the same address.
    fn chain_trace() -> Trace {
        let mut tr = Trace::new("chain");
        for _ in 0..3 {
            tr.push(k(), [Dependence::inout(0xA0)], 10);
        }
        tr
    }

    #[test]
    fn chain_edges() {
        let g = TaskGraph::build(&chain_trace());
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.preds(TaskId::new(1)), &[0]);
        assert_eq!(g.preds(TaskId::new(2)), &[1]);
        assert_eq!(g.succs(TaskId::new(0)), &[1]);
        assert_eq!(g.roots(), vec![TaskId::new(0)]);
        assert_eq!(g.critical_path(), 30);
    }

    #[test]
    fn raw_edge_reader_after_writer() {
        let mut tr = Trace::new("raw");
        tr.push(k(), [Dependence::output(0x10)], 5);
        tr.push(k(), [Dependence::input(0x10)], 5);
        let g = TaskGraph::build(&tr);
        assert_eq!(g.preds(TaskId::new(1)), &[0]);
    }

    #[test]
    fn no_edge_between_readers() {
        let mut tr = Trace::new("rr");
        tr.push(k(), [Dependence::input(0x10)], 5);
        tr.push(k(), [Dependence::input(0x10)], 5);
        let g = TaskGraph::build(&tr);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.roots().len(), 2);
    }

    #[test]
    fn war_edge_writer_after_readers() {
        let mut tr = Trace::new("war");
        tr.push(k(), [Dependence::input(0x10)], 5); // T0 reads (no prior writer)
        tr.push(k(), [Dependence::input(0x10)], 5); // T1 reads
        tr.push(k(), [Dependence::output(0x10)], 5); // T2 writes: WAR on T0, T1
        let g = TaskGraph::build(&tr);
        let mut p = g.preds(TaskId::new(2)).to_vec();
        p.sort_unstable();
        assert_eq!(p, vec![0, 1]);
    }

    #[test]
    fn waw_edge_between_writers() {
        let mut tr = Trace::new("waw");
        tr.push(k(), [Dependence::output(0x10)], 5);
        tr.push(k(), [Dependence::output(0x10)], 5);
        let g = TaskGraph::build(&tr);
        assert_eq!(g.preds(TaskId::new(1)), &[0]);
    }

    #[test]
    fn readers_cleared_after_write() {
        // T0 reads, T1 writes, T2 writes: T2 must NOT depend on T0.
        let mut tr = Trace::new("clear");
        tr.push(k(), [Dependence::input(0x10)], 5);
        tr.push(k(), [Dependence::output(0x10)], 5);
        tr.push(k(), [Dependence::output(0x10)], 5);
        let g = TaskGraph::build(&tr);
        assert_eq!(g.preds(TaskId::new(2)), &[1]);
    }

    #[test]
    fn paper_figure5_chain() {
        // The six-task example of paper Figure 5: T0 inout, T1-T3 in,
        // T4, T5 producers (inout).
        let mut tr = Trace::new("fig5");
        tr.push(k(), [Dependence::inout(0xA0)], 1); // Task1
        tr.push(k(), [Dependence::input(0xA0)], 1); // Task2
        tr.push(k(), [Dependence::input(0xA0)], 1); // Task3
        tr.push(k(), [Dependence::input(0xA0)], 1); // Task4
        tr.push(k(), [Dependence::inout(0xA0)], 1); // Task5
        tr.push(k(), [Dependence::inout(0xA0)], 1); // Task6
        let g = TaskGraph::build(&tr);
        // Consumers depend on Task1 only.
        for i in 1..=3 {
            assert_eq!(g.preds(TaskId::new(i)), &[0], "task {i}");
        }
        // Task5 (producer) depends on the readers T1..T3 (WAR) + T0 (WAW).
        let mut p = g.preds(TaskId::new(4)).to_vec();
        p.sort_unstable();
        assert_eq!(p, vec![0, 1, 2, 3]);
        // Task6 depends only on Task5 (WAW; readers were cleared).
        assert_eq!(g.preds(TaskId::new(5)), &[4]);
    }

    #[test]
    fn topological_checker() {
        let g = TaskGraph::build(&chain_trace());
        assert!(g.is_topological(&[0, 1, 2]));
        assert!(!g.is_topological(&[1, 0, 2]));
        assert!(!g.is_topological(&[0, 1])); // wrong length
        assert!(!g.is_topological(&[0, 0, 2])); // duplicate
        assert!(!g.is_topological(&[0, 1, 3])); // out of range
    }

    #[test]
    fn parallelism_profile_chain() {
        let g = TaskGraph::build(&chain_trace());
        let p = g.parallelism();
        assert_eq!(p.critical_path, 30);
        assert_eq!(p.total_work, 30);
        assert_eq!(p.max_width, 1);
        assert!((p.avg_parallelism - 1.0).abs() < 1e-9);
    }

    #[test]
    fn parallelism_profile_fanout() {
        // One producer, 4 independent consumers.
        let mut tr = Trace::new("fan");
        tr.push(k(), [Dependence::output(0x10)], 10);
        for _ in 0..4 {
            tr.push(k(), [Dependence::input(0x10)], 10);
        }
        let g = TaskGraph::build(&tr);
        let p = g.parallelism();
        assert_eq!(p.critical_path, 20);
        assert_eq!(p.total_work, 50);
        assert_eq!(p.max_width, 4);
        assert!((p.avg_parallelism - 2.5).abs() < 1e-9);
    }

    #[test]
    fn empty_graph() {
        let g = TaskGraph::build(&Trace::new("empty"));
        assert!(g.is_empty());
        assert_eq!(g.critical_path(), 0);
        assert_eq!(g.parallelism().max_width, 0);
        assert!(g.is_topological(&[]));
    }
}
