//! Task, dependence and trace model for the Picos reproduction.
//!
//! This crate is the substrate every execution engine of the reproduction
//! consumes: it defines the software-visible task descriptor of the OmpSs
//! programming model (paper, Section II), an ordered [`Trace`] of tasks, the
//! ground-truth dataflow [`TaskGraph`], and generators ([`gen`]) for the
//! paper's seven synthetic testcases and five real applications.
//!
//! # Quick example
//!
//! ```
//! use picos_trace::{gen, TaskGraph};
//!
//! // The paper's Cholesky workload at block size 256 (Table I row 13).
//! let trace = gen::cholesky(gen::CholeskyConfig::paper(256));
//! assert_eq!(trace.len(), 120);
//!
//! let graph = TaskGraph::build(&trace);
//! let profile = graph.parallelism();
//! assert!(profile.avg_parallelism > 1.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod gen;
mod graph;
mod journal;
mod json;
pub mod rng;
pub mod snap;
mod task;
mod trace;

pub use graph::{ParallelismProfile, TaskGraph};
pub use journal::{JournalOp, SessionJournal};
pub use json::{json_escape, parse_json, task_from_value, task_to_json, JsonError, Value};
pub use snap::SnapError;
pub use task::{Dependence, Direction, KernelClass, TaskDescriptor, TaskId, MAX_DEPS_PER_TASK};
pub use trace::{Trace, TraceStats};
