//! Snapshot state codec: compact positional encoding over the in-tree
//! JSON [`Value`].
//!
//! Every engine in the workspace is a deterministic state machine; the
//! snapshot subsystem serializes their *dynamic* state (clocks, queues,
//! tables, telemetry cursors) so a freshly built, identically configured
//! session can be overwritten into a bit-exact copy of a live one.
//! Config-derived structure (wheel dimensions, FIFO capacities, unit
//! counts) is deliberately *not* encoded — the restoring side rebuilds it
//! from the same config, and a [`guard`] fingerprint rejects mismatches.
//!
//! The encoding is positional: each struct serializes its fields in
//! declaration order into a JSON array via [`Enc`], and decodes them in
//! the same order via [`Dec`], which makes the per-field cost one line on
//! each side and keeps the document compact. Top-level sections use
//! labeled objects ([`obj`] / [`field`]) so whole-session snapshots stay
//! navigable and versionable.
//!
//! All numbers ride [`Value::Int`], which keeps full 64-bit values exact
//! (the JSON parser never routes integers through `f64`).

use crate::json::{json_escape, parse_json, JsonError, Value};
use std::collections::BTreeMap;
use std::fmt;

/// Error from decoding a snapshot: a malformed document, a field of the
/// wrong shape, or a config fingerprint mismatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapError {
    /// Human-readable description of the first problem encountered.
    pub message: String,
}

impl SnapError {
    /// A new error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        SnapError {
            message: message.into(),
        }
    }
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "snapshot: {}", self.message)
    }
}

impl std::error::Error for SnapError {}

impl From<JsonError> for SnapError {
    fn from(e: JsonError) -> Self {
        SnapError::new(e.to_string())
    }
}

// ---------------------------------------------------------------- rendering

/// Renders a [`Value`] tree as compact JSON text — the inverse of
/// [`parse_json`], shared by every snapshot writer.
pub fn render_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Num(n) => out.push_str(&format!("{n}")),
        Value::Str(s) => {
            out.push('"');
            out.push_str(&json_escape(s));
            out.push('"');
        }
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_value(item, out);
            }
            out.push(']');
        }
        Value::Obj(map) => {
            out.push('{');
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('"');
                out.push_str(&json_escape(k));
                out.push_str("\":");
                render_value(item, out);
            }
            out.push('}');
        }
    }
}

/// Renders a [`Value`] to an owned JSON string.
pub fn value_to_json(v: &Value) -> String {
    let mut out = String::new();
    render_value(v, &mut out);
    out
}

/// Parses a snapshot document (JSON text) back into a [`Value`].
///
/// # Errors
///
/// Returns [`SnapError`] on malformed JSON.
pub fn value_from_json(s: &str) -> Result<Value, SnapError> {
    Ok(parse_json(s)?)
}

// ------------------------------------------------------------------ objects

/// Builds a labeled object from `(key, value)` sections.
pub fn obj<'a>(fields: impl IntoIterator<Item = (&'a str, Value)>) -> Value {
    Value::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect::<BTreeMap<_, _>>(),
    )
}

/// Looks a section up in a labeled object.
///
/// # Errors
///
/// Returns [`SnapError`] when `v` is not an object or lacks the field.
pub fn field<'v>(v: &'v Value, name: &str) -> Result<&'v Value, SnapError> {
    v.as_obj()
        .ok_or_else(|| SnapError::new(format!("expected an object holding '{name}'")))?
        .get(name)
        .ok_or_else(|| SnapError::new(format!("missing snapshot section '{name}'")))
}

/// Looks an optional section up in a labeled object (`None` when absent
/// or JSON `null`).
///
/// # Errors
///
/// Returns [`SnapError`] when `v` is not an object.
pub fn opt_field<'v>(v: &'v Value, name: &str) -> Result<Option<&'v Value>, SnapError> {
    let m = v
        .as_obj()
        .ok_or_else(|| SnapError::new(format!("expected an object holding '{name}'")))?;
    Ok(match m.get(name) {
        None | Some(Value::Null) => None,
        Some(v) => Some(v),
    })
}

/// Checks a config fingerprint recorded at save time against the value the
/// restoring side derives from its own config. Restore overwrites dynamic
/// state only — structure must match, and a silent mismatch would corrupt
/// the session instead of erroring.
///
/// # Errors
///
/// Returns [`SnapError`] naming the guard on mismatch.
pub fn guard(name: &str, expected: u64, got: u64) -> Result<(), SnapError> {
    if expected == got {
        Ok(())
    } else {
        Err(SnapError::new(format!(
            "config mismatch on {name}: snapshot has {expected}, session has {got}"
        )))
    }
}

// ------------------------------------------------------------------ encoder

/// Positional field encoder: push fields in declaration order, take the
/// resulting [`Value::Arr`] with [`Enc::done`].
#[derive(Debug, Default)]
pub struct Enc {
    items: Vec<Value>,
}

impl Enc {
    /// An empty encoder.
    pub fn new() -> Self {
        Enc::default()
    }

    /// Pushes a `u64`.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.items.push(Value::Int(v));
        self
    }

    /// Pushes a `u32`.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.u64(v as u64)
    }

    /// Pushes a `usize`.
    pub fn usize(&mut self, v: usize) -> &mut Self {
        self.u64(v as u64)
    }

    /// Pushes a `bool`.
    pub fn bool(&mut self, v: bool) -> &mut Self {
        self.items.push(Value::Bool(v));
        self
    }

    /// Pushes a string.
    pub fn str(&mut self, v: &str) -> &mut Self {
        self.items.push(Value::Str(v.to_string()));
        self
    }

    /// Pushes an optional `u64` (`null` when absent).
    pub fn opt_u64(&mut self, v: Option<u64>) -> &mut Self {
        self.items.push(match v {
            Some(n) => Value::Int(n),
            None => Value::Null,
        });
        self
    }

    /// Pushes an already-encoded value.
    pub fn val(&mut self, v: Value) -> &mut Self {
        self.items.push(v);
        self
    }

    /// Pushes a slice of `u64`s as one array.
    pub fn u64s(&mut self, vs: impl IntoIterator<Item = u64>) -> &mut Self {
        self.items
            .push(Value::Arr(vs.into_iter().map(Value::Int).collect()));
        self
    }

    /// Pushes a slice of `u32`s as one array.
    pub fn u32s(&mut self, vs: impl IntoIterator<Item = u32>) -> &mut Self {
        self.u64s(vs.into_iter().map(|v| v as u64))
    }

    /// Pushes a slice of `bool`s as one array.
    pub fn bools(&mut self, vs: impl IntoIterator<Item = bool>) -> &mut Self {
        self.items
            .push(Value::Arr(vs.into_iter().map(Value::Bool).collect()));
        self
    }

    /// Pushes a sequence of records, each encoded by `f` into its own
    /// positional array.
    pub fn seq<T>(
        &mut self,
        items: impl IntoIterator<Item = T>,
        mut f: impl FnMut(&mut Enc, T),
    ) -> &mut Self {
        let encoded = items
            .into_iter()
            .map(|item| {
                let mut e = Enc::new();
                f(&mut e, item);
                e.done()
            })
            .collect();
        self.items.push(Value::Arr(encoded));
        self
    }

    /// The encoded positional array.
    pub fn done(self) -> Value {
        Value::Arr(self.items)
    }
}

// ------------------------------------------------------------------ decoder

/// Positional field decoder: read fields back in the order [`Enc`] pushed
/// them. Every accessor consumes one slot; running past the end or hitting
/// the wrong shape errors with the record label.
#[derive(Debug)]
pub struct Dec<'a> {
    items: &'a [Value],
    at: usize,
    what: &'a str,
}

impl<'a> Dec<'a> {
    /// Opens a positional record.
    ///
    /// # Errors
    ///
    /// Returns [`SnapError`] when `v` is not an array.
    pub fn new(v: &'a Value, what: &'a str) -> Result<Self, SnapError> {
        match v.as_array() {
            Some(items) => Ok(Dec { items, at: 0, what }),
            None => Err(SnapError::new(format!("{what}: expected a record array"))),
        }
    }

    fn next(&mut self) -> Result<&'a Value, SnapError> {
        let v = self
            .items
            .get(self.at)
            .ok_or_else(|| SnapError::new(format!("{}: record too short", self.what)))?;
        self.at += 1;
        Ok(v)
    }

    fn type_err<T>(&self, want: &str) -> Result<T, SnapError> {
        Err(SnapError::new(format!(
            "{}: field {} is not {want}",
            self.what,
            self.at - 1
        )))
    }

    /// Reads a `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`SnapError`] on exhaustion or shape mismatch (also below).
    pub fn u64(&mut self) -> Result<u64, SnapError> {
        match self.next()? {
            Value::Int(n) => Ok(*n),
            _ => self.type_err("an integer"),
        }
    }

    /// Reads a `u32`.
    #[allow(missing_docs)]
    pub fn u32(&mut self) -> Result<u32, SnapError> {
        let v = self.u64()?;
        u32::try_from(v)
            .map_err(|_| SnapError::new(format!("{}: value {v} exceeds 32 bits", self.what)))
    }

    /// Reads a `u16`.
    #[allow(missing_docs)]
    pub fn u16(&mut self) -> Result<u16, SnapError> {
        let v = self.u64()?;
        u16::try_from(v)
            .map_err(|_| SnapError::new(format!("{}: value {v} exceeds 16 bits", self.what)))
    }

    /// Reads a `usize`.
    #[allow(missing_docs)]
    pub fn usize(&mut self) -> Result<usize, SnapError> {
        Ok(self.u64()? as usize)
    }

    /// Reads a `bool`.
    #[allow(missing_docs)]
    pub fn bool(&mut self) -> Result<bool, SnapError> {
        match self.next()? {
            Value::Bool(b) => Ok(*b),
            _ => self.type_err("a bool"),
        }
    }

    /// Reads a string slice.
    #[allow(missing_docs)]
    pub fn str(&mut self) -> Result<&'a str, SnapError> {
        match self.next()? {
            Value::Str(s) => Ok(s),
            _ => self.type_err("a string"),
        }
    }

    /// Reads an optional `u64` (encoded as `null` when absent).
    #[allow(missing_docs)]
    pub fn opt_u64(&mut self) -> Result<Option<u64>, SnapError> {
        match self.next()? {
            Value::Null => Ok(None),
            Value::Int(n) => Ok(Some(*n)),
            _ => self.type_err("an optional integer"),
        }
    }

    /// Reads a raw [`Value`] slot.
    #[allow(missing_docs)]
    pub fn val(&mut self) -> Result<&'a Value, SnapError> {
        self.next()
    }

    /// Reads an array of `u64`s.
    #[allow(missing_docs)]
    pub fn u64s(&mut self) -> Result<Vec<u64>, SnapError> {
        match self.next()? {
            Value::Arr(items) => items
                .iter()
                .map(|v| {
                    v.as_int().ok_or_else(|| {
                        SnapError::new(format!("{}: non-integer in int array", self.what))
                    })
                })
                .collect(),
            _ => self.type_err("an int array"),
        }
    }

    /// Reads an array of `u32`s.
    #[allow(missing_docs)]
    pub fn u32s(&mut self) -> Result<Vec<u32>, SnapError> {
        self.u64s()?
            .into_iter()
            .map(|v| {
                u32::try_from(v).map_err(|_| {
                    SnapError::new(format!("{}: value {v} exceeds 32 bits", self.what))
                })
            })
            .collect()
    }

    /// Reads an array of `bool`s.
    #[allow(missing_docs)]
    pub fn bools(&mut self) -> Result<Vec<bool>, SnapError> {
        match self.next()? {
            Value::Arr(items) => items
                .iter()
                .map(|v| match v {
                    Value::Bool(b) => Ok(*b),
                    _ => Err(SnapError::new(format!(
                        "{}: non-bool in bool array",
                        self.what
                    ))),
                })
                .collect(),
            _ => self.type_err("a bool array"),
        }
    }

    /// Reads a sequence of records, decoding each with `f` from its own
    /// positional sub-record.
    #[allow(missing_docs)]
    pub fn seq<T>(
        &mut self,
        mut f: impl FnMut(&mut Dec<'a>) -> Result<T, SnapError>,
    ) -> Result<Vec<T>, SnapError> {
        let what = self.what;
        match self.next()? {
            Value::Arr(items) => items
                .iter()
                .map(|v| {
                    let mut d = Dec::new(v, what)?;
                    f(&mut d)
                })
                .collect(),
            _ => self.type_err("a record sequence"),
        }
    }

    /// Number of slots not yet consumed (0 when fully decoded — decoders
    /// tolerate trailing slots so records can grow compatibly).
    pub fn remaining(&self) -> usize {
        self.items.len().saturating_sub(self.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_roundtrips_through_the_parser() {
        let mut e = Enc::new();
        e.u64(u64::MAX)
            .bool(true)
            .str("we\"ird\n")
            .opt_u64(None)
            .opt_u64(Some(7))
            .u64s([1, 2, 3])
            .seq([4u64, 5], |e, v| {
                e.u64(v).bool(v % 2 == 0);
            });
        let v = obj([("version", Value::Int(1)), ("state", e.done())]);
        let text = value_to_json(&v);
        let back = value_from_json(&text).unwrap();
        assert_eq!(v, back, "exact tree roundtrip, u64::MAX kept exact");
    }

    #[test]
    fn decoder_reads_fields_in_order() {
        let mut e = Enc::new();
        e.u64(9).bool(false).str("x").u32s([3, 4]);
        let v = e.done();
        let mut d = Dec::new(&v, "t").unwrap();
        assert_eq!(d.u64().unwrap(), 9);
        assert!(!d.bool().unwrap());
        assert_eq!(d.str().unwrap(), "x");
        assert_eq!(d.u32s().unwrap(), vec![3, 4]);
        assert_eq!(d.remaining(), 0);
    }

    #[test]
    fn decoder_errors_name_the_record() {
        let v = Value::Arr(vec![Value::Bool(true)]);
        let mut d = Dec::new(&v, "wheel").unwrap();
        let err = d.u64().unwrap_err();
        assert!(err.message.contains("wheel"), "{err}");
        let err = d.u64().unwrap_err();
        assert!(err.message.contains("record too short"), "{err}");
    }

    #[test]
    fn guard_rejects_config_mismatch() {
        assert!(guard("workers", 4, 4).is_ok());
        let err = guard("workers", 4, 8).unwrap_err();
        assert!(err.message.contains("workers"), "{err}");
    }

    #[test]
    fn fields_and_sections() {
        let v = obj([("a", Value::Int(1)), ("b", Value::Null)]);
        assert_eq!(field(&v, "a").unwrap(), &Value::Int(1));
        assert!(field(&v, "missing").is_err());
        assert!(opt_field(&v, "b").unwrap().is_none());
        assert!(opt_field(&v, "missing").unwrap().is_none());
        assert_eq!(opt_field(&v, "a").unwrap(), Some(&Value::Int(1)));
    }
}
