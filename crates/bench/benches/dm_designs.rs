//! Criterion microbenchmarks of the three DM designs: compare/insert/delete
//! throughput under clustered (power-of-two strided) and heap-like address
//! streams. The hardware question behind Table II, asked of the model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use picos_core::{Dm, DmAccess, DmDesign, VmRef};
use std::hint::black_box;

fn address_stream(clustered: bool, n: usize) -> Vec<u64> {
    (0..n as u64)
        .map(|i| {
            if clustered {
                0x4000_0000 + i * 32 * 1024 // block stride: low bits constant
            } else {
                0x5555_0000_0000 + i * 32_784 // heap-like stride
            }
        })
        .collect()
}

fn bench_dm(c: &mut Criterion) {
    let mut group = c.benchmark_group("dm_insert_delete");
    for design in DmDesign::ALL {
        for (label, clustered) in [("clustered", true), ("heap", false)] {
            group.bench_with_input(
                BenchmarkId::new(design.name(), label),
                &clustered,
                |b, &clustered| {
                    let addrs = address_stream(clustered, 256);
                    b.iter(|| {
                        let mut dm = Dm::new(design, 64);
                        let mut inserted = Vec::new();
                        let mut conflicts = 0u64;
                        for (i, &a) in addrs.iter().enumerate() {
                            match dm.access(black_box(a), false) {
                                DmAccess::Inserted(slot) => {
                                    dm.bind(slot, VmRef::new(0, i as u16));
                                    inserted.push(slot);
                                }
                                DmAccess::Conflict => conflicts += 1,
                                DmAccess::Hit(_) => {}
                            }
                        }
                        for slot in inserted {
                            dm.pop_version(slot, None);
                        }
                        black_box(conflicts)
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_dm);
criterion_main!(benches);
