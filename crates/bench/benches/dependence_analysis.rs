//! Criterion benchmark: software dependence analysis (the Nanos++
//! algorithm) vs the Picos hardware model, per-task processing cost of the
//! simulator itself. This measures the *reproduction's* speed, not the
//! modelled cycle counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use picos_core::{FinishedReq, PicosConfig, PicosSystem};
use picos_runtime::SoftwareDeps;
use picos_trace::{gen, TaskId};
use std::hint::black_box;

fn bench_analysis(c: &mut Criterion) {
    let trace = gen::cholesky(gen::CholeskyConfig::paper(128));
    let mut group = c.benchmark_group("dependence_analysis");
    group.throughput(Throughput::Elements(trace.len() as u64));

    group.bench_with_input(
        BenchmarkId::new("software_depmap", trace.len()),
        &(),
        |b, _| {
            b.iter(|| {
                let mut sw = SoftwareDeps::new(trace.len());
                let mut ready: Vec<TaskId> = Vec::new();
                for t in trace.iter() {
                    if sw.submit(black_box(t)) {
                        ready.push(t.id);
                    }
                }
                let mut i = 0;
                while i < ready.len() {
                    let more = sw.finish(ready[i]);
                    ready.extend(more);
                    i += 1;
                }
                black_box(ready.len())
            });
        },
    );

    group.bench_with_input(
        BenchmarkId::new("picos_engine", trace.len()),
        &(),
        |b, _| {
            b.iter(|| {
                let mut sys = PicosSystem::new(PicosConfig::balanced());
                for t in trace.iter() {
                    sys.submit(t.id, t.deps.clone());
                }
                sys.run_to_quiescence(1_000_000_000, |r| {
                    Some(FinishedReq {
                        task: r.task,
                        slot: r.slot,
                    })
                })
                .expect("completes");
                black_box(sys.stats().tasks_completed)
            });
        },
    );
    group.finish();
}

criterion_group!(benches, bench_analysis);
criterion_main!(benches);
