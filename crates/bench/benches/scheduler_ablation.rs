//! Criterion benchmark: design ablations of the Picos core — FIFO vs LIFO
//! task scheduler and single vs multi TRS/DCT instances — measured as
//! simulator wall-clock cost per run (the modelled speedups are reported by
//! the `fig09_lu_corner` and `ablation_future_arch` experiment binaries).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use picos_core::{DmDesign, PicosConfig, TsPolicy};
use picos_hil::{run_hil, HilConfig, HilMode};
use picos_trace::gen;
use std::hint::black_box;

fn bench_policies(c: &mut Criterion) {
    let trace = gen::lu(gen::LuConfig::paper(64));
    let mut group = c.benchmark_group("scheduler_ablation");
    for policy in [TsPolicy::Fifo, TsPolicy::Lifo] {
        group.bench_with_input(
            BenchmarkId::new("ts_policy", format!("{policy:?}")),
            &policy,
            |b, &p| {
                let cfg = HilConfig {
                    picos: PicosConfig::balanced().with_ts_policy(p),
                    ..HilConfig::balanced(12)
                };
                b.iter(|| black_box(run_hil(&trace, HilMode::HwOnly, &cfg).unwrap().makespan));
            },
        );
    }
    for n in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("instances", n), &n, |b, &n| {
            let cfg = HilConfig {
                picos: PicosConfig::future(n, DmDesign::PearsonEightWay),
                ..HilConfig::balanced(12)
            };
            b.iter(|| black_box(run_hil(&trace, HilMode::HwOnly, &cfg).unwrap().makespan));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
