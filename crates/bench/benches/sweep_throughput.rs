//! Criterion benchmark: sweep-harness throughput in experiment cells per
//! wall-clock second, serial vs cell-parallel.
//!
//! Quantifies what the parallel harness buys: the same 24-cell grid (two
//! Cholesky granularities × three backends × four worker counts) executed
//! on one thread and on all available cores. The modelled results are
//! identical either way (see `tests/sweep_determinism.rs`); only the
//! wall-clock changes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use picos_backend::{par, BackendSpec, Sweep};
use picos_hil::HilMode;
use picos_trace::gen::App;
use std::hint::black_box;

fn grid() -> Sweep {
    Sweep::over_apps([App::Cholesky], [256, 128])
        .workers([2, 4, 8, 12])
        .backends([
            BackendSpec::Perfect,
            BackendSpec::Nanos,
            BackendSpec::Picos(HilMode::HwOnly),
        ])
}

fn bench_sweep(c: &mut Criterion) {
    let cells = grid().cells().len() as u64;
    let mut group = c.benchmark_group("sweep_throughput");
    group.throughput(Throughput::Elements(cells));
    group.bench_with_input(BenchmarkId::new("cells", "serial"), &(), |b, _| {
        let sweep = grid().serial();
        b.iter(|| black_box(sweep.run().rows().len()));
    });
    group.bench_with_input(
        BenchmarkId::new("cells", format!("parallel-{}", par::default_threads())),
        &(),
        |b, _| {
            let sweep = grid();
            b.iter(|| black_box(sweep.run().rows().len()));
        },
    );
    group.finish();
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);
