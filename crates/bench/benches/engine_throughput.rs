//! Criterion benchmark: end-to-end HIL simulation throughput (simulated
//! tasks per wall-clock second) for each operational mode.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use picos_hil::{run_hil, HilConfig, HilMode};
use picos_trace::gen;
use std::hint::black_box;

fn bench_modes(c: &mut Criterion) {
    let trace = gen::sparselu(gen::SparseLuConfig::paper(128));
    let mut group = c.benchmark_group("hil_modes");
    group.throughput(Throughput::Elements(trace.len() as u64));
    for mode in HilMode::ALL {
        group.bench_with_input(
            BenchmarkId::new("sparselu128", mode.name()),
            &mode,
            |b, &m| {
                let cfg = HilConfig::balanced(12);
                b.iter(|| {
                    let r = run_hil(black_box(&trace), m, &cfg).expect("completes");
                    black_box(r.makespan)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_modes);
criterion_main!(benches);
