//! Criterion benchmark: discrete-event core throughput.
//!
//! Two views of the same question — how many simulated tasks per wall-clock
//! second the engine sustains:
//!
//! * `engine/*` — the bare [`PicosSystem`] with instant workers (every
//!   ready task finishes immediately): isolates the event core itself.
//! * `hil_modes/*` — the full HIL platform per operational mode: the
//!   end-to-end cost a sweep cell pays.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use picos_core::{FinishedReq, PicosConfig, PicosSystem};
use picos_hil::{run_hil, HilConfig, HilMode};
use picos_trace::gen;
use std::hint::black_box;

fn bench_engine(c: &mut Criterion) {
    let trace = gen::sparselu(gen::SparseLuConfig::paper(128));
    let mut group = c.benchmark_group("engine");
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.bench_with_input(
        BenchmarkId::new("sparselu128", "instant-workers"),
        &(),
        |b, _| {
            b.iter(|| {
                let mut sys = PicosSystem::new(PicosConfig::balanced());
                sys.submit_all(black_box(&trace));
                sys.run_to_quiescence(200_000_000, |r| {
                    Some(FinishedReq {
                        task: r.task,
                        slot: r.slot,
                    })
                })
                .expect("completes");
                black_box(sys.now())
            });
        },
    );
    group.finish();
}

fn bench_modes(c: &mut Criterion) {
    let trace = gen::sparselu(gen::SparseLuConfig::paper(128));
    let mut group = c.benchmark_group("hil_modes");
    group.throughput(Throughput::Elements(trace.len() as u64));
    for mode in HilMode::ALL {
        group.bench_with_input(
            BenchmarkId::new("sparselu128", mode.name()),
            &mode,
            |b, &m| {
                let cfg = HilConfig::balanced(12);
                b.iter(|| {
                    let r = run_hil(black_box(&trace), m, &cfg).expect("completes");
                    black_box(r.makespan)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_engine, bench_modes);
criterion_main!(benches);
