//! **Cluster scaling** (beyond the paper's Figure 11): where sharded
//! dependence management beats one big DM, and where cross-shard traffic
//! eats the gain.
//!
//! Sweeps shards × workers × interconnect latency over the golden
//! cholesky/sparselu workloads plus the open-loop `gen::stream` workload
//! (sustained heavy traffic — arrivals faster than one Picos pipeline's
//! task throughput). One-shard cells are cycle-identical to the HW-only
//! platform, so every row is directly comparable to the paper's numbers.

use picos_backend::{BackendSpec, Sweep, SweepResult, Workload};
use picos_bench::{f2, results_dir, Table};
use picos_hil::LinkModel;
use picos_trace::gen::{self, App};
use picos_trace::json_escape;
use std::sync::Arc;

const SHARDS: [usize; 4] = [1, 2, 4, 8];
const WORKERS: [usize; 3] = [8, 16, 32];
const LINK_LATENCY: [u64; 3] = [8, 64, 512];

fn workloads() -> Vec<Workload> {
    let stream = Arc::new(gen::stream(gen::StreamConfig {
        interarrival: 15,
        mean_duration: 200,
        ..gen::StreamConfig::heavy(2_000)
    }));
    vec![
        Workload::from_trace("stream", stream),
        Workload::from_app(App::Cholesky, 128),
        Workload::from_app(App::SparseLu, 128),
    ]
}

fn main() {
    let workloads = workloads();
    // One sweep per interconnect latency (the link is a sweep-wide knob);
    // rows carry their latency in the emitted files.
    let mut sweeps: Vec<(u64, SweepResult)> = Vec::new();
    for lat in LINK_LATENCY {
        let link = LinkModel {
            latency: lat,
            ..LinkModel::interconnect()
        };
        let result = Sweep::new(workloads.clone())
            .workers(WORKERS)
            .backends(SHARDS.map(BackendSpec::Cluster))
            .interconnect(link)
            // The parallel engine is bit-identical to serial, so running
            // every cell on as many simulation threads as its shard count
            // allows changes nothing in the emitted files — only how long
            // the figure takes to produce.
            .cluster_threads(SHARDS[SHARDS.len() - 1])
            .run();
        if let Some(e) = result.first_error() {
            panic!("cluster sweep cell failed at latency {lat}: {e}");
        }
        sweeps.push((lat, result));
    }

    // Raw rows with the latency column prepended.
    let mut csv = String::from(
        "link_latency,workload,workers,shards,makespan,sequential,speedup,dm_conflicts\n",
    );
    let mut json = String::from("[");
    let mut first = true;
    for (lat, result) in &sweeps {
        for r in result.rows() {
            csv.push_str(&format!(
                "{},{},{},{},{},{},{:.4},{}\n",
                lat,
                r.workload,
                r.workers,
                r.shards,
                r.makespan,
                r.sequential,
                r.speedup,
                r.dm_conflicts.unwrap_or(0),
            ));
            if !first {
                json.push(',');
            }
            first = false;
            json.push_str(&format!(
                "{{\"link_latency\":{},\"workload\":\"{}\",\"workers\":{},\
                 \"shards\":{},\"makespan\":{},\"speedup\":{:.6}}}",
                lat,
                json_escape(&r.workload),
                r.workers,
                r.shards,
                r.makespan,
                r.speedup,
            ));
        }
    }
    json.push(']');
    let dir = results_dir();
    if std::fs::create_dir_all(&dir).is_ok() {
        let _ = std::fs::write(dir.join("fig12_cluster_raw.csv"), &csv);
        let _ = std::fs::write(dir.join("fig12_cluster_raw.json"), &json);
    }

    // Pivot: one line per workload × workers × latency, one speedup column
    // per shard count, plus the shard count that won the cell.
    let mut t = Table::new(
        "Cluster scaling: speedup by shard count (address-sharded DM, \
         per-destination interconnect ports)",
        &["App", "Workers", "LinkLat", "s1", "s2", "s4", "s8", "Best"],
    );
    for (lat, result) in &sweeps {
        for w in &workloads {
            for &workers in &WORKERS {
                let line: Vec<&picos_backend::SweepRow> = result
                    .rows()
                    .iter()
                    .filter(|r| r.workload == w.label && r.workers == workers)
                    .collect();
                assert_eq!(line.len(), SHARDS.len());
                let best = line
                    .iter()
                    .max_by(|a, b| a.speedup.total_cmp(&b.speedup))
                    .expect("non-empty line");
                let mut cells = vec![w.label.clone(), workers.to_string(), lat.to_string()];
                cells.extend(line.iter().map(|r| f2(r.speedup)));
                cells.push(format!("s{}", best.shards));
                t.row(cells);
            }
        }
    }
    t.emit("fig12_cluster");

    // Headline: the sustained-load regime on the fast interconnect.
    let (_, fast) = &sweeps[0];
    let one = fast
        .rows()
        .iter()
        .find(|r| r.workload == "stream" && r.workers == 16 && r.shards == 1)
        .expect("one-shard stream row");
    let four = fast
        .rows()
        .iter()
        .find(|r| r.workload == "stream" && r.workers == 16 && r.shards == 4)
        .expect("four-shard stream row");
    println!(
        "stream @ 16 workers, link latency {}: 1 shard makespan {} vs 4 shards {} ({:.2}x)",
        LINK_LATENCY[0],
        one.makespan,
        four.makespan,
        one.makespan as f64 / four.makespan as f64
    );
}
