//! Runs every experiment of the reproduction in sequence, writing
//! `results/*.txt` and `results/*.csv` (the inputs to `EXPERIMENTS.md`).
//!
//! Run with `--release`; the Figure 11 sweep alone simulates roughly 400
//! full application runs.

use std::process::Command;

const EXPERIMENTS: &[&str] = &[
    "table1_benchmarks",
    "table2_dm_conflicts",
    "table3_resources",
    "table4_synthetic",
    "fig01_granularity",
    "fig08_dm_designs",
    "fig09_lu_corner",
    "fig10_nanos_overhead",
    "fig11_scalability",
    "ablation_future_arch",
    "ablation_capacity",
];

fn main() {
    let me = std::env::current_exe().expect("own path");
    let dir = me.parent().expect("bin dir");
    for exp in EXPERIMENTS {
        eprintln!("=== running {exp} ===");
        let status = Command::new(dir.join(exp))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {exp}: {e}"));
        assert!(status.success(), "{exp} failed");
    }
    eprintln!("all experiments complete; see results/");
}
