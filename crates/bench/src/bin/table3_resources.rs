//! Regenerates **Table III**: hardware resource consumption.
//!
//! Prints the analytic LUT/FF/BRAM estimates of every memory and module as
//! percentages of the XC7Z020, next to the paper's synthesis percentages.

use picos_bench::Table;
use picos_resources::{table3, XC7Z020};

/// Paper Table III reference percentages: (name, LUT%, FF%, BRAM%).
const PAPER: &[(&str, f64, f64, f64)] = &[
    ("TM", 0.4, 0.01, 6.0),
    ("VM for 8way/P+8way", 0.4, 0.01, 1.0),
    ("VM for 16way", 0.4, 0.01, 2.0),
    ("DM 8way", 1.1, 0.1, 9.0),
    ("DM 16way", 3.1, 0.1, 17.0),
    ("DM P+8way", 1.7, 0.1, 10.0),
    ("TRS", 1.6, 0.6, 6.0),
    ("DCT (DM P+8way)", 2.9, 0.3, 11.0),
    ("GW+ARB+TS", 1.3, 0.4, 0.0),
    ("Full Picos (DM P+8way)", 5.8, 1.2, 17.0),
];

fn main() {
    let mut t = Table::new(
        "Table III: resource consumption on XC7Z020 — measured% (paper%)",
        &["Design", "LUTs", "FFs", "BRAM(36Kb)"],
    );
    for row in table3() {
        let (lut, ff, bram) = row.est.percent_of(XC7Z020);
        let paper = PAPER.iter().find(|(n, ..)| *n == row.name);
        let fmt = |v: f64, p: Option<f64>| match p {
            Some(p) => format!("{v:.1}% ({p}%)"),
            None => format!("{v:.1}%"),
        };
        t.row(vec![
            row.name.clone(),
            fmt(lut, paper.map(|p| p.1)),
            fmt(ff, paper.map(|p| p.2)),
            fmt(bram, paper.map(|p| p.3)),
        ]);
    }
    t.emit("table3_resources");
}
