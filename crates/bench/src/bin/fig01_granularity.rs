//! Regenerates **Figure 1**: speedup vs task granularity for the Nanos++
//! software-only runtime with 12 cores.
//!
//! Problem sizes stay constant while block sizes shrink: the speedup first
//! rises with the new parallelism, then collapses once the per-task runtime
//! overhead outweighs the gain. The 16-cell grid runs through the parallel
//! sweep harness; the raw per-cell results land in
//! `results/fig01_granularity_raw.{csv,json}`.

use picos_backend::{BackendSpec, Sweep};
use picos_bench::{emit_sweep, f2, Table};
use picos_trace::gen::App;

const BLOCKS: [u64; 4] = [256, 128, 64, 32];

fn main() {
    let apps = [App::Heat, App::Lu, App::SparseLu, App::Cholesky];
    let result = Sweep::over_apps(apps, BLOCKS)
        .workers([12])
        .backends([BackendSpec::Nanos])
        .run();
    emit_sweep(&result, "fig01_granularity");

    let mut t = Table::new(
        "Figure 1: Nanos++ speedup vs task granularity (12 workers)",
        &["BlockSize", "heat", "lu", "sparselu", "cholesky"],
    );
    for bs in BLOCKS {
        let mut cells = vec![bs.to_string()];
        for app in apps {
            let s = result
                .speedup_of(app.name(), bs, BackendSpec::Nanos, 12)
                .expect("cell ran");
            cells.push(f2(s));
        }
        t.row(cells);
    }
    t.emit("fig01_granularity");
}
