//! Regenerates **Figure 1**: speedup vs task granularity for the Nanos++
//! software-only runtime with 12 cores.
//!
//! Problem sizes stay constant while block sizes shrink: the speedup first
//! rises with the new parallelism, then collapses once the per-task runtime
//! overhead outweighs the gain.

use picos_bench::{f2, nanos_speedup, Table};
use picos_trace::gen::App;

fn main() {
    let apps = [App::Heat, App::Lu, App::SparseLu, App::Cholesky];
    let mut t = Table::new(
        "Figure 1: Nanos++ speedup vs task granularity (12 workers)",
        &["BlockSize", "heat", "lu", "sparselu", "cholesky"],
    );
    for bs in [256u64, 128, 64, 32] {
        let mut cells = vec![bs.to_string()];
        for app in apps {
            let tr = app.generate(bs);
            cells.push(f2(nanos_speedup(&tr, 12)));
        }
        t.row(cells);
    }
    t.emit("fig01_granularity");
}
