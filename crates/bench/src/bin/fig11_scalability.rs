//! Regenerates **Figure 11**: scalability of the five real benchmarks with
//! up to 24 workers — Picos Full-system vs Perfect Simulator vs Nanos++.

use picos_bench::{f2, nanos_speedup, perfect_speedup, picos_speedup, Table};
use picos_core::PicosConfig;
use picos_hil::HilMode;
use picos_trace::gen::App;

const WORKERS: [usize; 7] = [2, 4, 8, 12, 16, 20, 24];

fn main() {
    let mut t = Table::new(
        "Figure 11: scalability (speedup) — Picos Full-system / Perfect / Nanos++",
        &[
            "App", "BlockSize", "Engine", "w2", "w4", "w8", "w12", "w16", "w20", "w24",
        ],
    );
    for app in App::ALL {
        for bs in app.paper_block_sizes() {
            let tr = app.generate(bs);
            let mut picos = vec![app.name().to_string(), bs.to_string(), "picos".to_string()];
            let mut perfect = vec![app.name().to_string(), bs.to_string(), "perfect".to_string()];
            let mut nanos = vec![app.name().to_string(), bs.to_string(), "nanos".to_string()];
            for w in WORKERS {
                picos.push(f2(picos_speedup(
                    &tr,
                    w,
                    PicosConfig::balanced(),
                    HilMode::FullSystem,
                )));
                perfect.push(f2(perfect_speedup(&tr, w)));
                nanos.push(f2(nanos_speedup(&tr, w)));
            }
            t.row(picos);
            t.row(perfect);
            t.row(nanos);
            eprintln!("fig11: {} bs {} done", app.name(), bs);
        }
    }
    t.emit("fig11_scalability");
}
