//! Regenerates **Figure 11**: scalability of the five real benchmarks with
//! up to 24 workers — Picos Full-system vs Perfect Simulator vs Nanos++.
//!
//! This is the heaviest grid of the reproduction (~420 cells); the sweep
//! harness runs it cell-parallel across all cores.

use picos_backend::{BackendSpec, Sweep, Workload};
use picos_bench::{emit_sweep, f2, Table};
use picos_hil::HilMode;
use picos_trace::gen::App;

const WORKERS: [usize; 7] = [2, 4, 8, 12, 16, 20, 24];

const BACKENDS: [BackendSpec; 3] = [
    BackendSpec::Picos(HilMode::FullSystem),
    BackendSpec::Perfect,
    BackendSpec::Nanos,
];

fn main() {
    let workloads = App::ALL.into_iter().flat_map(|app| {
        app.paper_block_sizes()
            .into_iter()
            .map(move |bs| Workload::from_app(app, bs))
    });
    let result = Sweep::new(workloads)
        .workers(WORKERS)
        .backends(BACKENDS)
        .run();
    emit_sweep(&result, "fig11_scalability");

    let mut t = Table::new(
        "Figure 11: scalability (speedup) — Picos Full-system / Perfect / Nanos++",
        &[
            "App",
            "BlockSize",
            "Engine",
            "w2",
            "w4",
            "w8",
            "w12",
            "w16",
            "w20",
            "w24",
        ],
    );
    // Cell order is workload (outer) × backend × workers (inner): every
    // consecutive run of WORKERS.len() rows is one engine line.
    for line in result.rows().chunks(WORKERS.len()) {
        let first = &line[0];
        let engine = match first.backend {
            BackendSpec::Picos(_) => "picos",
            BackendSpec::Perfect => "perfect",
            BackendSpec::Nanos => "nanos",
            BackendSpec::Cluster(_) => "cluster",
        };
        let mut cells = vec![
            first.workload.clone(),
            first
                .block_size
                .expect("app workloads carry a block size")
                .to_string(),
            engine.to_string(),
        ];
        cells.extend(line.iter().map(|r| f2(r.speedup)));
        t.row(cells);
    }
    t.emit("fig11_scalability");
}
