//! Bench smoke: quick engine + sweep throughput check for CI.
//!
//! Runs the `engine_throughput` workload (bare engine, instant workers),
//! the batch backend path (now session-driven), the paced streaming
//! driver at saturation, the `sweep_throughput` grid, and a
//! cluster-backend grid, the serial-vs-parallel cluster engine A/B, and
//! the multi-tenant serve-layer A/B (256 multiplexed stream tenants vs
//! the same sessions solo)
//! in a short fixed sampling window and emits `BENCH_engine.json` with
//! tasks/sec and cells/sec, alongside the pinned pre-rewrite baseline,
//! so the perf trajectory of the event core — and of the session API
//! from its first day — is tracked across PRs.
//!
//! CI guard: the batch `ExecBackend::run` path is a default method over a
//! streaming session since the SimSession redesign; this binary exits
//! non-zero if that path falls below a quarter of the raw engine's
//! throughput in the same process (the drivers add worker simulation on
//! top of the same core, so the ratio is stable across machines —
//! measured ~0.75 on the reference machine).
//!
//! Knob: `BENCH_SMOKE_MS` — per-measurement sampling window (default 300).

use picos_backend::{
    feed_trace, pace, BackendSpec, FaultPlan, SessionConfig, Snapshot, Sweep, Workload,
};
use picos_core::{FinishedReq, PicosConfig, PicosSystem};
use picos_hil::HilMode;
use picos_serve::{ServeConfig, Service, SubmitOutcome, TenantSpec};
use picos_trace::gen::{self, App};
use picos_trace::{Dependence, Trace};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Pre-rewrite `engine/sparselu128/instant-workers` throughput (tasks/sec),
/// measured on the reference machine with the `BinaryHeap` +
/// `schedule_all` engine immediately before the timing-wheel rewrite.
const BASELINE_TASKS_PER_SEC: f64 = 311_189.0;

fn window_ms() -> u64 {
    std::env::var("BENCH_SMOKE_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300)
}

/// Median-free quick sampler: run `f` repeatedly for the window, return
/// iterations per second.
fn sample(window: Duration, mut f: impl FnMut()) -> f64 {
    // One warm-up call so allocations and caches settle outside the window.
    f();
    let start = Instant::now();
    let mut iters = 0u64;
    while start.elapsed() < window || iters == 0 {
        f();
        iters += 1;
    }
    iters as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    let window = Duration::from_millis(window_ms());
    let trace = gen::sparselu(gen::SparseLuConfig::paper(128));
    let tasks = trace.len() as f64;

    // Metrics overhead guard: the same raw-engine run with and without a
    // coarse-window telemetry timeline attached, interleaved A/B within
    // one sampling window so host noise hits both sides equally. Probes
    // themselves are always-on plain field increments; the guard measures
    // what *attaching a sampler* adds (one branch per clock move plus one
    // probe per window).
    let engine_run = |timeline: Option<u64>| {
        let mut sys = PicosSystem::new(PicosConfig::balanced());
        if let Some(w) = timeline {
            sys.attach_timeline(w);
        }
        sys.submit_all(&trace);
        sys.run_to_quiescence(200_000_000, |r| {
            Some(FinishedReq {
                task: r.task,
                slot: r.slot,
            })
        })
        .expect("engine run completes");
        std::hint::black_box(sys.now());
        std::hint::black_box(sys.take_timeline().map(|t| t.len()));
    };
    let mut off_on = [0.0f64; 2];
    {
        // Interleaved measurement: alternate off/on runs over a shared
        // wall-clock window, accumulating each side's own time.
        engine_run(None);
        engine_run(Some(65_536));
        let mut spent = [Duration::ZERO; 2];
        let mut iters = [0u64; 2];
        let start = Instant::now();
        while start.elapsed() < window * 2 || iters[1] == 0 {
            for (side, timeline) in [(0, None), (1, Some(65_536u64))] {
                let t0 = Instant::now();
                engine_run(timeline);
                spent[side] += t0.elapsed();
                iters[side] += 1;
            }
        }
        for side in 0..2 {
            off_on[side] = iters[side] as f64 / spent[side].as_secs_f64() * tasks;
        }
    }
    let [metrics_off_tasks_per_sec, metrics_timeline_tasks_per_sec] = off_on;

    let runs_per_sec = sample(window, || engine_run(None));
    let tasks_per_sec = runs_per_sec * tasks;

    // The batch backend path: ExecBackend::run is a default method over a
    // streaming session (feed the trace, finish). Same core as above plus
    // worker/dispatch simulation.
    let hw = BackendSpec::Picos(picos_hil::HilMode::HwOnly).build(8, &PicosConfig::balanced());
    let batch_runs_per_sec = sample(window, || {
        std::hint::black_box(hw.run(&trace).expect("batch run completes"));
    });
    let batch_tasks_per_sec = batch_runs_per_sec * tasks;

    // Span-recorder overhead guard: the same session-driven batch run with
    // and without task-lifecycle span tracing attached, interleaved A/B
    // like the timeline guard above. Tracing adds one preallocated-vec
    // push per lifecycle event; the guard pins that the full spans-on run
    // stays within 10% of spans-off throughput.
    let batch_run = |spans: bool| {
        let cfg = SessionConfig {
            trace_spans: spans,
            ..SessionConfig::batch()
        };
        let out = hw
            .run_with_telemetry(&trace, cfg)
            .expect("batch run completes");
        std::hint::black_box(out.report.makespan);
        std::hint::black_box(out.spans.map(|l| l.len()));
    };
    // Median-of-iterations per side (like the cluster A/B below): the
    // 10% gate is tighter than host noise on a mean, medians are stable.
    let mut span_times: [Vec<f64>; 2] = [Vec::new(), Vec::new()];
    {
        batch_run(false);
        batch_run(true);
        let start = Instant::now();
        while start.elapsed() < window * 2 || span_times[1].is_empty() {
            for (side, spans) in [(0, false), (1, true)] {
                let t0 = Instant::now();
                batch_run(spans);
                span_times[side].push(t0.elapsed().as_secs_f64());
            }
        }
    }
    let [spans_off_tasks_per_sec, spans_on_tasks_per_sec] = span_times.map(|mut v| {
        v.sort_unstable_by(f64::total_cmp);
        tasks / v[v.len() / 2]
    });

    // Timeline-shape regression gate: one golden workload through the
    // batch path with a coarse window attached, asserting the exact
    // invariants of the sampled series (delta series reproduce their
    // end-of-run counters; samples tile the run). Runs are deterministic,
    // so a violation means the sampler or a probe site regressed.
    {
        let cfg = SessionConfig {
            timeline_window: Some(65_536),
            ..SessionConfig::batch()
        };
        let out = hw
            .run_with_telemetry(&trace, cfg)
            .expect("golden timeline run completes");
        let tl = out.timeline.as_ref().expect("timeline was requested");
        let stats = out.stats.as_ref().expect("picos backends report stats");
        assert!(!tl.is_empty(), "golden run must produce samples");
        assert_eq!(tl.sample(0).0, 0, "first window starts at cycle 0");
        let column_sum = |suffix: &str| -> u64 {
            let name = tl
                .series()
                .iter()
                .map(|s| s.name.clone())
                .find(|n| n.ends_with(suffix))
                .unwrap_or_else(|| panic!("series *{suffix} must exist"));
            tl.column(&name).expect("column exists").iter().sum()
        };
        assert_eq!(
            column_sum("done.tasks"),
            trace.len() as u64,
            "done.tasks deltas must sum to the task count"
        );
        assert_eq!(
            column_sum("busy.ts"),
            stats.busy_ts,
            "busy.ts deltas must reproduce the end-of-run counter"
        );
        assert_eq!(
            column_sum("done.deps"),
            stats.deps_processed,
            "done.deps deltas must reproduce the end-of-run counter"
        );
    }

    // The streaming session at saturation: open-loop arrivals every cycle
    // against a bounded in-flight window, so admission backpressure and
    // the step/drain machinery are on the measured path.
    let session_runs_per_sec = sample(window, || {
        let r = pace::run_paced(&*hw, pace::PacedTrace::new(&trace, 1), Some(64))
            .expect("paced run completes");
        std::hint::black_box(r.report.makespan);
    });
    let session_tasks_per_sec = session_runs_per_sec * tasks;

    // Snapshot roundtrip: capture a mid-feed Picos session, serialize it
    // through the in-tree JSON codec, parse it back and restore into a
    // fresh session — the full save/restore cycle a serve checkpoint or a
    // what-if replica pays per snapshot.
    let snap_trace = gen::stream(gen::StreamConfig::heavy(400));
    let mut mid = hw
        .open_with(SessionConfig::batch())
        .expect("open snapshot session");
    feed_trace(&mut *mid, &snap_trace).expect("snapshot feed");
    let snapshot_roundtrip_per_sec = sample(window, || {
        let snap = Snapshot::capture(&*mid);
        let json = snap.to_json();
        let back = Snapshot::from_json(&json).expect("snapshot parses");
        let mut fresh = hw
            .open_with(SessionConfig::batch())
            .expect("open restore target");
        back.restore(&mut *fresh).expect("snapshot restores");
        std::hint::black_box(fresh.now());
    });
    drop(mid);

    // The sweep_throughput grid: two Cholesky granularities x three
    // backends x four worker counts, cell-parallel.
    let grid = Sweep::over_apps([App::Cholesky], [256, 128])
        .workers([2, 4, 8, 12])
        .backends([
            BackendSpec::Perfect,
            BackendSpec::Nanos,
            BackendSpec::Picos(HilMode::HwOnly),
        ]);
    let cells = grid.cells().len() as f64;
    let sweeps_per_sec = sample(window, || {
        std::hint::black_box(grid.run().rows().len());
    });
    let cells_per_sec = sweeps_per_sec * cells;

    // Warm- vs cold-start sweep A/B: four workloads share a 600-task
    // arrival prefix and diverge only in their last 60 tasks, so the
    // sweep's stem detector ingests the shared prefix once and forks a
    // snapshot per cell. Cold runs the identical grid with warm start
    // off. Both sides serial (no cell threads), interleaved medians so
    // host noise hits them equally; results are bit-identical (pinned in
    // the sweep tests and re-checked here on the warm-up runs).
    //
    // What warm start can and cannot save: batch sessions ingest into a
    // buffer and simulate everything at finish (bit-exactness forbids
    // advancing the stem's clock), so sharing the stem saves per-cell
    // backend construction and prefix ingest but never simulation — on a
    // simulation-dominated grid warm lands at parity with cold, paying a
    // session clone per fork for what it saves in re-ingest. The A/B
    // reports both sides for the trajectory and gates warm against ever
    // becoming materially slower.
    let warm_workloads: Vec<Workload> = (0..4u64)
        .map(|variant| {
            let mut tr = Trace::new(format!("warm-v{variant}"));
            let k = tr.kernel("k");
            for i in 0..600u64 {
                tr.push(
                    k,
                    [Dependence::output(i % 13), Dependence::input((i + 5) % 13)],
                    40 + (i % 7) * 25,
                );
            }
            for i in 0..60u64 {
                tr.push(
                    k,
                    [Dependence::output((i + variant) % 9)],
                    30 + ((i + variant) % 5) * 20,
                );
            }
            Workload::from_trace(format!("warm-v{variant}"), Arc::new(tr))
        })
        .collect();
    let warm_cells = warm_workloads.len() as f64;
    let warm_grid = || {
        Sweep::new(warm_workloads.clone())
            .workers([8])
            .backends([BackendSpec::Picos(HilMode::HwOnly)])
            .serial()
    };
    let mut sweep_ab: [Vec<f64>; 2] = [Vec::new(), Vec::new()];
    {
        let cold_result = warm_grid().run();
        let warm_result = warm_grid().warm_start().run();
        assert_eq!(
            cold_result, warm_result,
            "warm-started sweep must be bit-identical to cold"
        );
        let start = Instant::now();
        while start.elapsed() < window * 2 || sweep_ab[1].is_empty() {
            for (side, warm) in [(0, false), (1, true)] {
                let grid = if warm {
                    warm_grid().warm_start()
                } else {
                    warm_grid()
                };
                let t0 = Instant::now();
                std::hint::black_box(grid.run().rows().len());
                sweep_ab[side].push(t0.elapsed().as_secs_f64());
            }
        }
    }
    let [sweep_cold_cells_per_sec, sweep_warm_cells_per_sec] = sweep_ab.map(|mut v| {
        v.sort_unstable_by(f64::total_cmp);
        warm_cells / v[v.len() / 2]
    });

    // Cluster backend: shard counts over the open-loop stream workload
    // (its home turf), so the new backend's perf trajectory is covered
    // from day one.
    let stream = Arc::new(gen::stream(gen::StreamConfig::heavy(800)));
    let cluster_grid = Sweep::new([Workload::from_trace("stream", stream)])
        .workers([8])
        .backends([1usize, 2, 4].map(BackendSpec::Cluster));
    let cluster_cells = cluster_grid.cells().len() as f64;
    let cluster_runs_per_sec = sample(window, || {
        std::hint::black_box(cluster_grid.run().rows().len());
    });
    let cluster_cells_per_sec = cluster_runs_per_sec * cluster_cells;

    // Serial vs parallel cluster engine at 4 shards on the same stream
    // workload, interleaved A/B within one window so host noise hits both
    // sides equally. The parallel engine is bit-identical to serial, so
    // this measures pure wall-clock: the epoch engine's O(events)
    // processing against the serial driver's O(shards)-per-event pump
    // scans, plus real threads when the host has cores to give (the
    // thread count clamps to available parallelism, so single-core CI
    // runners measure the inline epoch engine).
    // A third side measures the fault layer's zero-fault overhead: a
    // cluster with an attached all-zero-rates FaultPlan runs the exact
    // same schedule bit-identically (pinned below), so the delta vs the
    // plain serial engine is the pure cost of the packet wrapper and the
    // per-pump fault-phase checks.
    let stream4 = gen::stream(gen::StreamConfig::heavy(800));
    let cluster_at = |threads: usize, faults: Option<FaultPlan>| {
        BackendSpec::Cluster(4)
            .builder(8)
            .picos(&PicosConfig::balanced())
            .threads(Some(threads))
            .faults(faults)
            .build()
    };
    let serial4 = cluster_at(1, None);
    let par4 = cluster_at(4, None);
    let fault0 = cluster_at(1, Some(FaultPlan::new(1)));
    let serial_makespan = serial4.run(&stream4).expect("serial cluster completes");
    let par_makespan = par4.run(&stream4).expect("parallel cluster completes");
    let fault0_makespan = fault0.run(&stream4).expect("zero-fault cluster completes");
    assert_eq!(
        serial_makespan, par_makespan,
        "parallel cluster engine must be bit-identical to serial"
    );
    assert_eq!(
        serial_makespan, fault0_makespan,
        "zero-fault plan must be bit-identical to no plan"
    );
    // Median-of-iterations per side: the 3% fault-overhead guard is
    // tighter than host noise on a mean, but the interleaved medians are
    // stable. fault0 runs adjacent to serial4 (its comparison side), so
    // the multi-threaded par4 run's thermal wake biases neither.
    let mut times: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    {
        let start = Instant::now();
        while start.elapsed() < window * 3 || times[1].is_empty() {
            for (side, backend) in [(0, &serial4), (2, &fault0), (1, &par4)] {
                let t0 = Instant::now();
                std::hint::black_box(backend.run(&stream4).expect("cluster run completes"));
                times[side].push(t0.elapsed().as_secs_f64());
            }
        }
    }
    let [cluster_serial4_cells_per_sec, cluster_par_cells_per_sec, cluster_fault0_cells_per_sec] =
        times.map(|mut v| {
            v.sort_unstable_by(f64::total_cmp);
            1.0 / v[v.len() / 2]
        });

    // Serve-layer multiplexing tax: 256 stream tenants multiplexed behind
    // one Service on one scheduler thread, against the same 256 sessions
    // run solo back to back under the identical effective session config.
    // The scheduler is invisible to the schedules (pinned by the serve
    // conformance suite), so the A/B isolates the service's bookkeeping —
    // registry lookups, admission checks, journaling, fair rounds — per
    // session. Interleaved medians as above.
    let serve_tenants = 256usize;
    let serve_trace = gen::stream(gen::StreamConfig::heavy(24));
    let serve_spec = TenantSpec::new(BackendSpec::Nanos, 2);
    let serve_names: Vec<String> = (0..serve_tenants).map(|i| format!("b{i:03}")).collect();
    let serve_tasks: Vec<_> = serve_trace.iter().collect();
    let mux_run = || {
        let mut svc = Service::new(ServeConfig::default()).expect("service starts");
        for name in &serve_names {
            svc.open(name, &serve_spec).expect("open tenant");
            // The same buffer pre-sizing feed_trace gives a solo session.
            svc.reserve(name, serve_trace.len()).expect("reserve");
        }
        // Clients submit in short bursts, interleaved across all tenants.
        for chunk in serve_tasks.chunks(8) {
            for name in &serve_names {
                for task in chunk {
                    while svc.submit(name, task).expect("submit") != SubmitOutcome::Accepted {
                        svc.run_round();
                    }
                }
            }
        }
        // LIFO close order: removing the newest tenant is a registry pop.
        for name in serve_names.iter().rev() {
            let out = svc.close(name).expect("close tenant");
            std::hint::black_box(out.report.makespan);
        }
    };
    let solo_cfg = serve_spec.effective_session_config(ServeConfig::default().default_quota);
    let solo_run = || {
        for _ in 0..serve_tenants {
            let backend = serve_spec.build_backend();
            let mut s = backend.open_with(solo_cfg).expect("open solo session");
            feed_trace(&mut *s, &serve_trace).expect("solo feed");
            let (r, _) = s.finish().expect("solo finish");
            std::hint::black_box(r.makespan);
        }
    };
    let mut serve_times: [Vec<f64>; 2] = [Vec::new(), Vec::new()];
    {
        mux_run();
        solo_run();
        let start = Instant::now();
        while start.elapsed() < window * 2 || serve_times[1].is_empty() {
            for (side, run) in [(0, &mux_run as &dyn Fn()), (1, &solo_run)] {
                let t0 = Instant::now();
                run();
                serve_times[side].push(t0.elapsed().as_secs_f64());
            }
        }
    }
    let [serve_sessions_per_sec, serve_solo_sessions_per_sec] = serve_times.map(|mut v| {
        v.sort_unstable_by(f64::total_cmp);
        serve_tenants as f64 / v[v.len() / 2]
    });

    let json = format!(
        "{{\n  \"workload\": \"sparselu128\",\n  \"tasks\": {},\n  \
         \"baseline_tasks_per_sec\": {:.0},\n  \
         \"baseline_note\": \"pre-rewrite engine on the reference machine; \
         speedup_vs_baseline is only meaningful there — across CI runners \
         compare tasks_per_sec between runs instead\",\n  \
         \"tasks_per_sec\": {:.0},\n  \
         \"speedup_vs_baseline\": {:.2},\n  \
         \"metrics_off_tasks_per_sec\": {:.0},\n  \
         \"metrics_timeline_tasks_per_sec\": {:.0},\n  \
         \"spans_off_tasks_per_sec\": {:.0},\n  \
         \"spans_on_tasks_per_sec\": {:.0},\n  \
         \"batch_tasks_per_sec\": {:.0},\n  \
         \"session_tasks_per_sec\": {:.0},\n  \
         \"snapshot_roundtrip_per_sec\": {:.1},\n  \"sweep_cells\": {},\n  \
         \"sweep_cells_per_sec\": {:.1},\n  \
         \"sweep_warm_cells_per_sec\": {:.1},\n  \
         \"sweep_cold_cells_per_sec\": {:.1},\n  \"cluster_cells\": {},\n  \
         \"cluster_cells_per_sec\": {:.1},\n  \
         \"cluster_serial4_cells_per_sec\": {:.1},\n  \
         \"cluster_par_cells_per_sec\": {:.1},\n  \
         \"cluster_fault0_cells_per_sec\": {:.1},\n  \
         \"serve_tenants\": {},\n  \
         \"serve_sessions_per_sec\": {:.1},\n  \
         \"serve_solo_sessions_per_sec\": {:.1}\n}}\n",
        tasks as u64,
        BASELINE_TASKS_PER_SEC,
        tasks_per_sec,
        tasks_per_sec / BASELINE_TASKS_PER_SEC,
        metrics_off_tasks_per_sec,
        metrics_timeline_tasks_per_sec,
        spans_off_tasks_per_sec,
        spans_on_tasks_per_sec,
        batch_tasks_per_sec,
        session_tasks_per_sec,
        snapshot_roundtrip_per_sec,
        cells as u64,
        cells_per_sec,
        sweep_warm_cells_per_sec,
        sweep_cold_cells_per_sec,
        cluster_cells as u64,
        cluster_cells_per_sec,
        cluster_serial4_cells_per_sec,
        cluster_par_cells_per_sec,
        cluster_fault0_cells_per_sec,
        serve_tenants,
        serve_sessions_per_sec,
        serve_solo_sessions_per_sec
    );
    print!("{json}");
    if let Err(e) = std::fs::write("BENCH_engine.json", &json) {
        eprintln!("warning: could not write BENCH_engine.json: {e}");
    }
    // CI assertion: the session-backed batch path must stay within a
    // sanity factor of the raw engine measured in the same process. A
    // violation means the session refactor (or a later change) put
    // something expensive on the batch hot path.
    if batch_tasks_per_sec < tasks_per_sec / 4.0 {
        eprintln!(
            "FAIL: batch path {batch_tasks_per_sec:.0} tasks/s fell below a \
             quarter of the raw engine's {tasks_per_sec:.0} tasks/s"
        );
        std::process::exit(1);
    }
    // CI assertion: attaching a coarse-window (65536-cycle) timeline must
    // cost no more than 10% of engine throughput — the telemetry layer's
    // overhead contract (one branch per clock move, one probe per window).
    // Interleaved A/B measurement above keeps host noise symmetric.
    if metrics_timeline_tasks_per_sec < metrics_off_tasks_per_sec * 0.9 {
        eprintln!(
            "FAIL: coarse-window timeline run {metrics_timeline_tasks_per_sec:.0} \
             tasks/s fell more than 10% below the probes-only \
             {metrics_off_tasks_per_sec:.0} tasks/s"
        );
        std::process::exit(1);
    }
    // CI assertion: attaching the span recorder must cost no more than 10%
    // of batch throughput — the span layer's overhead contract (one branch
    // per lifecycle site when detached, one preallocated push when
    // attached). Interleaved A/B measurement keeps host noise symmetric.
    if spans_on_tasks_per_sec < spans_off_tasks_per_sec * 0.9 {
        eprintln!(
            "FAIL: spans-on batch run {spans_on_tasks_per_sec:.0} tasks/s \
             fell more than 10% below the spans-off \
             {spans_off_tasks_per_sec:.0} tasks/s"
        );
        std::process::exit(1);
    }
    // CI assertion: on a shared-prefix grid the warm-started sweep must
    // never be slower than the cold sweep (10% sampling-noise allowance —
    // the two sides measure at parity, see the A/B comment above, so the
    // gate is a regression guard on the fork path, not a speedup claim):
    // warm ingests the 600-task stem once and forks the session per cell
    // for bit-identical results.
    if sweep_warm_cells_per_sec < sweep_cold_cells_per_sec * 0.90 {
        eprintln!(
            "FAIL: warm-started sweep {sweep_warm_cells_per_sec:.1} cells/s \
             fell below the cold sweep's {sweep_cold_cells_per_sec:.1} cells/s \
             on a shared-prefix grid"
        );
        std::process::exit(1);
    }
    // CI assertion: the parallel cluster engine must never be slower than
    // the serial reference (5% sampling-noise allowance; measured >= 1.7x
    // faster even single-core, where the win is the epoch engine's
    // O(events) processing replacing the serial driver's per-event shard
    // scans — multi-core runners add near-linear thread speedup on top).
    if cluster_par_cells_per_sec < cluster_serial4_cells_per_sec * 0.95 {
        eprintln!(
            "FAIL: parallel 4-shard cluster {cluster_par_cells_per_sec:.1} \
             cells/s fell below the serial engine's \
             {cluster_serial4_cells_per_sec:.1} cells/s"
        );
        std::process::exit(1);
    }
    // CI assertion: an attached zero-fault plan must cost no more than 3%
    // of serial cluster throughput — the fault layer's overhead contract
    // (the packet wrapper adds one u32 + bool per message and the pump
    // adds constant-time empty-queue checks; no RNG draws at zero rates).
    if cluster_fault0_cells_per_sec < cluster_serial4_cells_per_sec * 0.97 {
        eprintln!(
            "FAIL: zero-fault 4-shard cluster {cluster_fault0_cells_per_sec:.1} \
             cells/s fell more than 3% below the plain serial engine's \
             {cluster_serial4_cells_per_sec:.1} cells/s"
        );
        std::process::exit(1);
    }
    // CI assertion: multiplexing 256 tenants behind the service must keep
    // aggregate session throughput within 25% of the same sessions run
    // solo — the serve layer's overhead contract (registry lookup +
    // admission check per submit, fair rounds amortised across tenants).
    if serve_sessions_per_sec < serve_solo_sessions_per_sec * 0.75 {
        eprintln!(
            "FAIL: multiplexed service {serve_sessions_per_sec:.1} sessions/s \
             fell more than 25% below the solo reference's \
             {serve_solo_sessions_per_sec:.1} sessions/s"
        );
        std::process::exit(1);
    }
}
