//! Regenerates the **critical-path attribution** figure: where the
//! makespan-critical chain spends its cycles as the DM design and the
//! shard count vary.
//!
//! Every cell runs the same workload through the cluster backend with
//! span tracing attached, then walks the span log backward from the
//! last-finishing task and attributes every cycle of the makespan to a
//! category — DM registration wait, TRS wake latency, TS queueing, link
//! transit, dispatch, worker execution. The shares of one row sum to
//! 100% by construction (the walk is contiguous from cycle 0 to the
//! makespan), so the table shows directly which stage bounds each design
//! point and how the bottleneck shifts when the same workload spreads
//! over more shards.

use picos_backend::{BackendSpec, SessionConfig};
use picos_bench::Table;
use picos_core::{DmDesign, PicosConfig};
use picos_metrics::span;
use picos_trace::{gen, TaskGraph, TaskId};

const SHARDS: [usize; 3] = [1, 2, 4];
const WORKERS: usize = 8;

fn main() {
    let trace = gen::sparselu(gen::SparseLuConfig::paper(128));
    let graph = TaskGraph::build(&trace);
    let mut headers = vec!["Design", "Shards", "Makespan"];
    headers.extend(span::CpCategory::ALL.map(|c| c.name()));
    let mut t = Table::new(
        format!(
            "Critical-path attribution: category shares of the makespan \
             (cluster backend, {} bs128, {WORKERS} workers)",
            trace.name
        ),
        &headers,
    );
    for dm in DmDesign::ALL {
        for shards in SHARDS {
            let backend = BackendSpec::Cluster(shards)
                .builder(WORKERS)
                .picos(&PicosConfig::future(1, dm))
                .build();
            let cfg = SessionConfig {
                trace_spans: true,
                ..SessionConfig::batch()
            };
            let out = backend
                .run_with_telemetry(&trace, cfg)
                .expect("cluster run completes");
            let log = out.spans.as_ref().expect("span tracing was requested");
            let cp = span::critical_path(
                log,
                |task| graph.preds(TaskId::new(task)).to_vec(),
                out.report.makespan,
            )
            .expect("the run finished tasks");
            let attributed: u64 = cp.totals().iter().map(|&(_, v)| v).sum();
            assert_eq!(
                attributed, out.report.makespan,
                "attributed cycles must cover the whole makespan"
            );
            let mut cells = vec![
                dm.name().to_string(),
                shards.to_string(),
                out.report.makespan.to_string(),
            ];
            cells
                .extend(cp.totals().map(|(_, v)| {
                    format!("{:.1}%", v as f64 / out.report.makespan as f64 * 100.0)
                }));
            t.row(cells);
        }
    }
    t.emit("fig_critical_path");
}
