//! Regenerates **Table II**: number of DM conflicts in the three Picos
//! designs, 12 workers, HIL HW-only mode.

use picos_bench::{picos_report_with_stats, Table};
use picos_core::{DmDesign, PicosConfig};
use picos_hil::HilMode;
use picos_trace::gen::App;

/// Paper Table II reference values, in row order.
const PAPER: &[(&str, u64, [u64; 3])] = &[
    ("heat", 128, [254, 252, 65]),
    ("heat", 64, [1022, 1020, 757]),
    ("sparselu", 128, [189, 166, 0]),
    ("sparselu", 64, [239, 0, 0]),
    ("lu", 64, [491, 392, 0]),
    ("lu", 32, [2039, 1937, 0]),
    ("cholesky", 256, [108, 79, 0]),
    ("cholesky", 128, [807, 792, 0]),
];

fn main() {
    let mut t = Table::new(
        "Table II: #DM conflicts (12 workers, HW-only) — measured (paper)",
        &["Name", "BlockSize", "DM 8way", "DM 16way", "DM P+8way"],
    );
    for &(name, bs, paper) in PAPER {
        let app = App::ALL.into_iter().find(|a| a.name() == name).unwrap();
        let tr = app.generate(bs);
        let mut cells = vec![name.to_string(), bs.to_string()];
        for (i, dm) in DmDesign::ALL.into_iter().enumerate() {
            let (_, stats) =
                picos_report_with_stats(&tr, 12, PicosConfig::baseline(dm), HilMode::HwOnly);
            cells.push(format!("{} ({})", stats.dm_conflicts, paper[i]));
        }
        t.row(cells);
    }
    t.emit("table2_dm_conflicts");
}
