//! Regenerates **Table II**: number of DM conflicts in the three Picos
//! designs, 12 workers, HIL HW-only mode.
//!
//! The conflict counters ride along in the sweep rows (the harness collects
//! hardware statistics for every Picos cell).

use picos_backend::{BackendSpec, Sweep, Workload};
use picos_bench::{emit_sweep, Table};
use picos_core::DmDesign;
use picos_hil::HilMode;
use picos_trace::gen::App;

/// Paper Table II reference values, in row order.
const PAPER: &[(App, u64, [u64; 3])] = &[
    (App::Heat, 128, [254, 252, 65]),
    (App::Heat, 64, [1022, 1020, 757]),
    (App::SparseLu, 128, [189, 166, 0]),
    (App::SparseLu, 64, [239, 0, 0]),
    (App::Lu, 64, [491, 392, 0]),
    (App::Lu, 32, [2039, 1937, 0]),
    (App::Cholesky, 256, [108, 79, 0]),
    (App::Cholesky, 128, [807, 792, 0]),
];

fn main() {
    let workloads = PAPER
        .iter()
        .map(|&(app, bs, _)| Workload::from_app(app, bs));
    let result = Sweep::new(workloads)
        .workers([12])
        .backends([BackendSpec::Picos(HilMode::HwOnly)])
        .dm_designs(DmDesign::ALL)
        .run();
    emit_sweep(&result, "table2_dm_conflicts");

    let mut t = Table::new(
        "Table II: #DM conflicts (12 workers, HW-only) — measured (paper)",
        &["Name", "BlockSize", "DM 8way", "DM 16way", "DM P+8way"],
    );
    // Cell order is workload (outer) × DM design (inner, one worker count):
    // each chunk of three rows is one table line in DmDesign::ALL order.
    for (line, &(app, bs, paper)) in result.rows().chunks(DmDesign::ALL.len()).zip(PAPER) {
        let mut cells = vec![app.name().to_string(), bs.to_string()];
        for (row, paper_val) in line.iter().zip(paper) {
            let measured = row
                .dm_conflicts
                .expect("picos cells carry conflict counters");
            cells.push(format!("{measured} ({paper_val})"));
        }
        t.row(cells);
    }
    t.emit("table2_dm_conflicts");
}
