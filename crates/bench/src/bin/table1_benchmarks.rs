//! Regenerates **Table I**: real benchmark characteristics.
//!
//! Prints, for each application and block size, the task count, the
//! dependence range, the average task size and the sequential execution
//! time of the generated trace, next to the paper's reported values.

use picos_bench::Table;
use picos_trace::gen::{table1_row, App};

fn main() {
    let mut t = Table::new(
        "Table I: real benchmarks (generated vs paper)",
        &[
            "Name", "P/Block", "#Tasks", "paper", "#Dep", "paper", "AveTSize", "paper", "SeqExec",
            "paper",
        ],
    );
    for app in App::ALL {
        for bs in app.paper_block_sizes() {
            let tr = app.generate(bs);
            let s = tr.stats();
            let p = table1_row(app.name(), bs).expect("paper row exists");
            let problem = if app == App::H264dec {
                format!("10f/{bs}")
            } else {
                format!("2048/{bs}")
            };
            t.row(vec![
                app.name().to_string(),
                problem,
                s.num_tasks.to_string(),
                p.tasks.to_string(),
                s.dep_range(),
                if p.deps.0 == p.deps.1 {
                    p.deps.0.to_string()
                } else {
                    format!("{}-{}", p.deps.0, p.deps.1)
                },
                format!("{:.2e}", s.avg_task_size),
                format!("{:.2e}", p.avg_task_size),
                format!("{:.2e}", s.sequential_time as f64),
                format!("{:.2e}", p.seq_exec as f64),
            ]);
        }
    }
    t.emit("table1_benchmarks");
}
