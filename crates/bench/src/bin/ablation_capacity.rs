//! Ablation beyond the paper: TM / VM capacity sweep.
//!
//! Figure 11's roofline gaps at the finest granularities trace back to the
//! prototype's fixed capacities (256 in-flight tasks, 512 versions). This
//! ablation scales each memory independently to show which one binds per
//! workload — the quantitative backing for the paper's Section V-D remark
//! about "the lack of hardware resources".

use picos_bench::{f2, picos_speedup, Table};
use picos_core::PicosConfig;
use picos_hil::HilMode;
use picos_trace::gen::App;

fn main() {
    let mut t = Table::new(
        "Ablation: TM/VM capacity sweep (HW-only, 24 workers, DM P+8way)",
        &[
            "App",
            "BlockSize",
            "TM entries",
            "VM entries",
            "DM sets",
            "speedup",
        ],
    );
    for (app, bs) in [(App::Heat, 32), (App::H264dec, 2)] {
        let tr = app.generate(bs);
        for (tm, vm, sets) in [
            (256usize, 512usize, 64usize), // the paper's prototype
            (256, 2048, 64),               // 4x versions
            (1024, 512, 64),               // 4x tasks
            (256, 512, 256),               // 4x DM tags
            (1024, 2048, 256),             // 4x everything
            (4096, 8192, 1024),            // far future
        ] {
            let mut cfg = PicosConfig::balanced();
            cfg.tm_entries = tm;
            cfg.vm_entries = vm;
            cfg.dm_sets = sets;
            let s = picos_speedup(&tr, 24, cfg, HilMode::HwOnly);
            t.row(vec![
                app.name().to_string(),
                bs.to_string(),
                tm.to_string(),
                vm.to_string(),
                sets.to_string(),
                f2(s),
            ]);
        }
        eprintln!("capacity: {} bs {} done", app.name(), bs);
    }
    t.emit("ablation_capacity");
}
