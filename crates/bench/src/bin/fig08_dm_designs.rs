//! Regenerates **Figure 8**: speedup of the three Picos DM designs on four
//! real benchmarks (two block sizes each), HIL HW-only mode, 2-12 workers.

use picos_bench::{f2, picos_speedup, Table};
use picos_core::{DmDesign, PicosConfig};
use picos_hil::HilMode;
use picos_trace::gen::App;

/// The benchmark/block-size pairs of Figure 8 (same set as Table II).
const PAIRS: &[(&str, [u64; 2])] = &[
    ("heat", [128, 64]),
    ("cholesky", [256, 128]),
    ("lu", [64, 32]),
    ("sparselu", [128, 64]),
];

fn main() {
    let mut t = Table::new(
        "Figure 8: speedup of different Picos configurations (HW-only)",
        &["Benchmark", "BlockSize", "Design", "w2", "w4", "w6", "w8", "w10", "w12"],
    );
    for &(name, sizes) in PAIRS {
        let app = App::ALL.into_iter().find(|a| a.name() == name).unwrap();
        for bs in sizes {
            let tr = app.generate(bs);
            for dm in DmDesign::ALL {
                let mut cells = vec![name.to_string(), bs.to_string(), dm.name().to_string()];
                for w in [2usize, 4, 6, 8, 10, 12] {
                    cells.push(f2(picos_speedup(
                        &tr,
                        w,
                        PicosConfig::baseline(dm),
                        HilMode::HwOnly,
                    )));
                }
                t.row(cells);
            }
        }
    }
    t.emit("fig08_dm_designs");
}
