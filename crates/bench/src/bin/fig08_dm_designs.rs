//! Regenerates **Figure 8**: speedup of the three Picos DM designs on four
//! real benchmarks (two block sizes each), HIL HW-only mode, 2-12 workers.
//!
//! The 144-cell grid (8 workloads × 3 DM designs × 6 worker counts) runs
//! through the parallel sweep harness.

use picos_backend::{BackendSpec, Sweep, Workload};
use picos_bench::{emit_sweep, f2, Table};
use picos_core::DmDesign;
use picos_hil::HilMode;
use picos_trace::gen::App;

/// The benchmark/block-size pairs of Figure 8 (same set as Table II).
const PAIRS: &[(App, [u64; 2])] = &[
    (App::Heat, [128, 64]),
    (App::Cholesky, [256, 128]),
    (App::Lu, [64, 32]),
    (App::SparseLu, [128, 64]),
];

const WORKERS: [usize; 6] = [2, 4, 6, 8, 10, 12];

fn main() {
    let workloads = PAIRS
        .iter()
        .flat_map(|&(app, sizes)| sizes.into_iter().map(move |bs| Workload::from_app(app, bs)));
    let result = Sweep::new(workloads)
        .workers(WORKERS)
        .backends([BackendSpec::Picos(HilMode::HwOnly)])
        .dm_designs(DmDesign::ALL)
        .run();
    emit_sweep(&result, "fig08_dm_designs");

    let mut t = Table::new(
        "Figure 8: speedup of different Picos configurations (HW-only)",
        &[
            "Benchmark",
            "BlockSize",
            "Design",
            "w2",
            "w4",
            "w6",
            "w8",
            "w10",
            "w12",
        ],
    );
    // Cell order is workload (outer) × DM design × workers (inner): every
    // consecutive run of WORKERS.len() rows is one table line.
    for line in result.rows().chunks(WORKERS.len()) {
        let first = &line[0];
        let mut cells = vec![
            first.workload.clone(),
            first
                .block_size
                .expect("app workloads carry a block size")
                .to_string(),
            first.dm.name().to_string(),
        ];
        cells.extend(line.iter().map(|r| f2(r.speedup)));
        t.row(cells);
    }
    t.emit("fig08_dm_designs");
}
