//! **Per-unit utilization over time** — the saturation-regime plot the
//! paper's analysis implies but never draws.
//!
//! Table II and the busy-cycle breakdown attribute *total* cycles to the
//! GW/TRS/DCT/ARB/TS units; this figure resolves the same attribution in
//! time: each workload runs on the raw hardware model with a cycle-windowed
//! telemetry timeline attached, across all three DM designs, and the
//! emitted traces show which unit saturates when — the DCT ramping to its
//! initiation-interval ceiling on dependence-heavy phases, the DM/VM
//! occupancy climbing until conflicts throttle the pipeline, the ready
//! buffer backing up when workers are the bottleneck.
//!
//! The sampling window adapts per workload (about [`TARGET_WINDOWS`]
//! samples over the makespan) so a 70-Mcycle Cholesky and a 2-Mcycle
//! stream both produce plot-sized traces. Emits, per workload,
//! `results/fig_utilization_<w>.{csv,json}` and
//! `results/fig_utilization_<w>_timeline.csv` (long format: one row per
//! cell × window × series), plus the combined
//! `results/fig_utilization_summary.{txt,csv}` peak/mean table.
//!
//! Knob: `FIG_UTIL_WINDOWS` — target samples per run (default 200).

use picos_backend::{BackendSpec, Sweep, Workload};
use picos_bench::{f2, results_dir, Table};
use picos_core::DmDesign;
use picos_hil::HilMode;
use picos_trace::gen::{self, App};
use std::sync::Arc;

/// The per-unit busy-delta series of the core timeline, paper order.
const UNITS: [&str; 5] = [
    "core.busy.gw",
    "core.busy.trs",
    "core.busy.dct",
    "core.busy.arb",
    "core.busy.ts",
];

/// Target sample count per run (the window adapts to the makespan).
const TARGET_WINDOWS: u64 = 200;

fn target_windows() -> u64 {
    std::env::var("FIG_UTIL_WINDOWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&w| w > 0)
        .unwrap_or(TARGET_WINDOWS)
}

fn main() {
    let target = target_windows();
    let stream = Arc::new(gen::stream(gen::StreamConfig::heavy(2_000)));
    let workloads = vec![
        Workload::from_app(App::Cholesky, 256),
        Workload::from_app(App::SparseLu, 128),
        Workload::from_trace("stream", stream),
    ];
    let dir = results_dir();
    let mut table = Table::new(
        "Per-unit utilization over time (HW-only, 8 workers)",
        &[
            "workload",
            "dm",
            "unit",
            "window",
            "peak util",
            "mean util",
            "peak at",
        ],
    );
    for workload in workloads {
        // Size the sampling window off a probe run's makespan so every
        // workload yields about `target` samples regardless of scale.
        let probe = BackendSpec::Picos(HilMode::HwOnly)
            .builder(8)
            .build()
            .run(&workload.trace)
            .expect("probe run completes");
        let window = (probe.makespan / target).max(1);
        let result = Sweep::new([workload.clone()])
            .workers([8])
            .backends([BackendSpec::Picos(HilMode::HwOnly)])
            .dm_designs(DmDesign::ALL)
            .timeline(window)
            .run();
        if let Some(e) = result.first_error() {
            eprintln!("fig_utilization: failing cell: {e}");
            std::process::exit(1);
        }
        for row in result.rows() {
            let tl = row.timeline.as_ref().expect("timeline requested");
            for unit in UNITS {
                let col = tl.column(unit).expect("core series present");
                // Utilization of a window = busy delta / window width; the
                // final partial window normalizes by its own width.
                let mut peak = 0.0f64;
                let mut peak_at = 0u64;
                let mut total_busy = 0u64;
                for (i, &busy) in col.iter().enumerate() {
                    let (start, end, _) = tl.sample(i);
                    let u = busy as f64 / (end - start) as f64;
                    if u > peak {
                        peak = u;
                        peak_at = start;
                    }
                    total_busy += busy;
                }
                let mean = total_busy as f64 / row.makespan.max(1) as f64;
                table.row(vec![
                    row.workload.clone(),
                    row.dm.name().replace(' ', "-"),
                    unit.trim_start_matches("core.busy.").to_string(),
                    window.to_string(),
                    f2(peak),
                    f2(mean),
                    peak_at.to_string(),
                ]);
            }
        }
        let name = format!("fig_utilization_{}", result.rows()[0].workload);
        if let Err(e) = result.write_files(&dir, &name) {
            eprintln!("fig_utilization: writing results: {e}");
            std::process::exit(1);
        }
    }
    table.emit("fig_utilization_summary");
    println!("wrote {}/fig_utilization_*.{{csv,json}}", dir.display());
}
