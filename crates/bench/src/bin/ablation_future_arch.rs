//! Ablation beyond the paper's prototype: the **future architecture** of
//! Figure 3a with N TRS and N DCT instances behind the Arbiter.
//!
//! The paper argues a 4-instance design can manage up to 256 cores and that
//! larger configurations would close the gap to the Perfect Simulator that
//! opens for very fine-grained workloads (Section V-D). This ablation
//! measures that claim on the finest-grained traces, using the sweep
//! harness's instance-count axis.

use picos_backend::{BackendSpec, Sweep, Workload};
use picos_bench::{emit_sweep, f2, Table};
use picos_hil::HilMode;
use picos_trace::gen::App;

const WORKERS: [usize; 3] = [12, 24, 48];
const INSTANCES: [usize; 3] = [1, 2, 4];

fn main() {
    let pairs = [(App::Cholesky, 32), (App::Heat, 32), (App::H264dec, 2)];
    let result = Sweep::new(pairs.map(|(app, bs)| Workload::from_app(app, bs)))
        .workers(WORKERS)
        .backends([BackendSpec::Picos(HilMode::HwOnly), BackendSpec::Perfect])
        .instances(INSTANCES)
        .run();
    emit_sweep(&result, "ablation_future_arch");

    let mut t = Table::new(
        "Ablation: 1/2/4 TRS+DCT instances (HW-only, fine-grained traces)",
        &[
            "App",
            "BlockSize",
            "Workers",
            "1x1",
            "2x2",
            "4x4",
            "perfect",
        ],
    );
    for (app, bs) in pairs {
        for w in WORKERS {
            let mut cells = vec![app.name().to_string(), bs.to_string(), w.to_string()];
            for n in INSTANCES {
                let row = result
                    .rows()
                    .iter()
                    .find(|r| {
                        r.workload == app.name()
                            && r.backend == BackendSpec::Picos(HilMode::HwOnly)
                            && r.workers == w
                            && r.instances == n
                    })
                    .expect("cell ran");
                cells.push(f2(row.speedup));
            }
            let perfect = result
                .speedup_of(app.name(), bs, BackendSpec::Perfect, w)
                .expect("cell ran");
            cells.push(f2(perfect));
            t.row(cells);
        }
    }
    t.emit("ablation_future_arch");
}
