//! Ablation beyond the paper's prototype: the **future architecture** of
//! Figure 3a with N TRS and N DCT instances behind the Arbiter.
//!
//! The paper argues a 4-instance design can manage up to 256 cores and that
//! larger configurations would close the gap to the Perfect Simulator that
//! opens for very fine-grained workloads (Section V-D). This ablation
//! measures that claim on the finest-grained traces.

use picos_bench::{f2, perfect_speedup, picos_speedup, Table};
use picos_core::{DmDesign, PicosConfig};
use picos_hil::HilMode;
use picos_trace::gen::App;

fn main() {
    let mut t = Table::new(
        "Ablation: 1/2/4 TRS+DCT instances (HW-only, fine-grained traces)",
        &["App", "BlockSize", "Workers", "1x1", "2x2", "4x4", "perfect"],
    );
    for (app, bs) in [
        (App::Cholesky, 32),
        (App::Heat, 32),
        (App::H264dec, 2),
    ] {
        let tr = app.generate(bs);
        for w in [12usize, 24, 48] {
            let mut cells = vec![app.name().to_string(), bs.to_string(), w.to_string()];
            for n in [1usize, 2, 4] {
                cells.push(f2(picos_speedup(
                    &tr,
                    w,
                    PicosConfig::future(n, DmDesign::PearsonEightWay),
                    HilMode::HwOnly,
                )));
            }
            cells.push(f2(perfect_speedup(&tr, w)));
            t.row(cells);
            eprintln!("future-arch: {} bs {} w {} done", app.name(), bs, w);
        }
    }
    t.emit("ablation_future_arch");
}
