//! Regenerates **Table IV**: latency and throughput of the synthetic
//! benchmarks under the three HIL modes, 12 workers.

use picos_bench::{f1, Table};
use picos_hil::{run_hil, synthetic_metrics, HilConfig, HilMode};
use picos_trace::gen::{synthetic, Case};

/// One mode's reference row: (L1st, thrTask, thrDep) per synthetic case.
type ModeRow = [(u64, f64, f64); 7];

/// Paper Table IV reference: per mode, per case, (L1st, thrTask, thrDep).
/// `0.0` stands for the paper's `-` (no dependences).
const PAPER: &[(&str, ModeRow)] = &[
    (
        "HW-only",
        [
            (45, 15.0, 0.0),
            (73, 24.0, 24.0),
            (312, 243.0, 16.0),
            (72, 24.0, 24.0),
            (96, 35.0, 18.0),
            (287, 38.0, 19.0),
            (233, 178.0, 16.0),
        ],
    ),
    (
        "HW+comm.",
        [
            (1172, 740.0, 0.0),
            (1174, 740.0, 740.0),
            (1293, 734.0, 49.0),
            (1151, 743.0, 743.0),
            (1158, 743.0, 371.0),
            (1274, 743.0, 372.0),
            (1279, 743.0, 68.0),
        ],
    ),
    (
        "Full-system",
        [
            (3879, 2729.0, 0.0),
            (4240, 3125.0, 3125.0),
            (4710, 3413.0, 228.0),
            (4246, 3124.0, 3124.0),
            (4217, 3168.0, 1584.0),
            (4531, 3165.0, 1583.0),
            (4549, 3379.0, 307.0),
        ],
    ),
];

fn main() {
    let mut t = Table::new(
        "Table IV: synthetic benchmarks, 12 workers — measured (paper)",
        &[
            "Mode", "Metric", "Case1", "Case2", "Case3", "Case4", "Case5", "Case6", "Case7",
        ],
    );
    for (mode, (mode_name, paper)) in HilMode::ALL.into_iter().zip(PAPER) {
        let mut l1st = vec![mode_name.to_string(), "L1st".to_string()];
        let mut thr_t = vec![mode_name.to_string(), "thrTask".to_string()];
        let mut thr_d = vec![mode_name.to_string(), "thrDep".to_string()];
        for (case, p) in Case::ALL.into_iter().zip(paper) {
            let tr = synthetic(case);
            let cfg = HilConfig::balanced(12);
            let r = run_hil(&tr, mode, &cfg).expect("synthetic run completes");
            let m = synthetic_metrics(&r, &tr);
            l1st.push(format!("{} ({})", m.l1st, p.0));
            thr_t.push(format!("{} ({})", f1(m.thr_task), f1(p.1)));
            thr_d.push(match m.thr_dep {
                Some(d) => format!("{} ({})", f1(d), f1(p.2)),
                None => "- (-)".to_string(),
            });
        }
        t.row(l1st);
        t.row(thr_t);
        t.row(thr_d);
    }
    t.emit("table4_synthetic");
}
