//! Regenerates **Figure 9**: the Lu corner case.
//!
//! Left side: the modified-creation-order Lu ("MLu") where the paper
//! reorders the update tasks so the wake-from-last-consumer policy no
//! longer postpones the critical path. Right side: the original Lu with a
//! LIFO Task Scheduler instead of the default FIFO.

use picos_bench::{f2, picos_speedup_policy, Table};
use picos_core::{DmDesign, PicosConfig, TsPolicy};
use picos_hil::HilMode;
use picos_trace::gen::{lu, LuConfig};

fn main() {
    let mut t = Table::new(
        "Figure 9: modified Lu (MLu) and LIFO task scheduler (HW-only, 12 workers)",
        &[
            "Workload",
            "BlockSize",
            "TS policy",
            "DM 8way",
            "DM 16way",
            "DM P+8way",
        ],
    );
    for bs in [64u64, 32] {
        for (label, cfg, policy) in [
            ("Lu", LuConfig::paper(bs), TsPolicy::Fifo),
            ("MLu", LuConfig::paper_modified(bs), TsPolicy::Fifo),
            ("Lu", LuConfig::paper(bs), TsPolicy::Lifo),
        ] {
            let tr = lu(cfg);
            let mut cells = vec![
                label.to_string(),
                bs.to_string(),
                format!("{policy:?}").to_uppercase(),
            ];
            for dm in DmDesign::ALL {
                cells.push(f2(picos_speedup_policy(
                    &tr,
                    12,
                    PicosConfig::baseline(dm),
                    HilMode::HwOnly,
                    policy,
                )));
            }
            t.row(cells);
        }
    }
    t.emit("fig09_lu_corner");
}
