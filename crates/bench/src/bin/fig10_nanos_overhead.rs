//! Regenerates **Figure 10**: Nanos++ task creation and submission
//! overhead per task, in cycles, as a function of the thread count.
//!
//! "Creation" is the per-task creation overhead (independent of the number
//! of dependences); "x DEPs" is the submission overhead of a single task
//! with x dependences.

use picos_bench::Table;
use picos_runtime::NanosCostModel;

fn main() {
    let m = NanosCostModel::default();
    let mut t = Table::new(
        "Figure 10: Nanos++ RTS overhead for a single task (cycles)",
        &[
            "Threads", "Creation", "1 DEP", "2 DEPs", "4 DEPs", "8 DEPs", "15 DEPs",
        ],
    );
    for threads in [1usize, 2, 4, 6, 8, 10, 12, 16, 20, 24] {
        t.row(vec![
            threads.to_string(),
            m.creation(threads).to_string(),
            m.submission(1, threads).to_string(),
            m.submission(2, threads).to_string(),
            m.submission(4, threads).to_string(),
            m.submission(8, threads).to_string(),
            m.submission(15, threads).to_string(),
        ]);
    }
    t.emit("fig10_nanos_overhead");
}
