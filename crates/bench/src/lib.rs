//! Experiment harness for the Picos reproduction.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see `DESIGN.md` for the index). This library provides the shared
//! pieces: an aligned table printer with CSV export, the results
//! directory, and one-call runners that drive every execution engine
//! through the uniform [`picos_backend::ExecBackend`] trait. Grid-shaped
//! experiments (Figures 1, 8, 11; Table II) use the parallel
//! [`picos_backend::Sweep`] harness instead of hand-rolled loops.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use picos_backend::{BackendSpec, SweepResult};
use picos_core::{PicosConfig, Stats, TsPolicy};
use picos_hil::HilMode;
use picos_runtime::ExecReport;
use picos_trace::Trace;
use std::path::PathBuf;

/// A printable experiment table that can also be saved as text + CSV.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table title (printed above the header).
    pub title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("# {}\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders the table as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout and writes `<name>.txt` / `<name>.csv`
    /// into the results directory.
    pub fn emit(&self, name: &str) {
        let rendered = self.render();
        println!("{rendered}");
        let dir = results_dir();
        if std::fs::create_dir_all(&dir).is_ok() {
            let _ = std::fs::write(dir.join(format!("{name}.txt")), &rendered);
            let _ = std::fs::write(dir.join(format!("{name}.csv")), self.to_csv());
        }
    }
}

/// The workspace `results/` directory.
pub fn results_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results")
}

/// Formats a speedup/throughput value with two decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a speedup value with one decimal (the paper's granularity).
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Runs a trace through any backend family and returns the report.
///
/// # Panics
///
/// Panics if the engine stalls — experiments treat that as a fatal bug.
pub fn backend_report(
    trace: &Trace,
    spec: BackendSpec,
    workers: usize,
    picos: &PicosConfig,
) -> ExecReport {
    spec.build(workers, picos)
        .run(trace)
        .unwrap_or_else(|e| panic!("{spec} run must complete: {e}"))
}

/// Runs the trace through the Picos HIL platform and returns the report.
///
/// # Panics
///
/// Panics if the platform stalls — experiments treat that as a fatal bug.
pub fn picos_report(
    trace: &Trace,
    workers: usize,
    picos: PicosConfig,
    mode: HilMode,
) -> ExecReport {
    backend_report(trace, BackendSpec::Picos(mode), workers, &picos)
}

/// Like [`picos_report`] but also returns the core statistics (conflicts).
pub fn picos_report_with_stats(
    trace: &Trace,
    workers: usize,
    picos: PicosConfig,
    mode: HilMode,
) -> (ExecReport, Stats) {
    let (report, stats) = BackendSpec::Picos(mode)
        .build(workers, &picos)
        .run_with_stats(trace)
        .expect("picos HIL run must complete");
    (
        report,
        stats.expect("picos backends report hardware counters"),
    )
}

/// Picos speedup for a trace, worker count, config and mode.
pub fn picos_speedup(trace: &Trace, workers: usize, picos: PicosConfig, mode: HilMode) -> f64 {
    picos_report(trace, workers, picos, mode).speedup()
}

/// Picos speedup with an explicit TS policy (Figure 9).
pub fn picos_speedup_policy(
    trace: &Trace,
    workers: usize,
    picos: PicosConfig,
    mode: HilMode,
    policy: TsPolicy,
) -> f64 {
    picos_speedup(trace, workers, picos.with_ts_policy(policy), mode)
}

/// Nanos++ software-runtime speedup.
///
/// # Panics
///
/// Panics if the software runtime stalls.
pub fn nanos_speedup(trace: &Trace, workers: usize) -> f64 {
    backend_report(trace, BackendSpec::Nanos, workers, &PicosConfig::balanced()).speedup()
}

/// Perfect-scheduler (roofline) speedup.
pub fn perfect_speedup(trace: &Trace, workers: usize) -> f64 {
    backend_report(
        trace,
        BackendSpec::Perfect,
        workers,
        &PicosConfig::balanced(),
    )
    .speedup()
}

/// Writes a sweep's raw results as `<name>_raw.csv` / `<name>_raw.json`
/// into the results directory (the pivoted paper table is emitted
/// separately via [`Table::emit`]).
pub fn emit_sweep(result: &SweepResult, name: &str) {
    if let Err(e) = result.write_files(&results_dir(), &format!("{name}_raw")) {
        eprintln!("warning: could not write raw sweep results for {name}: {e}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["a", "bb"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["10".into(), "200".into()]);
        let r = t.render();
        assert!(r.contains("# demo"));
        assert!(r.contains(" a   bb"));
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("a,bb\n"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn runners_produce_consistent_speedups() {
        let tr = picos_trace::gen::cholesky(picos_trace::gen::CholeskyConfig::paper(256));
        let p = perfect_speedup(&tr, 4);
        let n = nanos_speedup(&tr, 4);
        let h = picos_speedup(&tr, 4, PicosConfig::balanced(), HilMode::FullSystem);
        assert!(
            p >= n && p >= h,
            "perfect {p} must dominate nanos {n} / picos {h}"
        );
    }
}
