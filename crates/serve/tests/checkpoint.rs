//! Checkpointed restarts: a tenant checkpoint persists a full engine
//! snapshot and truncates the on-disk journal to the post-snapshot tail,
//! so a restarted service recovers from snapshot + tail replay and is
//! bit-exact with a service that never went down — including after a
//! crash in the window between the checkpoint and journal writes.

use picos_backend::BackendSpec;
use picos_serve::{Request, ServeConfig, ServeHandle, Service, SubmitOutcome, TenantSpec};
use picos_trace::{gen, SessionJournal, Trace};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A fresh scratch directory under the system temp dir.
fn scratch(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "picos-ckpt-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Feeds `trace[range]` to every named tenant, riding out quota and
/// window rejections with scheduler rounds (the streaming client loop).
fn feed(svc: &mut Service, names: &[String], trace: &Trace, range: std::ops::Range<usize>) {
    for idx in range {
        let task = &trace.tasks()[idx];
        for name in names {
            while svc.submit(name, task).unwrap() != SubmitOutcome::Accepted {
                svc.run_round();
            }
        }
    }
}

/// Mid-journal checkpoint and restart across every backend family: the
/// recovered service's final output (report, stats, timelines, metrics)
/// is bit-identical to a service that was never interrupted, and the
/// checkpoint physically truncates the persisted journal.
#[test]
fn checkpointed_restart_matches_continuous_for_every_family() {
    let dir = scratch("families");
    let cfg = ServeConfig {
        default_quota: 6,
        journal_dir: Some(dir.clone()),
        ..ServeConfig::default()
    };
    let continuous_cfg = ServeConfig {
        journal_dir: None,
        ..cfg.clone()
    };
    let mut durable = Service::new(cfg.clone()).unwrap();
    let mut continuous = Service::new(continuous_cfg).unwrap();
    let names: Vec<String> = BackendSpec::ALL
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let name = format!("t{i}");
            let spec = TenantSpec::new(*spec, 4);
            durable.open(&name, &spec).unwrap();
            continuous.open(&name, &spec).unwrap();
            name
        })
        .collect();

    let trace = gen::stream(gen::StreamConfig::heavy(40));
    let cut = trace.len() / 2;
    feed(&mut durable, &names, &trace, 0..cut);
    feed(&mut continuous, &names, &trace, 0..cut);

    // Mid-journal checkpoint: snapshot persisted, journal truncated.
    assert_eq!(durable.checkpoint_all().unwrap(), names.len());
    for name in &names {
        assert!(dir.join(format!("{name}.checkpoint.json")).exists());
        let text = std::fs::read_to_string(dir.join(format!("{name}.journal.json"))).unwrap();
        assert!(
            text.contains("\"base\":"),
            "{name}: compacted journal must carry its absolute base"
        );
        let tail = SessionJournal::from_json(&text).unwrap();
        assert!(
            tail.is_empty(),
            "{name}: checkpoint must truncate the journal to the tail"
        );
    }

    // Post-checkpoint traffic lands in the journal tail only.
    feed(&mut durable, &names, &trace, cut..trace.len());
    feed(&mut continuous, &names, &trace, cut..trace.len());
    durable.flush_journals().unwrap();
    drop(durable);

    let mut recovered = Service::new(cfg).unwrap();
    assert!(
        recovered.recovery_errors().is_empty(),
        "{:?}",
        recovered.recovery_errors()
    );
    for name in &names {
        let stats = recovered.stats(name).unwrap();
        assert_eq!(stats.submitted as usize, trace.len(), "{name}");
        let restarted = recovered.close(name).unwrap();
        let uninterrupted = continuous.close(name).unwrap();
        assert_eq!(
            restarted, uninterrupted,
            "{name}: restart must be bit-exact with the continuous run"
        );
    }
}

/// A crash after the checkpoint lands but before the journal file is
/// rewritten leaves a stale full-history journal next to a newer
/// snapshot. The absolute cursor makes recovery skip exactly the
/// already-snapshotted prefix — ops are never applied twice.
#[test]
fn crash_between_checkpoint_and_journal_truncation_replays_once() {
    let dir = scratch("torn");
    let cfg = ServeConfig {
        default_quota: 5,
        journal_dir: Some(dir.clone()),
        ..ServeConfig::default()
    };
    let mut durable = Service::new(cfg.clone()).unwrap();
    let mut continuous = Service::new(ServeConfig {
        journal_dir: None,
        ..cfg.clone()
    })
    .unwrap();
    let spec = TenantSpec::new(BackendSpec::Nanos, 3);
    durable.open("t", &spec).unwrap();
    continuous.open("t", &spec).unwrap();

    let names = ["t".to_string()];
    let trace = gen::stream(gen::StreamConfig::heavy(30));
    feed(&mut durable, &names, &trace, 0..trace.len());
    feed(&mut continuous, &names, &trace, 0..trace.len());

    // Persist the full-history journal, then checkpoint — and put the
    // stale pre-checkpoint journal file back, as if the process died
    // between the two checkpoint writes.
    durable.flush_journals().unwrap();
    let journal_path = dir.join("t.journal.json");
    let stale = std::fs::read_to_string(&journal_path).unwrap();
    assert!(!SessionJournal::from_json(&stale).unwrap().is_empty());
    assert!(durable.checkpoint("t").unwrap());
    std::fs::write(&journal_path, stale).unwrap();
    drop(durable); // crash: no graceful flush

    let mut recovered = Service::new(cfg).unwrap();
    assert!(
        recovered.recovery_errors().is_empty(),
        "{:?}",
        recovered.recovery_errors()
    );
    assert_eq!(
        recovered.stats("t").unwrap().submitted as usize,
        trace.len()
    );
    assert_eq!(
        recovered.close("t").unwrap(),
        continuous.close("t").unwrap(),
        "cursor-skip recovery must not double-apply the snapshotted prefix"
    );
}

/// A compacted journal whose covering checkpoint file is missing is a
/// typed recovery error (the history prefix is gone), isolated to the
/// tenant it concerns.
#[test]
fn missing_checkpoint_for_compacted_journal_is_reported() {
    let dir = scratch("orphan");
    let cfg = ServeConfig {
        default_quota: 4,
        journal_dir: Some(dir.clone()),
        ..ServeConfig::default()
    };
    let mut svc = Service::new(cfg.clone()).unwrap();
    svc.open("t", &TenantSpec::new(BackendSpec::Perfect, 2))
        .unwrap();
    let names = ["t".to_string()];
    let trace = gen::stream(gen::StreamConfig::heavy(12));
    feed(&mut svc, &names, &trace, 0..trace.len());
    assert!(svc.checkpoint("t").unwrap());
    svc.flush_journals().unwrap();
    drop(svc);
    std::fs::remove_file(dir.join("t.checkpoint.json")).unwrap();

    let svc = Service::new(cfg).unwrap();
    assert!(
        !svc.contains("t"),
        "unrecoverable tenant must not half-open"
    );
    assert_eq!(svc.recovery_errors().len(), 1);
    let (name, reason) = &svc.recovery_errors()[0];
    assert_eq!(name, "t");
    assert!(
        reason.contains("no checkpoint covers the prefix"),
        "unexpected reason: {reason}"
    );
}

/// With a `checkpoint_every` cadence the scheduler checkpoints on its
/// own: checkpoint files appear without any explicit call, the scrape
/// counts them, and a restart recovers the full stream.
#[test]
fn periodic_checkpoints_fire_from_the_scheduler() {
    let dir = scratch("auto");
    let cfg = ServeConfig {
        default_quota: 2,
        journal_dir: Some(dir.clone()),
        checkpoint_every: Some(1),
        ..ServeConfig::default()
    };
    let mut svc = Service::new(cfg.clone()).unwrap();
    svc.open("t", &TenantSpec::new(BackendSpec::Nanos, 2))
        .unwrap();
    let names = ["t".to_string()];
    let trace = gen::stream(gen::StreamConfig::heavy(30));
    // The 2-task quota forces scheduler rounds during the feed; every
    // stepping round crosses the 1-step cadence and checkpoints.
    feed(&mut svc, &names, &trace, 0..trace.len());
    assert!(
        svc.checkpoint_errors().is_empty(),
        "{:?}",
        svc.checkpoint_errors()
    );
    assert!(
        dir.join("t.checkpoint.json").exists(),
        "cadence must have checkpointed without an explicit call"
    );
    let scrape = svc.scrape();
    let auto = scrape.service.value("serve.checkpoints").unwrap();
    assert!(auto >= 1, "scrape must count automatic checkpoints");
    svc.flush_journals().unwrap();
    drop(svc);

    let mut recovered = Service::new(ServeConfig {
        checkpoint_every: None,
        ..cfg
    })
    .unwrap();
    assert!(
        recovered.recovery_errors().is_empty(),
        "{:?}",
        recovered.recovery_errors()
    );
    let out = recovered.close("t").unwrap();
    assert_eq!(out.report.order.len(), trace.len());
}

/// The wire protocol drives checkpoints: `{"cmd":"checkpoint"}` (all
/// tenants) and the single-tenant form both round-trip and report how
/// many checkpoints were written; without a journal directory the
/// request is a typed error, never a panic.
#[test]
fn wire_checkpoint_command_round_trips() {
    for req in [
        Request::Checkpoint { tenant: None },
        Request::Checkpoint {
            tenant: Some("w".into()),
        },
    ] {
        let line = req.to_line();
        assert_eq!(Request::parse(&line).unwrap(), req, "{line}");
    }

    let dir = scratch("wire");
    let mut h = ServeHandle::new(ServeConfig {
        journal_dir: Some(dir.clone()),
        ..ServeConfig::default()
    })
    .unwrap();
    let open = Request::Open {
        tenant: "w".into(),
        spec: TenantSpec::new(BackendSpec::Nanos, 2),
    };
    assert_eq!(h.handle_line(&open.to_line()), "{\"ok\":true}");
    let trace = gen::stream(gen::StreamConfig::heavy(8));
    for task in trace.iter() {
        let line = Request::Submit {
            tenant: "w".into(),
            task: task.clone(),
        }
        .to_line();
        assert_eq!(
            h.handle_line(&line),
            "{\"ok\":true,\"outcome\":\"accepted\"}"
        );
    }
    assert_eq!(
        h.handle_line("{\"cmd\":\"checkpoint\",\"tenant\":\"w\"}"),
        "{\"ok\":true,\"checkpointed\":1}"
    );
    assert_eq!(
        h.handle_line("{\"cmd\":\"checkpoint\"}"),
        "{\"ok\":true,\"checkpointed\":1}"
    );
    assert!(dir.join("w.checkpoint.json").exists());

    // No journal directory: a clean protocol error.
    let mut bare = ServeHandle::new(ServeConfig::default()).unwrap();
    assert_eq!(bare.handle_line(&open.to_line()), "{\"ok\":true}");
    let resp = bare.handle_line("{\"cmd\":\"checkpoint\"}");
    assert!(
        resp.starts_with("{\"ok\":false,") && resp.contains("journal directory"),
        "{resp}"
    );
}
