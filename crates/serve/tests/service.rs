//! Service-level integration tests: tenant isolation, admission control,
//! registry errors, the metrics scrape and the wire protocol round-trip.

use picos_backend::{Admission, BackendSpec};
use picos_cluster::FaultPlan;
use picos_serve::{
    schedule_digest, Request, ServeConfig, ServeError, ServeHandle, Service, SubmitOutcome,
    TenantSpec,
};
use picos_trace::gen;

fn open_n(svc: &mut Service, n: usize, spec: &TenantSpec) {
    for i in 0..n {
        svc.open(&format!("t{i}"), spec).unwrap();
    }
}

/// One tenant's engine failure is typed, attributed and contained: the
/// failing tenant is removed, every other tenant finishes bit-exactly.
#[test]
fn tenant_errors_are_isolated() {
    let mut svc = Service::new(ServeConfig::default()).unwrap();
    // Healthy tenants on both sides of the faulty one (registry order).
    svc.open("before", &TenantSpec::new(BackendSpec::Nanos, 4))
        .unwrap();
    // A cluster whose interconnect drops every message with a one-retry
    // budget: the link gives up deterministically (LinkTimeout).
    let doomed = BackendSpec::Cluster(2)
        .builder(4)
        .faults(Some(
            FaultPlan::new(7).with_drop_rate(1.0).with_max_retries(1),
        ))
        .build();
    svc.open_with(
        "doomed",
        &*doomed,
        &TenantSpec::new(BackendSpec::Cluster(2), 4),
    )
    .unwrap();
    svc.open("after", &TenantSpec::new(BackendSpec::Perfect, 4))
        .unwrap();

    let trace = gen::stream(gen::StreamConfig::heavy(40));
    for task in trace.iter() {
        for name in ["before", "doomed", "after"] {
            assert_eq!(svc.submit(name, task).unwrap(), SubmitOutcome::Accepted);
        }
    }
    svc.run_until_idle();

    let err = svc.close("doomed").expect_err("a dead link must surface");
    match &err {
        ServeError::Tenant { tenant, .. } => assert_eq!(tenant, "doomed"),
        other => panic!("expected a tenant-attributed error, got {other}"),
    }
    assert!(!svc.contains("doomed"), "failed tenant leaves the registry");

    // The blast radius is exactly one tenant.
    for name in ["before", "after"] {
        let out = svc.close(name).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(out.report.order.len(), trace.len(), "{name}");
    }
}

/// The admission quota rejects above the configured in-flight population
/// and the rejection is visible in the tenant stats.
#[test]
fn quota_rejects_above_the_cap() {
    let mut svc = Service::new(ServeConfig {
        default_quota: 3,
        ..ServeConfig::default()
    })
    .unwrap();
    svc.open("t", &TenantSpec::new(BackendSpec::Nanos, 2))
        .unwrap();
    let trace = gen::stream(gen::StreamConfig::heavy(16));
    let mut accepted = 0usize;
    let mut rejected = 0usize;
    for task in trace.iter() {
        match svc.submit("t", task).unwrap() {
            SubmitOutcome::Accepted => accepted += 1,
            _ => rejected += 1,
        }
    }
    assert_eq!(
        accepted, 3,
        "exactly the quota is admitted without stepping"
    );
    assert_eq!(rejected, trace.len() - 3);
    let stats = svc.stats("t").unwrap();
    assert_eq!(stats.in_flight, 3);
    assert_eq!(stats.rejected_quota as usize, rejected);
    // Per-tenant quota override beats the service default.
    let mut spec = TenantSpec::new(BackendSpec::Nanos, 2);
    spec.quota = Some(1);
    svc.open("narrow", &spec).unwrap();
    assert_eq!(svc.stats("narrow").unwrap().quota, 1);
}

/// Registry errors are typed: duplicates, unknown names, invalid names
/// and the tenant cap.
#[test]
fn registry_errors_are_typed() {
    let mut svc = Service::new(ServeConfig {
        max_tenants: 2,
        ..ServeConfig::default()
    })
    .unwrap();
    let spec = TenantSpec::new(BackendSpec::Perfect, 2);
    svc.open("a", &spec).unwrap();
    assert!(matches!(
        svc.open("a", &spec),
        Err(ServeError::DuplicateTenant(_))
    ));
    assert!(matches!(
        svc.open("bad name!", &spec),
        Err(ServeError::InvalidName(_))
    ));
    assert!(matches!(
        svc.stats("ghost"),
        Err(ServeError::UnknownTenant(_))
    ));
    assert!(matches!(
        svc.close("ghost"),
        Err(ServeError::UnknownTenant(_))
    ));
    svc.open("b", &spec).unwrap();
    assert!(matches!(
        svc.open("c", &spec),
        Err(ServeError::TenantsFull(2))
    ));
    // Closing frees a slot.
    svc.close("a").unwrap();
    svc.open("c", &spec).unwrap();
}

/// The scrape drains service gauges plus one timeline per tenant, and
/// draining twice never double-reports deltas.
#[test]
fn scrape_drains_service_and_tenant_metrics() {
    let mut svc = Service::new(ServeConfig {
        default_quota: 4,
        ..ServeConfig::default()
    })
    .unwrap();
    open_n(&mut svc, 3, &TenantSpec::new(BackendSpec::Nanos, 2));
    let trace = gen::stream(gen::StreamConfig::heavy(30));
    for task in trace.iter() {
        for i in 0..3 {
            let name = format!("t{i}");
            // Ride out the 4-task quota: scheduler rounds drain the
            // saturated (hence steppable) tenants.
            while svc.submit(&name, task).unwrap() != SubmitOutcome::Accepted {
                svc.run_round();
            }
        }
    }
    svc.run_until_idle();
    let scrape = svc.scrape();
    assert_eq!(scrape.tenants.len(), 3);
    assert_eq!(scrape.service.value("serve.tenants_live"), Some(3));
    assert_eq!(scrape.service.value("serve.tenants_opened"), Some(3));
    let steps = scrape.service.value("serve.steps_scheduled").unwrap();
    assert!(steps > 0, "the scheduler must have stepped");
    let json = scrape.to_json();
    assert!(json.contains("\"service\"") && json.contains("\"tenants\""));
    // Second scrape with no new work: samplers were drained, so the
    // submitted deltas must not reappear.
    let again = svc.scrape();
    for (name, tl) in &again.tenants {
        let csv = tl.to_csv();
        let mut lines = csv.lines();
        let header: Vec<&str> = lines.next().unwrap().split(',').collect();
        let si = header.iter().position(|h| *h == "submitted").unwrap();
        for line in lines {
            let submitted: u64 = line
                .split(',')
                .nth(si)
                .map_or(0, |v| v.parse().unwrap_or(0));
            assert_eq!(submitted, 0, "{name}: re-reported a drained delta: {line}");
        }
    }
}

/// Every request round-trips through its wire form, and the in-process
/// handle speaks the exact protocol: open → submit*N → close returns the
/// same digest as the identical solo session.
#[test]
fn protocol_round_trips_and_matches_solo() {
    let spec = TenantSpec::new(BackendSpec::Nanos, 4);
    let trace = gen::stream(gen::StreamConfig::heavy(25));
    let requests = vec![
        Request::Open {
            tenant: "w".into(),
            spec: spec.clone(),
        },
        Request::Submit {
            tenant: "w".into(),
            task: trace.iter().next().unwrap().clone(),
        },
        Request::Barrier { tenant: "w".into() },
        Request::Advance {
            tenant: "w".into(),
            cycle: 400,
        },
        Request::DrainEvents { tenant: "w".into() },
        Request::Stats { tenant: "w".into() },
        Request::Scrape,
        Request::Close { tenant: "w".into() },
        Request::Shutdown,
    ];
    for req in &requests {
        let line = req.to_line();
        assert_eq!(
            &Request::parse(&line).unwrap_or_else(|e| panic!("{line}: {e}")),
            req,
            "wire round-trip must be lossless"
        );
    }

    // Solo reference run under the tenant's effective configuration.
    let backend = spec.build_backend();
    let mut solo = backend
        .open_with(spec.effective_session_config(ServeConfig::default().default_quota))
        .unwrap();
    for task in trace.iter() {
        assert_eq!(solo.submit(task), Admission::Accepted);
    }
    let (solo_report, _) = solo.finish().unwrap();

    // The same feed over protocol lines.
    let mut h = ServeHandle::new(ServeConfig::default()).unwrap();
    let open = Request::Open {
        tenant: "w".into(),
        spec,
    };
    assert_eq!(h.handle_line(&open.to_line()), "{\"ok\":true}");
    for task in trace.iter() {
        let line = Request::Submit {
            tenant: "w".into(),
            task: task.clone(),
        }
        .to_line();
        assert_eq!(
            h.handle_line(&line),
            "{\"ok\":true,\"outcome\":\"accepted\"}"
        );
    }
    h.service_mut().run_until_idle();
    let closed = h.handle_line(&Request::Close { tenant: "w".into() }.to_line());
    let expect = format!(
        "\"tasks\":{},\"makespan\":{},\"digest\":{}",
        trace.len(),
        solo_report.makespan,
        schedule_digest(&solo_report)
    );
    assert!(
        closed.contains(&expect),
        "wire close must match solo bit-exactly: {closed} vs {expect}"
    );

    // Malformed input is an error response, never a panic or a drop.
    for bad in [
        "not json",
        "{}",
        "{\"cmd\":\"warp\"}",
        "{\"cmd\":\"stats\"}",
    ] {
        let resp = h.handle_line(bad);
        assert!(resp.starts_with("{\"ok\":false,"), "{bad} -> {resp}");
    }
}
