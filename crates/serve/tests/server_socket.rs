//! Localhost-socket integration: the TCP front end speaks the protocol
//! end to end and shuts down gracefully — listener closed, in-flight
//! steps finished, journals flushed — both on a wire `shutdown` request
//! and on the SIGTERM-equivalent [`ServerHandle::shutdown`].

use picos_backend::{Admission, BackendSpec};
use picos_serve::{schedule_digest, serve, Request, ServeConfig, Service, TenantSpec};
use picos_trace::{gen, Value};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A fresh scratch directory under the system temp dir.
fn scratch(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "picos-serve-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A line-oriented protocol client over a blocking socket.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    /// Sends one request and returns the parsed response object.
    fn call(&mut self, req: &Request) -> Value {
        self.writer
            .write_all(format!("{}\n", req.to_line()).as_bytes())
            .expect("write");
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read");
        picos_serve::parse_response(line.trim()).unwrap_or_else(|e| panic!("{line}: {e}"))
    }

    fn call_ok(&mut self, req: &Request) -> Value {
        let v = self.call(req);
        let ok = matches!(
            v.as_obj().and_then(|o| o.get("ok")),
            Some(Value::Bool(true))
        );
        assert!(ok, "{}: {v:?}", req.to_line());
        v
    }
}

fn field(v: &Value, name: &str) -> u64 {
    v.as_obj()
        .and_then(|o| o.get(name))
        .and_then(Value::as_int)
        .unwrap_or_else(|| panic!("response misses {name}: {v:?}"))
}

/// Full protocol conversation over a real socket: open, submit a whole
/// trace, poll stats until drained, close — and the wire digest matches
/// the identical solo session bit-exactly.
#[test]
fn socket_session_matches_solo() {
    let server = serve(ServeConfig::default(), "127.0.0.1:0").unwrap();
    let mut c = Client::connect(server.addr());
    let spec = TenantSpec::new(BackendSpec::Nanos, 4);
    let trace = gen::stream(gen::StreamConfig::heavy(40));

    c.call_ok(&Request::Open {
        tenant: "wire".into(),
        spec: spec.clone(),
    });
    for task in trace.iter() {
        // The server runs scheduler rounds between requests, so
        // backpressure (if any) resolves by retrying.
        loop {
            let v = c.call_ok(&Request::Submit {
                tenant: "wire".into(),
                task: task.clone(),
            });
            let outcome = v
                .as_obj()
                .and_then(|o| o.get("outcome"))
                .and_then(Value::as_string)
                .unwrap()
                .to_string();
            if outcome == "accepted" {
                break;
            }
        }
    }
    // Drain via the open-loop primitive: `advance` moves the tenant's
    // clock (the scheduler alone never advances a non-blocked session —
    // that is the determinism invariant).
    c.call_ok(&Request::Advance {
        tenant: "wire".into(),
        cycle: 1 << 40,
    });
    let v = c.call_ok(&Request::Stats {
        tenant: "wire".into(),
    });
    let stats = v.as_obj().unwrap().get("stats").unwrap();
    assert_eq!(field(stats, "submitted"), trace.len() as u64);
    assert_eq!(
        field(stats, "in_flight"),
        0,
        "advance must drain the tenant"
    );
    let closed = c.call_ok(&Request::Close {
        tenant: "wire".into(),
    });

    // Solo reference for the bit-exactness digest.
    let backend = spec.build_backend();
    let cfg = spec.effective_session_config(ServeConfig::default().default_quota);
    let mut solo = backend.open_with(cfg).unwrap();
    for task in trace.iter() {
        assert_eq!(solo.submit(task), Admission::Accepted);
    }
    let (report, _) = solo.finish().unwrap();
    assert_eq!(field(&closed, "tasks"), trace.len() as u64);
    assert_eq!(field(&closed, "makespan"), report.makespan);
    assert_eq!(field(&closed, "digest"), schedule_digest(&report));

    server.shutdown().unwrap();
}

/// A wire `shutdown` request is the SIGTERM-equivalent: the client gets
/// its acknowledgement, the listener closes, in-flight steps finish and
/// every journal reaches disk — a fresh service recovers the tenant.
#[test]
fn wire_shutdown_is_graceful_and_flushes_journals() {
    let dir = scratch("wire-shutdown");
    let cfg = ServeConfig {
        journal_dir: Some(dir.clone()),
        ..ServeConfig::default()
    };
    let server = serve(cfg, "127.0.0.1:0").unwrap();
    let addr = server.addr();
    let mut c = Client::connect(addr);
    c.call_ok(&Request::Open {
        tenant: "durable".into(),
        spec: TenantSpec::new(BackendSpec::Perfect, 2),
    });
    let trace = gen::stream(gen::StreamConfig::heavy(12));
    for task in trace.iter() {
        c.call_ok(&Request::Submit {
            tenant: "durable".into(),
            task: task.clone(),
        });
    }
    // The acknowledgement must arrive before the server exits.
    c.call_ok(&Request::Shutdown);
    server.shutdown().unwrap();

    // Listener is closed: new connections are refused.
    assert!(TcpStream::connect(addr).is_err(), "listener must be closed");

    // Journals were flushed: a fresh service recovers the tenant with the
    // full accepted stream.
    let recovered = Service::new(ServeConfig {
        journal_dir: Some(dir.clone()),
        ..ServeConfig::default()
    })
    .unwrap();
    assert!(
        recovered.recovery_errors().is_empty(),
        "{:?}",
        recovered.recovery_errors()
    );
    assert!(recovered.contains("durable"));
    assert_eq!(
        recovered.journal("durable").unwrap().submitted(),
        trace.len()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// [`ServerHandle::shutdown`] (the in-process SIGTERM) also flushes
/// journals without any wire traffic, and buffered responses still reach
/// a slow client.
#[test]
fn handle_shutdown_flushes_without_wire_traffic() {
    let dir = scratch("handle-shutdown");
    let cfg = ServeConfig {
        journal_dir: Some(dir.clone()),
        ..ServeConfig::default()
    };
    let server = serve(cfg, "127.0.0.1:0").unwrap();
    let mut c = Client::connect(server.addr());
    c.call_ok(&Request::Open {
        tenant: "t".into(),
        spec: TenantSpec::new(BackendSpec::Nanos, 2),
    });
    let trace = gen::stream(gen::StreamConfig::heavy(8));
    for task in trace.iter() {
        c.call_ok(&Request::Submit {
            tenant: "t".into(),
            task: task.clone(),
        });
    }
    server.shutdown().unwrap();
    let recovered = Service::new(ServeConfig {
        journal_dir: Some(dir.clone()),
        ..ServeConfig::default()
    })
    .unwrap();
    assert_eq!(recovered.journal("t").unwrap().submitted(), trace.len());
    let _ = std::fs::remove_dir_all(&dir);
}
