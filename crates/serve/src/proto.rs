//! The line-delimited JSON wire protocol and its in-process endpoint.
//!
//! One request per line, one response per line, both JSON objects through
//! the in-tree `picos-trace` codec — no external dependencies. The grammar
//! (see also the "Service layer" section of `ARCHITECTURE.md`):
//!
//! ```text
//! request  = open | submit | barrier | advance | drain-events | stats
//!          | scrape | checkpoint | close | shutdown
//! open     = {"cmd":"open","tenant":NAME,"spec":SPEC}
//! submit   = {"cmd":"submit","tenant":NAME,"task":TASK}
//! barrier  = {"cmd":"barrier","tenant":NAME}
//! advance  = {"cmd":"advance","tenant":NAME,"cycle":INT}
//! drain    = {"cmd":"drain-events","tenant":NAME}
//! stats    = {"cmd":"stats","tenant":NAME}
//! scrape   = {"cmd":"scrape"}
//! checkpnt = {"cmd":"checkpoint"} | {"cmd":"checkpoint","tenant":NAME}
//! close    = {"cmd":"close","tenant":NAME}
//! shutdown = {"cmd":"shutdown"}
//!
//! response = {"ok":false,"error":STR}
//!          | {"ok":true, ...command-specific fields...}
//! ```
//!
//! `SPEC` is [`TenantSpec`]'s JSON form and `TASK` is the task-descriptor
//! object shared with the trace format and the session journal
//! ([`picos_trace::task_to_json`]). [`ServeHandle`] executes requests
//! against an in-process [`Service`] — the TCP server is a thin line pump
//! over it, and tests can drive the exact protocol without a socket.

use crate::service::{schedule_digest, TenantSpec};
use crate::service::{Scrape, ServeConfig, ServeError, Service, SubmitOutcome, TenantStats};
use picos_backend::{SessionOutput, SimEvent};
use picos_trace::{json_escape, parse_json, task_from_value, task_to_json, TaskDescriptor, Value};

/// One parsed protocol request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Open a tenant from a spec.
    Open {
        /// Tenant name.
        tenant: String,
        /// Session recipe.
        spec: TenantSpec,
    },
    /// Offer one task to a tenant.
    Submit {
        /// Tenant name.
        tenant: String,
        /// The task.
        task: TaskDescriptor,
    },
    /// Declare a taskwait barrier.
    Barrier {
        /// Tenant name.
        tenant: String,
    },
    /// Assert no earlier arrivals (open-loop pacing).
    Advance {
        /// Tenant name.
        tenant: String,
        /// Cycle to advance to.
        cycle: u64,
    },
    /// Drain pending schedule events.
    DrainEvents {
        /// Tenant name.
        tenant: String,
    },
    /// Read a tenant's observable state.
    Stats {
        /// Tenant name.
        tenant: String,
    },
    /// Drain the service metrics snapshot.
    Scrape,
    /// Checkpoint one tenant (or, without a tenant, every recoverable
    /// one): persist an engine-state snapshot and truncate the journal to
    /// the post-snapshot tail, so a restarted service recovers by
    /// snapshot restore + tail replay.
    Checkpoint {
        /// Tenant to checkpoint; `None` checkpoints all.
        tenant: Option<String>,
    },
    /// Finish a tenant and return its run summary.
    Close {
        /// Tenant name.
        tenant: String,
    },
    /// Graceful shutdown: stop accepting, finish in-flight steps, flush
    /// journals (the SIGTERM-equivalent).
    Shutdown,
}

impl Request {
    /// Renders the request as one protocol line (no trailing newline).
    pub fn to_line(&self) -> String {
        match self {
            Request::Open { tenant, spec } => format!(
                "{{\"cmd\":\"open\",\"tenant\":\"{}\",\"spec\":{}}}",
                json_escape(tenant),
                spec.to_json()
            ),
            Request::Submit { tenant, task } => {
                let mut out = format!(
                    "{{\"cmd\":\"submit\",\"tenant\":\"{}\",\"task\":",
                    json_escape(tenant)
                );
                task_to_json(&mut out, task);
                out.push('}');
                out
            }
            Request::Barrier { tenant } => {
                format!(
                    "{{\"cmd\":\"barrier\",\"tenant\":\"{}\"}}",
                    json_escape(tenant)
                )
            }
            Request::Advance { tenant, cycle } => format!(
                "{{\"cmd\":\"advance\",\"tenant\":\"{}\",\"cycle\":{cycle}}}",
                json_escape(tenant)
            ),
            Request::DrainEvents { tenant } => format!(
                "{{\"cmd\":\"drain-events\",\"tenant\":\"{}\"}}",
                json_escape(tenant)
            ),
            Request::Stats { tenant } => {
                format!(
                    "{{\"cmd\":\"stats\",\"tenant\":\"{}\"}}",
                    json_escape(tenant)
                )
            }
            Request::Scrape => "{\"cmd\":\"scrape\"}".to_string(),
            Request::Checkpoint { tenant } => match tenant {
                Some(t) => format!(
                    "{{\"cmd\":\"checkpoint\",\"tenant\":\"{}\"}}",
                    json_escape(t)
                ),
                None => "{\"cmd\":\"checkpoint\"}".to_string(),
            },
            Request::Close { tenant } => {
                format!(
                    "{{\"cmd\":\"close\",\"tenant\":\"{}\"}}",
                    json_escape(tenant)
                )
            }
            Request::Shutdown => "{\"cmd\":\"shutdown\"}".to_string(),
        }
    }

    /// Parses one protocol line.
    ///
    /// # Errors
    ///
    /// Returns a message suitable for an error response.
    pub fn parse(line: &str) -> Result<Request, String> {
        let v = parse_json(line).map_err(|e| format!("bad request JSON: {e}"))?;
        let obj = v.as_obj().ok_or("request must be a JSON object")?;
        let cmd = obj
            .get("cmd")
            .and_then(Value::as_string)
            .ok_or("request needs a \"cmd\" string")?;
        let tenant = || -> Result<String, String> {
            obj.get("tenant")
                .and_then(Value::as_string)
                .map(str::to_string)
                .ok_or_else(|| format!("\"{cmd}\" needs a \"tenant\" string"))
        };
        match cmd {
            "open" => {
                let spec = obj.get("spec").ok_or("\"open\" needs a \"spec\" object")?;
                Ok(Request::Open {
                    tenant: tenant()?,
                    spec: TenantSpec::from_value(spec)?,
                })
            }
            "submit" => {
                let task = obj
                    .get("task")
                    .ok_or("\"submit\" needs a \"task\" object")?;
                Ok(Request::Submit {
                    tenant: tenant()?,
                    task: task_from_value(task, 0).map_err(|e| format!("bad task: {e}"))?,
                })
            }
            "barrier" => Ok(Request::Barrier { tenant: tenant()? }),
            "advance" => {
                let cycle = obj
                    .get("cycle")
                    .and_then(Value::as_int)
                    .ok_or("\"advance\" needs an integer \"cycle\"")?;
                Ok(Request::Advance {
                    tenant: tenant()?,
                    cycle,
                })
            }
            "drain-events" => Ok(Request::DrainEvents { tenant: tenant()? }),
            "stats" => Ok(Request::Stats { tenant: tenant()? }),
            "scrape" => Ok(Request::Scrape),
            "checkpoint" => Ok(Request::Checkpoint {
                tenant: obj
                    .get("tenant")
                    .and_then(Value::as_string)
                    .map(str::to_string),
            }),
            "close" => Ok(Request::Close { tenant: tenant()? }),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown command {other:?}")),
        }
    }
}

/// One protocol response, rendered with [`Response::to_line`].
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The request failed; nothing changed beyond what the error says.
    Err(String),
    /// Plain success (open, barrier, advance, shutdown).
    Ok,
    /// Submission verdict.
    Submitted(SubmitOutcome),
    /// Drained schedule events.
    Events(Vec<SimEvent>),
    /// Tenant state.
    Stats(TenantStats),
    /// Metrics snapshot.
    Scraped(Scrape),
    /// Number of tenants checkpointed.
    Checkpointed(u64),
    /// Run summary of a finished tenant: engine label, task count,
    /// makespan and the schedule digest (bit-exactness check without
    /// shipping the schedule).
    Closed {
        /// Engine label.
        engine: String,
        /// Tasks executed.
        tasks: u64,
        /// Total simulated cycles.
        makespan: u64,
        /// FNV-1a digest of order/start/end.
        digest: u64,
    },
}

impl Response {
    /// Summarizes a finished tenant's output.
    pub fn closed(out: &SessionOutput) -> Response {
        Response::Closed {
            engine: out.report.engine.clone(),
            tasks: out.report.order.len() as u64,
            makespan: out.report.makespan,
            digest: schedule_digest(&out.report),
        }
    }

    /// Renders the response as one protocol line (no trailing newline).
    pub fn to_line(&self) -> String {
        match self {
            Response::Err(e) => format!("{{\"ok\":false,\"error\":\"{}\"}}", json_escape(e)),
            Response::Ok => "{\"ok\":true}".to_string(),
            Response::Submitted(outcome) => {
                format!("{{\"ok\":true,\"outcome\":\"{}\"}}", outcome.label())
            }
            Response::Events(events) => {
                let mut out = String::from("{\"ok\":true,\"events\":[");
                for (i, e) in events.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&event_json(e));
                }
                out.push_str("]}");
                out
            }
            Response::Stats(s) => format!(
                "{{\"ok\":true,\"stats\":{{\"now\":{},\"in_flight\":{},\"quota\":{},\
                 \"submitted\":{},\"rejected_window\":{},\"rejected_quota\":{},\"steps\":{}}}}}",
                s.now,
                s.in_flight,
                s.quota,
                s.submitted,
                s.rejected_window,
                s.rejected_quota,
                s.steps
            ),
            Response::Scraped(scrape) => {
                format!("{{\"ok\":true,\"scrape\":{}}}", scrape.to_json())
            }
            Response::Checkpointed(n) => {
                format!("{{\"ok\":true,\"checkpointed\":{n}}}")
            }
            Response::Closed {
                engine,
                tasks,
                makespan,
                digest,
            } => format!(
                "{{\"ok\":true,\"engine\":\"{}\",\"tasks\":{tasks},\"makespan\":{makespan},\
                 \"digest\":{digest}}}",
                json_escape(engine)
            ),
        }
    }
}

/// Renders one [`SimEvent`] as a JSON object.
fn event_json(e: &SimEvent) -> String {
    match e {
        SimEvent::TaskStarted { task, at } => {
            format!("{{\"kind\":\"start\",\"task\":{task},\"at\":{at}}}")
        }
        SimEvent::TaskFinished { task, at } => {
            format!("{{\"kind\":\"finish\",\"task\":{task},\"at\":{at}}}")
        }
        SimEvent::ShardMsg { from, to, at } => {
            format!("{{\"kind\":\"shard-msg\",\"from\":{from},\"to\":{to},\"at\":{at}}}")
        }
    }
}

/// Parses a response line into the generic JSON [`Value`] (clients check
/// `ok` and pick fields; the response set is open-ended by design).
///
/// # Errors
///
/// Returns the codec's error on malformed JSON.
pub fn parse_response(line: &str) -> Result<Value, picos_trace::JsonError> {
    parse_json(line)
}

/// The in-process protocol endpoint: a [`Service`] plus the
/// request-execution logic shared by the TCP server and in-process
/// clients. Tests drive the exact wire semantics without a socket.
#[derive(Debug)]
pub struct ServeHandle {
    service: Service,
    shutdown: bool,
}

impl ServeHandle {
    /// A handle over a fresh (or journal-recovered) service.
    ///
    /// # Errors
    ///
    /// See [`Service::new`].
    pub fn new(cfg: ServeConfig) -> Result<ServeHandle, ServeError> {
        Ok(ServeHandle {
            service: Service::new(cfg)?,
            shutdown: false,
        })
    }

    /// The underlying service (direct typed access).
    pub fn service(&self) -> &Service {
        &self.service
    }

    /// Mutable access to the underlying service (typed in-process API:
    /// `open`/`submit`/`run_round`/`close`/... without JSON framing).
    pub fn service_mut(&mut self) -> &mut Service {
        &mut self.service
    }

    /// Whether a `shutdown` request has been executed.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown
    }

    /// Executes one typed request against the service.
    pub fn handle(&mut self, req: &Request) -> Response {
        match req {
            Request::Open { tenant, spec } => match self.service.open(tenant, spec) {
                Ok(()) => Response::Ok,
                Err(e) => Response::Err(e.to_string()),
            },
            Request::Submit { tenant, task } => match self.service.submit(tenant, task) {
                Ok(outcome) => Response::Submitted(outcome),
                Err(e) => Response::Err(e.to_string()),
            },
            Request::Barrier { tenant } => match self.service.barrier(tenant) {
                Ok(()) => Response::Ok,
                Err(e) => Response::Err(e.to_string()),
            },
            Request::Advance { tenant, cycle } => match self.service.advance_to(tenant, *cycle) {
                Ok(()) => Response::Ok,
                Err(e) => Response::Err(e.to_string()),
            },
            Request::DrainEvents { tenant } => {
                let mut events = Vec::new();
                match self.service.drain_events(tenant, &mut events) {
                    Ok(()) => Response::Events(events),
                    Err(e) => Response::Err(e.to_string()),
                }
            }
            Request::Stats { tenant } => match self.service.stats(tenant) {
                Ok(stats) => Response::Stats(stats),
                Err(e) => Response::Err(e.to_string()),
            },
            Request::Scrape => Response::Scraped(self.service.scrape()),
            Request::Checkpoint { tenant } => {
                let result = match tenant {
                    Some(t) => self.service.checkpoint(t).map(u64::from),
                    None => self.service.checkpoint_all().map(|n| n as u64),
                };
                match result {
                    Ok(n) => Response::Checkpointed(n),
                    Err(e) => Response::Err(e.to_string()),
                }
            }
            Request::Close { tenant } => match self.service.close(tenant) {
                Ok(out) => Response::closed(&out),
                Err(e) => Response::Err(e.to_string()),
            },
            Request::Shutdown => {
                self.shutdown = true;
                Response::Ok
            }
        }
    }

    /// Executes one protocol line and returns the response line (without
    /// the trailing newline). Malformed lines get an error response, not
    /// a dropped connection.
    pub fn handle_line(&mut self, line: &str) -> String {
        match Request::parse(line) {
            Ok(req) => self.handle(&req).to_line(),
            Err(e) => Response::Err(e).to_line(),
        }
    }
}
