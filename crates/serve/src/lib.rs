//! `picos-serve` — the multi-tenant simulation service: thousands of live
//! journaled sessions multiplexed behind one deterministic fair scheduler.
//!
//! The paper's Picos is an online device serving a stream of task
//! submissions; this crate is the layer that serves *many users at once*
//! from a single process. A [`Service`] owns a registry of named tenants
//! — each an independent streaming session over any
//! [`BackendSpec`](picos_backend::BackendSpec), with its own window,
//! admission quota and journal — and multiplexes simulation progress with
//! a round-robin `step()` budget ([`Service::run_round`]). The session
//! invariant that `step` never moves the clock unless the session is
//! ingest-blocked makes the multiplexing invisible: every tenant's final
//! report is bit-identical to the same feed run solo, for any
//! interleaving (pinned by `tests/serve_conformance.rs`).
//!
//! Three layers, smallest first:
//!
//! * [`Service`] — the typed in-process API: `open` / `submit` /
//!   `barrier` / `advance_to` / `drain_events` / `stats` / `close`, the
//!   scheduler (`run_round` / `run_until_idle`), the metrics scrape
//!   ([`Service::scrape`]) and journal persistence + crash recovery
//!   ([`Service::flush_journals`], [`Service::new`]).
//! * [`ServeHandle`] ([`proto`]) — the line-delimited JSON protocol
//!   executed in-process: what the wire speaks, minus the socket.
//! * [`serve`] / [`serve_on`] ([`server`]) — the std-only nonblocking TCP
//!   front end with graceful shutdown (close listener, finish in-flight
//!   steps, flush journals).
//!
//! # Example
//!
//! ```
//! use picos_backend::BackendSpec;
//! use picos_serve::{ServeConfig, Service, SubmitOutcome, TenantSpec};
//! use picos_trace::gen;
//!
//! let mut svc = Service::new(ServeConfig::default()).unwrap();
//! svc.open("alice", &TenantSpec::new(BackendSpec::Perfect, 4)).unwrap();
//! svc.open("bob", &TenantSpec::new(BackendSpec::Nanos, 4)).unwrap();
//! let trace = gen::stream(gen::StreamConfig::heavy(20));
//! for task in trace.iter() {
//!     assert_eq!(svc.submit("alice", task).unwrap(), SubmitOutcome::Accepted);
//! }
//! svc.run_until_idle();
//! let out = svc.close("alice").unwrap();
//! assert_eq!(out.report.order.len(), trace.len());
//! assert!(svc.contains("bob"), "one tenant's close leaves the other live");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod proto;
pub mod server;
pub mod service;

pub use proto::{parse_response, Request, Response, ServeHandle};
pub use server::{serve, serve_on, ServerHandle};
pub use service::{
    schedule_digest, Scrape, ServeConfig, ServeError, Service, SubmitOutcome, TenantSpec,
    TenantStats,
};
