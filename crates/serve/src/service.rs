//! The multi-tenant session registry and its deterministic fair scheduler.
//!
//! A [`Service`] owns many named tenants, each a journaled streaming
//! session over any [`BackendSpec`]. Ingest calls (`submit`, `barrier`,
//! `advance_to`) address tenants by name; simulation progress is driven by
//! [`Service::run_round`], which hands every tenant the same bounded
//! `step()` budget in registry order. Because a session's `step` refuses
//! to move the clock unless the session is ingest-blocked (window full,
//! barrier-gated) — the invariant pinned by the session-conformance suite —
//! the scheduler's extra steps are either no-ops or exactly the forced
//! advances a solo driver would have made, so every tenant's final report
//! is bit-identical to the same feed run alone, for any interleaving.
//!
//! Admission is layered: a per-tenant **quota** (service-level in-flight
//! cap, checked before the session sees the task, so rejected offers are
//! never journaled) on top of the engine's own backpressure **window**.
//! Every tenant rides a [`JournaledSession`]; with a
//! [`ServeConfig::journal_dir`] the service persists one journal per
//! tenant plus a manifest, and a restarted service replays them into
//! bit-exact live sessions.

use picos_backend::{
    Admission, BackendError, BackendSpec, ExecBackend, SessionConfig, SessionCore, SessionOutput,
    SimEvent, SimSession, Snapshot,
};
use picos_metrics::{MergeRule, MetricSet, SeriesSpec, Timeline, WindowSampler};
use picos_runtime::{replay_journal_tail, JournaledSession};
use picos_trace::{json_escape, parse_json, SessionJournal, TaskDescriptor, Value};
use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};
use std::path::PathBuf;

/// FNV-1a hasher for the tenant-name index. Names are short and the
/// lookup sits on the per-submit hot path, where SipHash's per-call setup
/// dominates the hash itself; FNV-1a is a few nanoseconds for typical
/// names and the map is not exposed to untrusted key floods (opening a
/// tenant is quota-gated).
#[derive(Debug, Default)]
struct FnvHasher(u64);

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = if self.0 == 0 {
            0xcbf2_9ce4_8422_2325
        } else {
            self.0
        };
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        self.0 = h;
    }
}

type NameIndex = HashMap<String, usize, BuildHasherDefault<FnvHasher>>;

/// A tenant's session: any engine's boxed streaming session behind the
/// journaling wrapper, so the accepted input stream is always recorded.
pub type TenantSession = JournaledSession<Box<dyn SimSession>>;

/// Per-tenant session recipe: the backend family and the session knobs.
/// Serializable (manifest, wire protocol) and sufficient to rebuild the
/// tenant from its journal after a crash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantSpec {
    /// Backend family (and shard count, for the cluster).
    pub backend: BackendSpec,
    /// Worker count of the tenant's engine.
    pub workers: usize,
    /// Engine backpressure window ([`SessionConfig::window`]).
    pub window: Option<usize>,
    /// Service-level admission quota (in-flight cap checked before the
    /// session sees the task); [`ServeConfig::default_quota`] when unset.
    pub quota: Option<usize>,
    /// Whether the session collects [`SimEvent`]s for `drain_events`.
    pub collect_events: bool,
    /// Cycle width of the engine's telemetry sampler, if any.
    pub timeline_window: Option<u64>,
    /// Whether the session records task-lifecycle spans.
    pub trace_spans: bool,
}

impl TenantSpec {
    /// A spec with streaming defaults: no explicit window (the service
    /// windows the engine at the admission quota), no events, no
    /// telemetry.
    pub fn new(backend: BackendSpec, workers: usize) -> Self {
        TenantSpec {
            backend,
            workers,
            window: None,
            quota: None,
            collect_events: false,
            timeline_window: None,
            trace_spans: false,
        }
    }

    /// The session knobs this spec opens with.
    pub fn session_config(&self) -> SessionConfig {
        SessionConfig {
            window: self.window,
            collect_events: self.collect_events,
            timeline_window: self.timeline_window,
            trace_spans: self.trace_spans,
        }
    }

    /// The session configuration the service actually opens under a
    /// given [`ServeConfig::default_quota`]: the window is capped at the
    /// effective admission quota, so a quota-saturated tenant is always
    /// ingest-blocked — and therefore steppable — for the scheduler.
    /// Solo-equivalence references must open with *this* configuration
    /// (a window is part of the tenant's timing semantics).
    pub fn effective_session_config(&self, default_quota: usize) -> SessionConfig {
        let quota = self.quota.unwrap_or(default_quota).max(1);
        let mut cfg = self.session_config();
        cfg.window = Some(cfg.window.unwrap_or(quota).min(quota));
        cfg
    }

    /// Builds the boxed backend (balanced Picos configuration).
    pub fn build_backend(&self) -> Box<dyn ExecBackend> {
        self.backend.builder(self.workers).build()
    }

    /// Renders the spec as a JSON object (manifest and wire form).
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"backend\":\"{}\",\"shards\":{},\"workers\":{}",
            json_escape(self.backend.label()),
            self.backend.shards(),
            self.workers
        );
        if let Some(w) = self.window {
            out.push_str(&format!(",\"window\":{w}"));
        }
        if let Some(q) = self.quota {
            out.push_str(&format!(",\"quota\":{q}"));
        }
        if self.collect_events {
            out.push_str(",\"collect_events\":true");
        }
        if let Some(t) = self.timeline_window {
            out.push_str(&format!(",\"timeline_window\":{t}"));
        }
        if self.trace_spans {
            out.push_str(",\"trace_spans\":true");
        }
        out.push('}');
        out
    }

    /// Parses a spec from a parsed JSON object.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or malformed field.
    pub fn from_value(v: &Value) -> Result<TenantSpec, String> {
        let obj = v.as_obj().ok_or("tenant spec must be an object")?;
        let label = obj
            .get("backend")
            .and_then(Value::as_string)
            .ok_or("tenant spec needs a \"backend\" string")?;
        let mut backend =
            BackendSpec::parse(label).ok_or_else(|| format!("unknown backend {label:?}"))?;
        if let BackendSpec::Cluster(_) = backend {
            let shards = match obj.get("shards") {
                Some(s) => s.as_int().ok_or("\"shards\" must be an integer")? as usize,
                None => 1,
            };
            backend = BackendSpec::Cluster(shards.max(1));
        }
        let int = |key: &str| -> Result<Option<u64>, String> {
            match obj.get(key) {
                None | Some(Value::Null) => Ok(None),
                Some(v) => v
                    .as_int()
                    .map(Some)
                    .ok_or_else(|| format!("\"{key}\" must be an integer")),
            }
        };
        let flag = |key: &str| matches!(obj.get(key), Some(Value::Bool(true)));
        Ok(TenantSpec {
            backend,
            workers: int("workers")?.ok_or("tenant spec needs \"workers\"")? as usize,
            window: int("window")?.map(|w| w as usize),
            quota: int("quota")?.map(|q| q as usize),
            collect_events: flag("collect_events"),
            timeline_window: int("timeline_window")?,
            trace_spans: flag("trace_spans"),
        })
    }

    /// Parses a spec from JSON text.
    ///
    /// # Errors
    ///
    /// See [`TenantSpec::from_value`].
    pub fn from_json(s: &str) -> Result<TenantSpec, String> {
        let v = parse_json(s).map_err(|e| e.to_string())?;
        TenantSpec::from_value(&v)
    }
}

/// Service-wide configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Admission quota for tenants that do not set their own: maximum
    /// tasks in flight before `submit` returns
    /// [`SubmitOutcome::QuotaExceeded`].
    pub default_quota: usize,
    /// `step()` calls granted to each tenant per scheduler round.
    pub step_budget: u32,
    /// Maximum live tenants; `open` past this is rejected.
    pub max_tenants: usize,
    /// Cycle width of the per-tenant scrape timelines.
    pub scrape_window: u64,
    /// When set, journals and the tenant manifest are persisted here on
    /// [`Service::flush_journals`], and [`Service::new`] replays them.
    pub journal_dir: Option<PathBuf>,
    /// Automatic checkpoint cadence, in scheduler steps: after this many
    /// [`Service::run_round`] steps accumulate, every recoverable tenant
    /// is checkpointed ([`Service::checkpoint_all`]) — snapshot persisted,
    /// journal truncated to the post-snapshot tail — so restart recovery
    /// replays a bounded tail instead of the tenant's whole history.
    /// `None` (the default) checkpoints only on explicit request. Needs
    /// [`ServeConfig::journal_dir`] to take effect.
    pub checkpoint_every: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            default_quota: 1024,
            step_budget: 64,
            max_tenants: 4096,
            scrape_window: 1024,
            journal_dir: None,
            checkpoint_every: None,
        }
    }
}

/// Outcome of a service-level submission: the engine's admission verdict
/// with the quota layered in front.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// Admitted (and journaled).
    Accepted,
    /// The engine's in-flight window pushed back; retry after the
    /// scheduler drains it (not journaled).
    Backpressured,
    /// The tenant's service-level quota is exhausted; retry after in-flight
    /// work completes (not journaled, never reaches the engine).
    QuotaExceeded,
}

impl SubmitOutcome {
    /// Stable wire label.
    pub fn label(self) -> &'static str {
        match self {
            SubmitOutcome::Accepted => "accepted",
            SubmitOutcome::Backpressured => "backpressured",
            SubmitOutcome::QuotaExceeded => "quota",
        }
    }
}

/// A service-level failure, always scoped so one tenant's problem never
/// takes the process (or any other tenant) down.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// No tenant with this name.
    UnknownTenant(String),
    /// A live tenant already has this name.
    DuplicateTenant(String),
    /// Tenant names are 1..=64 chars of `[A-Za-z0-9._-]`, starting
    /// alphanumeric (they name journal files and wire frames).
    InvalidName(String),
    /// The registry is at [`ServeConfig::max_tenants`].
    TenantsFull(usize),
    /// The named tenant's engine failed (open, finish or replay). The
    /// tenant is gone; every other tenant is untouched.
    Tenant {
        /// The failing tenant.
        tenant: String,
        /// The engine's typed failure.
        error: BackendError,
    },
    /// Journal persistence or recovery I/O failed.
    Io(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownTenant(n) => write!(f, "unknown tenant {n:?}"),
            ServeError::DuplicateTenant(n) => write!(f, "tenant {n:?} already open"),
            ServeError::InvalidName(n) => write!(
                f,
                "invalid tenant name {n:?} (want 1..=64 chars of [A-Za-z0-9._-], \
                 starting alphanumeric)"
            ),
            ServeError::TenantsFull(max) => write!(f, "tenant registry full ({max} live)"),
            ServeError::Tenant { tenant, error } => write!(f, "tenant {tenant:?}: {error}"),
            ServeError::Io(m) => write!(f, "serve I/O: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Per-tenant observable state, as returned by [`Service::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantStats {
    /// The tenant session's current cycle.
    pub now: u64,
    /// Tasks admitted but not finished.
    pub in_flight: usize,
    /// The tenant's admission quota.
    pub quota: usize,
    /// Tasks accepted so far.
    pub submitted: u64,
    /// Offers rejected by the engine window.
    pub rejected_window: u64,
    /// Offers rejected by the service quota.
    pub rejected_quota: u64,
    /// Scheduler steps this tenant consumed.
    pub steps: u64,
}

/// One live tenant: the journaled session plus service-side accounting
/// and the scrape sampler (on the tenant's own clock).
#[derive(Debug)]
struct Tenant {
    name: String,
    spec: TenantSpec,
    quota: usize,
    /// Whether the manifest can rebuild this tenant (spec-built backends
    /// only; custom backends from [`Service::open_with`] cannot be
    /// reconstructed from JSON and are skipped by crash recovery).
    recoverable: bool,
    session: TenantSession,
    sampler: WindowSampler,
    /// Absolute index of the in-memory journal's first op: every op before
    /// it has been folded into a persisted checkpoint snapshot and dropped.
    /// Checkpoint cursors and journal files both speak absolute indices,
    /// so recovery replays exactly the ops the snapshot does not cover —
    /// even after a crash between the checkpoint and journal writes.
    journal_base: u64,
    submitted: u64,
    rejected_window: u64,
    rejected_quota: u64,
    steps: u64,
}

impl Tenant {
    /// Advances the scrape sampler to the tenant clock (one comparison
    /// when no window boundary was crossed).
    fn sample(&mut self) {
        let now = self.session.now();
        if !self.sampler.due(now) {
            return;
        }
        let vals = [
            self.session.in_flight() as u64,
            self.submitted,
            self.rejected_window + self.rejected_quota,
            self.steps,
        ];
        // Sparse advance: a tenant's clock can leap arbitrarily far in
        // one `advance_to`, and emitting every interior window would make
        // the scrape cost proportional to simulated time.
        self.sampler
            .advance_sparse(now, 64, |out| out.copy_from_slice(&vals));
    }

    /// Drains the scrape timeline accumulated so far.
    fn drain_timeline(&mut self) -> Timeline {
        self.sample();
        let now = self.session.now();
        let vals = [
            self.session.in_flight() as u64,
            self.submitted,
            self.rejected_window + self.rejected_quota,
            self.steps,
        ];
        self.sampler.drain(now, |out| out.copy_from_slice(&vals))
    }
}

/// The scrape snapshot: service-level gauges plus one drained timeline per
/// tenant (samples since the previous scrape).
#[derive(Debug, Clone, PartialEq)]
pub struct Scrape {
    /// Service gauges and counters under the `serve.` scope.
    pub service: MetricSet,
    /// Per-tenant drained timelines, registry order.
    pub tenants: Vec<(String, Timeline)>,
}

impl Scrape {
    /// Renders the scrape as one JSON object.
    pub fn to_json(&self) -> String {
        let mut out = format!("{{\"service\":{},\"tenants\":[", self.service.to_json());
        for (i, (name, tl)) in self.tenants.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"tenant\":\"{}\",\"timeline\":{}}}",
                json_escape(name),
                tl.to_json()
            ));
        }
        out.push_str("]}");
        out
    }
}

/// A stable digest of a schedule (FNV-1a over the order/start/end arrays):
/// lets a wire client check bit-exactness without shipping the schedule.
pub fn schedule_digest(report: &picos_runtime::ExecReport) -> u64 {
    const PRIME: u64 = 0x100_0000_01b3;
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    eat(report.makespan);
    for &t in &report.order {
        eat(t as u64);
    }
    for &c in &report.start {
        eat(c);
    }
    for &c in &report.end {
        eat(c);
    }
    h
}

/// Whether a tenant name is filesystem- and wire-safe.
fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphanumeric() => {}
        _ => return false,
    }
    name.len() <= 64 && chars.all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.')
}

/// The multi-tenant service: a registry of named journaled sessions and
/// the deterministic round-robin scheduler over them.
#[derive(Debug)]
pub struct Service {
    cfg: ServeConfig,
    /// Registry order = round-robin order; recovery restores it from the
    /// manifest, so a restarted service schedules identically.
    ///
    /// Boxed so that `remove` on a mid-registry close shifts pointers,
    /// not multi-hundred-byte tenant states.
    #[allow(clippy::vec_box)]
    tenants: Vec<Box<Tenant>>,
    index: NameIndex,
    steps_scheduled: u64,
    steps_since_checkpoint: u64,
    admission_rejections: u64,
    opened_total: u64,
    closed_total: u64,
    failed_total: u64,
    peak_tenants: u64,
    checkpoints_total: u64,
    recovery_errors: Vec<(String, String)>,
    checkpoint_errors: Vec<(String, String)>,
}

impl Service {
    /// A service under `cfg`. With a [`ServeConfig::journal_dir`] the
    /// directory is created and, when a manifest from a previous run
    /// exists, every journaled tenant is rebuilt and its journal replayed
    /// into a bit-exact live session (registry order preserved). A tenant
    /// that fails to replay is skipped and reported by
    /// [`Service::recovery_errors`] — recovery of the rest proceeds.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Io`] when the journal directory cannot be
    /// created or the manifest is unreadable.
    pub fn new(cfg: ServeConfig) -> Result<Service, ServeError> {
        let mut svc = Service {
            cfg,
            tenants: Vec::new(),
            index: NameIndex::default(),
            steps_scheduled: 0,
            steps_since_checkpoint: 0,
            admission_rejections: 0,
            opened_total: 0,
            closed_total: 0,
            failed_total: 0,
            peak_tenants: 0,
            checkpoints_total: 0,
            recovery_errors: Vec::new(),
            checkpoint_errors: Vec::new(),
        };
        if let Some(dir) = svc.cfg.journal_dir.clone() {
            std::fs::create_dir_all(&dir).map_err(|e| ServeError::Io(e.to_string()))?;
            let manifest = dir.join("tenants.json");
            if manifest.exists() {
                svc.recover(&dir)?;
            }
        }
        Ok(svc)
    }

    /// The configuration this service runs under.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Live tenant count.
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// Whether no tenants are live.
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }

    /// Whether a tenant with this name is live.
    pub fn contains(&self, name: &str) -> bool {
        self.index.contains_key(name)
    }

    /// Live tenant names, registry (scheduling) order.
    pub fn tenant_names(&self) -> Vec<&str> {
        self.tenants.iter().map(|t| t.name.as_str()).collect()
    }

    /// Tenants dropped during crash recovery, with the reason.
    pub fn recovery_errors(&self) -> &[(String, String)] {
        &self.recovery_errors
    }

    /// Opens a tenant from a serializable spec (the crash-recoverable
    /// path: the manifest can rebuild it).
    ///
    /// # Errors
    ///
    /// Name, capacity or engine-configuration failures; the registry is
    /// unchanged on error.
    pub fn open(&mut self, name: &str, spec: &TenantSpec) -> Result<(), ServeError> {
        let backend = spec.build_backend();
        self.admit(name, &*backend, spec, true)
    }

    /// Opens a tenant over a caller-built backend (custom link models,
    /// fault plans, placement policies). Not crash-recoverable: the
    /// manifest cannot rebuild a custom backend, so recovery skips it.
    ///
    /// # Errors
    ///
    /// See [`Service::open`].
    pub fn open_with(
        &mut self,
        name: &str,
        backend: &dyn ExecBackend,
        spec: &TenantSpec,
    ) -> Result<(), ServeError> {
        self.admit(name, backend, spec, false)
    }

    fn admit(
        &mut self,
        name: &str,
        backend: &dyn ExecBackend,
        spec: &TenantSpec,
        recoverable: bool,
    ) -> Result<(), ServeError> {
        if !valid_name(name) {
            return Err(ServeError::InvalidName(name.to_string()));
        }
        if self.index.contains_key(name) {
            return Err(ServeError::DuplicateTenant(name.to_string()));
        }
        if self.tenants.len() >= self.cfg.max_tenants {
            return Err(ServeError::TenantsFull(self.cfg.max_tenants));
        }
        let quota = spec.quota.unwrap_or(self.cfg.default_quota).max(1);
        // The session window is capped at the admission quota: an engine
        // whose window never fills is never ingest-blocked, so `step`
        // would refuse to advance it and the scheduler could not drain a
        // quota-saturated tenant. With window <= quota, "quota reached"
        // implies "window full" and progress is always forceable.
        let session = backend
            .open_with(spec.effective_session_config(self.cfg.default_quota))
            .map_err(|error| ServeError::Tenant {
                tenant: name.to_string(),
                error,
            })?;
        let sampler = WindowSampler::new(
            self.cfg.scrape_window.max(1),
            vec![
                SeriesSpec::gauge("inflight"),
                SeriesSpec::delta("submitted"),
                SeriesSpec::delta("rejected"),
                SeriesSpec::delta("steps"),
            ],
        );
        self.index.insert(name.to_string(), self.tenants.len());
        self.tenants.push(Box::new(Tenant {
            name: name.to_string(),
            spec: spec.clone(),
            quota,
            recoverable,
            session: JournaledSession::new(session),
            sampler,
            journal_base: 0,
            submitted: 0,
            rejected_window: 0,
            rejected_quota: 0,
            steps: 0,
        }));
        self.opened_total += 1;
        self.peak_tenants = self.peak_tenants.max(self.tenants.len() as u64);
        Ok(())
    }

    fn idx(&self, name: &str) -> Result<usize, ServeError> {
        self.index
            .get(name)
            .copied()
            .ok_or_else(|| ServeError::UnknownTenant(name.to_string()))
    }

    /// Offers a task to a tenant. The quota is checked **before** the
    /// session sees the task, so a rejected offer is never journaled and
    /// a replayed journal contains only accepted ops.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownTenant`]; rejections are an [`Ok`] outcome.
    pub fn submit(
        &mut self,
        name: &str,
        task: &TaskDescriptor,
    ) -> Result<SubmitOutcome, ServeError> {
        let i = self.idx(name)?;
        let t = &mut self.tenants[i];
        if t.session.in_flight() >= t.quota {
            t.rejected_quota += 1;
            self.admission_rejections += 1;
            return Ok(SubmitOutcome::QuotaExceeded);
        }
        match t.session.submit(task) {
            Admission::Accepted => {
                t.submitted += 1;
                // No sample: submission never moves the tenant clock, so
                // the sampler cannot have become due since the last
                // step/advance (which do sample) — and submit is the
                // service's hottest path.
                Ok(SubmitOutcome::Accepted)
            }
            Admission::Backpressured => {
                t.rejected_window += 1;
                self.admission_rejections += 1;
                Ok(SubmitOutcome::Backpressured)
            }
        }
    }

    /// Declares a taskwait barrier on a tenant (journaled).
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownTenant`].
    pub fn barrier(&mut self, name: &str) -> Result<(), ServeError> {
        let i = self.idx(name)?;
        let t = &mut self.tenants[i];
        t.session.barrier();
        t.sample();
        Ok(())
    }

    /// Asserts that no input for this tenant arrives before `cycle`
    /// (journaled; the open-loop arrival primitive).
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownTenant`].
    pub fn advance_to(&mut self, name: &str, cycle: u64) -> Result<(), ServeError> {
        let i = self.idx(name)?;
        let t = &mut self.tenants[i];
        t.session.advance_to(cycle);
        t.sample();
        Ok(())
    }

    /// Hints that roughly `additional` more ops are coming for this
    /// tenant, pre-sizing the session's and the journal's buffers — the
    /// same courtesy [`picos_backend::feed_trace`] extends to a solo
    /// session. Purely an allocation hint; never affects schedules.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownTenant`].
    pub fn reserve(&mut self, name: &str, additional: usize) -> Result<(), ServeError> {
        let i = self.idx(name)?;
        self.tenants[i].session.reserve(additional);
        Ok(())
    }

    /// Drains a tenant's pending [`SimEvent`]s into `out` (the tenant must
    /// have been opened with [`TenantSpec::collect_events`]).
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownTenant`].
    pub fn drain_events(&mut self, name: &str, out: &mut Vec<SimEvent>) -> Result<(), ServeError> {
        let i = self.idx(name)?;
        self.tenants[i].session.drain_events(out);
        Ok(())
    }

    /// A tenant's observable state.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownTenant`].
    pub fn stats(&self, name: &str) -> Result<TenantStats, ServeError> {
        let t = &self.tenants[self.idx(name)?];
        Ok(TenantStats {
            now: t.session.now(),
            in_flight: t.session.in_flight(),
            quota: t.quota,
            submitted: t.submitted,
            rejected_window: t.rejected_window,
            rejected_quota: t.rejected_quota,
            steps: t.steps,
        })
    }

    /// A tenant's journal: the exact accepted input stream recorded so
    /// far (rejected offers — window or quota — are never in it).
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownTenant`].
    pub fn journal(&self, name: &str) -> Result<&picos_trace::SessionJournal, ServeError> {
        Ok(self.tenants[self.idx(name)?].session.journal())
    }

    /// One fair scheduler round: every tenant, registry order, gets up to
    /// [`ServeConfig::step_budget`] `step()` calls (stopping early when
    /// the session refuses to advance). Returns total steps taken — `0`
    /// means every tenant is either idle or waiting on input.
    pub fn run_round(&mut self) -> u64 {
        let budget = self.cfg.step_budget.max(1);
        let mut total = 0u64;
        for t in &mut self.tenants {
            let mut n = 0u32;
            while n < budget && t.session.step() {
                n += 1;
            }
            if n > 0 {
                t.steps += n as u64;
                total += n as u64;
                t.sample();
            }
        }
        self.steps_scheduled += total;
        // Periodic checkpointing: once enough scheduler steps accumulate,
        // snapshot every recoverable tenant and truncate its journal to
        // the post-snapshot tail. A failing write is recorded (see
        // [`Service::checkpoint_errors`]) and retried a full cadence
        // later; it never takes the scheduler down.
        if let (Some(every), Some(_)) = (self.cfg.checkpoint_every, &self.cfg.journal_dir) {
            self.steps_since_checkpoint += total;
            if self.steps_since_checkpoint >= every.max(1) {
                self.steps_since_checkpoint = 0;
                if let Err(e) = self.checkpoint_all() {
                    self.checkpoint_errors
                        .push(("<auto>".to_string(), e.to_string()));
                }
            }
        }
        total
    }

    /// Scheduler rounds until a full round makes no progress. Returns
    /// total steps taken.
    pub fn run_until_idle(&mut self) -> u64 {
        let mut total = 0u64;
        loop {
            let n = self.run_round();
            if n == 0 {
                return total;
            }
            total += n;
        }
    }

    /// Checkpoints one tenant: persists a full engine-state snapshot (with
    /// the service-side counters and the absolute journal cursor), then
    /// **compacts** — the in-memory journal drops every op the snapshot
    /// covers and the persisted journal file is truncated to the (now
    /// empty) tail, so it stops growing without bound. Restart recovery
    /// becomes snapshot restore + tail replay instead of whole-history
    /// replay.
    ///
    /// Returns `false` without writing for a tenant the manifest cannot
    /// rebuild ([`Service::open_with`] backends) — a snapshot nobody can
    /// reopen is dead weight.
    ///
    /// The two writes are crash-ordered by the absolute cursor: a crash
    /// after the checkpoint lands but before the journal truncates leaves
    /// a journal whose `base` is older than the cursor, and recovery
    /// skips exactly the already-snapshotted prefix.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownTenant`]; [`ServeError::Io`] when no journal
    /// directory is configured or a write fails (the tenant keeps running
    /// and its journal is **not** compacted).
    pub fn checkpoint(&mut self, name: &str) -> Result<bool, ServeError> {
        let i = self.idx(name)?;
        self.checkpoint_at(i)
    }

    /// Checkpoints every recoverable tenant ([`Service::checkpoint`]);
    /// returns how many were written.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] on the first failing write; earlier tenants stay
    /// checkpointed, later ones keep their journals intact.
    pub fn checkpoint_all(&mut self) -> Result<usize, ServeError> {
        let mut written = 0;
        for i in 0..self.tenants.len() {
            if self.checkpoint_at(i)? {
                written += 1;
            }
        }
        Ok(written)
    }

    /// Automatic-checkpoint failures (tenant, reason), oldest first.
    pub fn checkpoint_errors(&self) -> &[(String, String)] {
        &self.checkpoint_errors
    }

    fn checkpoint_at(&mut self, i: usize) -> Result<bool, ServeError> {
        let Some(dir) = self.cfg.journal_dir.clone() else {
            return Err(ServeError::Io(
                "checkpoint needs a journal directory".into(),
            ));
        };
        let t = &mut self.tenants[i];
        if !t.recoverable {
            return Ok(false);
        }
        let io = |e: std::io::Error| ServeError::Io(e.to_string());
        let cursor = t.journal_base + t.session.journal().len() as u64;
        let snap = Snapshot::capture(&**t.session.inner());
        let ckpt = format!(
            "{{\"v\":1,\"cursor\":{cursor},\"submitted\":{},\"rejected_window\":{},\
             \"rejected_quota\":{},\"steps\":{},\"state\":{}}}",
            t.submitted,
            t.rejected_window,
            t.rejected_quota,
            t.steps,
            snap.to_json()
        );
        std::fs::write(dir.join(format!("{}.checkpoint.json", t.name)), ckpt).map_err(io)?;
        // Only after the snapshot is durable may the journal forget the
        // ops it covers.
        let len = t.session.journal().len();
        t.session.compact(len);
        t.journal_base = cursor;
        std::fs::write(
            dir.join(format!("{}.journal.json", t.name)),
            journal_file_json(t.session.journal(), cursor),
        )
        .map_err(io)?;
        self.checkpoints_total += 1;
        Ok(true)
    }

    /// Closes a tenant: removes it from the registry (and its journal
    /// file, when persisted), runs its simulation to quiescence and
    /// returns everything it produced.
    ///
    /// # Errors
    ///
    /// An engine failure is returned as [`ServeError::Tenant`] — the
    /// failing tenant is discarded and **every other tenant keeps
    /// running**; the process never dies with it.
    pub fn close(&mut self, name: &str) -> Result<SessionOutput, ServeError> {
        let i = self.idx(name)?;
        let t = *self.tenants.remove(i);
        self.index.remove(name);
        // Everyone behind the removed tenant shifts down one slot; patch
        // the indices in place (no re-keying, closes stay cheap at scale;
        // removing the newest tenant patches nothing at all).
        if i < self.tenants.len() {
            for v in self.index.values_mut() {
                if *v > i {
                    *v -= 1;
                }
            }
        }
        if let Some(dir) = &self.cfg.journal_dir {
            let _ = std::fs::remove_file(dir.join(format!("{name}.journal.json")));
            let _ = std::fs::remove_file(dir.join(format!("{name}.checkpoint.json")));
            let manifest = self.manifest_json();
            let _ = std::fs::write(dir.join("tenants.json"), manifest);
        }
        let (session, _journal) = t.session.into_parts();
        match session.finish_full() {
            Ok(out) => {
                self.closed_total += 1;
                Ok(out)
            }
            Err(error) => {
                self.failed_total += 1;
                Err(ServeError::Tenant {
                    tenant: t.name,
                    error,
                })
            }
        }
    }

    /// Drains the scrape snapshot: service gauges/counters plus each
    /// tenant's timeline samples since the previous scrape.
    pub fn scrape(&mut self) -> Scrape {
        let mut service = MetricSet::new();
        service
            .gauge(
                "serve.tenants_live",
                self.tenants.len() as u64,
                self.peak_tenants,
            )
            .counter(
                "serve.steps_scheduled",
                self.steps_scheduled,
                MergeRule::Sum,
            )
            .counter(
                "serve.admission_rejections",
                self.admission_rejections,
                MergeRule::Sum,
            )
            .counter("serve.tenants_opened", self.opened_total, MergeRule::Sum)
            .counter("serve.tenants_closed", self.closed_total, MergeRule::Sum)
            .counter("serve.tenants_failed", self.failed_total, MergeRule::Sum)
            .counter("serve.checkpoints", self.checkpoints_total, MergeRule::Sum);
        let tenants = self
            .tenants
            .iter_mut()
            .map(|t| (t.name.clone(), t.drain_timeline()))
            .collect();
        Scrape { service, tenants }
    }

    /// The manifest object naming every recoverable tenant, registry
    /// order (so recovery restores the scheduling order).
    fn manifest_json(&self) -> String {
        let mut out = String::from("{\"v\":1,\"tenants\":[");
        let mut first = true;
        for t in self.tenants.iter().filter(|t| t.recoverable) {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"spec\":{}}}",
                json_escape(&t.name),
                t.spec.to_json()
            ));
        }
        out.push_str("]}");
        out
    }

    /// Persists the manifest and one journal file per recoverable tenant
    /// to [`ServeConfig::journal_dir`]. Returns the number of tenants
    /// flushed (`0` when no journal directory is configured). Call as
    /// often as the crash-recovery window requires; graceful shutdown
    /// calls it last.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when a write fails.
    pub fn flush_journals(&self) -> Result<usize, ServeError> {
        let Some(dir) = &self.cfg.journal_dir else {
            return Ok(0);
        };
        let io = |e: std::io::Error| ServeError::Io(e.to_string());
        std::fs::write(dir.join("tenants.json"), self.manifest_json()).map_err(io)?;
        let mut flushed = 0;
        for t in self.tenants.iter().filter(|t| t.recoverable) {
            let path = dir.join(format!("{}.journal.json", t.name));
            std::fs::write(path, journal_file_json(t.session.journal(), t.journal_base))
                .map_err(io)?;
            flushed += 1;
        }
        Ok(flushed)
    }

    /// Rebuilds every manifest tenant and replays its journal. A tenant
    /// that cannot be rebuilt (bad spec, missing/corrupt journal, replay
    /// stall) is skipped and recorded; the rest recover.
    fn recover(&mut self, dir: &std::path::Path) -> Result<(), ServeError> {
        let io = |e: std::io::Error| ServeError::Io(e.to_string());
        let text = std::fs::read_to_string(dir.join("tenants.json")).map_err(io)?;
        let v = parse_json(&text).map_err(|e| ServeError::Io(format!("manifest: {e}")))?;
        let entries = v
            .as_obj()
            .and_then(|o| o.get("tenants"))
            .and_then(Value::as_array)
            .ok_or_else(|| ServeError::Io("manifest: missing \"tenants\" array".into()))?;
        for entry in entries {
            let (name, spec) = match parse_manifest_entry(entry) {
                Ok(pair) => pair,
                Err(e) => {
                    self.recovery_errors.push(("<manifest>".to_string(), e));
                    continue;
                }
            };
            if let Err(e) = self.recover_tenant(dir, &name, &spec) {
                self.recovery_errors.push((name, e.to_string()));
            }
        }
        Ok(())
    }

    /// Reopens one tenant from its persisted state: restore the latest
    /// checkpoint snapshot (when one exists), then replay only the journal
    /// ops after the snapshot's absolute cursor — through the fresh
    /// journaling wrapper, so the re-recorded tail keeps the recovered
    /// tenant immediately crash-recoverable again. Without a checkpoint
    /// this degrades to full-journal replay.
    fn recover_tenant(
        &mut self,
        dir: &std::path::Path,
        name: &str,
        spec: &TenantSpec,
    ) -> Result<(), ServeError> {
        let path = dir.join(format!("{name}.journal.json"));
        let text = std::fs::read_to_string(&path).map_err(|e| ServeError::Io(e.to_string()))?;
        let journal = SessionJournal::from_json(&text)
            .map_err(|e| ServeError::Io(format!("journal {}: {e}", path.display())))?;
        let base = journal_file_base(&text);
        let checkpoint = read_checkpoint(&dir.join(format!("{name}.checkpoint.json")))?;
        if checkpoint.is_none() && base > 0 {
            return Err(ServeError::Io(format!(
                "journal starts at op {base} but no checkpoint covers the prefix"
            )));
        }
        self.open(name, spec)?;
        let i = self.idx(name).expect("just opened");
        let undo = |svc: &mut Service, reason: String| {
            // Drop the wedged tenant; isolation over partial state.
            svc.tenants.remove(i);
            svc.index.remove(name);
            for v in svc.index.values_mut() {
                if *v > i {
                    *v -= 1;
                }
            }
            ServeError::Io(reason)
        };
        let mut skip = 0usize;
        if let Some(c) = checkpoint {
            let t = &mut self.tenants[i];
            if let Err(e) = c.state.restore(&mut **t.session.inner_mut()) {
                return Err(undo(self, format!("checkpoint restore: {e}")));
            }
            t.journal_base = c.cursor;
            t.submitted = c.submitted;
            t.rejected_window = c.rejected_window;
            t.rejected_quota = c.rejected_quota;
            t.steps = c.steps;
            // The journal file may predate the checkpoint (crash between
            // the two writes): skip the ops the snapshot already covers.
            skip = c.cursor.saturating_sub(base) as usize;
        }
        if let Err(stall) = replay_journal_tail(&mut self.tenants[i].session, &journal, skip) {
            return Err(undo(self, format!("replay stalled: {stall}")));
        }
        let t = &mut self.tenants[i];
        t.submitted += journal.tail(skip).submitted() as u64;
        Ok(())
    }
}

/// A parsed tenant checkpoint: the engine snapshot, the absolute journal
/// cursor it was taken at, and the service-side counters.
struct TenantCheckpoint {
    cursor: u64,
    submitted: u64,
    rejected_window: u64,
    rejected_quota: u64,
    steps: u64,
    state: Snapshot,
}

/// Reads and parses a tenant checkpoint file; `Ok(None)` when none exists.
fn read_checkpoint(path: &std::path::Path) -> Result<Option<TenantCheckpoint>, ServeError> {
    if !path.exists() {
        return Ok(None);
    }
    let bad = |m: String| ServeError::Io(format!("checkpoint {}: {m}", path.display()));
    let text = std::fs::read_to_string(path).map_err(|e| bad(e.to_string()))?;
    let v = parse_json(&text).map_err(|e| bad(e.to_string()))?;
    let obj = v
        .as_obj()
        .ok_or_else(|| bad("must be a JSON object".into()))?;
    let int = |key: &str| {
        obj.get(key)
            .and_then(Value::as_int)
            .ok_or_else(|| bad(format!("needs integer \"{key}\"")))
    };
    let state = obj
        .get("state")
        .ok_or_else(|| bad("needs \"state\"".into()))?;
    Ok(Some(TenantCheckpoint {
        cursor: int("cursor")?,
        submitted: int("submitted")?,
        rejected_window: int("rejected_window")?,
        rejected_quota: int("rejected_quota")?,
        steps: int("steps")?,
        state: Snapshot::from_value(state.clone()),
    }))
}

/// Renders a journal for its per-tenant file: the journal's own versioned
/// JSON with an extra `"base"` field — the absolute index of its first op
/// (everything before it lives in the checkpoint snapshot). The journal
/// codec ignores unknown fields, so the file still parses as a plain
/// [`SessionJournal`].
fn journal_file_json(journal: &SessionJournal, base: u64) -> String {
    let body = journal.to_json();
    debug_assert!(body.starts_with("{\"version\":1,"));
    body.replacen(
        "{\"version\":1,",
        &format!("{{\"version\":1,\"base\":{base},"),
        1,
    )
}

/// The `"base"` of a persisted journal file; `0` when absent (a journal
/// never compacted by a checkpoint).
fn journal_file_base(text: &str) -> u64 {
    parse_json(text)
        .ok()
        .and_then(|v| {
            v.as_obj()
                .and_then(|o| o.get("base").and_then(Value::as_int))
        })
        .unwrap_or(0)
}

/// Parses one `{"name":..., "spec":{...}}` manifest entry.
fn parse_manifest_entry(v: &Value) -> Result<(String, TenantSpec), String> {
    let obj = v.as_obj().ok_or("manifest entry must be an object")?;
    let name = obj
        .get("name")
        .and_then(Value::as_string)
        .ok_or("manifest entry needs \"name\"")?;
    let spec = obj.get("spec").ok_or("manifest entry needs \"spec\"")?;
    Ok((name.to_string(), TenantSpec::from_value(spec)?))
}
